// Package repro's root benchmark harness: one benchmark per table/figure
// of the MIDAS paper's evaluation (§5), per DESIGN.md's experiment index.
// Each benchmark regenerates its figure's data at a reduced-but-meaningful
// scale and reports the headline metric (median capacities, gains, spot
// counts) through b.ReportMetric, so `go test -bench=. -benchmem` yields
// both the runtime cost and the reproduced result for every experiment.
//
// The full-resolution series (60 topologies, long DES runs) come from
// `go run ./cmd/midas-bench`.
//
// Every benchmark's topology sweep runs on the internal/runner worker
// pool; -runner.parallel bounds it (0, the default, uses GOMAXPROCS).
// Reported metrics are bit-identical at any pool size — only ns/op
// changes — so perf runs at different widths stay comparable.
package repro

import (
	"context"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/channel"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

const benchSeed = 2014

// runnerParallel is the package-level knob for the experiment drivers'
// worker pool, mirrored into sim.Parallelism before any benchmark runs.
var runnerParallel = flag.Int("runner.parallel", 0,
	"topology tasks evaluated concurrently per experiment (0 = GOMAXPROCS)")

func TestMain(m *testing.M) {
	flag.Parse()
	sim.Parallelism = *runnerParallel
	os.Exit(m.Run())
}

// BenchmarkKernelPowerBalanced4x4 is the headline micro-benchmark of the
// per-TXOP precoding hot path, at the root so `make bench` tracks it
// alongside the figure benchmarks. It measures the exact problem recorded
// in BENCH_PR2.json (internal/bench.BenchProblem4x4): compare ns/op
// against that file's PowerBalanced4x4 "before" column to see the gain
// over the pre-workspace implementation, and expect 0 allocs/op.
func BenchmarkKernelPowerBalanced4x4(b *testing.B) {
	p := bench.BenchProblem4x4()
	s := precoding.NewSolver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PowerBalanced(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig03NaiveScalingDrop regenerates Figure 3: CDF of the
// capacity lost to naive per-antenna power scaling, CAS vs DAS.
func BenchmarkFig03NaiveScalingDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas, das, err := sim.Fig3NaiveScalingDrop(60, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cas.MustMedian(), "CAS-drop-median")
		b.ReportMetric(das.MustMedian(), "DAS-drop-median")
	}
}

// BenchmarkFig07LinkSNR regenerates Figure 7: SISO link SNR CDFs.
func BenchmarkFig07LinkSNR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas, das := sim.Fig7LinkSNR(60, benchSeed)
		b.ReportMetric(cas.MustMedian(), "CAS-SNR-dB")
		b.ReportMetric(das.MustMedian()-cas.MustMedian(), "DAS-gain-dB")
	}
}

// BenchmarkFig08OfficeA regenerates Figure 8: capacity CDFs in Office A.
func BenchmarkFig08OfficeA(b *testing.B) { benchCapacityCDF(b, sim.OfficeA) }

// BenchmarkFig09OfficeB regenerates Figure 9: capacity CDFs in Office B.
func BenchmarkFig09OfficeB(b *testing.B) { benchCapacityCDF(b, sim.OfficeB) }

func benchCapacityCDF(b *testing.B, o sim.Office) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cas, midas, err := sim.FigCapacityCDF(o, 4, 60, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, _, gain := sim.SummarizeGain(cas, midas)
		b.ReportMetric(gain*100, "median-gain-%")
	}
}

// BenchmarkFig10SmartPrecoding regenerates Figure 10: the power-balanced
// precoder's gain over naive scaling, on CAS and on DAS.
func BenchmarkFig10SmartPrecoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := sim.Fig10SmartPrecoding(60, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cg, _ := stats.MedianGain(c.CASBalanced, c.CASNaive)
		dg, _ := stats.MedianGain(c.DASBalanced, c.DASNaive)
		b.ReportMetric(cg*100, "CAS-gain-%")
		b.ReportMetric(dg*100, "DAS-gain-%")
	}
}

// BenchmarkFig11OptimalGap regenerates Figure 11: MIDAS's lightweight
// precoder against the numerical optimum.
func BenchmarkFig11OptimalGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := sim.Fig11OptimalGap(10, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		var sm, so float64
		for _, p := range pts {
			sm += p.MIDAS
			so += p.Optimal
		}
		b.ReportMetric(sm/so, "MIDAS/optimal")
	}
}

// BenchmarkFig12SpatialReuse regenerates Figure 12: the simultaneous-
// stream ratio CDF.
func BenchmarkFig12SpatialReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.Fig12SpatialReuse(30, benchSeed)
		ratios := stats.NewSample()
		for _, r := range res {
			ratios.Add(r.Ratio)
		}
		b.ReportMetric(ratios.MustMedian(), "median-ratio")
	}
}

// BenchmarkFig13Deadzones regenerates Figure 13 / §5.3.3.
func BenchmarkFig13Deadzones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.Fig13Deadzones(5, benchSeed)
		b.ReportMetric(100*(1-float64(res.DASDeadspots)/float64(res.CASDeadspots)), "reduction-%")
	}
}

// BenchmarkHiddenTerminals regenerates §5.3.4.
func BenchmarkHiddenTerminals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.HiddenTerminals(5, benchSeed)
		b.ReportMetric(100*(1-float64(res.DASSpots)/float64(res.CASSpots)), "reduction-%")
	}
}

// BenchmarkFig14PacketTagging regenerates Figure 14.
func BenchmarkFig14PacketTagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		random, tagged, err := sim.Fig14PacketTagging(60, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, _, gain := sim.SummarizeGain(random, tagged)
		b.ReportMetric(gain*100, "median-gain-%")
	}
}

// BenchmarkFig15EndToEnd regenerates Figure 15: the 3-AP closed-loop
// MAC+PHY comparison.
func BenchmarkFig15EndToEnd(b *testing.B) {
	o := sim.E2EOpts{Topologies: 8, SimTime: 200 * time.Millisecond, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		cas, midas := sim.Fig15EndToEnd(o)
		_, _, gain := sim.SummarizeGain(cas, midas)
		b.ReportMetric(gain*100, "median-gain-%")
	}
}

// BenchmarkFig15Replicated resolves the replicated scenario from the
// registry (replicates > 1) at reduced scale — the smoke that keeps the
// registry → engine → replicate-aggregation path exercised end to end
// (`make bench-smoke` runs it at -benchtime=1x). The reported numbers
// are the CI-band summary of the MIDAS median capacity.
func BenchmarkFig15Replicated(b *testing.B) {
	overrides := scenario.Spec{Topologies: 2, SimTime: scenario.Duration(20 * time.Millisecond), Replicates: 3}
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunByName(context.Background(), "fig15-replicated", overrides)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, s := range res.Summaries {
			if s.Name == "median MIDAS network capacity" {
				found = true
				b.ReportMetric(s.Mean, "median-mean")
				b.ReportMetric(s.CI95, "ci95-halfwidth")
				if s.N != 3 {
					b.Fatalf("summary aggregated %d replicates, want 3", s.N)
				}
			}
		}
		if !found {
			b.Fatal("replicated run produced no median MIDAS network capacity summary")
		}
	}
}

// BenchmarkFig16LargeScale regenerates Figure 16: the 8-AP network.
func BenchmarkFig16LargeScale(b *testing.B) {
	o := sim.E2EOpts{Topologies: 10, SimTime: 200 * time.Millisecond, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		cas, midas, err := sim.Fig16LargeScale(o)
		if err != nil {
			b.Fatal(err)
		}
		_, _, gain := sim.SummarizeGain(cas, midas)
		b.ReportMetric(gain*100, "median-gain-%")
	}
}

// BenchmarkDecomposition reports the §1 gain breakdown (precoding / DAS
// deployment / MAC).
func BenchmarkDecomposition(b *testing.B) {
	o := sim.E2EOpts{Topologies: 6, SimTime: 150 * time.Millisecond, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		res := sim.Decomposition(o)
		base := res.CAS.MustMedian()
		b.ReportMetric(100*(res.FullMIDAS.MustMedian()/base-1), "full-gain-%")
	}
}

// BenchmarkAblationScaling compares the three power-constraint strategies
// on one DAS problem set: global scaling (naive), per-column reverse
// water-filling (MIDAS) and the numerical optimum (DESIGN.md §5).
func BenchmarkAblationScaling(b *testing.B) {
	probs := make([]precoding.Problem, 20)
	src := rng.New(benchSeed)
	for t := range probs {
		dep := topology.SingleAP(topology.DefaultConfig(topology.DAS), src.SplitN("t", t))
		m := dep.Model(channel.Default(), src.SplitN("m", t))
		probs[t] = precoding.Problem{
			H:               m.Matrix(nil, nil),
			PerAntennaPower: channel.Default().TxPowerLinear(),
			Noise:           channel.Default().NoiseLinear(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rn, rb float64
		for _, p := range probs {
			nv, err := precoding.NaiveScaled(p)
			if err != nil {
				b.Fatal(err)
			}
			bal, err := precoding.PowerBalanced(p)
			if err != nil {
				b.Fatal(err)
			}
			rn += precoding.SumRate(p.H, nv, p.Noise)
			rb += precoding.SumRate(p.H, bal.V, p.Noise)
		}
		b.ReportMetric(100*(rb/rn-1), "balanced-vs-naive-%")
	}
}

// BenchmarkAblationTagWidth sweeps tag widths 1/2/4 (§3.2.4).
func BenchmarkAblationTagWidth(b *testing.B) {
	o := sim.E2EOpts{Topologies: 4, SimTime: 120 * time.Millisecond, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		res := sim.AblationTagWidth([]int{1, 2, 4}, o)
		b.ReportMetric(res[1].MustMedian(), "width1")
		b.ReportMetric(res[2].MustMedian(), "width2")
		b.ReportMetric(res[4].MustMedian(), "width4")
	}
}

// BenchmarkAblationWaitWindow sweeps the opportunistic wait (§3.2.3).
func BenchmarkAblationWaitWindow(b *testing.B) {
	o := sim.E2EOpts{Topologies: 4, SimTime: 120 * time.Millisecond, Seed: benchSeed}
	windows := []time.Duration{0, 34 * time.Microsecond, 68 * time.Microsecond}
	for i := 0; i < b.N; i++ {
		res := sim.AblationWaitWindow(windows, o)
		b.ReportMetric(res[0].MustMedian(), "win0")
		b.ReportMetric(res[34*time.Microsecond].MustMedian(), "winDIFS")
		b.ReportMetric(res[68*time.Microsecond].MustMedian(), "win2DIFS")
	}
}

// BenchmarkAblationScheduler compares DRR / round-robin / random (§3.2.5).
func BenchmarkAblationScheduler(b *testing.B) {
	o := sim.E2EOpts{Topologies: 4, SimTime: 120 * time.Millisecond, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		res := sim.AblationScheduler(o)
		b.ReportMetric(res["drr"].MustMedian(), "drr")
		b.ReportMetric(res["rr"].MustMedian(), "rr")
		b.ReportMetric(res["random"].MustMedian(), "random")
	}
}

// BenchmarkAblationCorrelation sweeps CAS antenna correlation.
func BenchmarkAblationCorrelation(b *testing.B) {
	rhos := []float64{0, 0.6, 0.9}
	for i := 0; i < b.N; i++ {
		res := sim.AblationCorrelation(rhos, 20, benchSeed)
		b.ReportMetric(res[0].MustMedian(), "rho0.0")
		b.ReportMetric(res[0.6].MustMedian(), "rho0.6")
		b.ReportMetric(res[0.9].MustMedian(), "rho0.9")
	}
}

// BenchmarkExtBeamforming quantifies §7's localized-beamforming tradeoff
// (SNR given up vs. area left unsilenced for neighbours' spatial reuse).
func BenchmarkExtBeamforming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.BeamformingStudy(20, 12, benchSeed)
		b.ReportMetric(res.SNRFull.MustMedian()-res.SNRLocal.MustMedian(), "SNR-cost-dB")
		b.ReportMetric(100*(res.SilencedFull.MustMedian()-res.SilencedLocal.MustMedian()), "area-freed-%")
	}
}

// BenchmarkExtPlacement quantifies the §7 open problem: optimised vs
// random DAS antenna placement.
func BenchmarkExtPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.PlacementStudy(24, 30, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OptimizedCoverage.MustMedian()-res.RandomCoverage.MustMedian(), "coverage-gain-dB")
		b.ReportMetric(res.OptimizedCapacity.MustMedian()/res.RandomCapacity.MustMedian(), "capacity-ratio")
	}
}
