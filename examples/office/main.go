// Office: the paper's §5.2.2 capacity experiment — MU-MIMO capacity CDFs
// for co-located versus distributed antennas in the two office
// environments (enterprise Office A, crowded lab Office B). The
// workload behind Figures 8–9 is resolved from the scenario registry
// and driven by a spec file whose sweep covers both array sizes; edit
// the JSON (or pass -spec) to change scale, seed or sweep without
// touching Go.
package main

import (
	"context"
	"flag"
	"log"
	"os"

	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	specPath := flag.String("spec", "examples/office/spec.json", "scenario spec file")
	flag.Parse()
	spec, err := scenario.LoadSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}

	sink := &runner.TextSink{W: os.Stdout, Points: 10}
	if err := sink.Begin(runner.Meta{Tool: "example-office", Seed: spec.Seed}); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"fig8-office-a", "fig9-office-b"} {
		res, err := scenario.RunByName(context.Background(), name, spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Result(res.RunnerResult()); err != nil {
			log.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
}
