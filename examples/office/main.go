// Office: the paper's §5.2.2 capacity experiment — MU-MIMO capacity CDFs
// for co-located versus distributed antennas in the two office
// environments (enterprise Office A, crowded lab Office B), printed as
// plot-ready series. This regenerates the workload behind Figures 8–9.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sim"
)

func main() {
	topos := flag.Int("topos", 60, "random topologies per curve")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	for _, office := range []sim.Office{sim.OfficeA, sim.OfficeB} {
		for _, antennas := range []int{2, 4} {
			cas, midas, err := sim.FigCapacityCDF(office, antennas, *topos, *seed)
			if err != nil {
				log.Fatal(err)
			}
			mc, mm, gain := sim.SummarizeGain(cas, midas)
			fmt.Printf("%v %dx%d MU-MIMO over %d topologies:\n", office, antennas, antennas, *topos)
			fmt.Printf("  CAS   median %5.2f bit/s/Hz\n", mc)
			fmt.Printf("  MIDAS median %5.2f bit/s/Hz  (%+.0f%%)\n\n", mm, gain*100)
			fmt.Println("  capacity\tF(CAS)\tF(MIDAS)")
			cc, mcdf := cas.ECDF(), midas.ECDF()
			for x := 0.0; x <= 30; x += 3 {
				fmt.Printf("  %4.0f\t%.2f\t%.2f\n", x, cc.At(x), mcdf.At(x))
			}
			fmt.Println()
		}
	}
}
