// Hiddenterminal: the §5.3.3–5.3.4 coverage studies — deadzone maps and
// hidden-terminal spot counting for co-located versus distributed
// antennas, rendered as ASCII maps and summary statistics.
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/sim"
)

func main() {
	deployments := flag.Int("deployments", 10, "random antenna deployments to average")
	seed := flag.Int64("seed", 23, "random seed")
	flag.Parse()

	dz := sim.Fig13Deadzones(*deployments, *seed)
	fmt.Printf("deadzones over %d deployments (%d spots on a 0.5 m grid):\n", *deployments, dz.Spots)
	fmt.Printf("  CAS deadspots: %d\n  DAS deadspots: %d\n  reduction: %.0f%% (paper: 91%%)\n\n",
		dz.CASDeadspots, dz.DASDeadspots,
		100*(1-float64(dz.DASDeadspots)/float64(dz.CASDeadspots)))

	fmt.Println("example coverage maps ('#' = deadspot):")
	fmt.Println(sideBySide(renderMap(dz.CASMap, dz.MapCols), renderMap(dz.DASMap, dz.MapCols), "CAS", "MIDAS"))

	ht := sim.HiddenTerminals(*deployments, *seed)
	fmt.Printf("hidden terminals over %d deployments (%d spots on a 1 m grid):\n", *deployments, ht.Spots)
	fmt.Printf("  CAS spots: %d\n  DAS spots: %d\n  reduction: %.0f%% (paper: 94%%)\n",
		ht.CASSpots, ht.DASSpots, 100*(1-float64(ht.DASSpots)/float64(ht.CASSpots)))
}

func renderMap(m []bool, cols int) []string {
	if cols == 0 {
		return nil
	}
	const step = 3
	var out []string
	for r := 0; r*cols < len(m); r += step {
		var b strings.Builder
		for c := 0; c < cols; c += step {
			i := r*cols + c
			if i >= len(m) {
				break
			}
			if m[i] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		out = append(out, b.String())
	}
	return out
}

func sideBySide(a, b []string, la, lb string) string {
	var out strings.Builder
	width := 0
	for _, r := range a {
		if len(r) > width {
			width = len(r)
		}
	}
	fmt.Fprintf(&out, "%-*s   %s\n", width, la, lb)
	for i := 0; i < len(a) || i < len(b); i++ {
		var ra, rb string
		if i < len(a) {
			ra = a[i]
		}
		if i < len(b) {
			rb = b[i]
		}
		fmt.Fprintf(&out, "%-*s   %s\n", width, ra, rb)
	}
	return out.String()
}
