// Hiddenterminal: the §5.3.3–5.3.4 coverage studies — deadzone maps and
// hidden-terminal spot counting for co-located versus distributed
// antennas, resolved from the scenario registry and driven by a spec
// file. The deadzone scenario's text block carries the ASCII coverage
// maps ('#' = deadspot).
package main

import (
	"context"
	"flag"
	"log"
	"os"

	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	specPath := flag.String("spec", "examples/hiddenterminal/spec.json", "scenario spec file")
	flag.Parse()
	spec, err := scenario.LoadSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}

	sink := &runner.TextSink{W: os.Stdout, Points: 8}
	if err := sink.Begin(runner.Meta{Tool: "example-hiddenterminal", Seed: spec.Seed}); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"fig13-deadzones", "ht-hidden-terminals"} {
		res, err := scenario.RunByName(context.Background(), name, spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Result(res.RunnerResult()); err != nil {
			log.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
}
