// Quickstart: build one DAS topology, precode a MU-MIMO downlink
// transmission with MIDAS's power-balanced precoder, and compare it with
// the conventional baseline — the library's core loop in ~50 lines. The
// seed and array size come from a scenario spec file, so the same JSON
// schema that drives midas-sim -scenario configures this walk-through.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func main() {
	specPath := flag.String("spec", "examples/quickstart/spec.json", "spec file (seed, antennas, clients)")
	flag.Parse()
	spec, err := scenario.LoadSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}

	// One AP at the origin; antennas distributed 5–10 m out over RF
	// cable; clients dropped in the coverage area. Omitted spec fields
	// keep the paper's 4×4 defaults, matching the registry's semantics.
	cfg := topology.DefaultConfig(topology.DAS)
	if spec.Antennas > 0 {
		cfg.AntennasPerAP = spec.Antennas
	}
	if spec.Clients > 0 {
		cfg.ClientsPerAP = spec.Clients
	}
	dep := topology.SingleAP(cfg, rng.New(spec.Seed))

	// The indoor 5 GHz channel: path loss, walls, Rayleigh fading.
	params := channel.Default()
	model := dep.Model(params, rng.New(spec.Seed+1))

	// The MU-MIMO precoding problem: channel matrix H (clients ×
	// antennas), 802.11ac's per-antenna power constraint, receiver noise.
	prob := precoding.Problem{
		H:               model.Matrix(nil, nil),
		PerAntennaPower: params.TxPowerLinear(),
		Noise:           params.NoiseLinear(),
	}

	// Baseline: zero-forcing with one global power back-off (§5.1).
	naive, err := precoding.NaiveScaled(prob)
	if err != nil {
		log.Fatal(err)
	}

	// MIDAS: zero-forcing with per-row reverse water-filling (§3.1.2).
	balanced, err := precoding.PowerBalanced(prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dx%d MU-MIMO over a distributed antenna system (seed %d)\n",
		cfg.AntennasPerAP, cfg.ClientsPerAP, spec.Seed)
	fmt.Printf("  naive-scaled ZFBF:    %6.2f bit/s/Hz\n",
		precoding.SumRate(prob.H, naive, prob.Noise))
	fmt.Printf("  power-balanced (MIDAS): %6.2f bit/s/Hz  (%d balancing rounds)\n",
		precoding.SumRate(prob.H, balanced.V, prob.Noise), balanced.Iterations)

	for j, r := range precoding.RatePerStream(prob.H, balanced.V, prob.Noise) {
		d := dep.Clients[j].Dist(dep.APs[0])
		fmt.Printf("  stream %d → client at %4.1f m: %5.2f bit/s/Hz\n", j, d, r)
	}
}
