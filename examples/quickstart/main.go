// Quickstart: build one DAS topology, precode a 4×4 MU-MIMO downlink
// transmission with MIDAS's power-balanced precoder, and compare it with
// the conventional baseline — the library's core loop in ~50 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/topology"
)

func main() {
	// One AP at the origin; four antennas distributed 5–10 m out over RF
	// cable; four clients dropped in the coverage area.
	dep := topology.SingleAP(topology.DefaultConfig(topology.DAS), rng.New(42))

	// The indoor 5 GHz channel: path loss, walls, Rayleigh fading.
	params := channel.Default()
	model := dep.Model(params, rng.New(43))

	// The MU-MIMO precoding problem: channel matrix H (clients ×
	// antennas), 802.11ac's per-antenna power constraint, receiver noise.
	prob := precoding.Problem{
		H:               model.Matrix(nil, nil),
		PerAntennaPower: params.TxPowerLinear(),
		Noise:           params.NoiseLinear(),
	}

	// Baseline: zero-forcing with one global power back-off (§5.1).
	naive, err := precoding.NaiveScaled(prob)
	if err != nil {
		log.Fatal(err)
	}

	// MIDAS: zero-forcing with per-row reverse water-filling (§3.1.2).
	balanced, err := precoding.PowerBalanced(prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("4x4 MU-MIMO over a distributed antenna system")
	fmt.Printf("  naive-scaled ZFBF:    %6.2f bit/s/Hz\n",
		precoding.SumRate(prob.H, naive, prob.Noise))
	fmt.Printf("  power-balanced (MIDAS): %6.2f bit/s/Hz  (%d balancing rounds)\n",
		precoding.SumRate(prob.H, balanced.V, prob.Noise), balanced.Iterations)

	for j, r := range precoding.RatePerStream(prob.H, balanced.V, prob.Noise) {
		d := dep.Clients[j].Dist(dep.APs[0])
		fmt.Printf("  stream %d → client at %4.1f m: %5.2f bit/s/Hz\n", j, d, r)
	}
}
