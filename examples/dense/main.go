// Dense: the beyond-paper dense-venue workload — 16 APs in a 104×104 m
// floor (4× the paper's area), full MAC+PHY discrete-event simulation
// of CAS versus MIDAS swept over client density, resolved from the
// scenario registry and driven by a spec file. A CSI trace is then
// recorded and replayed to show the trace-driven path (Fig 16's
// methodology).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	specPath := flag.String("spec", "examples/dense/spec.json", "scenario spec file")
	flag.Parse()
	spec, err := scenario.LoadSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}

	// Closed-loop DES comparison, spec-driven through the registry (the
	// spec file names the dense-venue scenario and sweeps clients/AP).
	res, err := scenario.RunByName(context.Background(), spec.Scenario, spec)
	if err != nil {
		log.Fatal(err)
	}
	sink := &runner.TextSink{W: os.Stdout, Points: 8}
	if err := sink.Begin(runner.Meta{Tool: "example-dense", Seed: spec.Seed}); err != nil {
		log.Fatal(err)
	}
	if err := sink.Result(res.RunnerResult()); err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}

	// Trace-driven path: record CSI from one large-scale deployment,
	// round-trip it through the binary format, replay through both
	// precoders.
	dep, err := topology.LargeScale(topology.DefaultLargeScale(topology.DAS), rng.New(spec.Seed))
	if err != nil {
		log.Fatal(err)
	}
	p := channel.Default()
	tr, err := sim.RecordDeployment(dep, p, 40, rng.New(spec.Seed+1))
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded CSI trace: %d frames, %d clients × %d antennas, %d bytes on disk\n",
		tr.NumFrames(), len(tr.Clients), len(tr.Antennas), buf.Len())
	replayed, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sim.TraceDrivenCapacity(replayed, p, sim.PrecoderPowerBalanced)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := sim.TraceDrivenCapacity(replayed, p, sim.PrecoderNaive)
	if err != nil {
		log.Fatal(err)
	}
	bm, _ := bal.Mean()
	nm, _ := naive.Mean()
	fmt.Printf("trace replay, mean sum capacity: naive %.2f vs power-balanced %.2f bit/s/Hz\n", nm, bm)
}
