// Dense: the §5.5 large-scale scenario — eight APs in a 60×60 m floor,
// full MAC+PHY discrete-event simulation of CAS versus MIDAS, plus a CSI
// trace recorded and replayed to show the trace-driven path (Fig 16's
// methodology).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	topos := flag.Int("topos", 5, "random deployments")
	simTime := flag.Duration("simtime", 300*time.Millisecond, "simulated airtime per run")
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()

	// Closed-loop DES comparison.
	o := sim.E2EOpts{Topologies: *topos, SimTime: *simTime, Seed: *seed}
	cas, midas, err := sim.Fig16LargeScale(o)
	if err != nil {
		log.Fatal(err)
	}
	mc, mm, gain := sim.SummarizeGain(cas, midas)
	region := topology.DefaultLargeScale(topology.DAS).Region
	fmt.Printf("8-AP %.0f×%.0f m, %d deployments, %v each:\n",
		region.Width(), region.Height(), *topos, *simTime)
	fmt.Printf("  CAS   median network capacity %5.2f bit/s/Hz\n", mc)
	fmt.Printf("  MIDAS median network capacity %5.2f bit/s/Hz  (%+.0f%%)\n\n", mm, gain*100)

	// Trace-driven path: record CSI from one deployment, round-trip it
	// through the binary format, replay through both precoders.
	dep, err := topology.LargeScale(topology.DefaultLargeScale(topology.DAS), rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	p := channel.Default()
	tr, err := sim.RecordDeployment(dep, p, 40, rng.New(*seed+1))
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded CSI trace: %d frames, %d clients × %d antennas, %d bytes on disk\n",
		tr.NumFrames(), len(tr.Clients), len(tr.Antennas), buf.Len())
	replayed, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sim.TraceDrivenCapacity(replayed, p, sim.PrecoderPowerBalanced)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := sim.TraceDrivenCapacity(replayed, p, sim.PrecoderNaive)
	if err != nil {
		log.Fatal(err)
	}
	bm, _ := bal.Mean()
	nm, _ := naive.Mean()
	fmt.Printf("trace replay, mean sum capacity: naive %.2f vs power-balanced %.2f bit/s/Hz\n", nm, bm)
}
