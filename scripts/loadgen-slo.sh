#!/bin/sh
# loadgen-slo: boot midas-serve on an ephemeral port, drive it with
# midas-loadgen, and fail if the measured latency quantiles or error
# rate violate the SLOs. The defaults are the CI smoke: a short window
# at a mostly-cached mix with SLOs generous enough for a noisy shared
# runner. The nightly job overrides them for a longer, stricter run.
#
# Environment knobs (all optional):
#   LOADGEN_DURATION     measurement window        (default 3s)
#   LOADGEN_CONCURRENCY  closed-loop workers       (default 8)
#   LOADGEN_RATE         open-loop req/s, 0=closed (default 0)
#   LOADGEN_MIX          class weights             (default cached=8,uncached=1,coalesced=1)
#   LOADGEN_TOPOS        topologies per spec       (default 2)
#   LOADGEN_SLO_P50      p50 latency gate          (default 1s)
#   LOADGEN_SLO_P99      p99 latency gate          (default 10s)
#   LOADGEN_SLO_ERRORS   error-rate gate           (default 0)
#   LOADGEN_OUT          copy the JSON report here (default: print to stdout only)
#
# Requires only the go toolchain. Run from the repository root
# (make loadgen-smoke).
set -eu

duration=${LOADGEN_DURATION:-3s}
concurrency=${LOADGEN_CONCURRENCY:-8}
rate=${LOADGEN_RATE:-0}
mix=${LOADGEN_MIX:-cached=8,uncached=1,coalesced=1}
topos=${LOADGEN_TOPOS:-2}
slo_p50=${LOADGEN_SLO_P50:-1s}
slo_p99=${LOADGEN_SLO_P99:-10s}
slo_errors=${LOADGEN_SLO_ERRORS:-0}

tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    status=$?
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "loadgen-slo: FAIL: $*" >&2
    [ -f "$tmp/serve.log" ] && tail -n 20 "$tmp/serve.log" | sed 's/^/loadgen-slo: server: /' >&2
    exit 1
}

echo "loadgen-slo: building binaries"
go build -o "$tmp/midas-serve" ./cmd/midas-serve
go build -o "$tmp/midas-loadgen" ./cmd/midas-loadgen

"$tmp/midas-serve" -addr 127.0.0.1:0 -log off > "$tmp/serve.log" 2>&1 &
serve_pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^midas-serve listening on http://##p' "$tmp/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || fail "server never printed its listen address"
echo "loadgen-slo: server at $addr"

echo "loadgen-slo: driving for $duration (mix $mix, p50<$slo_p50 p99<$slo_p99 errors<=$slo_errors)"
"$tmp/midas-loadgen" \
    -url "http://$addr" \
    -duration "$duration" -concurrency "$concurrency" -rate "$rate" \
    -mix "$mix" -topos "$topos" \
    -slo-p50 "$slo_p50" -slo-p99 "$slo_p99" -slo-error-rate "$slo_errors" \
    -out "$tmp/report.json" \
    || fail "SLO gate failed (report follows)$(cat "$tmp/report.json" 2>/dev/null || true)"

cat "$tmp/report.json"
if [ -n "${LOADGEN_OUT:-}" ]; then
    cp "$tmp/report.json" "$LOADGEN_OUT"
    echo "loadgen-slo: report written to $LOADGEN_OUT"
fi

kill -TERM "$serve_pid"
wait "$serve_pid" || fail "server exited non-zero on SIGTERM"
serve_pid=""
echo "loadgen-slo: PASS"
