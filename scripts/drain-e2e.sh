#!/bin/sh
# drain-e2e: disruption end-to-end for midas-serve's durability story.
#
# Phase 1 — SIGTERM drain under load: start midas-serve (one worker,
# so accepted jobs serialize and the drain window is observable) with a
# durable store, drive it with midas-loadgen, submit probe jobs plus
# trailing anchor jobs, then SIGTERM mid-load. /healthz must flip to
# 503 "draining", every accepted probe must drain to done with its
# result collectable over HTTP while the anchors keep the drain open,
# and the server must exit 0.
#
# Phase 2 — kill -9 and restart: fresh server + store dir, complete a
# set of survivor specs, save their bodies and ETags, then SIGKILL the
# server while loadgen is hammering it. Restart on the same store dir
# and require: the warm scan found the survivors; resubmitting each
# spec is a "store"-tier cache hit; the served body is byte-identical
# to the pre-kill one; no engine run happened (scenario_runs is empty);
# If-None-Match with the saved ETag returns a body-less 304; and the
# Prometheus exposition shows the store hits.
#
# Environment knobs:
#   DRAIN_E2E_FULL  non-empty = full scale (nightly); default is the
#                   short CI mode (make drain-e2e)
#   DRAIN_E2E_OUT   directory to copy reports/artifacts into (optional)
#
# Requires: curl. Run from the repository root.
set -eu

if [ -n "${DRAIN_E2E_FULL:-}" ]; then
    load_duration=15s probes=8 survivors=8 concurrency=8
else
    load_duration=4s probes=3 survivors=3 concurrency=4
fi

tmp=$(mktemp -d)
serve_pid=""
loadgen_pid=""
cleanup() {
    status=$?
    for pid in "$serve_pid" "$loadgen_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "drain-e2e: FAIL: $*" >&2
    [ -f "$tmp/serve.log" ] && tail -n 20 "$tmp/serve.log" | sed 's/^/drain-e2e: server: /' >&2
    exit 1
}

# json_field FILE KEY -> first string value of KEY.
json_field() {
    sed -n 's/^ *"'"$2"'": "\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# start_server LOG STORE_DIR [extra flags...] -> sets serve_pid, addr
start_server() {
    log=$1; sdir=$2; shift 2
    "$tmp/midas-serve" -addr 127.0.0.1:0 -store-dir "$sdir" -log off "$@" > "$log" 2>&1 &
    serve_pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's#^midas-serve listening on http://##p' "$log" | head -n 1)
        [ -n "$addr" ] && break
        kill -0 "$serve_pid" 2>/dev/null || fail "server exited during startup ($log)"
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$addr" ] || fail "server never printed its listen address"
}

# submit_spec SEED TOPOS OUT -> submits a fig12 spec, writes response
submit_spec() {
    printf '{"scenario": "fig12-spatial-reuse", "topologies": %d, "seed": %d}' "$2" "$1" \
        | curl -fsS -X POST --data-binary @- "http://$addr/v1/jobs" > "$3"
}

# wait_done JOB -> polls until done (fails on failed/cancelled/timeout)
wait_done() {
    jid=$1
    i=0
    while :; do
        curl -fsS "http://$addr/v1/jobs/$jid" > "$tmp/poll.json" || fail "poll $jid"
        state=$(json_field "$tmp/poll.json" state)
        [ "$state" = "done" ] && return 0
        case "$state" in failed|cancelled) fail "job $jid ended $state" ;; esac
        [ $i -lt 600 ] || fail "job $jid still $state after 60s"
        sleep 0.1
        i=$((i + 1))
    done
}

echo "drain-e2e: building binaries"
go build -o "$tmp/midas-serve" ./cmd/midas-serve
go build -o "$tmp/midas-loadgen" ./cmd/midas-loadgen

# ---------------------------------------------------------------------
echo "drain-e2e: phase 1: SIGTERM drain under load"
start_server "$tmp/serve.log" "$tmp/store-drain" -drain 60s -workers 1
echo "drain-e2e: server at $addr"

# Background load: uncached specs keep the pool busy through the drain
# window. No SLO gates — drain-window 503s are expected and the retry
# budget absorbs them; the report is informational.
"$tmp/midas-loadgen" -url "http://$addr" -duration "$load_duration" \
    -concurrency "$concurrency" -mix uncached=1 -topos 2 -seed 50000 \
    -retries 3 -out "$tmp/loadgen-drain.json" > /dev/null 2>&1 &
loadgen_pid=$!
sleep 1

# Probe jobs: accepted before the SIGTERM, so the drain guarantee
# covers them — every one must finish and stay collectable. The anchor
# jobs queue behind the probes on the single worker and keep the drain
# (and the listener) open while the probe results are collected; they
# are deliberately never polled.
n=0
probe_ids=""
while [ $n -lt "$probes" ]; do
    submit_spec $((7000 + n)) 256 "$tmp/probe$n.json" || fail "probe $n rejected"
    probe_ids="$probe_ids $(json_field "$tmp/probe$n.json" id)"
    n=$((n + 1))
done
n=0
while [ $n -lt "$probes" ]; do
    submit_spec $((8000 + n)) 256 "$tmp/anchor$n.json" || fail "anchor $n rejected"
    n=$((n + 1))
done
echo "drain-e2e: $probes probes accepted:$probe_ids (+$probes anchors)"

kill -TERM "$serve_pid"

# While draining: healthz must flip to 503 "draining". Poll, because
# the signal takes a moment to land; a connection failure means the
# drain finished before it was ever observable — also a failure.
i=0
while :; do
    code=$(curl -s -o "$tmp/health.json" -w '%{http_code}' "http://$addr/healthz" || true)
    if [ "$code" = "503" ] && grep -q '"draining"' "$tmp/health.json"; then
        break
    fi
    case "$code" in
    000) fail "server stopped before /healthz ever reported draining" ;;
    esac
    [ $i -lt 100 ] || fail "healthz still $code ($(cat "$tmp/health.json")) after SIGTERM, want 503 draining"
    i=$((i + 1))
done
echo "drain-e2e: healthz reports draining (503)"

# Every accepted probe must drain to done and serve its result while
# the anchors hold the listener open.
for jid in $probe_ids; do
    wait_done "$jid"
    curl -fsS "http://$addr/v1/jobs/$jid/result" > "$tmp/drained-$jid.json" \
        || fail "result of drained job $jid not collectable"
    grep -q '"results"' "$tmp/drained-$jid.json" || fail "drained result $jid is empty"
done
echo "drain-e2e: all $probes accepted probes drained and collectable"

wait "$serve_pid" || fail "server exited non-zero on SIGTERM"
serve_pid=""
grep -q "midas-serve stopped" "$tmp/serve.log" || fail "server did not report a clean stop"
wait "$loadgen_pid" || true
loadgen_pid=""

# ---------------------------------------------------------------------
echo "drain-e2e: phase 2: kill -9 under load, restart, serve from disk"
start_server "$tmp/serve2.log" "$tmp/store-crash" -drain 60s

# Complete the survivor specs and save their bodies + ETags: these are
# the results the crash must not lose.
n=0
while [ $n -lt "$survivors" ]; do
    submit_spec $((9000 + n)) 4 "$tmp/surv$n.json" || fail "survivor $n rejected"
    wait_done "$(json_field "$tmp/surv$n.json" id)"
    curl -fsS -D "$tmp/surv$n.hdr" "http://$addr/v1/jobs/$(json_field "$tmp/surv$n.json" id)/result" \
        > "$tmp/surv$n.body" || fail "survivor $n result fetch"
    n=$((n + 1))
done
echo "drain-e2e: $survivors survivor results completed and saved"

# Load up the server and SIGKILL it mid-flight — no drain, no Close.
"$tmp/midas-loadgen" -url "http://$addr" -duration "$load_duration" \
    -concurrency "$concurrency" -mix uncached=1 -topos 2 -seed 60000 \
    -retries 0 -out "$tmp/loadgen-crash.json" > /dev/null 2>&1 &
loadgen_pid=$!
sleep 1
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
wait "$loadgen_pid" || true
loadgen_pid=""
echo "drain-e2e: server killed with SIGKILL"

# Restart on the same store dir: the warm scan must find at least the
# survivor entries (the kill-window loadgen may have persisted more).
start_server "$tmp/serve3.log" "$tmp/store-crash" -drain 60s
warm=$(sed -n 's/^midas-serve store: \([0-9]*\) entries.*/\1/p' "$tmp/serve3.log" | head -n 1)
[ -n "$warm" ] || fail "restarted server printed no store warm line"
[ "$warm" -ge "$survivors" ] || fail "warm scan found $warm entries, want >= $survivors"
echo "drain-e2e: restarted at $addr with $warm entries warm"

# Every pre-kill result must be served from the disk tier, byte-
# identical, without an engine run.
n=0
while [ $n -lt "$survivors" ]; do
    submit_spec $((9000 + n)) 4 "$tmp/resub$n.json" || fail "resubmission $n rejected"
    grep -q '"cached": true' "$tmp/resub$n.json" \
        || fail "resubmission $n not cached: $(cat "$tmp/resub$n.json")"
    grep -q '"cache_tier": "store"' "$tmp/resub$n.json" \
        || fail "resubmission $n not from the store tier: $(cat "$tmp/resub$n.json")"
    curl -fsS "http://$addr/v1/jobs/$(json_field "$tmp/resub$n.json" id)/result" > "$tmp/resub$n.body" \
        || fail "restart result $n fetch"
    cmp -s "$tmp/surv$n.body" "$tmp/resub$n.body" \
        || fail "restart-served result $n is not byte-identical to the pre-kill body"

    # Conditional revalidation with the pre-kill ETag: body-less 304.
    etag=$(sed -n 's/^[Ee][Tt]ag: *//p' "$tmp/surv$n.hdr" | tr -d '\r' | head -n 1)
    [ -n "$etag" ] || fail "survivor $n response had no ETag"
    code=$(curl -s -o /dev/null -w '%{http_code} %{size_download}' \
        -H "If-None-Match: $etag" \
        "http://$addr/v1/jobs/$(json_field "$tmp/resub$n.json" id)/result")
    [ "$code" = "304 0" ] || fail "If-None-Match revalidation $n returned '$code', want '304 0'"
    n=$((n + 1))
done
echo "drain-e2e: all $survivors results byte-identical from disk, 304 on revalidation"

# Proof there was no engine re-run: this process has never run the
# engine, and the store hits are visible in both metric surfaces.
curl -fsS "http://$addr/v1/metrics.json" > "$tmp/metrics.json" || fail "metrics.json"
grep -q '"scenario_runs": {}' "$tmp/metrics.json" \
    || fail "restarted server ran the engine: $(grep -A3 scenario_runs "$tmp/metrics.json")"
curl -fsS "http://$addr/metrics" > "$tmp/metrics.prom" || fail "exposition fetch"
hits=$(sed -n 's/^midas_store_hits_total \([0-9][0-9]*\).*/\1/p' "$tmp/metrics.prom")
[ -n "$hits" ] && [ "$hits" -ge "$survivors" ] \
    || fail "midas_store_hits_total is '$hits', want >= $survivors"
echo "drain-e2e: zero engine runs after restart, $hits store hits"

kill -TERM "$serve_pid"
wait "$serve_pid" || fail "restarted server exited non-zero on SIGTERM"
serve_pid=""

if [ -n "${DRAIN_E2E_OUT:-}" ]; then
    mkdir -p "$DRAIN_E2E_OUT"
    cp "$tmp/loadgen-drain.json" "$tmp/loadgen-crash.json" "$tmp/metrics.json" "$tmp/metrics.prom" \
        "$DRAIN_E2E_OUT/" 2>/dev/null || true
    (cd "$tmp" && find store-crash -type f | sort) > "$DRAIN_E2E_OUT/store-state.txt"
    echo "drain-e2e: artifacts written to $DRAIN_E2E_OUT"
fi

echo "drain-e2e: PASS"
