#!/bin/sh
# serve-smoke: end-to-end check that midas-serve serves the same result
# for a spec as midas-sim computes for it directly.
#
# Starts midas-serve on an ephemeral port, submits a reduced-scale
# fig12 spec over HTTP, polls the job to completion, fetches the
# result, and diffs it against `midas-sim -spec` output for the same
# spec file. The two snapshots must match except for the meta "tool"
# name (midas-serve vs midas-sim), which is stripped before the diff.
# A second submission must be answered from the spec-hash cache with a
# byte-identical body, and the Prometheus exposition at /metrics must
# parse and show the cache hit plus the latency histograms. Finally
# the server is shut down with SIGTERM and must drain cleanly (exit 0).
#
# Requires: curl. Run from the repository root (make serve-smoke).
set -eu

tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    status=$?
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$tmp/serve.log" ] && sed 's/^/serve-smoke: server: /' "$tmp/serve.log" >&2
    exit 1
}

# The reduced-scale fig12 spec both paths run.
cat > "$tmp/spec.json" <<'EOF'
{
  "scenario": "fig12-spatial-reuse",
  "topologies": 4,
  "seed": 7
}
EOF

echo "serve-smoke: building binaries"
go build -o "$tmp/midas-serve" ./cmd/midas-serve
go build -o "$tmp/midas-sim" ./cmd/midas-sim

"$tmp/midas-serve" -addr 127.0.0.1:0 > "$tmp/serve.log" 2>&1 &
serve_pid=$!

# Discover the ephemeral address from the stable startup line.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^midas-serve listening on http://##p' "$tmp/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || fail "server never printed its listen address"
echo "serve-smoke: server at $addr"

curl -fsS "http://$addr/healthz" > /dev/null || fail "healthz"

# json_field FILE KEY -> first string value of KEY (our status payloads
# are flat and indented, so a line-based extraction is reliable and
# avoids a jq dependency).
json_field() {
    sed -n 's/^ *"'"$2"'": "\([^"]*\)".*/\1/p' "$1" | head -n 1
}

curl -fsS -X POST --data-binary @"$tmp/spec.json" "http://$addr/v1/jobs" > "$tmp/submit1.json" \
    || fail "job submission rejected"
job=$(json_field "$tmp/submit1.json" id)
[ -n "$job" ] || fail "no job id in $(cat "$tmp/submit1.json")"
echo "serve-smoke: submitted $job"

state=$(json_field "$tmp/submit1.json" state)
i=0
while [ "$state" != "done" ]; do
    case "$state" in failed|cancelled) fail "job $job ended $state" ;; esac
    [ $i -lt 600 ] || fail "job $job still $state after 60s"
    sleep 0.1
    i=$((i + 1))
    curl -fsS "http://$addr/v1/jobs/$job" > "$tmp/status.json" || fail "status poll"
    state=$(json_field "$tmp/status.json" state)
done
echo "serve-smoke: job $job done"

curl -fsS "http://$addr/v1/jobs/$job/result" > "$tmp/served.json" || fail "result fetch"

# The same spec through the CLI path.
"$tmp/midas-sim" -spec "$tmp/spec.json" -format json -out "$tmp/direct.json" \
    || fail "midas-sim -spec failed"

# The snapshots differ only in meta.tool; strip that one line and
# require everything else byte-identical.
grep -v '"tool":' "$tmp/served.json" > "$tmp/served.stripped"
grep -v '"tool":' "$tmp/direct.json" > "$tmp/direct.stripped"
diff -u "$tmp/direct.stripped" "$tmp/served.stripped" \
    || fail "HTTP-served result differs from midas-sim -spec output"
echo "serve-smoke: served result matches midas-sim -spec"

# Resubmitting the identical spec must be a cache hit with a
# byte-identical result body.
curl -fsS -X POST --data-binary @"$tmp/spec.json" "http://$addr/v1/jobs" > "$tmp/submit2.json" \
    || fail "resubmission rejected"
grep -q '"cached": true' "$tmp/submit2.json" || fail "resubmission was not served from the cache: $(cat "$tmp/submit2.json")"
job2=$(json_field "$tmp/submit2.json" id)
curl -fsS "http://$addr/v1/jobs/$job2/result" > "$tmp/served2.json" || fail "cached result fetch"
cmp -s "$tmp/served.json" "$tmp/served2.json" || fail "cached result is not byte-identical"
curl -fsS "http://$addr/v1/metrics.json" > "$tmp/metrics.json" || fail "metrics.json fetch"
grep -q '"cache_hits": 1' "$tmp/metrics.json" || fail "metrics.json does not show the cache hit: $(cat "$tmp/metrics.json")"
echo "serve-smoke: cache hit byte-identical"

# The Prometheus exposition: every line must be a comment or a
# `name{labels} value` sample (i.e. the format parses), and the session
# must be visible in it — the cache-hit counter incremented by the
# resubmission, and the queue-wait / run-duration histograms populated
# by the cold run.
curl -fsS "http://$addr/metrics" > "$tmp/metrics.prom" || fail "exposition fetch"
bad=$(grep -Ev '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*|# .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+([eE][-+][0-9]+)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [+-]Inf|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? NaN)$' "$tmp/metrics.prom" || true)
[ -z "$bad" ] || fail "exposition has unparseable lines: $bad"
grep -q '^midas_cache_hits_total 1$' "$tmp/metrics.prom" \
    || fail "exposition does not show the cache hit: $(grep cache_hits "$tmp/metrics.prom" || true)"
grep -q '^# TYPE midas_job_queue_wait_seconds histogram$' "$tmp/metrics.prom" || fail "queue-wait histogram missing"
grep -q '^midas_job_queue_wait_seconds_count 1$' "$tmp/metrics.prom" || fail "queue-wait histogram not populated"
grep -q '^# TYPE midas_job_run_seconds histogram$' "$tmp/metrics.prom" || fail "run-duration histogram missing"
grep -q '^midas_job_run_seconds_count{scenario="fig12-spatial-reuse"} 1$' "$tmp/metrics.prom" \
    || fail "run-duration histogram not populated"
echo "serve-smoke: exposition parses and shows the session"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "server exited non-zero on SIGTERM"
serve_pid=""
grep -q "midas-serve stopped" "$tmp/serve.log" || fail "server did not report a clean drain"
echo "serve-smoke: PASS"
