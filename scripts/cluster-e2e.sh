#!/bin/sh
# cluster-e2e: distributed-execution end-to-end for the coordinator /
# worker split (internal/dispatch).
#
# Phase 1 — fallback: a coordinator with no registered workers must run
# multi-shard jobs in-process (byte-identical to plain serving), with
# zero shards leased.
#
# Phase 2 — worker death mid-sweep: submit a swept+replicated spec to a
# coordinator with one worker, kill -9 that worker while it holds a
# shard lease, start a replacement, and require: the dead worker's
# shard is requeued after lease expiry (midas_shard_requeues_total
# {reason="expired"} >= 1), the job completes, accepted completions
# equal the spec's shard count exactly — the "zero duplicate engine-run
# side effects" guarantee — and the merged result is byte-identical to
# `midas-sim -spec` run single-process on the same spec (modulo the
# meta tool line, exactly like serve-smoke).
#
# Phase 3 — kill -9 the coordinator mid-sweep: boot a coordinator with
# a store (which turns on the dispatch journal under <store>/journal),
# submit a sweep, SIGKILL the whole server process once at least one
# shard result is durably published, and restart it over the same
# store dir. The restart must replay the journaled job
# (midas_jobs_resumed_total = 1), answer every already-published shard
# from the store without re-execution (post-restart accepted
# completions = shards - midas_shards_recovered_total), byte-match the
# single-process golden, and then serve a second sweep sharing a sweep
# point with the first via store hits. The journal must be empty after
# both jobs finish.
#
# Environment knobs:
#   CLUSTER_E2E_FULL  non-empty = full scale (nightly); default is the
#                     short CI mode (make cluster-e2e)
#   CLUSTER_E2E_OUT   directory to copy reports/artifacts into (optional)
#
# Requires: curl. Run from the repository root.
set -eu

# Shard wall time is ~0.3ms per topology at parallelism 1; the victim
# worker runs parallelism 1 so its shard comfortably outlives the
# moment we observe its lease and kill it. The lease TTL must exceed a
# shard's wall time (at any worker's parallelism), or healthy workers'
# completions would arrive after their own leases expired.
if [ -n "${CLUSTER_E2E_FULL:-}" ]; then
    topos=16384 sweep='[70001, 70002, 70003]' sweep3='[80001, 80002, 80003]' reps=2 shards=6 lease_ttl=20s
else
    topos=6144 sweep='[70001, 70002]' sweep3='[80001, 80002]' reps=2 shards=4 lease_ttl=6s
fi

tmp=$(mktemp -d)
serve_pid=""
worker_a_pid=""
worker_b_pid=""
cleanup() {
    status=$?
    for pid in "$serve_pid" "$worker_a_pid" "$worker_b_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-e2e: FAIL: $*" >&2
    for log in serve.log serve-journal.log serve-restart.log \
        worker-a.log worker-b.log worker-c.log worker-d.log; do
        [ -f "$tmp/$log" ] && tail -n 15 "$tmp/$log" | sed "s/^/cluster-e2e: $log: /" >&2
    done
    exit 1
}

# json_field FILE KEY -> first string value of KEY.
json_field() {
    sed -n 's/^ *"'"$2"'": "\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# prom_value SERIES -> value of one exposition sample from the last
# /metrics scrape in $tmp/metrics.prom ("" if the series is absent).
prom_value() {
    awk -v series="$1" '$1 == series { print $2; exit }' "$tmp/metrics.prom"
}

scrape() {
    curl -fsS "http://$addr/metrics" > "$tmp/metrics.prom" || fail "metrics scrape"
}

# submit FILE OUT -> POST a spec file, record the response.
submit() {
    curl -fsS -X POST --data-binary @"$1" "http://$addr/v1/jobs" > "$2" \
        || fail "submission of $1 rejected"
}

# discover LOG PID -> parse the serve/dispatch discovery lines from a
# freshly started midas-serve, setting addr and dispatch_addr.
discover() {
    addr=""
    dispatch_addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's#^midas-serve listening on http://##p' "$1" | head -n 1)
        dispatch_addr=$(sed -n 's#^midas-serve dispatch listening on http://##p' "$1" | head -n 1)
        [ -n "$addr" ] && [ -n "$dispatch_addr" ] && return 0
        kill -0 "$2" 2>/dev/null || fail "server exited during startup ($1)"
        sleep 0.1
        i=$((i + 1))
    done
    fail "server never printed its listen addresses ($1)"
}

# wait_done JOB TIMEOUT_TICKS -> poll a job to done (0.1s ticks).
wait_done() {
    jid=$1
    i=0
    while :; do
        curl -fsS "http://$addr/v1/jobs/$jid" > "$tmp/poll.json" || fail "poll $jid"
        state=$(json_field "$tmp/poll.json" state)
        [ "$state" = "done" ] && return 0
        case "$state" in failed|cancelled) fail "job $jid ended $state: $(cat "$tmp/poll.json")" ;; esac
        [ $i -lt "$2" ] || fail "job $jid still $state after $2 ticks"
        sleep 0.1
        i=$((i + 1))
    done
}

echo "cluster-e2e: building binaries"
go build -o "$tmp/midas-serve" ./cmd/midas-serve
go build -o "$tmp/midas-worker" ./cmd/midas-worker
go build -o "$tmp/midas-sim" ./cmd/midas-sim

# The swept + replicated spec the cluster executes: $shards shards.
cat > "$tmp/spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 70000,
  "replicates": $reps,
  "sweep": {"seed": $sweep}
}
EOF
# A small sibling for the fallback phase (distinct seed: distinct hash).
cat > "$tmp/fallback-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": 8,
  "seed": 71000,
  "replicates": 2,
  "sweep": {"seed": [71001, 71002]}
}
EOF

"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -lease-ttl "$lease_ttl" -log off > "$tmp/serve.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve.log" "$serve_pid"
echo "cluster-e2e: coordinator at $addr (dispatch $dispatch_addr)"

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 1: no workers -> in-process fallback"
submit "$tmp/fallback-spec.json" "$tmp/fb-submit.json"
wait_done "$(json_field "$tmp/fb-submit.json" id)" 600
scrape
leased=$(prom_value 'midas_shards_leased_total')
[ "${leased:-0}" = "0" ] || fail "fallback run leased $leased shards, want 0"
curl -fsS "http://$addr/v1/jobs/$(json_field "$tmp/fb-submit.json" id)/result" > "$tmp/fb-served.json" \
    || fail "fallback result fetch"
"$tmp/midas-sim" -spec "$tmp/fallback-spec.json" -format json -out "$tmp/fb-direct.json" \
    || fail "midas-sim on the fallback spec"
grep -v '"tool":' "$tmp/fb-served.json" > "$tmp/fb-served.stripped"
grep -v '"tool":' "$tmp/fb-direct.json" > "$tmp/fb-direct.stripped"
diff -u "$tmp/fb-direct.stripped" "$tmp/fb-served.stripped" > /dev/null \
    || fail "fallback result differs from midas-sim"
echo "cluster-e2e: fallback served byte-identical with zero leases"

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 2: kill -9 a worker mid-sweep"

# The single-process golden the distributed run must byte-match.
"$tmp/midas-sim" -spec "$tmp/spec.json" -format json -out "$tmp/golden.json" \
    || fail "midas-sim golden run"

# Worker A: the victim. Parallelism 1 and one shard per poll, so it is
# mid-shard for seconds at a time.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id victim \
    -parallelism 1 -max-batch 1 -poll 50ms > "$tmp/worker-a.log" 2>&1 &
worker_a_pid=$!

# The coordinator must see the worker before the job is submitted, or
# the job falls back in-process and nothing is distributed.
i=0
while :; do
    scrape
    live=$(prom_value 'midas_workers_live')
    [ "${live:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "worker never registered (midas_workers_live=$live)"
    sleep 0.1
    i=$((i + 1))
done
echo "cluster-e2e: victim worker registered"

submit "$tmp/spec.json" "$tmp/submit.json"
job=$(json_field "$tmp/submit.json" id)
echo "cluster-e2e: submitted $job ($shards shards)"

# Kill the victim the moment it holds a lease — mid-shard, given the
# shard's multi-second wall time against this tight poll.
i=0
while :; do
    scrape
    leased=$(prom_value 'midas_shards_leased_total')
    [ -n "$leased" ] && [ "$leased" != "0" ] && break
    [ $i -lt 400 ] || fail "victim never leased a shard"
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$worker_a_pid"
wait "$worker_a_pid" 2>/dev/null || true
worker_a_pid=""
echo "cluster-e2e: victim killed with SIGKILL holding a lease"

# The replacement fleet finishes the sweep — including the dead
# worker's shard once its lease expires.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id survivor \
    -poll 50ms > "$tmp/worker-b.log" 2>&1 &
worker_b_pid=$!

wait_done "$job" 1800
echo "cluster-e2e: job $job done on the surviving worker"

scrape
requeued=$(prom_value 'midas_shard_requeues_total{reason="expired"}')
accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
[ -n "$requeued" ] && [ "$requeued" -ge 1 ] 2>/dev/null \
    || fail "no expired-lease requeue recorded (got '$requeued')"
[ "$accepted" = "$shards" ] \
    || fail "accepted completions = '$accepted', want exactly $shards (duplicate or lost engine-run side effects)"
echo "cluster-e2e: $requeued shard(s) requeued, accepted completions = $accepted = shard count"

# The distributed, crash-interrupted result must byte-match the
# single-process golden (modulo the meta tool line).
curl -fsS "http://$addr/v1/jobs/$job/result" > "$tmp/served.json" || fail "result fetch"
grep -v '"tool":' "$tmp/served.json" > "$tmp/served.stripped"
grep -v '"tool":' "$tmp/golden.json" > "$tmp/golden.stripped"
diff -u "$tmp/golden.stripped" "$tmp/served.stripped" \
    || fail "distributed result differs from the single-process golden"
echo "cluster-e2e: merged result byte-identical to single-process run"

# Orderly teardown: worker first, then the coordinator; both clean.
kill -TERM "$worker_b_pid"
wait "$worker_b_pid" || fail "surviving worker exited non-zero on SIGTERM"
worker_b_pid=""
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "coordinator exited non-zero on SIGTERM"
serve_pid=""

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 3: kill -9 the coordinator mid-sweep, resume from journal"

store_dir="$tmp/store"
cat > "$tmp/journal-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 80000,
  "replicates": $reps,
  "sweep": {"seed": $sweep3}
}
EOF
# A second sweep sharing the seed-80002 point with journal-spec: its
# $reps shared shards must come from the store, not from execution.
cat > "$tmp/overlap-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 80000,
  "replicates": $reps,
  "sweep": {"seed": [80002, 80009]}
}
EOF
"$tmp/midas-sim" -spec "$tmp/journal-spec.json" -format json -out "$tmp/journal-golden.json" \
    || fail "midas-sim golden for the journal spec"

"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$store_dir" -lease-ttl "$lease_ttl" -log off > "$tmp/serve-journal.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve-journal.log" "$serve_pid"
echo "cluster-e2e: journaling coordinator at $addr (dispatch $dispatch_addr)"

# The victim worker pattern again — parallelism 1, one shard per poll —
# so the coordinator dies while most of the sweep is unfinished.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id victim2 \
    -parallelism 1 -max-batch 1 -poll 50ms > "$tmp/worker-c.log" 2>&1 &
worker_a_pid=$!
i=0
while :; do
    scrape
    live=$(prom_value 'midas_workers_live')
    [ "${live:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "victim2 never registered (midas_workers_live=$live)"
    sleep 0.1
    i=$((i + 1))
done

submit "$tmp/journal-spec.json" "$tmp/journal-submit.json"
echo "cluster-e2e: submitted $(json_field "$tmp/journal-submit.json" id) ($shards shards, journaled)"

# Kill -9 the whole server process the moment at least one shard result
# is durably published (accepted completions publish to the store
# before the completion response).
i=0
while :; do
    scrape
    pre_accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
    [ -n "$pre_accepted" ] && [ "$pre_accepted" -ge 1 ] 2>/dev/null && break
    [ $i -lt 1200 ] || fail "no shard completed before the coordinator kill"
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$serve_pid" "$worker_a_pid"
wait "$serve_pid" 2>/dev/null || true
wait "$worker_a_pid" 2>/dev/null || true
serve_pid="" worker_a_pid=""
find "$store_dir/journal" -name '*.json' 2>/dev/null | sort > "$tmp/journal-precrash.txt"
[ -s "$tmp/journal-precrash.txt" ] || fail "no journal entry survived the coordinator kill"
echo "cluster-e2e: coordinator killed with SIGKILL after $pre_accepted accepted shard(s)"

# Restart over the same store dir: the journal must replay the job.
"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$store_dir" -lease-ttl "$lease_ttl" -log off > "$tmp/serve-restart.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve-restart.log" "$serve_pid"
recovered_jobs=$(sed -n 's/^midas-serve journal: \([0-9]*\) interrupted job(s) recovered from.*/\1/p' "$tmp/serve-restart.log" | head -n 1)
[ "$recovered_jobs" = "1" ] || fail "restart recovered '$recovered_jobs' journaled job(s), want 1"

i=0
while :; do
    scrape
    resumed=$(prom_value 'midas_jobs_resumed_total')
    [ "${resumed:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "journaled job never re-dispatched (midas_jobs_resumed_total=$resumed)"
    sleep 0.1
    i=$((i + 1))
done
recovered=$(prom_value 'midas_shards_recovered_total')
[ -n "$recovered" ] && [ "$recovered" -ge "$pre_accepted" ] 2>/dev/null \
    || fail "recovered '$recovered' shard(s) from the store, want >= $pre_accepted"
echo "cluster-e2e: restart resumed the job, $recovered shard(s) answered from the store"

# Resubmitting the same spec coalesces onto the resumed in-flight job —
# which is how the script gets a pollable job id in the new process.
submit "$tmp/journal-spec.json" "$tmp/journal-resubmit.json"
job3=$(json_field "$tmp/journal-resubmit.json" id)

# A fresh worker supplies only the missing shards.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id survivor2 \
    -poll 50ms > "$tmp/worker-d.log" 2>&1 &
worker_b_pid=$!
wait_done "$job3" 1800

scrape
accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
[ "$accepted" = "$((shards - recovered))" ] \
    || fail "post-restart accepted completions = '$accepted', want $((shards - recovered)) (journaled-complete shards were re-executed)"
echo "cluster-e2e: zero re-execution: $accepted executed + $recovered recovered = $shards shards"

curl -fsS "http://$addr/v1/jobs/$job3/result" > "$tmp/journal-served.json" || fail "resumed result fetch"
grep -v '"tool":' "$tmp/journal-served.json" > "$tmp/journal-served.stripped"
grep -v '"tool":' "$tmp/journal-golden.json" > "$tmp/journal-golden.stripped"
diff -u "$tmp/journal-golden.stripped" "$tmp/journal-served.stripped" \
    || fail "resumed result differs from the single-process golden"
echo "cluster-e2e: resumed result byte-identical to single-process run"

# Sweep-point reuse across jobs: the overlap sweep's shared shards are
# store hits, only its new point executes.
"$tmp/midas-sim" -spec "$tmp/overlap-spec.json" -format json -out "$tmp/overlap-golden.json" \
    || fail "midas-sim golden for the overlap spec"
submit "$tmp/overlap-spec.json" "$tmp/overlap-submit.json"
job4=$(json_field "$tmp/overlap-submit.json" id)
wait_done "$job4" 1800
scrape
recovered2=$(prom_value 'midas_shards_recovered_total')
[ "$recovered2" = "$((recovered + reps))" ] \
    || fail "overlap sweep brought recovered to '$recovered2', want $((recovered + reps)) (store hits for the shared point)"
curl -fsS "http://$addr/v1/jobs/$job4/result" > "$tmp/overlap-served.json" || fail "overlap result fetch"
grep -v '"tool":' "$tmp/overlap-served.json" > "$tmp/overlap-served.stripped"
grep -v '"tool":' "$tmp/overlap-golden.json" > "$tmp/overlap-golden.stripped"
diff -u "$tmp/overlap-golden.stripped" "$tmp/overlap-served.stripped" \
    || fail "overlap result differs from the single-process golden"
echo "cluster-e2e: shared sweep point served from the store ($reps shard(s) skipped)"

# Orderly teardown; with every job terminal the journal must be empty.
kill -TERM "$worker_b_pid"
wait "$worker_b_pid" || fail "survivor2 exited non-zero on SIGTERM"
worker_b_pid=""
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "journaling coordinator exited non-zero on SIGTERM"
serve_pid=""
leftover=$(find "$store_dir/journal" -name '*.json' 2>/dev/null | wc -l | tr -d ' ')
[ "$leftover" = "0" ] || fail "journal still holds $leftover entrie(s) after all jobs finished"
find "$store_dir" -type f | sort > "$tmp/store-listing.txt"
echo "cluster-e2e: journal empty after completion; store holds $(wc -l < "$tmp/store-listing.txt" | tr -d ' ') file(s)"

if [ -n "${CLUSTER_E2E_OUT:-}" ]; then
    mkdir -p "$CLUSTER_E2E_OUT"
    cp "$tmp/metrics.prom" "$tmp/served.json" "$tmp/golden.json" \
        "$tmp/journal-served.json" "$tmp/journal-golden.json" \
        "$tmp/journal-precrash.txt" "$tmp/store-listing.txt" \
        "$tmp/serve.log" "$tmp/serve-journal.log" "$tmp/serve-restart.log" \
        "$tmp/worker-a.log" "$tmp/worker-b.log" "$tmp/worker-c.log" "$tmp/worker-d.log" \
        "$CLUSTER_E2E_OUT/" 2>/dev/null || true
    echo "cluster-e2e: artifacts written to $CLUSTER_E2E_OUT"
fi

echo "cluster-e2e: PASS"
