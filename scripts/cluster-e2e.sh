#!/bin/sh
# cluster-e2e: distributed-execution end-to-end for the coordinator /
# worker split (internal/dispatch).
#
# Phase 1 — fallback: a coordinator with no registered workers must run
# multi-shard jobs in-process (byte-identical to plain serving), with
# zero shards leased.
#
# Phase 2 — worker death mid-sweep: submit a swept+replicated spec to a
# coordinator with one worker, kill -9 that worker while it holds a
# shard lease, start a replacement, and require: the dead worker's
# shard is requeued after lease expiry (midas_shard_requeues_total
# {reason="expired"} >= 1), the job completes, accepted completions
# equal the spec's shard count exactly — the "zero duplicate engine-run
# side effects" guarantee — and the merged result is byte-identical to
# `midas-sim -spec` run single-process on the same spec (modulo the
# meta tool line, exactly like serve-smoke).
#
# Phase 3 — kill -9 the coordinator mid-sweep: boot a coordinator with
# a store (which turns on the dispatch journal under <store>/journal),
# submit a sweep, SIGKILL the whole server process once at least one
# shard result is durably published, and restart it over the same
# store dir. The restart must replay the journaled job
# (midas_jobs_resumed_total = 1), answer every already-published shard
# from the store without re-execution (post-restart accepted
# completions = shards - midas_shards_recovered_total), byte-match the
# single-process golden, and then serve a second sweep sharing a sweep
# point with the first via store hits. The journal must be empty after
# both jobs finish.
#
# Phase 4 — shared store, sibling coordinators, worker direct publish:
# coordinator A and a worker share one -store-shared directory; the
# worker publishes each shard result directly into the store and
# acknowledges by hash+digest (the payload never transits the dispatch
# HTTP body). The worker is killed -9 inside the acknowledgement window
# (MIDAS_WORKER_HOLD_AFTER_PUBLISH) — after its store write, before its
# completion POST — and the coordinator must recover that shard from
# the store at lease expiry with zero re-execution. Then coordinator B
# boots over the same directory and must serve the same spec as a store
# hit (cached=true, cache_tier=store, zero engine runs), byte-identical
# to A's body, including via GET /v1/results/{hash}.
#
# Environment knobs:
#   CLUSTER_E2E_FULL  non-empty = full scale (nightly); default is the
#                     short CI mode (make cluster-e2e)
#   CLUSTER_E2E_OUT   directory to copy reports/artifacts into (optional)
#
# Requires: curl. Run from the repository root.
set -eu

# Shard wall time is ~0.3ms per topology at parallelism 1; the victim
# worker runs parallelism 1 so its shard comfortably outlives the
# moment we observe its lease and kill it. The lease TTL must exceed a
# shard's wall time (at any worker's parallelism), or healthy workers'
# completions would arrive after their own leases expired.
if [ -n "${CLUSTER_E2E_FULL:-}" ]; then
    topos=16384 sweep='[70001, 70002, 70003]' sweep3='[80001, 80002, 80003]' sweep4='[90001, 90002, 90003]' reps=2 shards=6 lease_ttl=20s
else
    topos=6144 sweep='[70001, 70002]' sweep3='[80001, 80002]' sweep4='[90001, 90002]' reps=2 shards=4 lease_ttl=6s
fi

tmp=$(mktemp -d)
serve_pid=""
serve_b_pid=""
worker_a_pid=""
worker_b_pid=""
cleanup() {
    status=$?
    for pid in "$serve_pid" "$serve_b_pid" "$worker_a_pid" "$worker_b_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-e2e: FAIL: $*" >&2
    for log in serve.log serve-journal.log serve-restart.log \
        serve-a4.log serve-b4.log \
        worker-a.log worker-b.log worker-c.log worker-d.log \
        worker-e.log worker-f.log; do
        [ -f "$tmp/$log" ] && tail -n 15 "$tmp/$log" | sed "s/^/cluster-e2e: $log: /" >&2
    done
    exit 1
}

# json_field FILE KEY -> first string value of KEY.
json_field() {
    sed -n 's/^ *"'"$2"'": "\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# prom_value SERIES -> value of one exposition sample from the last
# /metrics scrape in $tmp/metrics.prom ("" if the series is absent).
prom_value() {
    awk -v series="$1" '$1 == series { print $2; exit }' "$tmp/metrics.prom"
}

scrape() {
    curl -fsS "http://$addr/metrics" > "$tmp/metrics.prom" || fail "metrics scrape"
}

# submit FILE OUT -> POST a spec file, record the response.
submit() {
    curl -fsS -X POST --data-binary @"$1" "http://$addr/v1/jobs" > "$2" \
        || fail "submission of $1 rejected"
}

# discover LOG PID -> parse the serve/dispatch discovery lines from a
# freshly started midas-serve, setting addr and dispatch_addr.
discover() {
    addr=""
    dispatch_addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's#^midas-serve listening on http://##p' "$1" | head -n 1)
        dispatch_addr=$(sed -n 's#^midas-serve dispatch listening on http://##p' "$1" | head -n 1)
        [ -n "$addr" ] && [ -n "$dispatch_addr" ] && return 0
        kill -0 "$2" 2>/dev/null || fail "server exited during startup ($1)"
        sleep 0.1
        i=$((i + 1))
    done
    fail "server never printed its listen addresses ($1)"
}

# wait_done JOB TIMEOUT_TICKS -> poll a job to done (0.1s ticks).
wait_done() {
    jid=$1
    i=0
    while :; do
        curl -fsS "http://$addr/v1/jobs/$jid" > "$tmp/poll.json" || fail "poll $jid"
        state=$(json_field "$tmp/poll.json" state)
        [ "$state" = "done" ] && return 0
        case "$state" in failed|cancelled) fail "job $jid ended $state: $(cat "$tmp/poll.json")" ;; esac
        [ $i -lt "$2" ] || fail "job $jid still $state after $2 ticks"
        sleep 0.1
        i=$((i + 1))
    done
}

echo "cluster-e2e: building binaries"
go build -o "$tmp/midas-serve" ./cmd/midas-serve
go build -o "$tmp/midas-worker" ./cmd/midas-worker
go build -o "$tmp/midas-sim" ./cmd/midas-sim

# The swept + replicated spec the cluster executes: $shards shards.
cat > "$tmp/spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 70000,
  "replicates": $reps,
  "sweep": {"seed": $sweep}
}
EOF
# A small sibling for the fallback phase (distinct seed: distinct hash).
cat > "$tmp/fallback-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": 8,
  "seed": 71000,
  "replicates": 2,
  "sweep": {"seed": [71001, 71002]}
}
EOF

"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -lease-ttl "$lease_ttl" -log off > "$tmp/serve.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve.log" "$serve_pid"
echo "cluster-e2e: coordinator at $addr (dispatch $dispatch_addr)"

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 1: no workers -> in-process fallback"
submit "$tmp/fallback-spec.json" "$tmp/fb-submit.json"
wait_done "$(json_field "$tmp/fb-submit.json" id)" 600
scrape
leased=$(prom_value 'midas_shards_leased_total')
[ "${leased:-0}" = "0" ] || fail "fallback run leased $leased shards, want 0"
curl -fsS "http://$addr/v1/jobs/$(json_field "$tmp/fb-submit.json" id)/result" > "$tmp/fb-served.json" \
    || fail "fallback result fetch"
"$tmp/midas-sim" -spec "$tmp/fallback-spec.json" -format json -out "$tmp/fb-direct.json" \
    || fail "midas-sim on the fallback spec"
grep -v '"tool":' "$tmp/fb-served.json" > "$tmp/fb-served.stripped"
grep -v '"tool":' "$tmp/fb-direct.json" > "$tmp/fb-direct.stripped"
diff -u "$tmp/fb-direct.stripped" "$tmp/fb-served.stripped" > /dev/null \
    || fail "fallback result differs from midas-sim"
echo "cluster-e2e: fallback served byte-identical with zero leases"

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 2: kill -9 a worker mid-sweep"

# The single-process golden the distributed run must byte-match.
"$tmp/midas-sim" -spec "$tmp/spec.json" -format json -out "$tmp/golden.json" \
    || fail "midas-sim golden run"

# Worker A: the victim. Parallelism 1 and one shard per poll, so it is
# mid-shard for seconds at a time.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id victim \
    -parallelism 1 -max-batch 1 -poll 50ms > "$tmp/worker-a.log" 2>&1 &
worker_a_pid=$!

# The coordinator must see the worker before the job is submitted, or
# the job falls back in-process and nothing is distributed.
i=0
while :; do
    scrape
    live=$(prom_value 'midas_workers_live')
    [ "${live:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "worker never registered (midas_workers_live=$live)"
    sleep 0.1
    i=$((i + 1))
done
echo "cluster-e2e: victim worker registered"

submit "$tmp/spec.json" "$tmp/submit.json"
job=$(json_field "$tmp/submit.json" id)
echo "cluster-e2e: submitted $job ($shards shards)"

# Kill the victim the moment it holds a lease — mid-shard, given the
# shard's multi-second wall time against this tight poll.
i=0
while :; do
    scrape
    leased=$(prom_value 'midas_shards_leased_total')
    [ -n "$leased" ] && [ "$leased" != "0" ] && break
    [ $i -lt 400 ] || fail "victim never leased a shard"
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$worker_a_pid"
wait "$worker_a_pid" 2>/dev/null || true
worker_a_pid=""
echo "cluster-e2e: victim killed with SIGKILL holding a lease"

# The replacement fleet finishes the sweep — including the dead
# worker's shard once its lease expires.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id survivor \
    -poll 50ms > "$tmp/worker-b.log" 2>&1 &
worker_b_pid=$!

wait_done "$job" 1800
echo "cluster-e2e: job $job done on the surviving worker"

scrape
requeued=$(prom_value 'midas_shard_requeues_total{reason="expired"}')
accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
[ -n "$requeued" ] && [ "$requeued" -ge 1 ] 2>/dev/null \
    || fail "no expired-lease requeue recorded (got '$requeued')"
[ "$accepted" = "$shards" ] \
    || fail "accepted completions = '$accepted', want exactly $shards (duplicate or lost engine-run side effects)"
echo "cluster-e2e: $requeued shard(s) requeued, accepted completions = $accepted = shard count"

# The distributed, crash-interrupted result must byte-match the
# single-process golden (modulo the meta tool line).
curl -fsS "http://$addr/v1/jobs/$job/result" > "$tmp/served.json" || fail "result fetch"
grep -v '"tool":' "$tmp/served.json" > "$tmp/served.stripped"
grep -v '"tool":' "$tmp/golden.json" > "$tmp/golden.stripped"
diff -u "$tmp/golden.stripped" "$tmp/served.stripped" \
    || fail "distributed result differs from the single-process golden"
echo "cluster-e2e: merged result byte-identical to single-process run"

# Orderly teardown: worker first, then the coordinator; both clean.
kill -TERM "$worker_b_pid"
wait "$worker_b_pid" || fail "surviving worker exited non-zero on SIGTERM"
worker_b_pid=""
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "coordinator exited non-zero on SIGTERM"
serve_pid=""

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 3: kill -9 the coordinator mid-sweep, resume from journal"

store_dir="$tmp/store"
cat > "$tmp/journal-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 80000,
  "replicates": $reps,
  "sweep": {"seed": $sweep3}
}
EOF
# A second sweep sharing the seed-80002 point with journal-spec: its
# $reps shared shards must come from the store, not from execution.
cat > "$tmp/overlap-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 80000,
  "replicates": $reps,
  "sweep": {"seed": [80002, 80009]}
}
EOF
"$tmp/midas-sim" -spec "$tmp/journal-spec.json" -format json -out "$tmp/journal-golden.json" \
    || fail "midas-sim golden for the journal spec"

"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$store_dir" -lease-ttl "$lease_ttl" -log off > "$tmp/serve-journal.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve-journal.log" "$serve_pid"
echo "cluster-e2e: journaling coordinator at $addr (dispatch $dispatch_addr)"

# The victim worker pattern again — parallelism 1, one shard per poll —
# so the coordinator dies while most of the sweep is unfinished.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id victim2 \
    -parallelism 1 -max-batch 1 -poll 50ms > "$tmp/worker-c.log" 2>&1 &
worker_a_pid=$!
i=0
while :; do
    scrape
    live=$(prom_value 'midas_workers_live')
    [ "${live:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "victim2 never registered (midas_workers_live=$live)"
    sleep 0.1
    i=$((i + 1))
done

submit "$tmp/journal-spec.json" "$tmp/journal-submit.json"
echo "cluster-e2e: submitted $(json_field "$tmp/journal-submit.json" id) ($shards shards, journaled)"

# Kill -9 the whole server process the moment at least one shard result
# is durably published (accepted completions publish to the store
# before the completion response).
i=0
while :; do
    scrape
    pre_accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
    [ -n "$pre_accepted" ] && [ "$pre_accepted" -ge 1 ] 2>/dev/null && break
    [ $i -lt 1200 ] || fail "no shard completed before the coordinator kill"
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$serve_pid" "$worker_a_pid"
wait "$serve_pid" 2>/dev/null || true
wait "$worker_a_pid" 2>/dev/null || true
serve_pid="" worker_a_pid=""
find "$store_dir/journal" -name '*.json' 2>/dev/null | sort > "$tmp/journal-precrash.txt"
[ -s "$tmp/journal-precrash.txt" ] || fail "no journal entry survived the coordinator kill"
echo "cluster-e2e: coordinator killed with SIGKILL after $pre_accepted accepted shard(s)"

# Restart over the same store dir: the journal must replay the job.
"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$store_dir" -lease-ttl "$lease_ttl" -log off > "$tmp/serve-restart.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve-restart.log" "$serve_pid"
recovered_jobs=$(sed -n 's/^midas-serve journal: \([0-9]*\) interrupted job(s) recovered from.*/\1/p' "$tmp/serve-restart.log" | head -n 1)
[ "$recovered_jobs" = "1" ] || fail "restart recovered '$recovered_jobs' journaled job(s), want 1"

i=0
while :; do
    scrape
    resumed=$(prom_value 'midas_jobs_resumed_total')
    [ "${resumed:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "journaled job never re-dispatched (midas_jobs_resumed_total=$resumed)"
    sleep 0.1
    i=$((i + 1))
done
recovered=$(prom_value 'midas_shards_recovered_total')
[ -n "$recovered" ] && [ "$recovered" -ge "$pre_accepted" ] 2>/dev/null \
    || fail "recovered '$recovered' shard(s) from the store, want >= $pre_accepted"
echo "cluster-e2e: restart resumed the job, $recovered shard(s) answered from the store"

# Resubmitting the same spec coalesces onto the resumed in-flight job —
# which is how the script gets a pollable job id in the new process.
submit "$tmp/journal-spec.json" "$tmp/journal-resubmit.json"
job3=$(json_field "$tmp/journal-resubmit.json" id)

# A fresh worker supplies only the missing shards.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id survivor2 \
    -poll 50ms > "$tmp/worker-d.log" 2>&1 &
worker_b_pid=$!
wait_done "$job3" 1800

scrape
accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
[ "$accepted" = "$((shards - recovered))" ] \
    || fail "post-restart accepted completions = '$accepted', want $((shards - recovered)) (journaled-complete shards were re-executed)"
echo "cluster-e2e: zero re-execution: $accepted executed + $recovered recovered = $shards shards"

curl -fsS "http://$addr/v1/jobs/$job3/result" > "$tmp/journal-served.json" || fail "resumed result fetch"
grep -v '"tool":' "$tmp/journal-served.json" > "$tmp/journal-served.stripped"
grep -v '"tool":' "$tmp/journal-golden.json" > "$tmp/journal-golden.stripped"
diff -u "$tmp/journal-golden.stripped" "$tmp/journal-served.stripped" \
    || fail "resumed result differs from the single-process golden"
echo "cluster-e2e: resumed result byte-identical to single-process run"

# Sweep-point reuse across jobs: the overlap sweep's shared shards are
# store hits, only its new point executes.
"$tmp/midas-sim" -spec "$tmp/overlap-spec.json" -format json -out "$tmp/overlap-golden.json" \
    || fail "midas-sim golden for the overlap spec"
submit "$tmp/overlap-spec.json" "$tmp/overlap-submit.json"
job4=$(json_field "$tmp/overlap-submit.json" id)
wait_done "$job4" 1800
scrape
recovered2=$(prom_value 'midas_shards_recovered_total')
[ "$recovered2" = "$((recovered + reps))" ] \
    || fail "overlap sweep brought recovered to '$recovered2', want $((recovered + reps)) (store hits for the shared point)"
curl -fsS "http://$addr/v1/jobs/$job4/result" > "$tmp/overlap-served.json" || fail "overlap result fetch"
grep -v '"tool":' "$tmp/overlap-served.json" > "$tmp/overlap-served.stripped"
grep -v '"tool":' "$tmp/overlap-golden.json" > "$tmp/overlap-golden.stripped"
diff -u "$tmp/overlap-golden.stripped" "$tmp/overlap-served.stripped" \
    || fail "overlap result differs from the single-process golden"
echo "cluster-e2e: shared sweep point served from the store ($reps shard(s) skipped)"

# Orderly teardown; with every job terminal the journal must be empty.
kill -TERM "$worker_b_pid"
wait "$worker_b_pid" || fail "survivor2 exited non-zero on SIGTERM"
worker_b_pid=""
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "journaling coordinator exited non-zero on SIGTERM"
serve_pid=""
leftover=$(find "$store_dir/journal" -name '*.json' 2>/dev/null | wc -l | tr -d ' ')
[ "$leftover" = "0" ] || fail "journal still holds $leftover entrie(s) after all jobs finished"
find "$store_dir" -type f | sort > "$tmp/store-listing.txt"
echo "cluster-e2e: journal empty after completion; store holds $(wc -l < "$tmp/store-listing.txt" | tr -d ' ') file(s)"

# ---------------------------------------------------------------------
echo "cluster-e2e: phase 4: shared store, worker direct publish, sibling coordinator"

shared_dir="$tmp/shared-store"
cat > "$tmp/shared-spec.json" <<EOF
{
  "scenario": "fig12-spatial-reuse",
  "topologies": $topos,
  "seed": 90000,
  "replicates": $reps,
  "sweep": {"seed": $sweep4}
}
EOF
"$tmp/midas-sim" -spec "$tmp/shared-spec.json" -format json -out "$tmp/shared-golden.json" \
    || fail "midas-sim golden for the shared-store spec"

"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$shared_dir" -store-shared -lease-ttl "$lease_ttl" -log off \
    > "$tmp/serve-a4.log" 2>&1 &
serve_pid=$!
discover "$tmp/serve-a4.log" "$serve_pid"
addr_a=$addr
echo "cluster-e2e: coordinator A at $addr_a (dispatch $dispatch_addr, shared store)"

# The direct-publishing victim: every shard result goes straight into
# the shared store; the hold env parks it between the store write and
# the completion POST — the acknowledgement window we kill it in.
MIDAS_WORKER_HOLD_AFTER_PUBLISH=300s "$tmp/midas-worker" \
    -coordinator "http://$dispatch_addr" -id holder \
    -store-dir "$shared_dir" -store-shared \
    -parallelism 1 -max-batch 1 -poll 50ms > "$tmp/worker-e.log" 2>&1 &
worker_a_pid=$!
i=0
while :; do
    scrape
    live=$(prom_value 'midas_workers_live')
    [ "${live:-0}" = "1" ] && break
    [ $i -lt 100 ] || fail "direct worker never registered (midas_workers_live=$live)"
    sleep 0.1
    i=$((i + 1))
done

submit "$tmp/shared-spec.json" "$tmp/shared-submit.json"
job5=$(json_field "$tmp/shared-submit.json" id)
echo "cluster-e2e: submitted $job5 ($shards shards, direct publish)"

# Kill -9 the worker the moment it announces the acknowledgement
# window: its result is in the store, its completion POST never sent.
i=0
while :; do
    grep -q "holding after publish" "$tmp/worker-e.log" && break
    kill -0 "$worker_a_pid" 2>/dev/null || fail "direct worker exited before reaching the acknowledgement window"
    [ $i -lt 1200 ] || fail "direct worker never reached the acknowledgement window"
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$worker_a_pid"
wait "$worker_a_pid" 2>/dev/null || true
worker_a_pid=""
echo "cluster-e2e: direct worker killed with SIGKILL inside the acknowledgement window"

# The published-but-unacknowledged shard must be recovered from the
# store at lease expiry — before any replacement worker exists, so
# recovery (not re-execution) is the only way it can complete.
i=0
while :; do
    scrape
    recovered4=$(prom_value 'midas_shards_recovered_total')
    [ -n "$recovered4" ] && [ "$recovered4" -ge 1 ] 2>/dev/null && break
    [ $i -lt 600 ] || fail "published shard never recovered from the store (midas_shards_recovered_total=$recovered4)"
    sleep 0.1
    i=$((i + 1))
done
[ "$recovered4" = "1" ] || fail "recovered $recovered4 shard(s), want exactly 1"
echo "cluster-e2e: orphaned publish recovered from the store at lease expiry"

# A replacement direct-publishing worker supplies the remaining shards.
"$tmp/midas-worker" -coordinator "http://$dispatch_addr" -id finisher \
    -store-dir "$shared_dir" -store-shared -poll 50ms > "$tmp/worker-f.log" 2>&1 &
worker_b_pid=$!
wait_done "$job5" 1800

scrape
accepted=$(prom_value 'midas_shards_completed_total{status="accepted"}')
verified=$(prom_value 'midas_shards_direct_total{outcome="verified"}')
resent=$(prom_value 'midas_shards_direct_total{outcome="resend"}')
[ "$accepted" = "$((shards - 1))" ] \
    || fail "accepted completions = '$accepted', want $((shards - 1)) (the held shard must come from recovery, not re-execution)"
[ "$verified" = "$accepted" ] \
    || fail "direct-verified completions = '$verified', want $accepted (every accepted shard must have been store-verified, never inline)"
[ "${resent:-0}" = "0" ] || fail "coordinator asked for $resent inline resend(s) on a shared store"
echo "cluster-e2e: $verified shard(s) direct-published and verified + 1 recovered = $shards, zero inline payloads"

curl -fsS "http://$addr_a/v1/jobs/$job5/result" > "$tmp/shared-served-a.json" || fail "shared result fetch from A"
grep -v '"tool":' "$tmp/shared-served-a.json" > "$tmp/shared-served-a.stripped"
grep -v '"tool":' "$tmp/shared-golden.json" > "$tmp/shared-golden.stripped"
diff -u "$tmp/shared-golden.stripped" "$tmp/shared-served-a.stripped" \
    || fail "direct-published result differs from the single-process golden"

# Coordinator B: a second process over the same shared directory. It
# must serve A's sweep as a store hit — no engine runs, byte-identical
# bytes — both by job submission and by content address.
"$tmp/midas-serve" -addr 127.0.0.1:0 -dispatch-listen 127.0.0.1:0 \
    -store-dir "$shared_dir" -store-shared -lease-ttl "$lease_ttl" -log off \
    > "$tmp/serve-b4.log" 2>&1 &
serve_b_pid=$!
discover "$tmp/serve-b4.log" "$serve_b_pid"
addr_b=$addr
warm_entries=$(sed -n 's/^midas-serve store: \([0-9]*\) entries.*/\1/p' "$tmp/serve-b4.log" | head -n 1)
[ -n "$warm_entries" ] && [ "$warm_entries" -ge "$shards" ] 2>/dev/null \
    || fail "coordinator B warmed only '$warm_entries' entrie(s) from the shared store, want >= $shards"
echo "cluster-e2e: coordinator B at $addr_b warmed $warm_entries entries from A's store"

curl -fsS -X POST --data-binary @"$tmp/shared-spec.json" "http://$addr_b/v1/jobs" > "$tmp/shared-submit-b.json" \
    || fail "submission to coordinator B rejected"
grep -q '"cached": true' "$tmp/shared-submit-b.json" \
    || fail "B did not serve A's spec from cache: $(cat "$tmp/shared-submit-b.json")"
tier=$(json_field "$tmp/shared-submit-b.json" cache_tier)
[ "$tier" = "store" ] || fail "B's cache tier = '$tier', want store"
job6=$(json_field "$tmp/shared-submit-b.json" id)
spec_hash=$(json_field "$tmp/shared-submit-b.json" spec_hash)

curl -fsS "http://$addr_b/v1/jobs/$job6/result" > "$tmp/shared-served-b.json" || fail "shared result fetch from B"
diff -u "$tmp/shared-served-a.json" "$tmp/shared-served-b.json" \
    || fail "B's body differs from A's for the same spec (cross-coordinator byte identity broken)"
curl -fsS "http://$addr_b/v1/results/$spec_hash" > "$tmp/shared-byhash-b.json" \
    || fail "content-addressed fetch from B"
diff -u "$tmp/shared-served-b.json" "$tmp/shared-byhash-b.json" \
    || fail "GET /v1/results/{hash} differs from the job-result body"
echo "cluster-e2e: B served A's sweep as a store hit, byte-identical, job and hash endpoints agree"

# Orderly teardown of the whole shared-store cluster.
kill -TERM "$worker_b_pid"
wait "$worker_b_pid" || fail "finisher worker exited non-zero on SIGTERM"
worker_b_pid=""
kill -TERM "$serve_b_pid"
wait "$serve_b_pid" || fail "coordinator B exited non-zero on SIGTERM"
serve_b_pid=""
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "coordinator A exited non-zero on SIGTERM"
serve_pid=""
find "$shared_dir" -type f | sort > "$tmp/shared-store-listing.txt"
echo "cluster-e2e: shared store holds $(wc -l < "$tmp/shared-store-listing.txt" | tr -d ' ') file(s) after teardown"

if [ -n "${CLUSTER_E2E_OUT:-}" ]; then
    mkdir -p "$CLUSTER_E2E_OUT"
    cp "$tmp/metrics.prom" "$tmp/served.json" "$tmp/golden.json" \
        "$tmp/journal-served.json" "$tmp/journal-golden.json" \
        "$tmp/journal-precrash.txt" "$tmp/store-listing.txt" \
        "$tmp/shared-served-a.json" "$tmp/shared-served-b.json" \
        "$tmp/shared-byhash-b.json" "$tmp/shared-golden.json" \
        "$tmp/shared-store-listing.txt" \
        "$tmp/serve.log" "$tmp/serve-journal.log" "$tmp/serve-restart.log" \
        "$tmp/serve-a4.log" "$tmp/serve-b4.log" \
        "$tmp/worker-a.log" "$tmp/worker-b.log" "$tmp/worker-c.log" "$tmp/worker-d.log" \
        "$tmp/worker-e.log" "$tmp/worker-f.log" \
        "$CLUSTER_E2E_OUT/" 2>/dev/null || true
    echo "cluster-e2e: artifacts written to $CLUSTER_E2E_OUT"
fi

echo "cluster-e2e: PASS"
