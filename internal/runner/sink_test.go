package runner

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func demoResult() Result {
	r := Result{Name: "fig0-demo", Seconds: 0.25}
	r.AddSeries("CAS capacity", "bit/s/Hz", stats.NewSample(3, 1, 2))
	r.AddMetric("median gain", 42.5, "%", "paper: ≈40%")
	r.AddMetric("spots measured", 12710, "", "")
	r.AddText("map row: %s", "#..#")
	return r
}

// TestJSONSinkRoundTrip verifies the snapshot decodes back with every
// series value, metric and meta field intact.
func TestJSONSinkRoundTrip(t *testing.T) {
	var buf strings.Builder
	sink := &JSONSink{W: &buf}
	meta := Meta{Tool: "midas-bench", Seed: 2014, Topologies: 60, Parallelism: 8}
	if err := sink.Begin(meta); err != nil {
		t.Fatal(err)
	}
	if err := sink.Result(demoResult()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Meta != meta {
		t.Fatalf("meta = %+v, want %+v", snap.Meta, meta)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("got %d results", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "fig0-demo" {
		t.Fatalf("name = %q", r.Name)
	}
	// SampleSeries sorts ascending.
	want := []float64{1, 2, 3}
	if len(r.Series) != 1 || len(r.Series[0].Values) != 3 {
		t.Fatalf("series = %+v", r.Series)
	}
	for i, v := range r.Series[0].Values {
		if v != want[i] {
			t.Fatalf("series values = %v, want %v", r.Series[0].Values, want)
		}
	}
	if len(r.Metrics) != 2 || r.Metrics[0].Value != 42.5 || r.Metrics[0].Note != "paper: ≈40%" {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
	if len(r.Text) != 1 || r.Text[0] != "map row: #..#" {
		t.Fatalf("text = %+v", r.Text)
	}
}

// TestCSVSinkRows verifies the flat table has a header plus one row per
// series point and per metric.
func TestCSVSinkRows(t *testing.T) {
	var buf strings.Builder
	sink := &CSVSink{W: &buf}
	if err := sink.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Result(demoResult()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+3+2 { // header + 3 series points + 2 metrics
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	if rows[1][0] != "fig0-demo" || rows[1][1] != "series" || rows[1][4] != "1" {
		t.Fatalf("first series row = %v", rows[1])
	}
	if rows[4][1] != "metric" || rows[4][2] != "median gain" || rows[4][4] != "42.5" {
		t.Fatalf("metric row = %v", rows[4])
	}
}

// TestSinksRenderSummaries verifies every sink carries the replicate
// summaries: JSON round-trips the struct, CSV flattens each summary to
// its four stat rows, and text prints the mean ± CI line.
func TestSinksRenderSummaries(t *testing.T) {
	var w stats.Summary
	w.Add(10)
	w.Add(14)
	w.Add(12)
	r := Result{Name: "fig0-demo"}
	r.Summaries = append(r.Summaries, SummaryOf("median capacity", "bit/s/Hz", &w))

	var jbuf strings.Builder
	jsink := &JSONSink{W: &jbuf}
	if err := jsink.Begin(Meta{Replicates: 3}); err != nil {
		t.Fatal(err)
	}
	if err := jsink.Result(r); err != nil {
		t.Fatal(err)
	}
	if err := jsink.Close(); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(jbuf.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Replicates != 3 {
		t.Errorf("meta replicates = %d, want 3", snap.Meta.Replicates)
	}
	got := snap.Results[0].Summaries
	if len(got) != 1 || got[0].Mean != 12 || got[0].N != 3 || got[0].CI95 != w.CI95() {
		t.Errorf("JSON summaries = %+v, want mean 12, n 3, ci95 %v", got, w.CI95())
	}

	var cbuf strings.Builder
	csink := &CSVSink{W: &cbuf}
	if err := csink.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := csink.Result(r); err != nil {
		t.Fatal(err)
	}
	if err := csink.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(cbuf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4 { // header + mean/stddev/ci95/n
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	kinds := map[string]bool{}
	for _, row := range rows[1:] {
		kinds[row[1]] = true
		if row[2] != "median capacity" {
			t.Errorf("summary row label = %q", row[2])
		}
	}
	for _, k := range []string{"summary-mean", "summary-stddev", "summary-ci95", "summary-n"} {
		if !kinds[k] {
			t.Errorf("missing CSV summary kind %q (have %v)", k, kinds)
		}
	}

	var tbuf strings.Builder
	tsink := &TextSink{W: &tbuf}
	if err := tsink.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := tsink.Result(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbuf.String(), "median capacity: 12 ± ") ||
		!strings.Contains(tbuf.String(), "(95% CI, n=3, std 2)") {
		t.Errorf("text sink missing the summary line:\n%s", tbuf.String())
	}
}

// TestTextSinkFormat spot-checks the banner, CDF header and metric line.
func TestTextSinkFormat(t *testing.T) {
	var buf strings.Builder
	sink := &TextSink{W: &buf, Points: 3}
	if err := sink.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Result(demoResult()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"==== fig0-demo ====",
		"-- CAS capacity (bit/s/Hz) (n=3, median 2.00)",
		"median gain: 42.5 % (paper: ≈40%)",
		"spots measured: 12710\n", // integer counts never in scientific notation
		"map row: #..#",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
