// Package runner is the parallel experiment-execution engine for the
// MIDAS reproduction. Every evaluation experiment (§5) is a sweep over
// independent random topologies; runner.Map and runner.Sweep execute
// those task bodies on a bounded worker pool while preserving the exact
// numbers of a sequential run:
//
//   - Each task derives its randomness from the experiment's root seed
//     and its own index (root.SplitN(label, i)), never from a shared
//     stream, so results are independent of scheduling order.
//   - Results are collected into a slice indexed by task, so downstream
//     aggregation (stats.Sample accumulation, CDFs) sees them in task
//     order regardless of completion order.
//   - On error the pool cancels outstanding work and reports the
//     lowest-index failure among the tasks that ran; at Parallelism 1
//     that is exactly the error a sequential loop would have stopped on.
//
// The engine also reports per-task timing through Options.OnDone and
// feeds the structured result sinks in sink.go, which serialize whole
// experiment snapshots as text, JSON or CSV.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Options configure one Map or Sweep invocation.
type Options struct {
	// Parallelism bounds the worker pool. Values <= 0 select
	// runtime.GOMAXPROCS(0). Parallelism 1 reproduces a plain
	// sequential loop (same goroutine count, same task order).
	Parallelism int
	// OnDone, when non-nil, is invoked after every completed task with
	// that task's timing and the pool's overall progress. Invocations
	// are serialized; the callback must not block for long.
	OnDone func(Progress)
}

// Progress describes one completed task.
type Progress struct {
	Index     int           // which task finished
	Completed int           // tasks finished so far, including this one
	Total     int           // tasks in the run
	Elapsed   time.Duration // wall time of this task
}

func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// TaskError wraps a task failure with the index it occurred at.
type TaskError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *TaskError) Error() string {
	return fmt.Sprintf("runner: task %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// Map runs fn(ctx, 0) … fn(ctx, n-1) on a bounded worker pool and
// returns the results ordered by index. The work function must be safe
// to call from multiple goroutines for distinct indices and must not
// share mutable state between indices — derive per-task randomness from
// an immutable root (see Sweep).
//
// If any task fails, or ctx is cancelled, Map cancels the context passed
// to the remaining tasks, stops dispatching new ones, waits for in-flight
// tasks, and returns a nil slice with a *TaskError for the lowest-index
// failure that ran (at Parallelism 1, exactly the failure a sequential
// loop would have stopped on) or the context error.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	var (
		next      atomic.Int64 // next index to dispatch
		failed    atomic.Bool
		doneMu    sync.Mutex // serializes OnDone and guards completed
		completed int
		wg        sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1) - 1)
			if i >= n || ctx.Err() != nil {
				return
			}
			start := time.Now()
			v, err := fn(ctx, i)
			if err != nil {
				errs[i] = err
				failed.Store(true)
				cancel() // stop dispatching; in-flight tasks drain
				return
			}
			results[i] = v
			if opts.OnDone != nil {
				// Completed is incremented under the same lock that
				// serializes OnDone, so callbacks observe a strictly
				// monotonic count.
				doneMu.Lock()
				completed++
				opts.OnDone(Progress{Index: i, Completed: completed, Total: n, Elapsed: time.Since(start)})
				doneMu.Unlock()
			}
		}
	}

	workers := opts.workers(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if failed.Load() {
		for i, err := range errs {
			if err != nil {
				return nil, &TaskError{Index: i, Err: err}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Sweep is the topology-sweep entry point: it runs n tasks, handing task
// i the deterministic rng child root.SplitN(label, i) of the experiment
// seed. Because rng.Source.Split derives children from the parent's
// immutable seed (it never advances or reads the parent's stream), the
// derivation is identical whether tasks run on one goroutine or many,
// and every task owns its child exclusively — the discipline that makes
// parallel results bit-identical to a sequential run.
func Sweep[T any](ctx context.Context, n int, seed int64, label string, opts Options, fn func(ctx context.Context, i int, src *rng.Source) (T, error)) ([]T, error) {
	root := rng.New(seed)
	return Map(ctx, n, opts, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, root.SplitN(label, i))
	})
}

// SweepRoot is Sweep for experiments whose per-task derivation does not
// follow the root.SplitN(label, i) convention (nested sweeps, per-arm
// labels): task i receives the shared root source and derives its own
// children. The root must only be used for Split/SplitN inside tasks —
// drawing from it would race and break determinism.
func SweepRoot[T any](ctx context.Context, n int, seed int64, opts Options, fn func(ctx context.Context, i int, root *rng.Source) (T, error)) ([]T, error) {
	root := rng.New(seed)
	return Map(ctx, n, opts, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, root)
	})
}
