package runner

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"repro/internal/stats"
)

// This file defines the structured result model experiments report into
// and the pluggable sinks that serialize it: TextSink reproduces the
// human-readable CDF tables midas-bench has always printed, JSONSink
// emits a machine-readable snapshot (the BENCH_*.json discipline for
// tracking the perf trajectory across PRs), and CSVSink flattens every
// series and metric into spreadsheet-friendly rows.

// Series is one plotted curve: a labelled set of observations (a CDF's
// sample values, or per-topology points).
type Series struct {
	Label  string    `json:"label"`
	Unit   string    `json:"unit,omitempty"`
	Values []float64 `json:"values"`
}

// SampleSeries converts a stats.Sample into a Series. Values are sorted
// ascending (CDF order); the sample's internal slice is copied.
func SampleSeries(label, unit string, s *stats.Sample) Series {
	return Series{Label: label, Unit: unit, Values: append([]float64(nil), s.Values()...)}
}

// Metric is one scalar result (a median, a gain, a count), with an
// optional note tying it back to the paper's reported number.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	Note  string  `json:"note,omitempty"` // e.g. "paper: ≈200%"
}

// Summary is one replicate-aggregated statistic: the mean of a value
// across N independent replicate runs, its sample standard deviation,
// and the half-width of the two-sided 95% Student-t confidence interval
// on the mean (the true mean lies in Mean ± CI95 at 95% confidence,
// assuming independent replicates).
type Summary struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit,omitempty"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
	N      int     `json:"n"`
}

// SummaryOf converts a streaming accumulator into a Summary.
func SummaryOf(name, unit string, s *stats.Summary) Summary {
	return Summary{Name: name, Unit: unit, Mean: s.Mean(), Stddev: s.Std(), CI95: s.CI95(), N: s.N()}
}

// Result is everything one experiment produced. Summaries is populated
// only by replicated runs, so single-replicate output (the golden
// suite's format) marshals unchanged.
type Result struct {
	Name      string    `json:"name"`
	Seconds   float64   `json:"seconds"` // wall time of the experiment
	Series    []Series  `json:"series,omitempty"`
	Metrics   []Metric  `json:"metrics,omitempty"`
	Summaries []Summary `json:"summaries,omitempty"`
	Text      []string  `json:"text,omitempty"` // free-form lines (maps, tables)
}

// AddSeries appends a curve built from a sample.
func (r *Result) AddSeries(label, unit string, s *stats.Sample) {
	r.Series = append(r.Series, SampleSeries(label, unit, s))
}

// AddMetric appends a scalar result.
func (r *Result) AddMetric(name string, value float64, unit, note string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit, Note: note})
}

// AddText appends a free-form output line.
func (r *Result) AddText(format string, args ...any) {
	r.Text = append(r.Text, fmt.Sprintf(format, args...))
}

// Meta records how a snapshot was produced. Replicates is recorded
// only when replication was requested (it is 0, omitted, otherwise).
type Meta struct {
	Tool        string `json:"tool"`
	Seed        int64  `json:"seed"`
	Topologies  int    `json:"topologies,omitempty"`
	Parallelism int    `json:"parallelism"`
	SimTime     string `json:"simtime,omitempty"`
	Replicates  int    `json:"replicates,omitempty"`
}

// Snapshot is a full run: metadata plus every experiment's Result.
type Snapshot struct {
	Meta    Meta     `json:"meta"`
	Results []Result `json:"results"`
}

// Sink consumes experiment results one at a time. Begin is called once
// before any Result, Close once after the last; Close flushes formats
// that buffer (JSON).
type Sink interface {
	Begin(Meta) error
	Result(Result) error
	Close() error
}

// NewSink returns the sink that renders results to w in the named
// format — the one switch the CLIs and the serving layer share, so a
// new format (or a changed error message) lands everywhere at once.
// Formats: "text", "json", "csv".
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "text":
		return &TextSink{W: w}, nil
	case "json":
		return &JSONSink{W: w}, nil
	case "csv":
		return &CSVSink{W: w}, nil
	default:
		return nil, fmt.Errorf("runner: unknown format %q (want text, json or csv)", format)
	}
}

// RenderJSON renders one meta block and result set as the canonical
// indented Snapshot JSON — what `-format json` writes and what
// midas-serve serves from its result cache. Rendering carries no
// wall-clock state, so the same inputs always produce the same bytes.
func RenderJSON(meta Meta, results ...Result) ([]byte, error) {
	var buf bytes.Buffer
	sink := &JSONSink{W: &buf}
	if err := sink.Begin(meta); err != nil {
		return nil, err
	}
	for _, r := range results {
		if err := sink.Result(r); err != nil {
			return nil, err
		}
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TextSink renders results as a human-readable report in the shape
// midas-bench has always printed: "====" experiment banners,
// downsampled CDF tables for each series, labelled scalar lines.
type TextSink struct {
	W      io.Writer
	Points int // CDF rows per series; <=0 means 20
}

// Begin implements Sink.
func (t *TextSink) Begin(Meta) error { return nil }

// Result implements Sink.
func (t *TextSink) Result(r Result) error {
	if _, err := fmt.Fprintf(t.W, "==== %s ====\n", r.Name); err != nil {
		return err
	}
	points := t.Points
	if points <= 0 {
		points = 20
	}
	for _, s := range r.Series {
		sample := stats.NewSample(s.Values...)
		med, _ := sample.Median()
		label := s.Label
		if s.Unit != "" {
			label += " (" + s.Unit + ")"
		}
		fmt.Fprintf(t.W, "-- %s (n=%d, median %.2f)\n", label, sample.N(), med)
		fmt.Fprint(t.W, sample.ECDF().Table(points))
	}
	for _, m := range r.Metrics {
		fmt.Fprintf(t.W, "%s: %s", m.Name, formatMetric(m.Value))
		if m.Unit != "" {
			fmt.Fprintf(t.W, " %s", m.Unit)
		}
		if m.Note != "" {
			fmt.Fprintf(t.W, " (%s)", m.Note)
		}
		fmt.Fprintln(t.W)
	}
	for _, s := range r.Summaries {
		fmt.Fprintf(t.W, "%s: %s ± %s", s.Name, formatMetric(s.Mean), formatMetric(s.CI95))
		if s.Unit != "" {
			fmt.Fprintf(t.W, " %s", s.Unit)
		}
		fmt.Fprintf(t.W, " (95%% CI, n=%d, std %s)\n", s.N, formatMetric(s.Stddev))
	}
	for _, line := range r.Text {
		fmt.Fprintln(t.W, line)
	}
	_, err := fmt.Fprintln(t.W)
	return err
}

// Close implements Sink.
func (t *TextSink) Close() error { return nil }

// formatMetric renders counts as plain integers (12710, never
// 1.271e+04) and everything else with four significant digits.
func formatMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// JSONSink buffers the whole run and writes one indented Snapshot on
// Close — the format BENCH_*.json perf baselines are recorded in.
type JSONSink struct {
	W    io.Writer
	snap Snapshot
}

// Begin implements Sink.
func (j *JSONSink) Begin(m Meta) error {
	j.snap.Meta = m
	j.snap.Results = nil
	return nil
}

// Result implements Sink.
func (j *JSONSink) Result(r Result) error {
	j.snap.Results = append(j.snap.Results, r)
	return nil
}

// Close implements Sink.
func (j *JSONSink) Close() error {
	enc := json.NewEncoder(j.W)
	enc.SetIndent("", "  ")
	return enc.Encode(j.snap)
}

// CSVSink streams every series point and metric as one flat table:
//
//	experiment,kind,label,index,value,unit,note
//
// Series rows have kind "series" and ascending per-series indices;
// metric rows have kind "metric" and index 0. Each replicate summary
// flattens to four rows — kinds "summary-mean", "summary-stddev",
// "summary-ci95" and "summary-n" — sharing the summary's name as their
// label. Free-form text lines are omitted (they are presentation, not
// data).
type CSVSink struct {
	W  io.Writer
	cw *csv.Writer
}

// Begin implements Sink.
func (c *CSVSink) Begin(Meta) error {
	c.cw = csv.NewWriter(c.W)
	return c.cw.Write([]string{"experiment", "kind", "label", "index", "value", "unit", "note"})
}

// Result implements Sink.
func (c *CSVSink) Result(r Result) error {
	fmtF := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Series {
		for i, v := range s.Values {
			if err := c.cw.Write([]string{r.Name, "series", s.Label, strconv.Itoa(i), fmtF(v), s.Unit, ""}); err != nil {
				return err
			}
		}
	}
	for _, m := range r.Metrics {
		if err := c.cw.Write([]string{r.Name, "metric", m.Name, "0", fmtF(m.Value), m.Unit, m.Note}); err != nil {
			return err
		}
	}
	for _, s := range r.Summaries {
		for _, row := range []struct {
			kind string
			v    float64
		}{
			{"summary-mean", s.Mean},
			{"summary-stddev", s.Stddev},
			{"summary-ci95", s.CI95},
			{"summary-n", float64(s.N)},
		} {
			if err := c.cw.Write([]string{r.Name, row.kind, s.Name, "0", fmtF(row.v), s.Unit, ""}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Sink.
func (c *CSVSink) Close() error {
	c.cw.Flush()
	return c.cw.Error()
}

// Timed runs fn, stamping the produced Result with its wall time.
func Timed(name string, fn func(r *Result) error) (Result, error) {
	r := Result{Name: name}
	start := time.Now()
	err := fn(&r)
	r.Seconds = time.Since(start).Seconds()
	return r, err
}
