package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestMapOrdersResults verifies results land at their task index no
// matter which worker finishes first.
func TestMapOrdersResults(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		res, err := Map(context.Background(), 50, Options{Parallelism: par}, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if len(res) != 50 {
			t.Fatalf("parallel=%d: got %d results", par, len(res))
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("parallel=%d: res[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// TestMapBoundsParallelism checks the pool never runs more than
// Parallelism tasks at once.
func TestMapBoundsParallelism(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 40, Options{Parallelism: par}, func(_ context.Context, i int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > par {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, par)
	}
}

// TestMapReportsLowestIndexError verifies the pool reports the failure a
// sequential loop would have stopped on, regardless of completion order.
func TestMapReportsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), 64, Options{Parallelism: 8}, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 { // tasks 1, 3, 5, … fail
			return 0, fmt.Errorf("task %d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskError, got %T: %v", err, err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
	// Which odd tasks ran before cancellation is scheduling-dependent,
	// but the reported failure is always a task that genuinely failed,
	// and the lowest-index one among those that ran.
	if te.Index%2 != 1 {
		t.Fatalf("reported index %d, which did not fail", te.Index)
	}
}

// TestMapErrorCancelsOutstandingTasks verifies a failure stops the
// sweep early instead of draining all n tasks.
func TestMapErrorCancelsOutstandingTasks(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 10000, Options{Parallelism: 2}, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks started after early failure, want far fewer than 10000", n)
	}
}

// TestMapContextCancellation verifies an external cancel stops dispatch
// and surfaces context.Canceled.
func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	res, err := Map(ctx, 10000, Options{Parallelism: 4}, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run must not return partial results")
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks started after cancel, want far fewer than 10000", n)
	}
}

// TestSweepDeterministicAcrossParallelism is the core guarantee: the
// same seed yields bit-identical per-task randomness at any pool size.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []float64 {
		res, err := Sweep(context.Background(), 40, 2014, "det", Options{Parallelism: par},
			func(_ context.Context, i int, src *rng.Source) (float64, error) {
				// Consume a realistic mix of draws from the task's stream.
				v := src.Float64()
				v += src.Gauss(0, 1)
				v += float64(src.Intn(1000))
				return v, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("parallel=%d: task %d = %v, sequential = %v", par, i, got[i], seq[i])
			}
		}
	}
}

// TestSweepMatchesManualDerivation pins the derivation convention other
// packages rely on: task i sees exactly root.SplitN(label, i).
func TestSweepMatchesManualDerivation(t *testing.T) {
	res, err := Sweep(context.Background(), 5, 7, "fig", Options{Parallelism: 3},
		func(_ context.Context, i int, src *rng.Source) (float64, error) {
			return src.Float64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(7)
	for i, v := range res {
		if want := root.SplitN("fig", i).Float64(); v != want {
			t.Fatalf("task %d drew %v, manual derivation gives %v", i, v, want)
		}
	}
}

// TestOnDoneProgress verifies every task reports exactly once with a
// consistent completion counter.
func TestOnDoneProgress(t *testing.T) {
	const n = 30
	var mu sync.Mutex
	seen := make(map[int]bool)
	_, err := Map(context.Background(), n, Options{
		Parallelism: 5,
		OnDone: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if seen[p.Index] {
				t.Errorf("task %d reported twice", p.Index)
			}
			seen[p.Index] = true
			if p.Total != n {
				t.Errorf("Total = %d, want %d", p.Total, n)
			}
			// Callbacks are serialized and the counter is incremented
			// under the same lock, so Completed counts callbacks exactly.
			if p.Completed != len(seen) {
				t.Errorf("Completed = %d at callback %d", p.Completed, len(seen))
			}
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d progress callbacks, want %d", len(seen), n)
	}
}

// TestMapZeroTasks ensures the degenerate sweep is a no-op.
func TestMapZeroTasks(t *testing.T) {
	res, err := Map(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran")
		return 0, nil
	})
	if err != nil || res != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", res, err)
	}
}

// TestSweepErrorCancelsRemainingShards is the direct Sweep-level
// cancellation contract the scenario engine relies on: when one shard
// of a sweep fails, the context handed to in-flight shards is
// cancelled, no further shards are dispatched, and the lowest-index
// failure is the one reported. Shards before the failing index return
// instantly, so the failing shard is deterministically the lowest
// error.
func TestSweepErrorCancelsRemainingShards(t *testing.T) {
	const n, failAt = 64, 3
	var started atomic.Int32
	res, err := Sweep(context.Background(), n, 99, "exp", Options{Parallelism: 2},
		func(ctx context.Context, i int, src *rng.Source) (int, error) {
			started.Add(1)
			if i < failAt {
				return i, nil
			}
			if i == failAt {
				return 0, fmt.Errorf("shard %d exploded", i)
			}
			// Later shards are slow but cancellation-aware: if the pool
			// failed to cancel them, this test would crawl through all
			// 64 at 100 ms each instead of finishing immediately.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(100 * time.Millisecond):
				return i, nil
			}
		})
	if res != nil {
		t.Fatalf("failed sweep must not return partial results (got %d)", len(res))
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %v (%T) is not a *TaskError", err, err)
	}
	if te.Index != failAt {
		t.Errorf("reported error index %d, want the lowest failure %d", te.Index, failAt)
	}
	if !strings.Contains(err.Error(), "exploded") {
		t.Errorf("error %q must carry the task's own message", err)
	}
	if got := started.Load(); got >= n {
		t.Errorf("%d of %d shards started despite the early failure — remaining shards were not cancelled", got, n)
	}
}
