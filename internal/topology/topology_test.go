package topology

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
)

func TestModeString(t *testing.T) {
	if CAS.String() != "CAS" || DAS.String() != "DAS" {
		t.Error("Mode.String wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still print")
	}
}

func TestSingleAPCASLayout(t *testing.T) {
	cfg := DefaultConfig(CAS)
	d := SingleAP(cfg, rng.New(1))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Antennas) != 4 || len(d.Clients) != 4 {
		t.Fatalf("counts: %d antennas, %d clients", len(d.Antennas), len(d.Clients))
	}
	// CAS antennas within a few wavelengths of the AP.
	for _, a := range d.Antennas {
		if a.Pos.Dist(d.APs[0]) > 10*HalfWavelength {
			t.Errorf("CAS antenna too far from AP: %v", a.Pos)
		}
	}
	// Adjacent spacing is λ/2.
	got := d.Antennas[1].Pos.Dist(d.Antennas[0].Pos)
	if math.Abs(got-HalfWavelength) > 1e-12 {
		t.Errorf("spacing = %v", got)
	}
	if !d.Correlated() {
		t.Error("CAS should use correlated fading")
	}
}

func TestSingleAPDASLayout(t *testing.T) {
	cfg := DefaultConfig(DAS)
	for seed := int64(0); seed < 20; seed++ {
		d := SingleAP(cfg, rng.New(seed))
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inner := cfg.DASInnerFrac * cfg.CoverageRadius
		outer := cfg.DASOuterFrac * cfg.CoverageRadius
		for _, a := range d.Antennas {
			r := a.Pos.Dist(d.APs[0])
			if r < inner-1e-9 || r > outer+1e-9 {
				t.Errorf("seed %d: DAS antenna at radius %v outside [%v,%v]", seed, r, inner, outer)
			}
		}
		if d.Correlated() {
			t.Error("DAS should use uncorrelated fading")
		}
	}
}

func TestSectorRuleEnforced(t *testing.T) {
	cfg := DefaultConfig(DAS)
	sector := cfg.SectorRuleDeg * math.Pi / 180
	for seed := int64(0); seed < 30; seed++ {
		d := SingleAP(cfg, rng.New(seed))
		idx := d.AntennasOf(0)
		for a := 0; a < len(idx); a++ {
			for b := a + 1; b < len(idx); b++ {
				if geom.WithinSector(d.APs[0], d.Antennas[idx[a]].Pos, d.Antennas[idx[b]].Pos, sector*0.999) {
					t.Fatalf("seed %d: antennas %d,%d within 60° sector", seed, a, b)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SingleAP(DefaultConfig(DAS), rng.New(5))
	b := SingleAP(DefaultConfig(DAS), rng.New(5))
	for i := range a.Antennas {
		if a.Antennas[i].Pos != b.Antennas[i].Pos {
			t.Fatal("same seed should give same deployment")
		}
	}
	for j := range a.Clients {
		if a.Clients[j] != b.Clients[j] {
			t.Fatal("same seed should give same clients")
		}
	}
}

func TestClientsWithinCoverage(t *testing.T) {
	cfg := DefaultConfig(DAS)
	d := SingleAP(cfg, rng.New(9))
	for _, c := range d.Clients {
		if c.Dist(d.APs[0]) > cfg.CoverageRadius+1e-9 {
			t.Errorf("client %v outside coverage", c)
		}
	}
}

func TestThreeAPTestbed(t *testing.T) {
	cfg := DefaultConfig(DAS)
	d := ThreeAPTestbed(cfg, rng.New(11))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumAPs() != 3 {
		t.Fatalf("NumAPs = %d", d.NumAPs())
	}
	// Equilateral with side 15.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if got := d.APs[i].Dist(d.APs[j]); math.Abs(got-15) > 1e-9 {
				t.Errorf("inter-AP distance %d-%d = %v", i, j, got)
			}
		}
	}
	if len(d.Antennas) != 12 || len(d.Clients) != 12 {
		t.Errorf("counts %d/%d", len(d.Antennas), len(d.Clients))
	}
}

func TestAntennasOfClientsOfPartition(t *testing.T) {
	d := ThreeAPTestbed(DefaultConfig(DAS), rng.New(13))
	seenA := map[int]bool{}
	for ap := 0; ap < 3; ap++ {
		for _, i := range d.AntennasOf(ap) {
			if seenA[i] {
				t.Fatalf("antenna %d in two APs", i)
			}
			seenA[i] = true
			if d.Antennas[i].AP != ap {
				t.Fatalf("antenna %d AP mismatch", i)
			}
		}
	}
	if len(seenA) != len(d.Antennas) {
		t.Error("AntennasOf does not partition")
	}
	seenC := map[int]bool{}
	for ap := 0; ap < 3; ap++ {
		for _, j := range d.ClientsOf(ap) {
			if seenC[j] {
				t.Fatalf("client %d in two APs", j)
			}
			seenC[j] = true
		}
	}
	if len(seenC) != len(d.Clients) {
		t.Error("ClientsOf does not partition")
	}
}

func TestAssociationIsNearest(t *testing.T) {
	d := ThreeAPTestbed(DefaultConfig(CAS), rng.New(17))
	for j, c := range d.Clients {
		best, bestD := 0, math.Inf(1)
		for ap, pos := range d.APs {
			if dd := pos.Dist(c); dd < bestD {
				best, bestD = ap, dd
			}
		}
		if d.ClientAP[j] != best {
			t.Errorf("client %d associated with %d, nearest is %d", j, d.ClientAP[j], best)
		}
	}
}

func TestLargeScaleConstraints(t *testing.T) {
	cfg := DefaultLargeScale(DAS)
	for seed := int64(0); seed < 10; seed++ {
		d, err := LargeScale(cfg, rng.New(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d.NumAPs() != 8 {
			t.Fatalf("NumAPs = %d", d.NumAPs())
		}
		// Overhear rule.
		for i, a := range d.APs {
			n := 0
			for j, b := range d.APs {
				if i != j && a.Dist(b) <= cfg.CSRangeM {
					n++
				}
			}
			if n > cfg.MaxOverhear {
				t.Errorf("seed %d: AP %d overhears %d > %d", seed, i, n, cfg.MaxOverhear)
			}
		}
		// All elements inside the region.
		for _, a := range d.Antennas {
			if !cfg.Region.Contains(a.Pos) {
				t.Errorf("antenna outside region: %v", a.Pos)
			}
		}
		for _, c := range d.Clients {
			if !cfg.Region.Contains(c) {
				t.Errorf("client outside region: %v", c)
			}
		}
	}
}

func TestLargeScaleMinSeparation(t *testing.T) {
	cfg := DefaultLargeScale(DAS)
	d, err := LargeScale(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// The ≥5 m rule applies pre-clamp; clamping to the region can only
	// affect antennas whose annulus left the region. Check the rule holds
	// for the overwhelming majority of pairs.
	viol := 0
	for i := 0; i < len(d.Antennas); i++ {
		for j := i + 1; j < len(d.Antennas); j++ {
			if d.Antennas[i].Pos.Dist(d.Antennas[j].Pos) < cfg.MinAntennaSep-1e-9 {
				viol++
			}
		}
	}
	if viol > 2 {
		t.Errorf("%d antenna pairs closer than %v m", viol, cfg.MinAntennaSep)
	}
}

func TestLargeScaleImpossiblePlacementErrors(t *testing.T) {
	cfg := DefaultLargeScale(CAS)
	cfg.Region = geom.Square(5) // tiny region
	cfg.CSRangeM = 100          // everyone overhears everyone
	cfg.MaxOverhear = 0
	cfg.NumAPs = 3
	cfg.Trials = 50
	if _, err := LargeScale(cfg, rng.New(1)); err == nil {
		t.Error("expected placement failure")
	}
}

func TestModelIntegration(t *testing.T) {
	d := SingleAP(DefaultConfig(DAS), rng.New(21))
	m := d.Model(channel.Default(), rng.New(22))
	if m.NumAntennas() != 4 || m.NumClients() != 4 {
		t.Fatalf("model shape %d/%d", m.NumAntennas(), m.NumClients())
	}
	h := m.Matrix(nil, nil)
	if h.Rows() != 4 || h.Cols() != 4 {
		t.Fatal("bad H shape")
	}
	// DAS link budget sanity: every client has at least one antenna with
	// decent mean receive power.
	for j := 0; j < 4; j++ {
		best := 0.0
		for k := 0; k < 4; k++ {
			if p := m.MeanRxPower(j, k); p > best {
				best = p
			}
		}
		if best <= 0 {
			t.Errorf("client %d has no positive-power link", j)
		}
	}
}

// DAS clients should on average be closer to their best antenna than CAS
// clients are to the AP — the geometric root of the paper's Fig 7 gain.
func TestDASShortensLinks(t *testing.T) {
	var casSum, dasSum float64
	const topos = 40
	for seed := int64(0); seed < topos; seed++ {
		cas := SingleAP(DefaultConfig(CAS), rng.New(seed))
		das := SingleAP(DefaultConfig(DAS), rng.New(seed))
		for j, c := range cas.Clients {
			casSum += c.Dist(cas.APs[0])
			// nearest DAS antenna for the matched client
			best := math.Inf(1)
			for _, a := range das.Antennas {
				if d := a.Pos.Dist(das.Clients[j]); d < best {
					best = d
				}
			}
			dasSum += best
		}
	}
	if dasSum >= casSum {
		t.Errorf("DAS mean best-link distance %v should beat CAS %v",
			dasSum/(4*topos), casSum/(4*topos))
	}
}
