// Package topology generates the AP/antenna/client deployments evaluated in
// the MIDAS paper: co-located antenna systems (CAS) with half-wavelength
// arrays, distributed antenna systems (DAS) with antennas cabled 5–10 m
// from the AP, the 3-AP testbed (§5.4) and the 8-AP 60×60 m large-scale
// layout (§5.5), including the paper's placement constraints (60° sector
// rule, ≥5 m antenna separation, coverage containment).
package topology

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
)

// Mode distinguishes co-located from distributed antenna deployments.
type Mode int

const (
	// CAS co-locates all of an AP's antennas within half a wavelength.
	CAS Mode = iota
	// DAS distributes an AP's antennas over RF cable around the AP.
	DAS
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CAS:
		return "CAS"
	case DAS:
		return "DAS"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// HalfWavelength is the CAS antenna spacing in metres at 5.24 GHz.
const HalfWavelength = 0.0286

// Config holds deployment generation parameters. The defaults mirror §5.1
// and §7 of the paper.
type Config struct {
	Mode            Mode
	AntennasPerAP   int
	ClientsPerAP    int
	CoverageRadius  float64 // nominal AP coverage range, metres
	DASInnerFrac    float64 // DAS antenna distance band, fraction of coverage
	DASOuterFrac    float64
	SectorRuleDeg   float64 // min angular separation of same-AP antennas (0 = off)
	MinAntennaSep   float64 // min distance between any two antennas (0 = off)
	ClientMinDist   float64 // keep clients at least this far from any antenna
	PlacementTrials int     // rejection-sampling budget per element
	// Region, when non-nil, constrains every antenna and client position
	// (used by the large-scale deployment).
	Region *geom.Rect
}

// DefaultConfig returns a single-AP configuration matching the paper's
// testbed: 4 antennas, 4 clients, DAS antennas at 5–10 m (≈50–75% of a
// ~13 m coverage radius), 60° sector rule.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:            mode,
		AntennasPerAP:   4,
		ClientsPerAP:    4,
		CoverageRadius:  13,
		DASInnerFrac:    0.4,
		DASOuterFrac:    0.75,
		SectorRuleDeg:   60,
		MinAntennaSep:   0,
		ClientMinDist:   0.5,
		PlacementTrials: 400,
	}
}

// Deployment is a concrete placement of APs, antennas and clients.
type Deployment struct {
	Mode     Mode
	Cfg      Config
	APs      []geom.Point
	Antennas []channel.Antenna
	Clients  []geom.Point
	// ClientAP[j] is the AP a client associates with (nearest AP).
	ClientAP []int
}

// AntennasOf returns the global antenna indices belonging to AP ap, in
// Local order.
func (d *Deployment) AntennasOf(ap int) []int {
	var idx []int
	for i, a := range d.Antennas {
		if a.AP == ap {
			idx = append(idx, i)
		}
	}
	return idx
}

// ClientsOf returns the client indices associated with AP ap.
func (d *Deployment) ClientsOf(ap int) []int {
	var idx []int
	for j, a := range d.ClientAP {
		if a == ap {
			idx = append(idx, j)
		}
	}
	return idx
}

// NumAPs returns the number of APs.
func (d *Deployment) NumAPs() int { return len(d.APs) }

// Correlated reports whether the channel model should correlate fading
// within AP antenna groups (true for CAS arrays).
func (d *Deployment) Correlated() bool { return d.Mode == CAS }

// Model builds a channel model for this deployment.
func (d *Deployment) Model(p channel.Params, src *rng.Source) *channel.Model {
	return channel.NewModel(p, d.Antennas, d.Clients, d.Correlated(), src)
}

// SingleAP generates a one-AP deployment at the origin with cfg.
func SingleAP(cfg Config, src *rng.Source) *Deployment {
	return MultiAP(cfg, []geom.Point{geom.Pt(0, 0)}, src)
}

// MultiAP generates a deployment with APs at the given positions, each
// with cfg.AntennasPerAP antennas and cfg.ClientsPerAP clients placed
// uniformly within its coverage disc. Clients associate with the nearest
// AP by geometry.
func MultiAP(cfg Config, aps []geom.Point, src *rng.Source) *Deployment {
	d := &Deployment{Mode: cfg.Mode, Cfg: cfg, APs: aps}
	antSrc := src.Split("antennas")
	cliSrc := src.Split("clients")
	for ap, pos := range aps {
		d.placeAntennas(ap, pos, antSrc.SplitN("ap", ap))
	}
	for ap, pos := range aps {
		s := cliSrc.SplitN("ap", ap)
		for c := 0; c < cfg.ClientsPerAP; c++ {
			d.Clients = append(d.Clients, d.placeClient(pos, s))
		}
	}
	d.associate()
	return d
}

// placeAntennas adds AP ap's antennas. CAS antennas form a λ/2-spaced
// linear array at the AP; DAS antennas are sampled in the configured
// annulus subject to the sector rule and minimum-separation constraints.
func (d *Deployment) placeAntennas(ap int, pos geom.Point, src *rng.Source) {
	cfg := d.Cfg
	if cfg.Mode == CAS {
		for i := 0; i < cfg.AntennasPerAP; i++ {
			d.Antennas = append(d.Antennas, channel.Antenna{
				Pos:   geom.Pt(pos.X+float64(i)*HalfWavelength, pos.Y),
				AP:    ap,
				Local: i,
			})
		}
		return
	}
	inner := cfg.DASInnerFrac * cfg.CoverageRadius
	outer := cfg.DASOuterFrac * cfg.CoverageRadius
	sector := cfg.SectorRuleDeg * math.Pi / 180
	var placed []geom.Point
	for i := 0; i < cfg.AntennasPerAP; i++ {
		ok := false
		var cand geom.Point
		for trial := 0; trial < max(1, cfg.PlacementTrials); trial++ {
			x, y := src.PointInAnnulus(inner, outer)
			cand = geom.Pt(pos.X+x, pos.Y+y)
			if d.antennaOK(pos, cand, placed, sector) {
				ok = true
				break
			}
		}
		if !ok {
			// Rejection budget exhausted: restart this AP on an
			// evenly-spaced ring, which satisfies the sector rule for
			// up to floor(2π/sector) antennas by construction. Try many
			// phases to also satisfy the cross-AP separation rule.
			d.Antennas = d.Antennas[:len(d.Antennas)-i]
			r := (inner + outer) / 2
			ring := func(phase float64) []geom.Point {
				pts := make([]geom.Point, cfg.AntennasPerAP)
				for q := range pts {
					theta := phase + 2*math.Pi*float64(q)/float64(cfg.AntennasPerAP)
					pts[q] = geom.Pt(pos.X+r*math.Cos(theta), pos.Y+r*math.Sin(theta))
				}
				return pts
			}
			var pts []geom.Point
			for attempt := 0; attempt < 64; attempt++ {
				pts = ring(src.Uniform(0, 2*math.Pi))
				valid := true
				for q, p := range pts {
					if !d.antennaOK(pos, p, pts[:q], 0) {
						valid = false
						break
					}
				}
				if valid {
					break
				}
			}
			for q, p := range pts {
				d.Antennas = append(d.Antennas, channel.Antenna{Pos: p, AP: ap, Local: q})
			}
			return
		}
		placed = append(placed, cand)
		d.Antennas = append(d.Antennas, channel.Antenna{Pos: cand, AP: ap, Local: i})
	}
}

func (d *Deployment) antennaOK(apPos, cand geom.Point, placed []geom.Point, sector float64) bool {
	if d.Cfg.Region != nil && !d.Cfg.Region.Contains(cand) {
		return false
	}
	for _, p := range placed {
		if sector > 0 && geom.WithinSector(apPos, cand, p, sector) {
			return false
		}
	}
	if d.Cfg.MinAntennaSep > 0 {
		for _, a := range d.Antennas {
			if a.Pos.Dist(cand) < d.Cfg.MinAntennaSep {
				return false
			}
		}
		for _, p := range placed {
			if p.Dist(cand) < d.Cfg.MinAntennaSep {
				return false
			}
		}
	}
	return true
}

// placeClient samples a client position uniformly in the AP's coverage
// disc, at least ClientMinDist from every antenna.
func (d *Deployment) placeClient(apPos geom.Point, src *rng.Source) geom.Point {
	for trial := 0; trial < max(1, d.Cfg.PlacementTrials); trial++ {
		x, y := src.PointInDisc(d.Cfg.CoverageRadius)
		cand := geom.Pt(apPos.X+x, apPos.Y+y)
		ok := d.Cfg.Region == nil || d.Cfg.Region.Contains(cand)
		if ok && d.Cfg.ClientMinDist > 0 {
			for _, a := range d.Antennas {
				if a.Pos.Dist(cand) < d.Cfg.ClientMinDist {
					ok = false
					break
				}
			}
		}
		if ok {
			return cand
		}
	}
	x, y := src.PointInDisc(d.Cfg.CoverageRadius)
	return geom.Pt(apPos.X+x, apPos.Y+y)
}

// ReplaceClients re-draws every client position from src, keeping the
// APs, antennas and per-AP client counts fixed, and re-associates —
// the population-churn primitive used by sim.ClientChurn. The draw
// discipline matches MultiAP's (one child stream per AP), so a churned
// deployment is statistically identical to a freshly generated one with
// the same infrastructure.
func (d *Deployment) ReplaceClients(src *rng.Source) {
	d.Clients = d.Clients[:0]
	for ap, pos := range d.APs {
		s := src.SplitN("ap", ap)
		for c := 0; c < d.Cfg.ClientsPerAP; c++ {
			d.Clients = append(d.Clients, d.placeClient(pos, s))
		}
	}
	d.associate()
}

// associate assigns each client to the nearest AP.
func (d *Deployment) associate() {
	d.ClientAP = make([]int, len(d.Clients))
	for j, c := range d.Clients {
		best, bestD := 0, math.Inf(1)
		for ap, pos := range d.APs {
			if dist := pos.Dist(c); dist < bestD {
				best, bestD = ap, dist
			}
		}
		d.ClientAP[j] = best
	}
}

// ThreeAPTestbed generates the §5.4 testbed: three APs, inter-AP distance
// ≈15 m (equilateral triangle), each with cfg antennas and clients.
func ThreeAPTestbed(cfg Config, src *rng.Source) *Deployment {
	const side = 15.0
	h := side * math.Sqrt(3) / 2
	aps := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(side, 0),
		geom.Pt(side/2, h),
	}
	return MultiAP(cfg, aps, src)
}

// LargeScaleConfig parameterises the §5.5 8-AP simulation.
type LargeScaleConfig struct {
	Config
	Region      geom.Rect // deployment region (60×60 m in the paper)
	NumAPs      int
	MaxOverhear int     // no CAS AP may overhear more than this many others
	CSRangeM    float64 // carrier-sense range used for the overhear rule
	Trials      int     // rejection budget for AP placement
}

// DefaultLargeScale returns the paper's 8-AP 60×60 m configuration: APs
// placed so none overhears more than 3 others, DAS antennas within the
// AP's coverage, no two antennas within 5 m.
func DefaultLargeScale(mode Mode) LargeScaleConfig {
	cfg := DefaultConfig(mode)
	if mode == DAS {
		// §5.5: no two (distributed) antennas within 5 m. Co-located
		// arrays are λ/2-spaced by definition.
		cfg.MinAntennaSep = 5
	}
	cfg.PlacementTrials = 1500
	return LargeScaleConfig{
		Config:      cfg,
		Region:      geom.Square(52),
		NumAPs:      8,
		MaxOverhear: 3,
		CSRangeM:    18,
		Trials:      4000,
	}
}

// LargeScale generates an 8-AP (configurable) deployment satisfying the
// §5.5 constraints. It returns an error if a compliant AP placement can
// not be found within the trial budget.
func LargeScale(cfg LargeScaleConfig, src *rng.Source) (*Deployment, error) {
	inner := cfg.Config
	region := cfg.Region
	inner.Region = &region
	// Antenna placement is rejection-sampled per AP; in crowded corners a
	// single pass can exhaust its budget and fall back to a ring that
	// violates the global ≥MinAntennaSep rule. Retry whole deployments —
	// and, if a given AP layout proves unsatisfiable, fresh AP layouts —
	// until the constraint holds globally.
	const (
		apLayouts = 16
		attempts  = 32
	)
	var d *Deployment
	found := false
placement:
	for layout := 0; layout < apLayouts; layout++ {
		aps, err := placeAPs(cfg, src.SplitN("aps", layout))
		if err != nil {
			continue
		}
		for attempt := 0; attempt < attempts; attempt++ {
			d = MultiAP(inner, aps, src.SplitN("attempt", layout*attempts+attempt))
			if cfg.MinAntennaSep <= 0 || antennaSepOK(d, cfg.MinAntennaSep) {
				found = true
				break placement
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("topology: could not satisfy %v m antenna separation in %d layouts",
			cfg.MinAntennaSep, apLayouts)
	}
	for i := range d.Antennas {
		d.Antennas[i].Pos = cfg.Region.Clamp(d.Antennas[i].Pos)
	}
	for j := range d.Clients {
		d.Clients[j] = cfg.Region.Clamp(d.Clients[j])
	}
	d.associate()
	return d, nil
}

// antennaSepOK reports whether all antenna pairs respect the minimum
// separation.
func antennaSepOK(d *Deployment, sep float64) bool {
	for i := 0; i < len(d.Antennas); i++ {
		for j := i + 1; j < len(d.Antennas); j++ {
			if d.Antennas[i].Pos.Dist(d.Antennas[j].Pos) < sep {
				return false
			}
		}
	}
	return true
}

// placeAPs rejection-samples AP positions so that no AP is within CS range
// of more than MaxOverhear others, APs keep enough mutual distance that
// their antenna annuli are jointly satisfiable, and each AP sits far
// enough from the region border for its antenna annulus to fit inside.
func placeAPs(cfg LargeScaleConfig, src *rng.Source) ([]geom.Point, error) {
	var aps []geom.Point
	overhears := func(cand geom.Point, aps []geom.Point) int {
		n := 0
		for _, p := range aps {
			if p.Dist(cand) <= cfg.CSRangeM {
				n++
			}
		}
		return n
	}
	outer := cfg.DASOuterFrac * cfg.CoverageRadius
	inset := geom.NewRect(cfg.Region.X0+outer, cfg.Region.Y0+outer,
		cfg.Region.X1-outer, cfg.Region.Y1-outer)
	minAPSep := cfg.MinAntennaSep * 2
	for len(aps) < cfg.NumAPs {
		placedOne := false
		for trial := 0; trial < max(1, cfg.Trials); trial++ {
			cand := geom.Pt(
				src.Uniform(inset.X0, inset.X1),
				src.Uniform(inset.Y0, inset.Y1),
			)
			if overhears(cand, aps) > cfg.MaxOverhear {
				continue
			}
			tooClose := false
			for _, p := range aps {
				if p.Dist(cand) < minAPSep {
					tooClose = true
					break
				}
			}
			if tooClose {
				continue
			}
			// Also ensure the candidate does not push an existing AP
			// over the limit.
			ok := true
			for _, p := range aps {
				if p.Dist(cand) <= cfg.CSRangeM && overhears(p, append(aps, cand))-1 > cfg.MaxOverhear {
					ok = false
					break
				}
			}
			if ok {
				aps = append(aps, cand)
				placedOne = true
				break
			}
		}
		if !placedOne {
			return nil, fmt.Errorf("topology: cannot place AP %d within %d trials", len(aps), cfg.Trials)
		}
	}
	return aps, nil
}

// Validate checks a deployment against its own configuration constraints,
// returning a descriptive error for the first violation. Used by tests
// and the midas-topo tool.
func (d *Deployment) Validate() error {
	cfg := d.Cfg
	if len(d.Antennas) != len(d.APs)*cfg.AntennasPerAP {
		return fmt.Errorf("topology: %d antennas for %d APs × %d",
			len(d.Antennas), len(d.APs), cfg.AntennasPerAP)
	}
	if len(d.ClientAP) != len(d.Clients) {
		return fmt.Errorf("topology: association table size mismatch")
	}
	if cfg.Mode == DAS {
		sector := cfg.SectorRuleDeg * math.Pi / 180
		for ap := range d.APs {
			idx := d.AntennasOf(ap)
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					pa, pb := d.Antennas[idx[a]].Pos, d.Antennas[idx[b]].Pos
					if sector > 0 && geom.WithinSector(d.APs[ap], pa, pb, sector*0.999) {
						return fmt.Errorf("topology: AP %d antennas %d,%d violate %v° sector rule",
							ap, a, b, cfg.SectorRuleDeg)
					}
				}
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
