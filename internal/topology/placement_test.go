package topology

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
)

func testObjective(seed int64) (*PlacementObjective, channel.Params) {
	p := channel.Default()
	return &PlacementObjective{
		Params:   p,
		Field:    p.NewField(seed),
		Spots:    coverageSpots(13, 2.5),
		Quantile: 0.05,
	}, p
}

func TestObjectiveScoreOrdersCoverage(t *testing.T) {
	obj, _ := testObjective(1)
	// A spread-out square of antennas must beat four stacked at a point.
	spread := []geom.Point{geom.Pt(6, 6), geom.Pt(-6, 6), geom.Pt(6, -6), geom.Pt(-6, -6)}
	stacked := []geom.Point{geom.Pt(6, 6), geom.Pt(6, 6), geom.Pt(6, 6), geom.Pt(6, 6)}
	if obj.Score(spread) <= obj.Score(stacked) {
		t.Errorf("spread %.1f should beat stacked %.1f", obj.Score(spread), obj.Score(stacked))
	}
}

func TestObjectiveEmptySpots(t *testing.T) {
	obj, _ := testObjective(2)
	obj.Spots = nil
	if !math.IsInf(obj.Score([]geom.Point{{}}), -1) {
		t.Error("no spots should score -Inf")
	}
}

func TestOptimizePlacementRespectsRules(t *testing.T) {
	cfg := DefaultConfig(DAS)
	cfg.MinAntennaSep = 3
	obj, _ := testObjective(3)
	pos := OptimizePlacement(cfg, geom.Pt(0, 0), obj, 40, rng.New(4))
	if len(pos) != cfg.AntennasPerAP {
		t.Fatalf("placed %d antennas", len(pos))
	}
	inner := cfg.DASInnerFrac * cfg.CoverageRadius
	outer := cfg.DASOuterFrac * cfg.CoverageRadius
	for i, p := range pos {
		r := p.Norm()
		if r < inner-1e-9 || r > outer+1e-9 {
			t.Errorf("antenna %d at radius %.2f outside [%.2f, %.2f]", i, r, inner, outer)
		}
	}
	if d := geom.MinDist(pos); d < cfg.MinAntennaSep-1e-9 {
		t.Errorf("min separation %.2f < %v", d, cfg.MinAntennaSep)
	}
}

func TestOptimizedBeatsRandomPlacement(t *testing.T) {
	// The §7 open problem: optimised placement should dominate random
	// placement on the coverage objective across seeds.
	wins, trials := 0, 12
	for seed := int64(0); seed < int64(trials); seed++ {
		cfg := DefaultConfig(DAS)
		p := channel.Default()
		fieldSeed := rng.New(seed).Split("field").Seed()
		obj := &PlacementObjective{
			Params: p, Field: p.NewField(fieldSeed),
			Spots: coverageSpots(cfg.CoverageRadius, 2.5), Quantile: 0.05,
		}
		random := SingleAP(cfg, rng.New(seed))
		var randomPos []geom.Point
		for _, a := range random.Antennas {
			randomPos = append(randomPos, a.Pos)
		}
		optimized := OptimizedSingleAP(cfg, p, fieldSeed, 30, rng.New(seed))
		var optPos []geom.Point
		for _, a := range optimized.Antennas {
			optPos = append(optPos, a.Pos)
		}
		if obj.Score(optPos) >= obj.Score(randomPos) {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Errorf("optimised placement won only %d/%d trials", wins, trials)
	}
}

func TestOptimizedSingleAPKeepsClients(t *testing.T) {
	cfg := DefaultConfig(DAS)
	p := channel.Default()
	a := SingleAP(cfg, rng.New(9))
	b := OptimizedSingleAP(cfg, p, 123, 10, rng.New(9))
	if len(a.Clients) != len(b.Clients) {
		t.Fatal("client counts differ")
	}
	for j := range a.Clients {
		if a.Clients[j] != b.Clients[j] {
			t.Errorf("client %d moved: %v vs %v", j, a.Clients[j], b.Clients[j])
		}
	}
}

func TestCoverageSpotsInsideDisc(t *testing.T) {
	spots := coverageSpots(10, 2)
	if len(spots) == 0 {
		t.Fatal("no spots")
	}
	for _, s := range spots {
		if s.Norm() > 10+1e-9 {
			t.Errorf("spot %v outside disc", s)
		}
	}
}
