package topology

import (
	"math"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Antenna-placement optimisation — the problem the paper leaves open in
// §7 ("We leave the problem of optimizing placement of antennas open for
// future work"). The optimiser treats placement as a coverage max-min
// problem: choose antenna positions from the allowed annulus so the worst
// measurement spot's best-antenna SNR is maximised, greedily (a k-center
// style heuristic), while honouring the same deployment rules the random
// generator enforces (sector rule, minimum separation, region bounds).

// PlacementObjective evaluates a candidate antenna set: the metric is the
// q-quantile of best-antenna mean SNR over the sample spots (q = 0 gives
// pure max-min; the default 0.05 ignores hopeless corners).
type PlacementObjective struct {
	Params   channel.Params
	Field    *channel.ShadowField
	Spots    []geom.Point
	Quantile float64
}

// Score returns the objective value for the antenna positions.
func (o *PlacementObjective) Score(antennas []geom.Point) float64 {
	qs := stats.NewSample()
	noise := o.Params.NoiseLinear()
	for _, s := range o.Spots {
		best := math.Inf(-1)
		for _, a := range antennas {
			pw := o.Params.PowerAtPoint(a, s, o.Params.TxPowerDBm) * o.Field.Shadow(a, s)
			if snr := stats.DB(pw / noise); snr > best {
				best = snr
			}
		}
		qs.Add(best)
	}
	q := o.Quantile
	if q <= 0 {
		q = 0.05
	}
	v, err := qs.Quantile(q)
	if err != nil {
		return math.Inf(-1)
	}
	return v
}

// OptimizePlacement greedily selects cfg.AntennasPerAP antenna positions
// for an AP at apPos from `candidates` random draws per slot, maximising
// the objective subject to the deployment rules. It returns the chosen
// positions (strongest configuration found).
func OptimizePlacement(cfg Config, apPos geom.Point, obj *PlacementObjective, candidates int, src *rng.Source) []geom.Point {
	inner := cfg.DASInnerFrac * cfg.CoverageRadius
	outer := cfg.DASOuterFrac * cfg.CoverageRadius
	sector := cfg.SectorRuleDeg * math.Pi / 180
	valid := func(cand geom.Point, placed []geom.Point) bool {
		if cfg.Region != nil && !cfg.Region.Contains(cand) {
			return false
		}
		for _, p := range placed {
			if sector > 0 && geom.WithinSector(apPos, cand, p, sector) {
				return false
			}
			if cfg.MinAntennaSep > 0 && p.Dist(cand) < cfg.MinAntennaSep {
				return false
			}
		}
		return true
	}
	var placed []geom.Point
	for slot := 0; slot < cfg.AntennasPerAP; slot++ {
		bestScore := math.Inf(-1)
		var best geom.Point
		found := false
		for c := 0; c < candidates; c++ {
			x, y := src.PointInAnnulus(inner, outer)
			cand := geom.Pt(apPos.X+x, apPos.Y+y)
			if !valid(cand, placed) {
				continue
			}
			score := obj.Score(append(placed, cand))
			if score > bestScore {
				bestScore, best, found = score, cand, true
			}
		}
		if !found {
			// Constraints too tight for this slot; fall back to any
			// annulus point so the deployment stays complete.
			x, y := src.PointInAnnulus(inner, outer)
			best = geom.Pt(apPos.X+x, apPos.Y+y)
		}
		placed = append(placed, best)
	}
	return placed
}

// OptimizedSingleAP builds a single-AP DAS deployment whose antennas are
// placement-optimised against the given obstruction field, with clients
// placed exactly as SingleAP would place them (so random-vs-optimised
// comparisons are client-matched).
func OptimizedSingleAP(cfg Config, p channel.Params, fieldSeed int64, candidates int, src *rng.Source) *Deployment {
	d := SingleAP(cfg, src) // gives antennas (replaced below) and clients
	field := p.NewField(fieldSeed)
	obj := &PlacementObjective{
		Params:   p,
		Field:    field,
		Spots:    coverageSpots(cfg.CoverageRadius, 2.0),
		Quantile: 0.05,
	}
	pos := OptimizePlacement(cfg, d.APs[0], obj, candidates, src.Split("optimize"))
	best, bestScore := pos, obj.Score(pos)
	// Multi-start: greedy can get trapped by its first slots, so also
	// score a handful of random valid layouts and keep the winner.
	restarts := src.Split("restarts")
	for r := 0; r < 8; r++ {
		alt := SingleAP(cfg, restarts.SplitN("alt", r))
		altPos := make([]geom.Point, 0, len(alt.Antennas))
		for _, a := range alt.Antennas {
			altPos = append(altPos, a.Pos)
		}
		if s := obj.Score(altPos); s > bestScore {
			best, bestScore = altPos, s
		}
	}
	for i := range d.Antennas {
		d.Antennas[i].Pos = best[i]
	}
	return d
}

// coverageSpots samples the coverage disc on a grid for the objective.
func coverageSpots(radius, spacing float64) []geom.Point {
	var spots []geom.Point
	geom.Grid(geom.NewRect(-radius, -radius, radius, radius), spacing, func(p geom.Point) {
		if p.Norm() <= radius {
			spots = append(spots, p)
		}
	})
	return spots
}
