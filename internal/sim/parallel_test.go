package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
)

// These tests pin the runner-rewiring guarantee: every experiment driver
// produces bit-identical output at any pool size, because each topology
// task derives its randomness from (seed, index) alone and results are
// collected in task order.

// withParallelism runs fn under the given pool size, restoring the
// package knob afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	old := Parallelism
	Parallelism = n
	defer func() { Parallelism = old }()
	fn()
}

func sameSamples(t *testing.T, name string, a, b *stats.Sample) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: n=%d vs n=%d", name, a.N(), b.N())
	}
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("%s: value %d differs: %v vs %v", name, i, av[i], bv[i])
		}
	}
}

// TestFig12ParallelDeterminism covers a MAC-layer experiment: the
// spatial-reuse sweep must produce identical per-topology results at
// parallelism 1 and 8.
func TestFig12ParallelDeterminism(t *testing.T) {
	const topos, seed = 12, 77
	var seq, par []Fig12Result
	withParallelism(t, 1, func() { seq = Fig12SpatialReuse(topos, seed) })
	withParallelism(t, 8, func() { par = Fig12SpatialReuse(topos, seed) })
	if len(seq) != topos || len(par) != topos {
		t.Fatalf("lengths %d, %d, want %d", len(seq), len(par), topos)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("topology %d: sequential %+v vs parallel %+v", i, seq[i], par[i])
		}
	}
}

// TestFig15ParallelDeterminism covers an end-to-end experiment: the full
// closed-loop DES (association, MAC contention, precoding, capacity
// accounting) must be bit-identical across pool sizes.
func TestFig15ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("DES runs are slow")
	}
	o := E2EOpts{Topologies: 4, SimTime: 60 * time.Millisecond, Seed: 2014}
	var seqC, seqM, parC, parM *stats.Sample
	withParallelism(t, 1, func() { seqC, seqM = Fig15EndToEnd(o) })
	withParallelism(t, 8, func() { parC, parM = Fig15EndToEnd(o) })
	sameSamples(t, "fig15 CAS", seqC, parC)
	sameSamples(t, "fig15 MIDAS", seqM, parM)
}

// TestFig13ParallelDeterminism covers an aggregating experiment whose
// result is summed across tasks (and keeps task 0's example maps).
func TestFig13ParallelDeterminism(t *testing.T) {
	const deployments, seed = 4, 9
	var seq, par DeadzoneResult
	withParallelism(t, 1, func() { seq = Fig13Deadzones(deployments, seed) })
	withParallelism(t, 8, func() { par = Fig13Deadzones(deployments, seed) })
	if seq.Spots != par.Spots || seq.CASDeadspots != par.CASDeadspots || seq.DASDeadspots != par.DASDeadspots {
		t.Fatalf("tallies differ: %+v vs %+v", seq, par)
	}
	if len(seq.CASMap) != len(par.CASMap) || seq.MapCols != par.MapCols {
		t.Fatalf("example maps differ in shape")
	}
	for i := range seq.CASMap {
		if seq.CASMap[i] != par.CASMap[i] || seq.DASMap[i] != par.DASMap[i] {
			t.Fatalf("example map cell %d differs", i)
		}
	}
}

// TestSweepErrPropagation verifies a failing topology task surfaces as
// an error through the experiment drivers' shared parallel path, and
// that the sweep stops early instead of draining every task.
func TestSweepErrPropagation(t *testing.T) {
	var started atomic.Int64
	withParallelism(t, 4, func() {
		_, err := sweepErr(10000, 1, "errprop", 0, func(tIdx int, src *rng.Source) (int, error) {
			started.Add(1)
			if tIdx >= 2 {
				return 0, fmt.Errorf("topology %d unsatisfiable", tIdx)
			}
			return tIdx, nil
		})
		if err == nil {
			t.Fatal("want error from failing task")
		}
		if !strings.Contains(err.Error(), "unsatisfiable") {
			t.Fatalf("error %v does not carry the task failure", err)
		}
	})
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks ran after early failure, want far fewer than 10000", n)
	}
}

// TestZeroTopologySweep pins the degenerate case: experiments with no
// topologies return empty, non-nil samples.
func TestZeroTopologySweep(t *testing.T) {
	o := E2EOpts{Topologies: 0, SimTime: time.Millisecond, Seed: 1}
	cas, midas, err := Fig16LargeScale(o)
	if err != nil {
		t.Fatalf("zero-topology sweep: %v", err)
	}
	if cas.N() != 0 || midas.N() != 0 {
		t.Fatalf("zero-topology sweep produced samples")
	}
}
