package sim

import (
	"repro/internal/channel"
	"repro/internal/topology"
)

// This file defines the override structs through which declarative
// scenario specs (internal/scenario) parameterize the figure drivers.
// Every field is optional; the zero value of each struct is a strict
// no-op, so drivers called with zero overrides reproduce the paper
// experiments bit-for-bit.

// EnvOverrides adjusts an experiment environment's channel and coverage
// defaults. Nil fields keep the environment's own values (the office
// presets of experiments_phy.go, channel.Default() elsewhere).
type EnvOverrides struct {
	ShadowSigmaDB  *float64
	CASCorrelation *float64
	WallDB         *float64
	MaxWallDB      *float64
	RoomW          *float64
	RoomH          *float64
	CoverageRadius *float64
}

// Params returns p with the channel-level overrides applied.
func (e EnvOverrides) Params(p channel.Params) channel.Params {
	if e.ShadowSigmaDB != nil {
		p.ShadowSigmaDB = *e.ShadowSigmaDB
	}
	if e.CASCorrelation != nil {
		p.CASCorrelation = *e.CASCorrelation
	}
	if e.WallDB != nil {
		p.WallDB = *e.WallDB
	}
	if e.MaxWallDB != nil {
		p.MaxWallDB = *e.MaxWallDB
	}
	if e.RoomW != nil {
		p.RoomW = *e.RoomW
	}
	if e.RoomH != nil {
		p.RoomH = *e.RoomH
	}
	return p
}

// Topology returns cfg with the coverage override applied.
func (e EnvOverrides) Topology(cfg topology.Config) topology.Config {
	if e.CoverageRadius != nil {
		cfg.CoverageRadius = *e.CoverageRadius
	}
	return cfg
}

// PhyOpts parameterizes the PHY-layer figure drivers of
// experiments_phy.go. Antennas and Clients of 0 select the paper
// defaults: 4 antennas, and as many clients as antennas.
type PhyOpts struct {
	Topologies int
	Seed       int64
	Antennas   int
	Clients    int
	Env        EnvOverrides
	// Parallelism bounds the topology-sweep worker pool for this call;
	// <= 0 falls back to the package-global Parallelism (then
	// GOMAXPROCS). Per-call so concurrent jobs in one process can run
	// at different widths without sharing mutable state.
	Parallelism int
}

func (o PhyOpts) antennas() int {
	if o.Antennas > 0 {
		return o.Antennas
	}
	return 4
}

func (o PhyOpts) clients() int {
	if o.Clients > 0 {
		return o.Clients
	}
	return o.antennas()
}
