package sim

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestTraceDrivenMatchesDirect(t *testing.T) {
	src := rng.New(71)
	dep := topology.SingleAP(topology.DefaultConfig(topology.DAS), src.Split("topo"))
	p := channel.Default()
	tr, err := RecordDeployment(dep, p, 8, src.Split("rec"))
	if err != nil {
		t.Fatal(err)
	}
	bal, err := TraceDrivenCapacity(tr, p, PrecoderPowerBalanced)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := TraceDrivenCapacity(tr, p, PrecoderNaive)
	if err != nil {
		t.Fatal(err)
	}
	if bal.N() != 8 || naive.N() != 8 {
		t.Fatalf("frame counts %d/%d", bal.N(), naive.N())
	}
	mb, _ := bal.Mean()
	mn, _ := naive.Mean()
	if mb < mn {
		t.Errorf("trace-driven balanced %v should be ≥ naive %v", mb, mn)
	}
	// Replay determinism: a second replay gives identical values.
	bal2, _ := TraceDrivenCapacity(tr, p, PrecoderPowerBalanced)
	a, b := bal.Values(), bal2.Values()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace replay not deterministic")
		}
	}
}

func TestTraceDrivenMoreClientsThanAntennas(t *testing.T) {
	src := rng.New(73)
	cfg := topology.DefaultConfig(topology.DAS)
	cfg.ClientsPerAP = 6 // 6 clients, 4 antennas
	dep := topology.SingleAP(cfg, src.Split("topo"))
	p := channel.Default()
	tr, err := RecordDeployment(dep, p, 3, src.Split("rec"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TraceDrivenCapacity(tr, p, PrecoderPowerBalanced); err != nil {
		t.Fatalf("wide trace replay failed: %v", err)
	}
}
