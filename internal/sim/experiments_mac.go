package sim

import (
	"math"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file implements the MAC-layer experiments of §5.3: spatial reuse
// (Fig 12), deadzone maps (Fig 13 / §5.3.3) and hidden-terminal counting
// (§5.3.4). These are static geometric computations over topologies,
// exactly like the paper's measurement methodology.

// senses reports whether a receiver at rx detects a transmitter at tx
// (single antenna, full power) through the obstruction field.
func senses(p channel.Params, f *channel.ShadowField, tx, rx geom.Point, thresholdDBm float64) bool {
	pw := p.PowerAtPoint(tx, rx, p.TxPowerDBm) * f.Shadow(tx, rx)
	return pw >= stats.Milliwatt(thresholdDBm)
}

// sensesAny reports whether rx detects any of the transmitters.
func sensesAny(p channel.Params, f *channel.ShadowField, txs []geom.Point, rx geom.Point, thresholdDBm float64) bool {
	for _, tx := range txs {
		if senses(p, f, tx, rx, thresholdDBm) {
			return true
		}
	}
	return false
}

// Fig12Result is one topology's simultaneous-transmission count.
type Fig12Result struct {
	MIDASStreams int
	CASStreams   int
	Ratio        float64
}

// Fig12SpatialReuse reproduces Figure 12: three overhearing APs; random
// transmissions are enabled at AP A, then the antennas of AP B that still
// sense an idle medium are enabled, then AP C's (§5.3.1). The same
// procedure at AP granularity gives the CAS count. Returns per-topology
// results; the paper plots the CDF of MIDAS/CAS.
func Fig12SpatialReuse(topos int, seed int64) []Fig12Result {
	return Fig12SpatialReuseOpts(topos, seed, EnvOverrides{}, 0)
}

// Fig12SpatialReuseOpts is Fig12SpatialReuse with environment
// overrides and an explicit sweep-pool width (<= 0 falls back to the
// Parallelism global); the zero values reproduce the paper run.
func Fig12SpatialReuseOpts(topos int, seed int64, env EnvOverrides, parallel int) []Fig12Result {
	p := env.Params(channel.Default())
	csDBm := -82.0
	return sweep(topos, seed, "fig12", parallel, func(t int, src *rng.Source) Fig12Result {
		cfg := env.Topology(topology.DefaultConfig(topology.DAS))
		dep := topology.ThreeAPTestbed(cfg, src.Split("topo"))
		// §5.3.1 premise: the three APs overhear each other; choose a
		// floor plan satisfying it.
		var f *channel.ShadowField
		for i := 0; i < 64; i++ {
			f = p.NewField(src.SplitN("field", i).Seed())
			if allPairsOverhear(dep, p, f) {
				break
			}
		}

		// MIDAS: antenna granularity.
		nA := 1 + src.Intn(4)
		perm := src.Perm(4)
		var active []geom.Point
		for i := 0; i < nA; i++ {
			active = append(active, dep.Antennas[dep.AntennasOf(0)[perm[i]]].Pos)
		}
		midas := nA
		for _, ap := range []int{1, 2} {
			var enabled []geom.Point
			for _, k := range dep.AntennasOf(ap) {
				pos := dep.Antennas[k].Pos
				if !sensesAny(p, f, active, pos, csDBm) {
					enabled = append(enabled, pos)
					midas++
				}
			}
			active = append(active, enabled...)
		}

		// CAS: AP granularity — an AP transmits all four streams or none.
		casActive := []geom.Point{dep.APs[0]}
		cas := 4
		for _, ap := range []int{1, 2} {
			if !sensesAny(p, f, casActive, dep.APs[ap], csDBm) {
				casActive = append(casActive, dep.APs[ap])
				cas += 4
			}
		}
		return Fig12Result{
			MIDASStreams: midas,
			CASStreams:   cas,
			Ratio:        float64(midas) / float64(cas),
		}
	})
}

// DeadzoneResult summarises one deployment's coverage map.
type DeadzoneResult struct {
	CASDeadspots int
	DASDeadspots int
	Spots        int
	// Map is a sampled boolean deadzone grid (true = dead) for one
	// deployment, row-major with MapCols columns — Fig 13's map.
	CASMap, DASMap []bool
	MapCols        int
}

// minServiceSNRdB is the SNR below which a spot counts as dead (cannot
// sustain the lowest MCS with margin).
const minServiceSNRdB = 4.0

// Fig13Deadzones reproduces Figure 13 / §5.3.3: a 0.5 m measurement grid
// over the coverage area; a spot is dead when no AP antenna delivers a
// usable mean SNR. Averages over `deployments` random DAS layouts (the
// CAS layout is fixed, as in the paper).
func Fig13Deadzones(deployments int, seed int64) DeadzoneResult {
	return Fig13DeadzonesOpts(deployments, seed, EnvOverrides{}, 0)
}

// Fig13DeadzonesOpts is Fig13Deadzones with environment overrides and
// an explicit sweep-pool width (<= 0 falls back to the Parallelism
// global).
func Fig13DeadzonesOpts(deployments int, seed int64, env EnvOverrides, parallel int) DeadzoneResult {
	p := env.Params(channel.Default())
	// deadzoneTask is one deployment's tally; the example maps are kept
	// only for deployment 0, as before.
	type deadzoneTask struct {
		casDead, dasDead, spots int
		casMap, dasMap          []bool
		cols                    int
	}
	tasks := sweep(deployments, seed, "fig13", parallel, func(d int, src *rng.Source) deadzoneTask {
		var out deadzoneTask
		casDep := topology.SingleAP(env.Topology(topology.DefaultConfig(topology.CAS)), src.Split("cas"))
		dasDep := topology.SingleAP(env.Topology(topology.DefaultConfig(topology.DAS)), src.Split("das"))
		f := p.NewField(src.Split("field").Seed())
		r := env.Topology(topology.DefaultConfig(topology.CAS)).CoverageRadius
		rect := geom.NewRect(-r, -r, r, r)
		geom.Grid(rect, 0.5, func(pt geom.Point) {
			if pt.Dist(geom.Pt(0, 0)) > r {
				return
			}
			out.spots++
			casDead := deadAt(p, f, casDep, pt)
			dasDead := deadAt(p, f, dasDep, pt)
			if casDead {
				out.casDead++
			}
			if dasDead {
				out.dasDead++
			}
			if d == 0 {
				out.casMap = append(out.casMap, casDead)
				out.dasMap = append(out.dasMap, dasDead)
			}
		})
		if d == 0 {
			out.cols = int(math.Floor(2*r/0.5)) + 1
		}
		return out
	})
	var res DeadzoneResult
	for d, t := range tasks {
		res.CASDeadspots += t.casDead
		res.DASDeadspots += t.dasDead
		res.Spots += t.spots
		if d == 0 {
			res.CASMap, res.DASMap, res.MapCols = t.casMap, t.dasMap, t.cols
		}
	}
	return res
}

// deadAt reports whether no antenna of the deployment delivers the
// minimum service SNR at pt (mean link budget through the walls).
func deadAt(p channel.Params, f *channel.ShadowField, dep *topology.Deployment, pt geom.Point) bool {
	noise := p.NoiseLinear()
	for _, a := range dep.Antennas {
		pw := p.PowerAtPoint(a.Pos, pt, p.TxPowerDBm) * f.Shadow(a.Pos, pt)
		if stats.DB(pw/noise) >= minServiceSNRdB {
			return false
		}
	}
	return true
}

// HiddenTerminalResult summarises §5.3.4's measurement.
type HiddenTerminalResult struct {
	CASSpots, DASSpots, Spots int
}

// HiddenTerminals reproduces §5.3.4: two APs placed so they cannot
// (reliably) overhear each other; a 1 m grid spot is a hidden-terminal
// spot when both APs' transmissions reach it at decodable strength while
// the two transmitters cannot sense one another. DAS antennas are
// distributed at 50–75% of the CAS transmission range (§5.3.4), which
// both widens each AP's sensing footprint and evens out the delivered
// power — the two effects the paper credits for the reduction.
func HiddenTerminals(deployments int, seed int64) HiddenTerminalResult {
	return HiddenTerminalsOpts(deployments, seed, EnvOverrides{}, 0)
}

// HiddenTerminalsOpts is HiddenTerminals with environment overrides
// and an explicit sweep-pool width (<= 0 falls back to the
// Parallelism global).
func HiddenTerminalsOpts(deployments int, seed int64, env EnvOverrides, parallel int) HiddenTerminalResult {
	p := env.Params(channel.Default())
	const csDBm = -82.0
	const decodeDBm = -82.0 // conflict-relevant power, not payload decode
	type htTask struct{ cas, das, spots int }
	tasks := sweep(deployments, seed, "ht", parallel, func(d int, src *rng.Source) htTask {
		var out htTask
		cfg := env.Topology(topology.DefaultConfig(topology.DAS))
		cfg.DASInnerFrac = 0.5
		cfg.DASOuterFrac = 0.75
		apDist := 20.0 // near enough for the both-reach midzone to exist
		aps := []geom.Point{geom.Pt(0, 0), geom.Pt(apDist, 0)}
		casDep := topology.MultiAP(env.Topology(topology.DefaultConfig(topology.CAS)), aps, src.Split("cas"))
		dasDep := topology.MultiAP(cfg, aps, src.Split("das"))
		// §5.3.4 premise: the APs cannot overhear each other; choose a
		// floor plan satisfying it.
		var f *channel.ShadowField
		for i := 0; i < 64; i++ {
			f = p.NewField(src.SplitN("field", i).Seed())
			if !senses(p, f, aps[0], aps[1], csDBm) {
				break
			}
		}

		rect := geom.NewRect(-10, -15, apDist+10, 15)
		geom.Grid(rect, 1.0, func(pt geom.Point) {
			out.spots++
			if hiddenAt(p, f, casDep, pt, csDBm, decodeDBm) {
				out.cas++
			}
			if hiddenAt(p, f, dasDep, pt, csDBm, decodeDBm) {
				out.das++
			}
		})
		return out
	})
	var res HiddenTerminalResult
	for _, t := range tasks {
		res.CASSpots += t.cas
		res.DASSpots += t.das
		res.Spots += t.spots
	}
	return res
}

// hiddenAt reports whether pt is a hidden-terminal spot for the two-AP
// deployment: the strongest serving antenna of each AP reaches pt at
// decodable power, yet those two antennas cannot sense each other.
func hiddenAt(p channel.Params, f *channel.ShadowField, dep *topology.Deployment, pt geom.Point, csDBm, decodeDBm float64) bool {
	best := [2]int{-1, -1}
	bestP := [2]float64{math.Inf(-1), math.Inf(-1)}
	for i, a := range dep.Antennas {
		pw := stats.DBm(p.PowerAtPoint(a.Pos, pt, p.TxPowerDBm) * f.Shadow(a.Pos, pt))
		if pw > bestP[a.AP] {
			bestP[a.AP] = pw
			best[a.AP] = i
		}
	}
	if best[0] < 0 || best[1] < 0 {
		return false
	}
	if bestP[0] < decodeDBm || bestP[1] < decodeDBm {
		return false // at most one transmitter matters here
	}
	// An MU transmission radiates from all of an AP's engaged antennas,
	// so the serving antenna of one AP defers if it senses any antenna of
	// the other — the "larger sensed region" the paper credits (§5.3.4).
	a0 := dep.Antennas[best[0]].Pos
	a1 := dep.Antennas[best[1]].Pos
	var ap0, ap1 []geom.Point
	for _, a := range dep.Antennas {
		if a.AP == 0 {
			ap0 = append(ap0, a.Pos)
		} else {
			ap1 = append(ap1, a.Pos)
		}
	}
	return !sensesAny(p, f, ap1, a0, csDBm) && !sensesAny(p, f, ap0, a1, csDBm)
}
