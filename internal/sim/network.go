package sim

import (
	"time"

	"repro/internal/channel"
	"repro/internal/frames"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Network is a running multi-AP wireless network: the deployment, the
// fading channel, the shared medium and one station per AP.
type Network struct {
	Eng      *mac.Engine
	Air      *mac.Air
	Dep      *topology.Deployment
	Model    *channel.Model
	P        channel.Params
	Stations []*Station

	parser frames.Parser
	src    *rng.Source

	// noiseLin and txPowLin cache P.NoiseLinear()/P.TxPowerLinear() —
	// both are math.Pow conversions that the per-TXOP hot path (precode,
	// streamRates, soundingSurvivors) would otherwise recompute on every
	// call.
	noiseLin float64
	txPowLin float64
}

// NewNetwork builds a network over the deployment with one station per AP,
// all using opts. The seed determines fading, backoff draws and sounding
// noise; the deployment carries its own placement randomness.
func NewNetwork(dep *topology.Deployment, p channel.Params, opts StationOpts, src *rng.Source) *Network {
	eng := mac.NewEngine()
	n := &Network{
		Eng:      eng,
		Air:      mac.NewAir(eng, p),
		Dep:      dep,
		Model:    dep.Model(p, src.Split("model")),
		P:        p,
		src:      src,
		noiseLin: p.NoiseLinear(),
		txPowLin: p.TxPowerLinear(),
	}
	// Sensing and payload propagate through the same walls.
	n.Air.Shadow = n.Model.Field()
	for ap := range dep.APs {
		n.Stations = append(n.Stations, newStation(n, ap, opts))
	}
	return n
}

// Run starts every station and processes events for the given duration.
func (n *Network) Run(d time.Duration) {
	for _, st := range n.Stations {
		st.Start()
	}
	n.Eng.Run(n.Eng.Now() + d)
}

// NetworkCapacity returns the aggregate delivered rate in bit/s/Hz —
// total bits·Hz⁻¹ delivered divided by elapsed time, the paper's §5
// capacity metric summed over the network.
func (n *Network) NetworkCapacity() float64 {
	if n.Eng.Now() == 0 {
		return 0
	}
	total := 0.0
	for _, st := range n.Stations {
		total += st.BitsPerHz
	}
	return total / n.Eng.Now().Seconds()
}

// TotalTXOPs sums transmit opportunities across stations.
func (n *Network) TotalTXOPs() int {
	t := 0
	for _, st := range n.Stations {
		t += st.TXOPs
	}
	return t
}

// TotalStreams sums MU-MIMO streams served across stations.
func (n *Network) TotalStreams() int {
	s := 0
	for _, st := range n.Stations {
		s += st.StreamsServed
	}
	return s
}

// MeanGroupSize returns the mean number of clients per MU transmission.
func (n *Network) MeanGroupSize() float64 {
	if n.TotalTXOPs() == 0 {
		return 0
	}
	return float64(n.TotalStreams()) / float64(n.TotalTXOPs())
}

// airTx assembles a mac.Tx from antenna positions and an encoded frame.
func airTx(antennas []geom.Point, powerDBm float64, airtime time.Duration, data []byte) mac.Tx {
	return mac.Tx{Antennas: antennas, PowerDBm: powerDBm, Airtime: airtime, Data: data}
}

// OverhearingSource searches derived random sources until the obstruction
// field it would induce lets every AP pair in the deployment sense each
// other — the §5.4 testbed premise ("three APs that can overhear each
// other"). The paper satisfied it by physically choosing AP spots; we
// satisfy it by choosing among floor plans. Returns the found source (the
// last candidate when none qualifies within tries).
func OverhearingSource(dep *topology.Deployment, p channel.Params, src *rng.Source, tries int) *rng.Source {
	var cand *rng.Source
	for i := 0; i < tries; i++ {
		cand = src.SplitN("overhear", i)
		// Reproduce the field NewNetwork/Model will derive.
		f := p.NewField(cand.Split("model").Split("shadow").Seed())
		if allPairsOverhear(dep, p, f) {
			return cand
		}
	}
	return cand
}

func allPairsOverhear(dep *topology.Deployment, p channel.Params, f *channel.ShadowField) bool {
	for i := 0; i < len(dep.APs); i++ {
		for j := i + 1; j < len(dep.APs); j++ {
			pw := p.PowerAtPoint(dep.APs[i], dep.APs[j], p.TxPowerDBm) * f.Shadow(dep.APs[i], dep.APs[j])
			if stats.DBm(pw) < mac.DefaultCSThresholdDBm {
				return false
			}
		}
	}
	return true
}

// MinAssocSNRdB is the mean link SNR a client needs from at least one of
// its AP's antennas to associate. Clients below it would never join the
// BSS (they cannot decode beacons), so experiment client sets contain
// only associated clients — as any testbed's do.
const MinAssocSNRdB = 6.0

// EnsureAssociated resamples every client position that cannot reach any
// of its AP's antennas at MinAssocSNRdB through the floor plan the model
// source will induce. Deployment geometry stays deterministic in
// (deployment seed, model seed).
func EnsureAssociated(dep *topology.Deployment, p channel.Params, modelSrc *rng.Source) {
	f := p.NewField(modelSrc.Split("shadow").Seed())
	redraw := modelSrc.Split("assoc")
	noise := p.NoiseLinear()
	reachable := func(ap int, pos geom.Point) bool {
		for _, k := range dep.AntennasOf(ap) {
			a := dep.Antennas[k].Pos
			pw := p.PowerAtPoint(a, pos, p.TxPowerDBm) * f.Shadow(a, pos)
			if stats.DB(pw/noise) >= MinAssocSNRdB {
				return true
			}
		}
		return false
	}
	for j := range dep.Clients {
		ap := dep.ClientAP[j]
		for try := 0; try < 200 && !reachable(ap, dep.Clients[j]); try++ {
			x, y := redraw.PointInDisc(dep.Cfg.CoverageRadius)
			cand := geom.Pt(dep.APs[ap].X+x, dep.APs[ap].Y+y)
			if dep.Cfg.Region != nil && !dep.Cfg.Region.Contains(cand) {
				continue
			}
			dep.Clients[j] = cand
		}
	}
}
