package sim

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func TestFig3ShapeDASDropsMore(t *testing.T) {
	cas, das, err := Fig3NaiveScalingDrop(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, md := cas.MustMedian(), das.MustMedian()
	if md <= mc {
		t.Errorf("Fig3: DAS median drop %v should exceed CAS %v", md, mc)
	}
	if mc < 0 {
		t.Errorf("negative capacity drop %v", mc)
	}
}

func TestFig7ShapeDASGainsSNR(t *testing.T) {
	cas, das := Fig7LinkSNR(40, 5)
	mc, md := cas.MustMedian(), das.MustMedian()
	gain := md - mc
	if gain < 2 {
		t.Errorf("Fig7: DAS median SNR gain = %.1f dB, want ≥2 (paper ≈5)", gain)
	}
	if mc < 5 || mc > 30 {
		t.Errorf("Fig7: CAS median SNR %.1f dB outside calibration band", mc)
	}
	t.Logf("Fig7: CAS median %.1f dB, DAS %.1f dB (+%.1f)", mc, md, gain)
}

func TestFig8And9ShapeMIDASWins(t *testing.T) {
	for _, o := range []Office{OfficeA, OfficeB} {
		for _, nAnt := range []int{2, 4} {
			cas, midas, err := FigCapacityCDF(o, nAnt, 40, 7)
			if err != nil {
				t.Fatal(err)
			}
			mc, mm, gain := SummarizeGain(cas, midas)
			// Paper: 40–67% (2 ant) and 45–80% (4 ant). Our 4×4 lands in
			// band; the 2×2 gain is attenuated because uniformly-placed
			// clients can sit behind both of only two distributed
			// antennas, where the testbed's office/corridor clients did
			// not (see EXPERIMENTS.md).
			min := 0.2
			if nAnt == 2 {
				min = 0.0
			}
			if gain < min {
				t.Errorf("%v %dx%d: median gain %.0f%% below %.0f%%",
					o, nAnt, nAnt, gain*100, min*100)
			}
			t.Logf("%v %dx%d: CAS %.1f MIDAS %.1f (+%.0f%%)", o, nAnt, nAnt, mc, mm, gain*100)
		}
	}
}

func TestFig10ShapePrecodingHelpsDASMore(t *testing.T) {
	c, err := Fig10SmartPrecoding(40, 11)
	if err != nil {
		t.Fatal(err)
	}
	casGain, err := stats.MedianGain(c.CASBalanced, c.CASNaive)
	if err != nil {
		t.Fatal(err)
	}
	dasGain, err := stats.MedianGain(c.DASBalanced, c.DASNaive)
	if err != nil {
		t.Fatal(err)
	}
	if dasGain <= casGain {
		t.Errorf("Fig10: DAS precoding gain %.0f%% should exceed CAS %.0f%%",
			dasGain*100, casGain*100)
	}
	if casGain < -0.01 {
		t.Errorf("Fig10: precoding should not hurt CAS (%.1f%%)", casGain*100)
	}
	t.Logf("Fig10: precoding gain CAS %.0f%%, DAS %.0f%% (paper: 12%%, 30%%)",
		casGain*100, dasGain*100)
}

func TestFig11ShapeNearOptimal(t *testing.T) {
	pts, err := Fig11OptimalGap(12, 13, false)
	if err != nil {
		t.Fatal(err)
	}
	var sumM, sumO float64
	for _, p := range pts {
		sumM += p.MIDAS
		sumO += p.Optimal
		if p.MIDAS <= 0 || p.Optimal <= 0 {
			t.Errorf("topology %d: non-positive rate", p.Topology)
		}
	}
	if ratio := sumM / sumO; ratio < 0.90 {
		t.Errorf("Fig11: aggregate MIDAS/optimal = %.3f, want ≥0.90 (paper ≈0.99)", ratio)
	}
}

func TestFig11TestbedVariantCanBeat(t *testing.T) {
	// With the channel moving during the optimiser's long solve, MIDAS
	// should beat the (stale) optimum on a decent fraction of topologies.
	pts, err := Fig11OptimalGap(15, 17, true)
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	for _, p := range pts {
		if p.MIDAS > p.Optimal {
			beats++
		}
	}
	if beats == 0 {
		t.Error("Fig11 testbed: expected MIDAS to beat the stale optimum somewhere")
	}
}

func TestFig12ShapeMoreStreams(t *testing.T) {
	res := Fig12SpatialReuse(30, 19)
	if len(res) != 30 {
		t.Fatalf("got %d topologies", len(res))
	}
	ratios := stats.NewSample()
	worse := 0
	for _, r := range res {
		ratios.Add(r.Ratio)
		if r.Ratio < 1 {
			worse++
		}
	}
	med := ratios.MustMedian()
	if med < 1.1 {
		t.Errorf("Fig12: median stream ratio %.2f, want >1.1 (paper ≈1.5)", med)
	}
	if worse > len(res)/4 {
		t.Errorf("Fig12: %d/%d topologies worse than CAS (paper: 2/30)", worse, len(res))
	}
	t.Logf("Fig12: median ratio %.2f, %d/%d below 1.0", med, worse, len(res))
}

func TestFig13ShapeFewerDeadzones(t *testing.T) {
	res := Fig13Deadzones(6, 23)
	if res.Spots == 0 || res.CASDeadspots == 0 {
		t.Fatalf("degenerate deadzone result: %+v spots=%d cas=%d",
			res.MapCols, res.Spots, res.CASDeadspots)
	}
	reduction := 1 - float64(res.DASDeadspots)/float64(res.CASDeadspots)
	if reduction < 0.5 {
		t.Errorf("Fig13: deadspot reduction %.0f%%, want ≥50%% (paper 91%%)", reduction*100)
	}
	if len(res.CASMap) == 0 || len(res.CASMap) != len(res.DASMap) {
		t.Error("Fig13: missing example maps")
	}
	t.Logf("Fig13: CAS %d vs DAS %d deadspots over %d spots (%.0f%% reduction)",
		res.CASDeadspots, res.DASDeadspots, res.Spots, reduction*100)
}

func TestHiddenTerminalShape(t *testing.T) {
	res := HiddenTerminals(6, 29)
	if res.CASSpots == 0 {
		t.Fatal("expected some CAS hidden-terminal spots")
	}
	reduction := 1 - float64(res.DASSpots)/float64(res.CASSpots)
	if reduction < 0.4 {
		t.Errorf("hidden terminals: reduction %.0f%%, want ≥40%% (paper 94%%)", reduction*100)
	}
	t.Logf("hidden terminals: CAS %d vs DAS %d (%.0f%% reduction)",
		res.CASSpots, res.DASSpots, reduction*100)
}

func TestFig14ShapeTaggingWins(t *testing.T) {
	random, tagged, err := Fig14PacketTagging(40, 31)
	if err != nil {
		t.Fatal(err)
	}
	mr, mt, gain := SummarizeGain(random, tagged)
	if gain < 0.15 {
		t.Errorf("Fig14: tagging median gain %.0f%%, want ≥15%% (paper ≈50%%)", gain*100)
	}
	t.Logf("Fig14: random %.1f tagged %.1f (+%.0f%%)", mr, mt, gain*100)
}

func TestFig15ShapeEndToEnd(t *testing.T) {
	o := E2EOpts{Topologies: 12, SimTime: 250 * time.Millisecond, Seed: 37}
	cas, midas := Fig15EndToEnd(o)
	mc, mm, gain := SummarizeGain(cas, midas)
	if gain < 0.1 {
		t.Errorf("Fig15: median gain %.0f%%, want ≥10%% (paper ≈200%%)", gain*100)
	}
	t.Logf("Fig15 (reduced run): CAS %.1f MIDAS %.1f (+%.0f%%)", mc, mm, gain*100)
}

func TestFig16ShapeLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale DES in -short mode")
	}
	o := E2EOpts{Topologies: 6, SimTime: 200 * time.Millisecond, Seed: 41}
	cas, midas, err := Fig16LargeScale(o)
	if err != nil {
		t.Fatal(err)
	}
	mc, mm, gain := SummarizeGain(cas, midas)
	if gain < 0.05 {
		t.Errorf("Fig16: median gain %.0f%%, want ≥5%% (paper >150%%)", gain*100)
	}
	t.Logf("Fig16 (reduced run): CAS %.1f MIDAS %.1f (+%.0f%%)", mc, mm, gain*100)
}

func TestDecompositionMonotone(t *testing.T) {
	o := E2EOpts{Topologies: 8, SimTime: 200 * time.Millisecond, Seed: 43}
	res := Decomposition(o)
	base := res.CAS.MustMedian()
	full := res.FullMIDAS.MustMedian()
	if full <= base {
		t.Errorf("decomposition: full MIDAS %.1f should beat CAS %.1f", full, base)
	}
	t.Logf("decomposition medians: CAS %.1f, +precoding %.1f, +DAS %.1f, full %.1f",
		base, res.CASPlusPrecoding.MustMedian(),
		res.DASPlusPrecoding.MustMedian(), full)
}

func TestAblationTagWidthRuns(t *testing.T) {
	o := E2EOpts{Topologies: 4, SimTime: 150 * time.Millisecond, Seed: 47}
	res := AblationTagWidth([]int{1, 2, 4}, o)
	for w, s := range res {
		if s.N() != o.Topologies {
			t.Errorf("width %d: %d samples", w, s.N())
		}
		if m := s.MustMedian(); m <= 0 {
			t.Errorf("width %d: non-positive capacity %v", w, m)
		}
	}
}

func TestAblationSchedulerRuns(t *testing.T) {
	o := E2EOpts{Topologies: 4, SimTime: 150 * time.Millisecond, Seed: 53}
	res := AblationScheduler(o)
	for name, s := range res {
		if m := s.MustMedian(); m <= 0 {
			t.Errorf("%s: non-positive capacity %v", name, m)
		}
	}
}

func TestAblationWaitWindowRuns(t *testing.T) {
	o := E2EOpts{Topologies: 4, SimTime: 150 * time.Millisecond, Seed: 59}
	res := AblationWaitWindow([]time.Duration{0, 34 * time.Microsecond, 68 * time.Microsecond}, o)
	for w, s := range res {
		if m := s.MustMedian(); m <= 0 {
			t.Errorf("window %v: non-positive capacity %v", w, m)
		}
	}
}

func TestAblationCorrelationMonotoneish(t *testing.T) {
	res := AblationCorrelation([]float64{0, 0.9}, 30, 61)
	lo := res[0].MustMedian()
	hi := res[0.9].MustMedian()
	if hi >= lo {
		t.Errorf("high CAS correlation (%.1f) should cost capacity vs none (%.1f)", hi, lo)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, _, err := Fig3NaiveScalingDrop(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Fig3NaiveScalingDrop(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("Fig3 not deterministic")
		}
	}
}
