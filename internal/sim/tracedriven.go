package sim

import (
	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/matrix"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Trace-driven evaluation (§5.5): record CSI from a deployment's channel
// model, then feed the trace back through the precoding pipeline. The
// paper measured CSI on the testbed and replayed it in simulation; here
// the recorder captures the model's realisations, and replay is
// bit-identical across runs and machines.

// RecordDeployment captures `frames` coherence steps of CSI from the
// deployment under the given channel parameters.
func RecordDeployment(dep *topology.Deployment, p channel.Params, frames int, src *rng.Source) (*trace.Trace, error) {
	m := dep.Model(p, src)
	pts := make([]geom.Point, 0, len(dep.Antennas))
	for _, a := range dep.Antennas {
		pts = append(pts, a.Pos)
	}
	rec := trace.NewRecorder(src.Seed(), dep.Clients, pts)
	for f := 0; f < frames; f++ {
		if err := rec.Capture(m.Matrix(nil, nil)); err != nil {
			return nil, err
		}
		m.Evolve()
	}
	return rec.Trace(), nil
}

// TraceDrivenCapacity replays a CSI trace through a precoder, returning
// the per-frame sum capacities.
func TraceDrivenCapacity(tr *trace.Trace, p channel.Params, kind PrecoderKind) (*stats.Sample, error) {
	rep := trace.NewReplayer(tr)
	out := stats.NewSample()
	sv := getSolver()
	defer putSolver(sv)
	// The per-frame conversions are loop-invariant; hoist them.
	perAntenna, noise := p.TxPowerLinear(), p.NoiseLinear()
	for f := 0; f < tr.NumFrames(); f++ {
		h := rep.Next()
		prob := precoding.Problem{
			H:               h,
			PerAntennaPower: perAntenna,
			Noise:           noise,
		}
		if h.Rows() > h.Cols() {
			// More clients than antennas: evaluate the first |T| clients
			// (the trace recorded everything; group selection is a MAC
			// concern, not a replay concern).
			idx := make([]int, h.Cols())
			for i := range idx {
				idx[i] = i
			}
			sub := prob
			sub.H = subRows(h, idx)
			prob = sub
		}
		var rate float64
		if kind == PrecoderPowerBalanced {
			v, _, err := sv.PowerBalanced(prob)
			if err != nil {
				return nil, err
			}
			rate = sv.SumRate(prob.H, v, prob.Noise)
		} else {
			v, err := sv.NaiveScaled(prob)
			if err != nil {
				return nil, err
			}
			rate = sv.SumRate(prob.H, v, prob.Noise)
		}
		out.Add(rate)
	}
	return out, nil
}

// subRows extracts the given rows of m.
func subRows(m *matrix.Mat, rows []int) *matrix.Mat {
	out := matrix.New(len(rows), m.Cols())
	for r, i := range rows {
		for j := 0; j < m.Cols(); j++ {
			out.Set(r, j, m.At(i, j))
		}
	}
	return out
}
