package sim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestMixedTrafficNetworkRuns(t *testing.T) {
	cfg := topology.DefaultConfig(topology.DAS)
	dep := topology.ThreeAPTestbed(cfg, rng.New(3))
	opts := DefaultStationOpts(KindMIDAS)
	opts.TrafficMix = map[mac.AccessCategory]float64{
		mac.ACVoice:      0.1,
		mac.ACVideo:      0.3,
		mac.ACBestEffort: 0.5,
		mac.ACBackground: 0.1,
	}
	net := NewNetwork(dep, channel.Default(), opts, rng.New(503))
	net.Run(300 * time.Millisecond)
	if net.TotalTXOPs() == 0 {
		t.Fatal("no TXOPs with mixed traffic")
	}
	if net.NetworkCapacity() <= 0 {
		t.Fatal("no capacity with mixed traffic")
	}
}

func TestMixedTrafficMatchesBestEffortWhenDegenerate(t *testing.T) {
	// A mix that is 100% best effort must behave exactly like no mix.
	run := func(mix map[mac.AccessCategory]float64) float64 {
		cfg := topology.DefaultConfig(topology.DAS)
		dep := topology.SingleAP(cfg, rng.New(5))
		opts := DefaultStationOpts(KindMIDAS)
		opts.TrafficMix = mix
		net := NewNetwork(dep, channel.Default(), opts, rng.New(505))
		net.Run(200 * time.Millisecond)
		return net.NetworkCapacity()
	}
	a := run(nil)
	b := run(map[mac.AccessCategory]float64{mac.ACBestEffort: 1})
	if a != b {
		t.Errorf("pure-BE mix should be identical to no mix: %v vs %v", a, b)
	}
}

func TestMixedTrafficCASRuns(t *testing.T) {
	cfg := topology.DefaultConfig(topology.CAS)
	dep := topology.ThreeAPTestbed(cfg, rng.New(7))
	opts := DefaultStationOpts(KindCAS)
	opts.TrafficMix = map[mac.AccessCategory]float64{
		mac.ACVoice: 0.5, mac.ACBackground: 0.5,
	}
	net := NewNetwork(dep, channel.Default(), opts, rng.New(507))
	net.Run(300 * time.Millisecond)
	if net.TotalTXOPs() == 0 || net.NetworkCapacity() <= 0 {
		t.Fatal("CAS mixed-traffic network stalled")
	}
}
