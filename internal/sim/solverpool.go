package sim

import (
	"sync"

	"repro/internal/precoding"
)

// solvers hands experiment tasks long-lived precoding.Solver instances:
// each runner-pool worker effectively keeps one warm, so a topology sweep
// performs the per-problem linear algebra without heap allocations after
// the first task sizes the buffers. Solver state never affects results
// (buffers only), so pooling cannot perturb determinism.
var solvers = sync.Pool{New: func() any { return precoding.NewSolver() }}

// getSolver borrows a Solver for the duration of one task.
func getSolver() *precoding.Solver { return solvers.Get().(*precoding.Solver) }

// putSolver returns a borrowed Solver to the pool.
func putSolver(s *precoding.Solver) { solvers.Put(s) }
