package sim

import (
	"testing"
)

func TestBeamformingStudyShape(t *testing.T) {
	res := BeamformingStudy(40, 12, 83)
	if res.SNRFull.N() == 0 {
		t.Fatal("no beamforming samples")
	}
	snrFull := res.SNRFull.MustMedian()
	snrLocal := res.SNRLocal.MustMedian()
	silFull := res.SilencedFull.MustMedian()
	silLocal := res.SilencedLocal.MustMedian()
	// §7's tradeoff: localized beamforming gives up a little SNR...
	if snrLocal > snrFull+1e-9 {
		t.Errorf("localized SNR %v cannot exceed full-array %v", snrLocal, snrFull)
	}
	if snrFull-snrLocal > 4 {
		t.Errorf("localized loses %.1f dB median, want small", snrFull-snrLocal)
	}
	// ...but silences a clearly smaller area.
	if silLocal >= silFull {
		t.Errorf("localized should silence less area: %.2f vs %.2f", silLocal, silFull)
	}
	t.Logf("beamforming: SNR %.1f→%.1f dB, silenced area %.0f%%→%.0f%%",
		snrFull, snrLocal, silFull*100, silLocal*100)
}

func TestBeamformingWindowMonotone(t *testing.T) {
	// A wider neighbourhood window can only add antennas: SNR up,
	// silenced area up.
	narrow := BeamformingStudy(20, 6, 89)
	wide := BeamformingStudy(20, 30, 89)
	if wide.SNRLocal.MustMedian() < narrow.SNRLocal.MustMedian()-1e-9 {
		t.Error("wider window should not lose SNR")
	}
	if wide.SilencedLocal.MustMedian() < narrow.SilencedLocal.MustMedian()-1e-9 {
		t.Error("wider window should not silence less")
	}
}

func TestPlacementStudyOptimizedWinsCoverage(t *testing.T) {
	res, err := PlacementStudy(16, 30, 97)
	if err != nil {
		t.Fatal(err)
	}
	cr := res.RandomCoverage.MustMedian()
	co := res.OptimizedCoverage.MustMedian()
	// The optimiser's own objective must improve.
	if co < cr {
		t.Errorf("optimized coverage %v dB below random %v dB", co, cr)
	}
	// Capacity for the matched random clients is a different metric: it
	// must stay in the same band (the optimiser is not allowed to wreck
	// service for typical clients while chasing corners).
	mr := res.RandomCapacity.MustMedian()
	mo := res.OptimizedCapacity.MustMedian()
	if mo < mr*0.6 {
		t.Errorf("optimized capacity %v collapsed vs random %v", mo, mr)
	}
	t.Logf("placement: coverage %.1f→%.1f dB, capacity %.1f→%.1f bit/s/Hz", cr, co, mr, mo)
}
