package sim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

func buildStation(t *testing.T, opts StationOpts) *Station {
	t.Helper()
	cfg := topology.DefaultConfig(topology.DAS)
	dep := topology.SingleAP(cfg, rng.New(21))
	net := NewNetwork(dep, channel.Default(), opts, rng.New(22))
	return net.Stations[0]
}

func TestStationTagWidthPlumbing(t *testing.T) {
	opts := DefaultStationOpts(KindMIDAS)
	opts.TagWidth = 3
	st := buildStation(t, opts)
	if st.midas.Cfg.TagWidth != 3 {
		t.Errorf("TagWidth = %d, want 3", st.midas.Cfg.TagWidth)
	}
	// Queued packets carry three tags.
	p, ok := st.midas.Queue.Head(st.clients[0])
	if !ok {
		t.Fatal("queue empty")
	}
	if len(p.Tags) != 3 {
		t.Errorf("packet tags = %v", p.Tags)
	}
}

func TestStationTaggingOffMeansUntagged(t *testing.T) {
	opts := DefaultStationOpts(KindMIDAS)
	opts.Tagging = false
	st := buildStation(t, opts)
	p, ok := st.midas.Queue.Head(st.clients[0])
	if !ok {
		t.Fatal("queue empty")
	}
	if len(p.Tags) != 0 {
		t.Errorf("tagging off but packet has tags %v", p.Tags)
	}
}

func TestStationWaitWindowPlumbing(t *testing.T) {
	opts := DefaultStationOpts(KindMIDAS)
	opts.WaitWindow = 99 * time.Microsecond
	opts.HasWaitWindow = true
	st := buildStation(t, opts)
	if st.midas.Cfg.WaitWindow != 99*time.Microsecond {
		t.Errorf("WaitWindow = %v", st.midas.Cfg.WaitWindow)
	}
}

func TestStationSchedulerNamePlumbing(t *testing.T) {
	for _, name := range []string{"rr", "random"} {
		opts := DefaultStationOpts(KindMIDAS)
		opts.SchedulerName = name
		st := buildStation(t, opts)
		switch name {
		case "rr":
			if _, ok := st.midas.Cfg.Scheduler.(*core.RoundRobinScheduler); !ok {
				t.Errorf("scheduler for %q is %T", name, st.midas.Cfg.Scheduler)
			}
		case "random":
			if _, ok := st.midas.Cfg.Scheduler.(*core.RandomScheduler); !ok {
				t.Errorf("scheduler for %q is %T", name, st.midas.Cfg.Scheduler)
			}
		}
	}
}

func TestStationQueueDepthMaintained(t *testing.T) {
	opts := DefaultStationOpts(KindMIDAS)
	opts.QueueDepth = 5
	st := buildStation(t, opts)
	for _, cl := range st.clients {
		if got := st.midas.Queue.LenFor(cl); got != 5 {
			t.Errorf("client %d queue depth %d, want 5", cl, got)
		}
	}
}

func TestEnsureAssociatedReachability(t *testing.T) {
	p := channel.Default()
	cfg := topology.DefaultConfig(topology.CAS)
	src := rng.New(31)
	dep := topology.SingleAP(cfg, src.Split("topo"))
	modelSrc := src.Split("model")
	EnsureAssociated(dep, p, modelSrc)
	f := p.NewField(modelSrc.Split("shadow").Seed())
	noise := p.NoiseLinear()
	for j, c := range dep.Clients {
		best := -1e18
		for _, k := range dep.AntennasOf(dep.ClientAP[j]) {
			a := dep.Antennas[k].Pos
			pw := p.PowerAtPoint(a, c, p.TxPowerDBm) * f.Shadow(a, c)
			if snr := stats.DB(pw / noise); snr > best {
				best = snr
			}
		}
		if best < MinAssocSNRdB-1e-9 {
			// Resampling is best-effort (200 tries); tolerate rare misses
			// but flag systematic failure.
			t.Logf("client %d unreachable after association (best %.1f dB)", j, best)
		}
	}
}

func TestOverhearingSourceFindsPlan(t *testing.T) {
	p := channel.Default()
	dep := topology.ThreeAPTestbed(topology.DefaultConfig(topology.CAS), rng.New(41))
	src := OverhearingSource(dep, p, rng.New(42), 64)
	f := p.NewField(src.Split("model").Split("shadow").Seed())
	if !allPairsOverhear(dep, p, f) {
		t.Error("OverhearingSource returned a non-overhearing plan (possible but should be rare at 15 m)")
	}
}
