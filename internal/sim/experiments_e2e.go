package sim

import (
	"time"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file implements the end-to-end experiments: the 3-AP testbed CDF
// of Figure 15, the 8-AP large-scale simulation of Figure 16, and the
// decomposition/ablation variants DESIGN.md §5 calls for.

// E2EOpts configures an end-to-end run. Every field past Seed is
// optional; zero values reproduce the paper configuration.
type E2EOpts struct {
	Topologies int
	SimTime    time.Duration
	Seed       int64
	// ClientsPerAP overrides the default (4) when > 0.
	ClientsPerAP int
	// AntennasPerAP overrides the default (4) when > 0.
	AntennasPerAP int
	// Env adjusts the channel parameters and coverage radius.
	Env EnvOverrides
	// VenueWidth/VenueHeight override the large-scale deployment region
	// (paper: 52×52 m) when both > 0; VenueAPs overrides its AP count
	// (paper: 8) when > 0. Only the large-scale experiments read these.
	VenueWidth, VenueHeight float64
	VenueAPs                int
	// Parallelism bounds the topology-sweep worker pool for this call;
	// <= 0 falls back to the package-global Parallelism (then
	// GOMAXPROCS). Per-call so concurrent jobs in one process can run
	// at different widths without sharing mutable state.
	Parallelism int
}

// DefaultE2E mirrors §5.4: 60 topologies.
func DefaultE2E(seed int64) E2EOpts {
	return E2EOpts{Topologies: 60, SimTime: 300 * time.Millisecond, Seed: seed}
}

// params is the channel model for this run.
func (o E2EOpts) params() channel.Params { return o.Env.Params(channel.Default()) }

// config is the per-AP testbed topology for this run.
func (o E2EOpts) config(mode topology.Mode) topology.Config {
	cfg := o.Env.Topology(topology.DefaultConfig(mode))
	if o.ClientsPerAP > 0 {
		cfg.ClientsPerAP = o.ClientsPerAP
	}
	if o.AntennasPerAP > 0 {
		cfg.AntennasPerAP = o.AntennasPerAP
	}
	return cfg
}

// largeConfig is the §5.5 large-scale configuration for this run, with
// the venue overrides applied.
func (o E2EOpts) largeConfig(mode topology.Mode) topology.LargeScaleConfig {
	cfg := topology.DefaultLargeScale(mode)
	cfg.Config = o.Env.Topology(cfg.Config)
	if o.ClientsPerAP > 0 {
		cfg.ClientsPerAP = o.ClientsPerAP
	}
	if o.AntennasPerAP > 0 {
		cfg.AntennasPerAP = o.AntennasPerAP
	}
	if o.VenueWidth > 0 && o.VenueHeight > 0 {
		cfg.Region = geom.NewRect(0, 0, o.VenueWidth, o.VenueHeight)
	}
	if o.VenueAPs > 0 {
		cfg.NumAPs = o.VenueAPs
	}
	return cfg
}

// runOne builds and runs a network, returning its delivered capacity.
func runOne(dep *topology.Deployment, p channel.Params, opts StationOpts, src *rng.Source, simTime time.Duration) float64 {
	EnsureAssociated(dep, p, src.Split("model"))
	net := NewNetwork(dep, p, opts, src)
	net.Run(simTime)
	return net.NetworkCapacity()
}

// arm2 carries one topology's paired results through the worker pool.
type arm2 struct{ a, b float64 }

// Fig15EndToEnd reproduces Figure 15: network capacity CDFs of the 3-AP
// testbed under conventional CAS and under MIDAS, over random topologies.
func Fig15EndToEnd(o E2EOpts) (cas, midas *stats.Sample) {
	p := o.params()
	res := sweep(o.Topologies, o.Seed, "fig15", o.Parallelism, func(t int, src *rng.Source) arm2 {
		cfgC := o.config(topology.CAS)
		cfgM := o.config(topology.DAS)
		depC := topology.ThreeAPTestbed(cfgC, src.Split("topo"))
		depM := topology.ThreeAPTestbed(cfgM, src.Split("topo"))
		// §5.4 premise: the three APs overhear each other.
		runC := OverhearingSource(depC, p, src.Split("runC"), 64)
		runM := OverhearingSource(depM, p, src.Split("runM"), 64)
		return arm2{
			a: runOne(depC, p, DefaultStationOpts(KindCAS), runC, o.SimTime),
			b: runOne(depM, p, DefaultStationOpts(KindMIDAS), runM, o.SimTime),
		}
	})
	cas, midas = stats.NewSample(), stats.NewSample()
	for _, r := range res {
		cas.Add(r.a)
		midas.Add(r.b)
	}
	return cas, midas
}

// Fig16LargeScale reproduces Figure 16: the paper's 8-AP deployment with
// its placement constraints (≤3 overhearable APs, ≥5 m antenna spacing),
// CAS versus full MIDAS. The region is 52×52 m rather than the paper's
// 60×60 m: our multi-wall model isolates cells faster than their building
// did, and the denser region restores the inter-cell coupling their
// deployment had (see EXPERIMENTS.md).
func Fig16LargeScale(o E2EOpts) (cas, midas *stats.Sample, err error) {
	p := o.params()
	res, err := sweepErr(o.Topologies, o.Seed, "fig16", o.Parallelism, func(t int, src *rng.Source) (arm2, error) {
		cfgC := o.largeConfig(topology.CAS)
		cfgM := o.largeConfig(topology.DAS)
		depC, err := topology.LargeScale(cfgC, src.Split("topo"))
		if err != nil {
			return arm2{}, err
		}
		depM, err := topology.LargeScale(cfgM, src.Split("topo"))
		if err != nil {
			return arm2{}, err
		}
		return arm2{
			a: runOne(depC, p, DefaultStationOpts(KindCAS), src.Split("runC"), o.SimTime),
			b: runOne(depM, p, DefaultStationOpts(KindMIDAS), src.Split("runM"), o.SimTime),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	cas, midas = stats.NewSample(), stats.NewSample()
	for _, r := range res {
		cas.Add(r.a)
		midas.Add(r.b)
	}
	return cas, midas, nil
}

// DecompositionResult isolates where MIDAS's end-to-end gain comes from
// (§1 credits ≈30% to precoding, ≈40% to the DAS deployment and ≈65% to
// the MAC mechanisms).
type DecompositionResult struct {
	CAS *stats.Sample
	// CASPlusPrecoding: CAS deployment and MAC, power-balanced precoder.
	CASPlusPrecoding *stats.Sample
	// DASPlusPrecoding: DAS deployment with the conventional single-state
	// MAC (no per-antenna sensing, no tagging), power-balanced precoder.
	DASPlusPrecoding *stats.Sample
	// FullMIDAS adds the DAS-aware MAC.
	FullMIDAS *stats.Sample
}

// Decomposition runs the 3-AP testbed in four configurations that add
// MIDAS's mechanisms one at a time.
func Decomposition(o E2EOpts) *DecompositionResult {
	p := o.params()
	vals := sweep(o.Topologies, o.Seed, "decomp", o.Parallelism, func(t int, src *rng.Source) [4]float64 {
		depC := topology.ThreeAPTestbed(o.config(topology.CAS), src.Split("topo"))
		depM := topology.ThreeAPTestbed(o.config(topology.DAS), src.Split("topo"))

		base := DefaultStationOpts(KindCAS)
		srcC := OverhearingSource(depC, p, src.Split("rC"), 64)
		srcM := OverhearingSource(depM, p, src.Split("rM"), 64)

		prec := base
		prec.Precoder = PrecoderPowerBalanced
		dasCAS := prec // DAS antennas, conventional MAC
		return [4]float64{
			runOne(depC, p, base, srcC, o.SimTime),
			runOne(depC, p, prec, srcC, o.SimTime),
			runOne(depM, p, dasCAS, srcM, o.SimTime),
			runOne(depM, p, DefaultStationOpts(KindMIDAS), srcM, o.SimTime),
		}
	})
	res := &DecompositionResult{
		CAS: stats.NewSample(), CASPlusPrecoding: stats.NewSample(),
		DASPlusPrecoding: stats.NewSample(), FullMIDAS: stats.NewSample(),
	}
	for _, v := range vals {
		res.CAS.Add(v[0])
		res.CASPlusPrecoding.Add(v[1])
		res.DASPlusPrecoding.Add(v[2])
		res.FullMIDAS.Add(v[3])
	}
	return res
}

// AblationTagWidth sweeps the number of antennas tagged per packet
// (§3.2.4 discusses 1, 2 and all-antennas).
func AblationTagWidth(widths []int, o E2EOpts) map[int]*stats.Sample {
	p := o.params()
	vals := sweep(o.Topologies, o.Seed, "tagwidth", o.Parallelism, func(t int, src *rng.Source) []float64 {
		dep := topology.ThreeAPTestbed(o.config(topology.DAS), src.Split("topo"))
		caps := make([]float64, len(widths))
		for i, w := range widths {
			opts := DefaultStationOpts(KindMIDAS)
			opts.TagWidth = w
			caps[i] = runOne(dep, p, opts, src.SplitN("run", w), o.SimTime)
		}
		return caps
	})
	out := map[int]*stats.Sample{}
	for _, w := range widths {
		out[w] = stats.NewSample()
	}
	for _, caps := range vals {
		for i, w := range widths {
			out[w].Add(caps[i])
		}
	}
	return out
}

// AblationWaitWindow sweeps the opportunistic-selection wait window
// (§3.2.3 argues one DIFS is the right balance).
func AblationWaitWindow(windows []time.Duration, o E2EOpts) map[time.Duration]*stats.Sample {
	p := o.params()
	vals := sweep(o.Topologies, o.Seed, "waitwin", o.Parallelism, func(t int, src *rng.Source) []float64 {
		dep := topology.ThreeAPTestbed(o.config(topology.DAS), src.Split("topo"))
		caps := make([]float64, len(windows))
		for i, w := range windows {
			opts := DefaultStationOpts(KindMIDAS)
			opts.WaitWindow = w
			opts.HasWaitWindow = true
			caps[i] = runOne(dep, p, opts, src.SplitN("run", i), o.SimTime)
		}
		return caps
	})
	out := map[time.Duration]*stats.Sample{}
	for _, w := range windows {
		out[w] = stats.NewSample()
	}
	for _, caps := range vals {
		for i, w := range windows {
			out[w].Add(caps[i])
		}
	}
	return out
}

// AblationScheduler compares client-selection policies (§3.2.5: DRR is
// the paper's choice; round-robin and random are the ablations).
func AblationScheduler(o E2EOpts) map[string]*stats.Sample {
	names := []string{"drr", "rr", "random"}
	p := o.params()
	vals := sweep(o.Topologies, o.Seed, "sched", o.Parallelism, func(t int, src *rng.Source) []float64 {
		dep := topology.ThreeAPTestbed(o.config(topology.DAS), src.Split("topo"))
		caps := make([]float64, len(names))
		for i, name := range names {
			opts := DefaultStationOpts(KindMIDAS)
			opts.SchedulerName = name
			caps[i] = runOne(dep, p, opts, src.Split("run-"+name), o.SimTime)
		}
		return caps
	})
	out := map[string]*stats.Sample{}
	for _, name := range names {
		out[name] = stats.NewSample()
	}
	for _, caps := range vals {
		for i, name := range names {
			out[name].Add(caps[i])
		}
	}
	return out
}

// AblationCorrelation sweeps the CAS antenna-correlation coefficient —
// the knob that controls how much channel rank the co-located baseline
// loses relative to DAS.
func AblationCorrelation(rhos []float64, topos int, seed int64) map[float64]*stats.Sample {
	return AblationCorrelationOpts(rhos, topos, seed, 0)
}

// AblationCorrelationOpts is AblationCorrelation with an explicit
// sweep-pool width (<= 0 falls back to the Parallelism global).
func AblationCorrelationOpts(rhos []float64, topos int, seed int64, parallel int) map[float64]*stats.Sample {
	type rhoVal struct {
		ok bool
		v  float64
	}
	// Task t derives one child per (t, rho) pair — the sweep label is
	// only used for progress reporting here.
	vals := sweepRoot(topos, seed, "corr", parallel, func(t int, root *rng.Source) []rhoVal {
		sv := getSolver()
		defer putSolver(sv)
		res := make([]rhoVal, len(rhos))
		for i, rho := range rhos {
			src := root.SplitN("corr", t*100+i)
			p := channel.Default()
			p.CASCorrelation = rho
			cfg := topology.DefaultConfig(topology.CAS)
			dep := topology.SingleAP(cfg, src.Split("topo"))
			m := dep.Model(p, src.Split("chan"))
			prob := problemFromModel(p, m)
			if v, err := sv.NaiveScaled(prob); err == nil {
				res[i] = rhoVal{ok: true, v: sv.SumRate(prob.H, v, prob.Noise)}
			}
		}
		return res
	})
	out := map[float64]*stats.Sample{}
	for _, r := range rhos {
		out[r] = stats.NewSample()
	}
	for _, res := range vals {
		for i, rho := range rhos {
			if res[i].ok {
				out[rho].Add(res[i].v)
			}
		}
	}
	return out
}

// ClientChurn is a beyond-paper variant of the Figure 15 end-to-end
// experiment: the client population turns over during the run. The
// simulated airtime is split into epochs; every epoch after the first
// re-draws all client positions (APs and antennas stay fixed, modelling
// people moving through a venue while the infrastructure does not).
// MIDAS's per-antenna sensing and tagging must re-learn the client map
// each epoch, so churn stresses exactly the mechanisms the static
// experiment lets settle. Returns per-topology mean epoch capacities
// for CAS and MIDAS.
func ClientChurn(o E2EOpts, epochs int) (cas, midas *stats.Sample) {
	if epochs < 1 {
		epochs = 1
	}
	p := o.params()
	epochTime := o.SimTime / time.Duration(epochs)
	res := sweep(o.Topologies, o.Seed, "churn", o.Parallelism, func(t int, src *rng.Source) arm2 {
		depC := topology.ThreeAPTestbed(o.config(topology.CAS), src.Split("topo"))
		depM := topology.ThreeAPTestbed(o.config(topology.DAS), src.Split("topo"))
		var sumC, sumM float64
		for e := 0; e < epochs; e++ {
			es := src.SplitN("epoch", e)
			if e > 0 {
				depC.ReplaceClients(es.Split("churnC"))
				depM.ReplaceClients(es.Split("churnM"))
			}
			runC := OverhearingSource(depC, p, es.Split("runC"), 64)
			runM := OverhearingSource(depM, p, es.Split("runM"), 64)
			sumC += runOne(depC, p, DefaultStationOpts(KindCAS), runC, epochTime)
			sumM += runOne(depM, p, DefaultStationOpts(KindMIDAS), runM, epochTime)
		}
		return arm2{a: sumC / float64(epochs), b: sumM / float64(epochs)}
	})
	cas, midas = stats.NewSample(), stats.NewSample()
	for _, r := range res {
		cas.Add(r.a)
		midas.Add(r.b)
	}
	return cas, midas
}

// problemFromModel assembles a full-deployment precoding problem.
func problemFromModel(p channel.Params, m *channel.Model) precoding.Problem {
	return precoding.Problem{
		H:               m.Matrix(nil, nil),
		PerAntennaPower: p.TxPowerLinear(),
		Noise:           p.NoiseLinear(),
	}
}
