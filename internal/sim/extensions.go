package sim

import (
	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Extension studies beyond the paper's evaluation: the §7 discussion
// items, quantified. These back the Benchmark* ablations DESIGN.md §5
// lists and the `midas-bench -figure ablations` output.

// BeamformingResult compares full-array and localized single-user
// beamforming (§7 "Beamforming").
type BeamformingResult struct {
	// SNRFull / SNRLocal are client SNR samples (dB).
	SNRFull, SNRLocal *stats.Sample
	// SilencedFull / SilencedLocal are the fractions of the coverage
	// area where the AP's transmission raises the medium above the
	// carrier-sense threshold — the spatial reuse each variant denies to
	// neighbouring APs.
	SilencedFull, SilencedLocal *stats.Sample
}

// BeamformingStudy quantifies §7's recommendation: when an AP beamforms
// to a single client, using only the antennas in the client's
// neighbourhood sacrifices little SNR while silencing a much smaller
// area. windowDB is the neighbourhood window (12 dB default in the
// paper's spirit of "antennas in the neighbourhood of the client").
func BeamformingStudy(topos int, windowDB float64, seed int64) *BeamformingResult {
	return BeamformingStudyOpts(topos, windowDB, seed, 0)
}

// BeamformingStudyOpts is BeamformingStudy with an explicit sweep-pool
// width (<= 0 falls back to the Parallelism global).
func BeamformingStudyOpts(topos int, windowDB float64, seed int64, parallel int) *BeamformingResult {
	p := channel.Default()
	csThreshold := stats.Milliwatt(-82)
	type beamTask struct {
		ok                       bool // false: degenerate topology, skipped
		snrFull, snrLocal        float64
		silencedFull, silencedLo float64
	}
	tasks := sweep(topos, seed, "beamform", parallel, func(t int, src *rng.Source) beamTask {
		cfg := topology.DefaultConfig(topology.DAS)
		cfg.ClientsPerAP = 1
		dep := topology.SingleAP(cfg, src.Split("topo"))
		m := dep.Model(p, src.Split("chan"))
		h := m.Matrix(nil, nil).Row(0)

		full, err := precoding.EGT(h, p.TxPowerLinear())
		if err != nil {
			return beamTask{}
		}
		local, idx, err := precoding.LocalizedEGT(h, p.TxPowerLinear(), windowDB)
		if err != nil {
			return beamTask{}
		}

		// Silenced area: sample the coverage disc; a spot is silenced
		// when the sum of the active antennas' powers crosses CS.
		field := m.Field()
		allAntennas := make([]geom.Point, len(dep.Antennas))
		for i, a := range dep.Antennas {
			allAntennas[i] = a.Pos
		}
		localAntennas := make([]geom.Point, 0, len(idx))
		for _, k := range idx {
			localAntennas = append(localAntennas, dep.Antennas[k].Pos)
		}
		return beamTask{
			ok:           true,
			snrFull:      stats.DB(precoding.BeamformSNR(h, full, p.NoiseLinear())),
			snrLocal:     stats.DB(precoding.BeamformSNR(h, local, p.NoiseLinear())),
			silencedFull: silencedFraction(p, field, allAntennas, cfg.CoverageRadius, csThreshold),
			silencedLo:   silencedFraction(p, field, localAntennas, cfg.CoverageRadius, csThreshold),
		}
	})
	res := &BeamformingResult{
		SNRFull: stats.NewSample(), SNRLocal: stats.NewSample(),
		SilencedFull: stats.NewSample(), SilencedLocal: stats.NewSample(),
	}
	for _, t := range tasks {
		if !t.ok {
			continue
		}
		res.SNRFull.Add(t.snrFull)
		res.SNRLocal.Add(t.snrLocal)
		res.SilencedFull.Add(t.silencedFull)
		res.SilencedLocal.Add(t.silencedLo)
	}
	return res
}

// silencedFraction returns the fraction of a radius-r disc (sampled on a
// 2 m grid) where the transmitting antennas' aggregate power is at or
// above the threshold.
func silencedFraction(p channel.Params, f *channel.ShadowField, antennas []geom.Point, r float64, threshold float64) float64 {
	total, busy := 0, 0
	geom.Grid(geom.NewRect(-1.5*r, -1.5*r, 1.5*r, 1.5*r), 2.0, func(pt geom.Point) {
		total++
		sum := 0.0
		for _, a := range antennas {
			sum += p.PowerAtPoint(a, pt, p.TxPowerDBm) * f.Shadow(a, pt)
		}
		if sum >= threshold {
			busy++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// PlacementResult carries both metrics of the placement study: the
// coverage objective the optimiser targets (5 %-quantile of best-antenna
// SNR over the area, in dB) and the 4×4 MU-MIMO capacity for the matched
// random clients. Optimisation reliably improves the former; the latter
// depends on where the particular clients landed.
type PlacementResult struct {
	RandomCoverage, OptimizedCoverage *stats.Sample // dB
	RandomCapacity, OptimizedCapacity *stats.Sample // bit/s/Hz
}

// PlacementStudy compares random DAS antenna placement against the
// coverage-optimised placement of internal/topology (§7's open problem),
// on matched clients and floor plans.
func PlacementStudy(topos, candidates int, seed int64) (*PlacementResult, error) {
	return PlacementStudyOpts(topos, candidates, seed, 0)
}

// PlacementStudyOpts is PlacementStudy with an explicit sweep-pool
// width (<= 0 falls back to the Parallelism global).
func PlacementStudyOpts(topos, candidates int, seed int64, parallel int) (*PlacementResult, error) {
	p := channel.Default()
	// [randCoverage, randCapacity, optCoverage, optCapacity] per topology.
	perAntenna, noise := p.TxPowerLinear(), p.NoiseLinear()
	vals, err := sweepErr(topos, seed, "placement", parallel, func(t int, src *rng.Source) ([4]float64, error) {
		sv := getSolver()
		defer putSolver(sv)
		var out [4]float64
		cfg := topology.DefaultConfig(topology.DAS)
		fieldSeed := src.Split("chan").Split("shadow").Seed()
		obj := &topology.PlacementObjective{
			Params: p, Field: p.NewField(fieldSeed),
			Spots: coverageGrid(cfg.CoverageRadius), Quantile: 0.05,
		}

		randDep := topology.SingleAP(cfg, src.Split("topo"))
		optDep := topology.OptimizedSingleAP(cfg, p, fieldSeed, candidates, src.Split("topo"))

		for di, dep := range []*topology.Deployment{randDep, optDep} {
			pos := make([]geom.Point, len(dep.Antennas))
			for i, a := range dep.Antennas {
				pos[i] = a.Pos
			}
			score := obj.Score(pos)
			m := dep.Model(p, src.Split("chan"))
			prob := precoding.Problem{
				H:               m.Matrix(nil, nil),
				PerAntennaPower: perAntenna,
				Noise:           noise,
			}
			bal, _, err := sv.PowerBalanced(prob)
			if err != nil {
				return out, err
			}
			out[2*di] = score
			out[2*di+1] = sv.SumRate(prob.H, bal, prob.Noise)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &PlacementResult{
		RandomCoverage: stats.NewSample(), OptimizedCoverage: stats.NewSample(),
		RandomCapacity: stats.NewSample(), OptimizedCapacity: stats.NewSample(),
	}
	for _, v := range vals {
		res.RandomCoverage.Add(v[0])
		res.RandomCapacity.Add(v[1])
		res.OptimizedCoverage.Add(v[2])
		res.OptimizedCapacity.Add(v[3])
	}
	return res, nil
}

// coverageGrid samples the coverage disc for the placement objective.
func coverageGrid(radius float64) []geom.Point {
	var spots []geom.Point
	geom.Grid(geom.NewRect(-radius, -radius, radius, radius), 2.0, func(p geom.Point) {
		if p.Norm() <= radius {
			spots = append(spots, p)
		}
	})
	return spots
}
