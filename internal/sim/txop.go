package sim

import (
	"time"

	"repro/internal/frames"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/matrix"
	"repro/internal/phy"
	"repro/internal/precoding"
	"repro/internal/stats"
)

// The per-TXOP MU-MIMO pipeline (§3.2.1): antenna selection has happened
// by the time granted() fires; this file implements steps 2–6 — client
// selection, channel estimation (sounding), power-balanced precoding, the
// data burst, and fairness counter updates.

// granted fires when a contender wins channel access. winnerAntenna is the
// global antenna index for MIDAS, -1 for the CAS single contender.
func (st *Station) granted(winnerAntenna int) {
	if st.inTXOP {
		return
	}
	now := st.net.Eng.Now()
	var antennas []int
	waitUntil := now
	if st.midas != nil {
		antennas, waitUntil = st.midas.SelectAntennas(winnerAntenna, now,
			func(local int) bool { return st.physBusy[local] })
	} else {
		antennas = st.cas.SelectAntennas()
	}
	if len(antennas) == 0 {
		st.restartContention()
		return
	}
	st.inTXOP = true
	for _, b := range st.backoffs {
		b.Stop()
	}
	// Opportunistic wait for NAVs about to expire (§3.2.3).
	st.net.Eng.At(waitUntil, func() { st.beginTXOP(antennas) })
}

// beginTXOP selects clients and runs the sounding phase.
func (st *Station) beginTXOP(antennas []int) {
	// §3.3: the highest-priority backlogged class is the TXOP's primary
	// access class; secondary classes may top up the MU group.
	var clients []int
	if st.midas != nil {
		if primary, ok := st.midas.Queue.PrimaryAC(); ok {
			clients = st.midas.SelectClientsEDCA(antennas, primary)
		}
	} else {
		if primary, ok := st.cas.Queue.PrimaryAC(); ok {
			clients = st.cas.SelectClientsEDCA(primary)
		}
	}
	if len(clients) == 0 {
		st.abortTXOP()
		return
	}
	if len(clients) > len(antennas) {
		clients = clients[:len(antennas)]
	}

	positions := st.antennaPositions(antennas)
	soundDur := st.soundingDuration(len(clients))
	dataDur := st.Opts.TXOP
	baDur := st.blockAckDuration(len(clients))
	// The NDPA's Duration field reserves the rest of the TXOP for
	// overhearers' NAVs (§3.3).
	reservation := mac.SIFS + dataDur + mac.SIFS + baDur
	ndpa := &frames.NDPA{
		Duration: reservation,
		RA:       frames.Broadcast,
		TA:       frames.MkAddr(0xA0, uint32(st.ID)),
		Token:    uint8(st.TXOPs),
	}
	for _, cl := range clients {
		ndpa.STAs = append(ndpa.STAs, frames.STAInfo{AID: uint16(cl + 1), Feedback: 1})
	}
	id, err := st.net.Air.StartTx(airTx(positions, st.net.P.TxPowerDBm, soundDur, frames.Encode(ndpa)))
	if err != nil {
		st.abortTXOP()
		return
	}
	st.rememberTx(id)
	st.SoundingOvhd += soundDur
	// Clients whose sounding exchange is jammed by a colliding
	// transmission drop out of the group; if nobody survives, the TXOP
	// is lost — the CSMA collision penalty.
	st.net.Eng.Schedule(soundDur-time.Nanosecond, func() {
		survivors := st.soundingSurvivors(id, clients)
		if len(survivors) == 0 {
			st.CollidedStarts++
			st.collide()
			return
		}
		st.net.Eng.Schedule(mac.SIFS+time.Nanosecond, func() {
			st.dataPhase(antennas, survivors, dataDur, baDur)
		})
	})
}

// soundingSurvivors returns the clients whose sounding exchange decoded
// cleanly given the transmissions that overlapped it.
func (st *Station) soundingSurvivors(txID int, clients []int) []int {
	noise := st.net.noiseLin
	capture := stats.Linear(st.net.Air.CaptureSINRdB)
	var out []int
	for _, cl := range clients {
		pos := st.net.Dep.Clients[cl]
		sig := st.net.Air.TxSignalAt(txID, pos)
		interf := st.net.Air.OverlapInterference(txID, pos)
		if sig/(noise+interf) >= capture {
			out = append(out, cl)
		}
	}
	return out
}

// collide ends the TXOP as a loss: contention restarts with a doubled
// window, as after any failed 802.11 transmission.
func (st *Station) collide() {
	st.inTXOP = false
	for i, b := range st.backoffs {
		if st.busyFor(i) {
			b.MediumBusy()
		} else {
			b.MediumIdle()
		}
		b.Collision()
	}
}

// dataPhase executes the precoded MU-MIMO burst and accounts capacity.
func (st *Station) dataPhase(antennas, clients []int, dataDur, baDur time.Duration) {
	// The channel has moved since the last TXOP.
	st.net.Model.Evolve()

	h := st.net.Model.Matrix(clients, antennas) // true channel
	est := st.Opts.Sounding.Feedback(h, st.src) // what sounding returned
	v, ok := st.precode(est)
	if !ok {
		st.abortTXOP()
		return
	}

	// Announce the burst (NAV covers the BlockAck phase).
	positions := st.antennaPositions(antennas)
	dataHdr := &frames.QoSData{
		Duration: mac.SIFS + baDur,
		RA:       frames.Broadcast,
		TA:       frames.MkAddr(0xA0, uint32(st.ID)),
		TID:      0,
		GroupID:  uint8(st.ID + 1),
	}
	id, err := st.net.Air.StartTx(airTx(positions, st.net.P.TxPowerDBm, dataDur, frames.Encode(dataHdr)))
	if err != nil {
		st.abortTXOP()
		return
	}
	st.rememberTx(id)
	st.AirtimeData += dataDur

	// Sample other-cell interference just before the burst ends, when the
	// overlap set is complete.
	st.net.Eng.Schedule(dataDur-time.Nanosecond, func() {
		rates := st.streamRates(h, v, clients, id)
		for _, r := range rates {
			st.BitsPerHz += r * dataDur.Seconds()
		}
	})
	st.net.Eng.Schedule(dataDur+mac.SIFS+baDur, func() {
		st.finishTXOP(clients, dataDur)
	})
}

// precode runs the configured precoder on the estimated channel through
// the station's long-lived Solver: the returned matrix is solver-owned
// and stays valid until the next TXOP's precode call, which is after this
// TXOP's rates have been accounted. Steady-state calls do not allocate.
func (st *Station) precode(est *matrix.Mat) (*matrix.Mat, bool) {
	prob := precoding.Problem{
		H:               est,
		PerAntennaPower: st.net.txPowLin,
		Noise:           st.net.noiseLin,
	}
	if st.Opts.Precoder == PrecoderPowerBalanced {
		if v, _, err := st.solver.PowerBalanced(prob); err == nil {
			return v, true
		}
	}
	if v, err := st.solver.NaiveScaled(prob); err == nil {
		return v, true
	}
	return nil, false
}

// streamRates returns per-stream Shannon rates (bit/s/Hz) for the true
// channel h under precoder v, including residual inter-stream interference
// (from CSI error) and other-cell interference sampled from the medium.
// The SINR matrix scratch and the returned slice are reused across TXOPs;
// callers must consume the result before the next call.
func (st *Station) streamRates(h, v *matrix.Mat, clients []int, txID int) []float64 {
	noise := st.net.noiseLin
	s := st.solver.SINRMatrix(h, v, noise)
	n := h.Rows()
	if cap(st.rates) < n {
		st.rates = make([]float64, n)
	} else {
		st.rates = st.rates[:n]
	}
	rates := st.rates
	for j := 0; j < n; j++ {
		rates[j] = 0
		interf := 0.0
		for i := 0; i < n; i++ {
			if i != j {
				interf += real(s.At(i, j))
			}
		}
		pos := st.net.Dep.Clients[clients[j]]
		other := st.net.Air.WeightedInterference(txID, pos) / noise
		sinr := real(s.At(j, j)) / (1 + interf + other)
		// A stream below the lowest MCS's sensitivity delivers nothing
		// (§5.1 maps SINR to rate through the closed-loop MCS choice;
		// below MCS0 the PPDU is undecodable).
		if _, ok := phy.Select(stats.DB(sinr)); !ok {
			continue
		}
		rates[j] = phy.ShannonRate(sinr)
	}
	return rates
}

// finishTXOP updates fairness counters, refills traffic and resumes
// contention.
func (st *Station) finishTXOP(clients []int, txop time.Duration) {
	if st.midas != nil {
		st.midas.Dequeue(clients)
		st.midas.FinishTXOP(clients, txop)
	} else {
		st.cas.Dequeue(clients)
		st.cas.FinishTXOP(clients, txop)
	}
	st.TXOPs++
	st.StreamsServed += len(clients)
	st.fillQueues()
	for _, b := range st.backoffs {
		b.Success()
	}
	st.restartContention()
}

func (st *Station) abortTXOP() { st.restartContention() }

// restartContention leaves the TXOP state and restarts every backoff with
// fresh medium state.
func (st *Station) restartContention() {
	st.inTXOP = false
	for i, b := range st.backoffs {
		if st.busyFor(i) {
			b.MediumBusy()
		} else {
			b.MediumIdle()
		}
		b.Start()
	}
}

// rememberTx records a transmission id as our own so overheard copies of
// it do not set our NAV.
func (st *Station) rememberTx(id int) {
	if st.ownTxs == nil {
		st.ownTxs = map[int]bool{}
	}
	st.ownTxs[id] = true
}

// antennaPositions maps global antenna indices to positions.
func (st *Station) antennaPositions(antennas []int) []geom.Point {
	pos := make([]geom.Point, len(antennas))
	for i, a := range antennas {
		pos[i] = st.net.Dep.Antennas[a].Pos
	}
	return pos
}

// soundingDuration models the NDPA + NDP + per-client feedback exchange.
func (st *Station) soundingDuration(nClients int) time.Duration {
	ndpa, _ := phy.Airtime(20+3*nClients, phy.Table[0], 1)
	ndp := phy.VHTPreamble
	bf, _ := phy.Airtime(29+16*len(st.antennas), phy.Table[2], 1)
	return ndpa + mac.SIFS + ndp + time.Duration(nClients)*(mac.SIFS+bf)
}

// blockAckDuration models the sequential per-client BlockAck phase.
func (st *Station) blockAckDuration(nClients int) time.Duration {
	ba, _ := phy.Airtime(32, phy.Table[0], 1)
	if nClients <= 0 {
		return 0
	}
	return time.Duration(nClients)*ba + time.Duration(nClients-1)*mac.SIFS
}
