package sim

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file implements the PHY-layer experiments of §5.2 — the figures
// that need only topologies, channels and precoders (no MAC event loop).
// Each function regenerates one figure's data series.

// Office selects the two indoor environments of §5.2.2.
type Office int

// The two testbed environments.
const (
	// OfficeA is the enterprise office: standard rooms, lighter clutter.
	OfficeA Office = iota
	// OfficeB is the graduate student lab: more crowded, heavier clutter
	// and smaller effective coverage.
	OfficeB
)

// String implements fmt.Stringer.
func (o Office) String() string {
	if o == OfficeB {
		return "OfficeB"
	}
	return "OfficeA"
}

// officeParams returns the channel parameters for an environment.
func officeParams(o Office) channel.Params {
	p := channel.Default()
	if o == OfficeB {
		p.ShadowSigmaDB = 5.0 // denser clutter
		p.CASCorrelation = 0.7
		// The grad lab is partitioned into cubicle-scale bays rather
		// than the enterprise floor's large rooms.
		p.RoomW, p.RoomH = 5, 6
		p.WallDB = 7
		p.MaxWallDB = 42
	}
	return p
}

func officeTopology(o Office, mode topology.Mode, antennas int) topology.Config {
	cfg := topology.DefaultConfig(mode)
	cfg.AntennasPerAP = antennas
	if o == OfficeB {
		cfg.CoverageRadius = 10 // crowded lab: shorter links
	}
	return cfg
}

// phyProblem draws one topology + channel realisation and returns the
// precoding problem over all clients and antennas. env adjusts the
// office defaults; the zero EnvOverrides keeps them.
func phyProblem(o Office, mode topology.Mode, antennas, clients int, env EnvOverrides, src *rng.Source) (precoding.Problem, *channel.Model, *topology.Deployment) {
	cfg := env.Topology(officeTopology(o, mode, antennas))
	cfg.ClientsPerAP = clients
	dep := topology.SingleAP(cfg, src.Split("topo"))
	p := env.Params(officeParams(o))
	m := dep.Model(p, src.Split("chan"))
	prob := precoding.Problem{
		H:               m.Matrix(nil, nil),
		PerAntennaPower: p.TxPowerLinear(),
		Noise:           p.NoiseLinear(),
	}
	return prob, m, dep
}

// Fig3NaiveScalingDrop reproduces Figure 3: the CDF of the capacity drop
// suffered when conventional equal-power ZFBF is forced to meet the
// per-antenna power constraint by one global scale factor, for CAS and
// DAS 4×4 topologies.
func Fig3NaiveScalingDrop(topos int, seed int64) (cas, das *stats.Sample, err error) {
	return Fig3NaiveScalingDropOpts(PhyOpts{Topologies: topos, Seed: seed})
}

// Fig3NaiveScalingDropOpts is Fig3NaiveScalingDrop with the full
// parameter set; the zero optional fields reproduce the paper run.
func Fig3NaiveScalingDropOpts(o PhyOpts) (cas, das *stats.Sample, err error) {
	cas, das = stats.NewSample(), stats.NewSample()
	for _, mode := range []topology.Mode{topology.CAS, topology.DAS} {
		out := cas
		if mode == topology.DAS {
			out = das
		}
		drops, err := sweepErr(o.Topologies, o.Seed, "fig3-"+mode.String(), o.Parallelism, func(t int, src *rng.Source) (float64, error) {
			sv := getSolver()
			defer putSolver(sv)
			prob, _, _ := phyProblem(OfficeB, mode, o.antennas(), o.clients(), o.Env, src)
			// Solver results are overwritten by the next precoder call, so
			// each rate is taken before the next solve.
			ideal, err := sv.ZFBF(prob)
			if err != nil {
				return 0, fmt.Errorf("fig3 topo %d: %w", t, err)
			}
			idealRate := sv.SumRate(prob.H, ideal, prob.Noise)
			naive, err := sv.NaiveScaled(prob)
			if err != nil {
				return 0, fmt.Errorf("fig3 topo %d: %w", t, err)
			}
			drop := idealRate - sv.SumRate(prob.H, naive, prob.Noise)
			if drop < 0 {
				drop = 0
			}
			return drop, nil
		})
		if err != nil {
			return nil, nil, err
		}
		out.AddAll(drops)
	}
	return cas, das, nil
}

// Fig7LinkSNR reproduces Figure 7: the CDF of SISO link SNR for CAS and
// DAS with the greedy client→antenna mapping of §5.2.1 (strongest pair
// first, each antenna and client used once).
func Fig7LinkSNR(topos int, seed int64) (cas, das *stats.Sample) {
	return Fig7LinkSNROpts(PhyOpts{Topologies: topos, Seed: seed})
}

// Fig7LinkSNROpts is Fig7LinkSNR with the full parameter set.
func Fig7LinkSNROpts(o PhyOpts) (cas, das *stats.Sample) {
	cas, das = stats.NewSample(), stats.NewSample()
	for _, mode := range []topology.Mode{topology.CAS, topology.DAS} {
		out := cas
		if mode == topology.DAS {
			out = das
		}
		snrs := sweep(o.Topologies, o.Seed, "fig7-"+mode.String(), o.Parallelism, func(t int, src *rng.Source) []float64 {
			_, m, _ := phyProblem(OfficeA, mode, o.antennas(), o.clients(), o.Env, src)
			return greedySISOMap(m)
		})
		for _, s := range snrs {
			out.AddAll(s)
		}
	}
	return cas, das
}

// greedySISOMap pairs clients with antennas greedily by instantaneous SNR
// and returns the per-client link SNRs (dB).
func greedySISOMap(m *channel.Model) []float64 {
	nA, nC := m.NumAntennas(), m.NumClients()
	usedA := make([]bool, nA)
	usedC := make([]bool, nC)
	var out []float64
	for n := 0; n < nC && n < nA; n++ {
		bestC, bestA, bestSNR := -1, -1, math.Inf(-1)
		for j := 0; j < nC; j++ {
			if usedC[j] {
				continue
			}
			for k := 0; k < nA; k++ {
				if usedA[k] {
					continue
				}
				if s := m.SNRdB(j, k); s > bestSNR {
					bestC, bestA, bestSNR = j, k, s
				}
			}
		}
		usedC[bestC], usedA[bestA] = true, true
		out = append(out, bestSNR)
	}
	return out
}

// FigCapacityCDF reproduces Figures 8 and 9: MU-MIMO sum-capacity CDFs
// for CAS (baseline precoding) versus MIDAS (DAS + power-balanced
// precoding) with the given antenna count (2 → "2x2", 4 → "4x4") in the
// given office.
func FigCapacityCDF(o Office, antennas, topos int, seed int64) (cas, midas *stats.Sample, err error) {
	return FigCapacityCDFOpts(o, PhyOpts{Topologies: topos, Seed: seed, Antennas: antennas})
}

// FigCapacityCDFOpts is FigCapacityCDF with the full parameter set.
func FigCapacityCDFOpts(o Office, po PhyOpts) (cas, midas *stats.Sample, err error) {
	// One source for both arms: §5.2.2 fixes the clients and varies
	// only the antenna deployment between CAS and DAS.
	label := fmt.Sprintf("fig89-%v-%d", o, po.antennas())
	res, err := sweepErr(po.Topologies, po.Seed, label, po.Parallelism, func(t int, src *rng.Source) (arm2, error) {
		sv := getSolver()
		defer putSolver(sv)
		probC, _, _ := phyProblem(o, topology.CAS, po.antennas(), po.clients(), po.Env, src)
		vC, err := sv.NaiveScaled(probC)
		if err != nil {
			return arm2{}, err
		}
		rateC := sv.SumRate(probC.H, vC, probC.Noise)
		probM, _, _ := phyProblem(o, topology.DAS, po.antennas(), po.clients(), po.Env, src)
		vM, _, err := sv.PowerBalanced(probM)
		if err != nil {
			return arm2{}, err
		}
		return arm2{
			a: rateC,
			b: sv.SumRate(probM.H, vM, probM.Noise),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	cas, midas = stats.NewSample(), stats.NewSample()
	for _, r := range res {
		cas.Add(r.a)
		midas.Add(r.b)
	}
	return cas, midas, nil
}

// Fig10Curves labels the four curves of Figure 10.
type Fig10Curves struct {
	CASNaive, CASBalanced, DASNaive, DASBalanced *stats.Sample
}

// Fig10SmartPrecoding reproduces Figure 10: the impact of power-balanced
// precoding on CAS and on DAS separately (4×4, Office B).
func Fig10SmartPrecoding(topos int, seed int64) (*Fig10Curves, error) {
	return Fig10SmartPrecodingOpts(PhyOpts{Topologies: topos, Seed: seed})
}

// Fig10SmartPrecodingOpts is Fig10SmartPrecoding with the full
// parameter set.
func Fig10SmartPrecodingOpts(o PhyOpts) (*Fig10Curves, error) {
	// [casNaive, casBalanced, dasNaive, dasBalanced] per topology; the
	// per-mode child streams keep their original labels.
	vals, err := sweepRootErr(o.Topologies, o.Seed, "fig10", o.Parallelism, func(t int, root *rng.Source) ([4]float64, error) {
		var out [4]float64
		sv := getSolver()
		defer putSolver(sv)
		for mi, mode := range []topology.Mode{topology.CAS, topology.DAS} {
			src := root.SplitN("fig10-"+mode.String(), t)
			prob, _, _ := phyProblem(OfficeB, mode, o.antennas(), o.clients(), o.Env, src)
			naive, err := sv.NaiveScaled(prob)
			if err != nil {
				return out, err
			}
			out[2*mi] = sv.SumRate(prob.H, naive, prob.Noise)
			bal, _, err := sv.PowerBalanced(prob)
			if err != nil {
				return out, err
			}
			out[2*mi+1] = sv.SumRate(prob.H, bal, prob.Noise)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	c := &Fig10Curves{
		CASNaive: stats.NewSample(), CASBalanced: stats.NewSample(),
		DASNaive: stats.NewSample(), DASBalanced: stats.NewSample(),
	}
	for _, v := range vals {
		c.CASNaive.Add(v[0])
		c.CASBalanced.Add(v[1])
		c.DASNaive.Add(v[2])
		c.DASBalanced.Add(v[3])
	}
	return c, nil
}

// Fig11Point is one topology of the Figure 11 comparison.
type Fig11Point struct {
	Topology int
	MIDAS    float64 // power-balanced sum rate, bit/s/Hz
	Optimal  float64 // numerical optimum, bit/s/Hz
}

// Fig11OptimalGap reproduces Figure 11: per-topology sum rate of MIDAS's
// power-balanced precoder against the numerical optimum. testbed selects
// the testbed-like variant, where the optimiser's answer is applied to a
// channel that has evolved during its (simulated) seconds-long solve —
// the effect that let MIDAS beat "optimal" on some testbed topologies.
func Fig11OptimalGap(topos int, seed int64, testbed bool) ([]Fig11Point, error) {
	return Fig11OptimalGapOpts(PhyOpts{Topologies: topos, Seed: seed}, testbed)
}

// Fig11OptimalGapOpts is Fig11OptimalGap with the full parameter set.
func Fig11OptimalGapOpts(o PhyOpts, testbed bool) ([]Fig11Point, error) {
	opts := precoding.DefaultOptimalOptions()
	return sweepErr(o.Topologies, o.Seed, "fig11", o.Parallelism, func(t int, src *rng.Source) (Fig11Point, error) {
		sv := getSolver()
		defer putSolver(sv)
		prob, m, _ := phyProblem(OfficeB, topology.DAS, o.antennas(), o.clients(), o.Env, src)
		// bal stays valid across the OptimalZF call (the numerical
		// reference solver does not share the Solver's buffers).
		bal, _, err := sv.PowerBalanced(prob)
		if err != nil {
			return Fig11Point{}, err
		}
		opt, err := precoding.OptimalZF(prob, opts)
		if err != nil {
			return Fig11Point{}, err
		}
		hEval := prob.H
		hEvalOpt := prob.H
		if testbed {
			// The optimiser takes ~2 s (§5.2.3); the channel moves on.
			// MIDAS's lightweight precoder is applied within the
			// coherence time; the optimal one is applied late.
			for i := 0; i < 40; i++ {
				m.Evolve()
			}
			hEvalOpt = m.Matrix(nil, nil)
		}
		return Fig11Point{
			Topology: t,
			MIDAS:    sv.SumRate(hEval, bal, prob.Noise),
			Optimal:  sv.SumRate(hEvalOpt, opt.V, prob.Noise),
		}, nil
	})
}

// Fig14PacketTagging reproduces Figure 14: one MIDAS AP with only two of
// four antennas available and four backlogged clients; virtual packet
// tagging selects the client pair versus a random pair, and the CDF of
// the resulting 2-stream capacity is compared.
func Fig14PacketTagging(topos int, seed int64) (random, tagged *stats.Sample, err error) {
	return Fig14PacketTaggingOpts(PhyOpts{Topologies: topos, Seed: seed})
}

// Fig14PacketTaggingOpts is Fig14PacketTagging with the full parameter
// set.
func Fig14PacketTaggingOpts(o PhyOpts) (random, tagged *stats.Sample, err error) {
	// The experiment disables two of the antennas and compares client
	// *pairs*, so degenerate arrays cannot run it.
	if o.antennas() < 2 || o.clients() < 2 {
		return nil, nil, fmt.Errorf("fig14: packet tagging needs at least 2 antennas and 2 clients (got %d antennas × %d clients)",
			o.antennas(), o.clients())
	}
	res, err := sweepErr(o.Topologies, o.Seed, "fig14", o.Parallelism, func(t int, src *rng.Source) (arm2, error) {
		sv := getSolver()
		defer putSolver(sv)
		_, m, dep := phyProblem(OfficeB, topology.DAS, o.antennas(), o.clients(), o.Env, src)
		avail := pickTwoAntennas(src, o.antennas())
		// Tag-driven choice: rank clients by mean RSSI on the available
		// antennas (the §3.2.4 preference), pick the top client of each
		// available antenna, distinct.
		tagClients := tagDrivenPair(m, dep, avail)
		randClients := randomPair(src, m.NumClients())
		p := o.Env.Params(officeParams(OfficeB))
		capOf := func(clients []int) (float64, error) {
			sub := precoding.Problem{
				H:               m.Matrix(clients, avail),
				PerAntennaPower: p.TxPowerLinear(),
				Noise:           p.NoiseLinear(),
			}
			v, _, err := sv.PowerBalanced(sub)
			if err != nil {
				return 0, err
			}
			return sv.SumRate(sub.H, v, sub.Noise), nil
		}
		ct, err := capOf(tagClients)
		if err != nil {
			return arm2{}, err
		}
		cr, err := capOf(randClients)
		if err != nil {
			return arm2{}, err
		}
		return arm2{a: cr, b: ct}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	random, tagged = stats.NewSample(), stats.NewSample()
	for _, r := range res {
		random.Add(r.a)
		tagged.Add(r.b)
	}
	return random, tagged, nil
}

func pickTwoAntennas(src *rng.Source, nAntennas int) []int {
	perm := src.Split("avail").Perm(nAntennas)
	a, b := perm[0], perm[1]
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}

// tagDrivenPair picks one client per available antenna by the §3.2.4/5
// rule: clients tagged (top-2 RSSI) to an available antenna are eligible;
// the strongest eligible client wins; duplicates excluded.
func tagDrivenPair(m *channel.Model, dep *topology.Deployment, avail []int) []int {
	all := make([]int, len(dep.Antennas))
	for i := range all {
		all[i] = i
	}
	chosen := map[int]bool{}
	var out []int
	for _, a := range avail {
		best, bestP := -1, math.Inf(-1)
		for j := 0; j < m.NumClients(); j++ {
			if chosen[j] {
				continue
			}
			if !tagsContain(m, j, all, a) {
				continue
			}
			if p := m.MeanRxPower(j, a); p > bestP {
				best, bestP = j, p
			}
		}
		if best >= 0 {
			chosen[best] = true
			out = append(out, best)
		}
	}
	// Degenerate topologies can tag nobody to the available antennas;
	// fall back to strongest clients so a 2-stream transmission happens,
	// as the real AP would (untagged eligibility is the CAS behaviour).
	for len(out) < len(avail) {
		best, bestP := -1, math.Inf(-1)
		for j := 0; j < m.NumClients(); j++ {
			if chosen[j] {
				continue
			}
			for _, a := range avail {
				if p := m.MeanRxPower(j, a); p > bestP {
					best, bestP = j, p
				}
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		out = append(out, best)
	}
	return out
}

// tagsContain reports whether antenna `a` is among client j's top-2
// antennas by mean RSSI.
func tagsContain(m *channel.Model, client int, antennas []int, a int) bool {
	best, second := -1, -1
	var bestP, secondP float64 = math.Inf(-1), math.Inf(-1)
	for _, k := range antennas {
		p := m.MeanRxPower(client, k)
		switch {
		case p > bestP:
			second, secondP = best, bestP
			best, bestP = k, p
		case p > secondP:
			second, secondP = k, p
		}
	}
	return a == best || a == second
}

func randomPair(src *rng.Source, n int) []int {
	perm := src.Split("randpair").Perm(n)
	return []int{perm[0], perm[1]}
}

// SummarizeGain returns the median capacities of two samples and the
// fractional median gain of b over a.
func SummarizeGain(a, b *stats.Sample) (medA, medB, gain float64) {
	medA = a.MustMedian()
	medB = b.MustMedian()
	if medA != 0 {
		gain = medB/medA - 1
	}
	return medA, medB, gain
}
