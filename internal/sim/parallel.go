package sim

import (
	"context"

	"repro/internal/rng"
	"repro/internal/runner"
)

// This file routes every experiment driver's topology loop through the
// internal/runner worker pool. Each topology task derives its randomness
// from the experiment seed and its own index (never from a shared
// stream) and returns a plain value; the helpers collect results in task
// order, so aggregated samples are bit-identical to a sequential run at
// any pool size.

// Parallelism is the package-level *fallback* knob for how many
// topology tasks the experiment drivers evaluate concurrently when a
// caller does not pass an explicit per-call width (the drivers' Opts
// structs and *Opts variants carry one; the legacy bare-signature
// entry points do not). Values <= 0 (the default) select GOMAXPROCS.
// Results do not depend on this setting; it only trades wall-clock
// time for cores. Single-job CLIs expose it as -parallel and the root
// benchmarks as -runner.parallel; multi-job processes (midas-serve)
// must NOT touch it — they pass per-job parallelism through
// scenario.RunOptions instead, precisely because a process-global
// would race across concurrent jobs.
var Parallelism int

// OnProgress, when non-nil, observes every completed topology task of
// every experiment, keyed by the experiment's sweep label. Invocations
// are serialized per sweep. Used by midas-bench's -progress flag.
var OnProgress func(label string, p runner.Progress)

// sweepOpts builds the runner options for one inner topology sweep.
// par is the explicit per-call pool width; <= 0 falls back to the
// package-global Parallelism (and from there to GOMAXPROCS inside the
// runner), preserving the legacy single-job behaviour.
func sweepOpts(label string, par int) runner.Options {
	if par <= 0 {
		par = Parallelism
	}
	opts := runner.Options{Parallelism: par}
	if cb := OnProgress; cb != nil {
		opts.OnDone = func(p runner.Progress) { cb(label, p) }
	}
	return opts
}

// sweepErr runs fn over n topology indices on a pool of par workers
// (<= 0 falls back to the Parallelism global), handing task t the
// child stream rng.New(seed).SplitN(label, t), and returns ordered
// results or the lowest-index task error.
func sweepErr[T any](n int, seed int64, label string, par int, fn func(t int, src *rng.Source) (T, error)) ([]T, error) {
	return runner.Sweep(context.Background(), n, seed, label, sweepOpts(label, par),
		func(_ context.Context, t int, src *rng.Source) (T, error) {
			return fn(t, src)
		})
}

// sweep is sweepErr for infallible task bodies.
func sweep[T any](n int, seed int64, label string, par int, fn func(t int, src *rng.Source) T) []T {
	res, err := sweepErr(n, seed, label, par, func(t int, src *rng.Source) (T, error) {
		return fn(t, src), nil
	})
	if err != nil {
		// Unreachable: tasks cannot fail and the context is never
		// cancelled.
		panic(err)
	}
	return res
}

// sweepRootErr is sweepErr for experiments whose per-task derivation
// does not follow the SplitN(label, t) convention: task t receives the
// shared root source and must only Split/SplitN from it.
func sweepRootErr[T any](n int, seed int64, label string, par int, fn func(t int, root *rng.Source) (T, error)) ([]T, error) {
	return runner.SweepRoot(context.Background(), n, seed, sweepOpts(label, par),
		func(_ context.Context, t int, root *rng.Source) (T, error) {
			return fn(t, root)
		})
}

// sweepRoot is sweepRootErr for infallible task bodies.
func sweepRoot[T any](n int, seed int64, label string, par int, fn func(t int, root *rng.Source) T) []T {
	res, err := sweepRootErr(n, seed, label, par, func(t int, root *rng.Source) (T, error) {
		return fn(t, root), nil
	})
	if err != nil {
		panic(err) // unreachable, as in sweep
	}
	return res
}
