// Package sim binds the substrates together into running networks — the
// role the WARP testbed plays in the paper. It provides closed-loop AP
// station drivers (MIDAS and CAS) on top of the discrete-event medium,
// and one experiment function per figure of the evaluation (§5).
package sim

import (
	"time"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/precoding"
	"repro/internal/rng"
)

// Kind selects the AP behaviour under test.
type Kind int

// AP behaviours.
const (
	// KindCAS is the conventional 802.11ac AP: one channel state, all
	// antennas engaged, naive-scaled ZFBF precoding.
	KindCAS Kind = iota
	// KindMIDAS is the paper's system: per-antenna sensing, opportunistic
	// antenna selection, virtual packet tagging, DRR client selection and
	// power-balanced precoding.
	KindMIDAS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindMIDAS {
		return "MIDAS"
	}
	return "CAS"
}

// PrecoderKind selects the downlink precoder.
type PrecoderKind int

// Precoder selection for stations and PHY experiments.
const (
	PrecoderNaive PrecoderKind = iota
	PrecoderPowerBalanced
)

// StationOpts configures one AP station.
type StationOpts struct {
	Kind     Kind
	Precoder PrecoderKind
	Tagging  bool // virtual packet tagging (MIDAS only; ablation switch)
	// TagWidth overrides the number of tagged antennas per packet when
	// > 0 (paper default 2); only meaningful with Tagging.
	TagWidth  int
	Scheduler core.Scheduler
	// SchedulerName selects a built-in policy when Scheduler is nil:
	// "drr" (default), "rr" or "random".
	SchedulerName string
	// WaitWindow overrides the opportunistic-selection window when
	// HasWaitWindow is set (paper default: one DIFS).
	WaitWindow    time.Duration
	HasWaitWindow bool
	// TrafficMix weights generated traffic across EDCA access categories
	// (§3.3); nil means all best-effort. The highest-priority backlogged
	// class becomes each TXOP's primary access class.
	TrafficMix map[mac.AccessCategory]float64
	// TXOP is the data-phase duration of each transmit opportunity.
	TXOP time.Duration
	// PacketBytes sizes generated traffic.
	PacketBytes int
	// QueueDepth keeps this many packets queued per client (full buffer).
	QueueDepth int
	Sounding   phy.Sounding
}

// DefaultStationOpts returns the paper-default configuration for a kind.
func DefaultStationOpts(kind Kind) StationOpts {
	opts := StationOpts{
		Kind:        kind,
		Precoder:    PrecoderNaive,
		Tagging:     false,
		TXOP:        3 * time.Millisecond,
		PacketBytes: 1500,
		QueueDepth:  8,
		Sounding:    phy.DefaultSounding(),
	}
	if kind == KindMIDAS {
		opts.Precoder = PrecoderPowerBalanced
		opts.Tagging = true
	}
	return opts
}

// Station is one AP (with its antennas and associated clients) running a
// closed MAC+PHY loop against the shared medium.
type Station struct {
	ID   int
	Opts StationOpts

	net      *Network
	antennas []int // global antenna indices
	clients  []int // global client indices

	midas *core.Controller
	cas   *core.CASController

	backoffs []*mac.Backoff // per antenna (MIDAS) or single (CAS)
	physBusy []bool
	inTXOP   bool
	src      *rng.Source
	traffic  *rng.Source
	ownTxs   map[int]bool

	// solver and rates are the station's reusable precoding state: one
	// precoder is computed per TXOP for the station's whole lifetime, so
	// steady-state TXOPs perform no linear-algebra heap allocations.
	solver *precoding.Solver
	rates  []float64

	// Metrics.
	TXOPs          int
	StreamsServed  int
	BitsPerHz      float64 // Σ rate·time — capacity·seconds, per Hz
	SoundingOvhd   time.Duration
	AirtimeData    time.Duration
	CollidedStarts int
}

// newStation wires a station into the network.
func newStation(net *Network, id int, opts StationOpts) *Station {
	st := &Station{
		ID:       id,
		Opts:     opts,
		net:      net,
		antennas: net.Dep.AntennasOf(id),
		clients:  net.Dep.ClientsOf(id),
		src:      net.src.SplitN("station", id),
		solver:   precoding.NewSolver(),
	}
	st.traffic = st.src.Split("traffic")
	sched := opts.Scheduler
	if sched == nil {
		switch opts.SchedulerName {
		case "rr":
			sched = core.NewRoundRobinScheduler()
		case "random":
			r := st.src.Split("sched")
			sched = &core.RandomScheduler{Intn: r.Intn}
		}
	}
	if opts.Kind == KindMIDAS {
		cfg := core.DefaultConfig(st.antennas)
		if sched != nil {
			cfg.Scheduler = sched
		}
		if opts.HasWaitWindow {
			cfg.WaitWindow = opts.WaitWindow
		}
		if !opts.Tagging {
			cfg.TagWidth = 0 // untagged packets are eligible everywhere
		} else if opts.TagWidth > 0 {
			cfg.TagWidth = opts.TagWidth
		}
		st.midas = core.NewController(cfg)
	} else {
		st.cas = core.NewCASController(st.antennas, sched, 0)
	}
	st.fillQueues()
	st.installRadios()
	return st
}

// fillQueues tops up every client's queue to the configured depth.
func (st *Station) fillQueues() {
	for _, cl := range st.clients {
		for st.queueLenFor(cl) < st.Opts.QueueDepth {
			p := core.Packet{
				Client:   cl,
				TID:      st.drawTID(),
				Size:     st.Opts.PacketBytes,
				Enqueued: st.net.Eng.Now(),
			}
			if st.midas != nil {
				st.midas.Enqueue(p, st.net.Model)
			} else {
				st.cas.Enqueue(p)
			}
		}
	}
}

// acTID maps each access category to a representative 802.11e TID.
var acTID = map[mac.AccessCategory]uint8{
	mac.ACVoice:      6,
	mac.ACVideo:      5,
	mac.ACBestEffort: 0,
	mac.ACBackground: 1,
}

// drawTID samples a TID from the configured traffic mix (best effort
// when no mix is set).
func (st *Station) drawTID() uint8 {
	if len(st.Opts.TrafficMix) == 0 {
		return 0
	}
	total := 0.0
	for _, ac := range []mac.AccessCategory{mac.ACVoice, mac.ACVideo, mac.ACBestEffort, mac.ACBackground} {
		total += st.Opts.TrafficMix[ac]
	}
	if total <= 0 {
		return 0
	}
	x := st.traffic.Float64() * total
	for _, ac := range []mac.AccessCategory{mac.ACVoice, mac.ACVideo, mac.ACBestEffort, mac.ACBackground} {
		x -= st.Opts.TrafficMix[ac]
		if x < 0 {
			return acTID[ac]
		}
	}
	return 0
}

func (st *Station) queueLenFor(cl int) int {
	if st.midas != nil {
		return st.midas.Queue.LenFor(cl)
	}
	return st.cas.Queue.LenFor(cl)
}

// installRadios sets up per-antenna carrier sensing, NAV listeners and
// backoff machines.
func (st *Station) installRadios() {
	eng, air := st.net.Eng, st.net.Air
	if st.Opts.Kind == KindMIDAS {
		st.backoffs = make([]*mac.Backoff, len(st.antennas))
		st.physBusy = make([]bool, len(st.antennas))
		for i, a := range st.antennas {
			i, a := i, a
			pos := st.net.Dep.Antennas[a].Pos
			params := mac.DefaultEDCA(mac.ACBestEffort)
			st.backoffs[i] = mac.NewBackoff(eng, params, st.src.SplitN("backoff", i),
				func() { st.granted(a) })
			air.Watch(pos, func(busy bool) {
				st.physBusy[i] = busy
				st.mediumChanged(i)
			})
			air.Listen(mac.Listener{Pos: pos, Fn: func(rx mac.Rx) { st.overheard(i, rx) }})
		}
	} else {
		st.backoffs = make([]*mac.Backoff, 1)
		st.physBusy = make([]bool, 1)
		pos := st.net.Dep.APs[st.ID]
		params := mac.DefaultEDCA(mac.ACBestEffort)
		st.backoffs[0] = mac.NewBackoff(eng, params, st.src.Split("backoff"),
			func() { st.granted(-1) })
		air.Watch(pos, func(busy bool) {
			st.physBusy[0] = busy
			st.mediumChanged(0)
		})
		air.Listen(mac.Listener{Pos: pos, Fn: func(rx mac.Rx) { st.overheard(0, rx) }})
	}
}

// Start begins contention on all of the station's contenders.
func (st *Station) Start() {
	for i, b := range st.backoffs {
		if st.busyFor(i) {
			b.MediumBusy()
		}
		b.Start()
	}
}

// busyFor combines physical and virtual carrier sense for contender i.
func (st *Station) busyFor(i int) bool {
	now := st.net.Eng.Now()
	if st.physBusy[i] {
		return true
	}
	if st.midas != nil {
		return st.midas.Navs.Busy(i, now)
	}
	return st.cas.NAVBusy(now)
}

// mediumChanged propagates a busy/idle edge to the backoff machine(s).
func (st *Station) mediumChanged(i int) {
	if st.inTXOP {
		return
	}
	if st.busyFor(i) {
		st.backoffs[i].MediumBusy()
	} else {
		st.backoffs[i].MediumIdle()
	}
}

// overheard handles a frame arriving at contender/antenna i.
func (st *Station) overheard(i int, rx mac.Rx) {
	if !rx.Decodable || rx.Data == nil {
		return
	}
	if st.ownTx(rx.From) {
		return
	}
	f, err := st.net.parser.Parse(rx.Data)
	if err != nil || f.Dur() == 0 {
		return
	}
	until := rx.End + f.Dur()
	if st.midas != nil {
		st.midas.Navs.Update(i, until)
	} else {
		st.cas.UpdateNAV(0, until)
	}
	// NAV start freezes backoff; expiry re-evaluates the medium.
	st.mediumChanged(i)
	st.net.Eng.At(until, func() { st.mediumChanged(i) })
}

func (st *Station) ownTx(txID int) bool {
	_, ok := st.ownTxs[txID]
	return ok
}
