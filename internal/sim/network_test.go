package sim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/topology"
)

func runNetwork(t *testing.T, mode topology.Mode, kind Kind, seed int64, dur time.Duration) *Network {
	t.Helper()
	cfg := topology.DefaultConfig(mode)
	dep := topology.ThreeAPTestbed(cfg, rng.New(seed))
	net := NewNetwork(dep, channel.Default(), DefaultStationOpts(kind), rng.New(seed+500))
	net.Run(dur)
	return net
}

func TestCASNetworkDeliversTraffic(t *testing.T) {
	net := runNetwork(t, topology.CAS, KindCAS, 1, 300*time.Millisecond)
	if net.TotalTXOPs() == 0 {
		t.Fatal("no TXOPs completed")
	}
	if net.NetworkCapacity() <= 0 {
		t.Fatal("no capacity delivered")
	}
	if net.MeanGroupSize() < 1 || net.MeanGroupSize() > 4 {
		t.Errorf("mean group size = %v", net.MeanGroupSize())
	}
}

func TestMIDASNetworkDeliversTraffic(t *testing.T) {
	net := runNetwork(t, topology.DAS, KindMIDAS, 1, 300*time.Millisecond)
	if net.TotalTXOPs() == 0 {
		t.Fatal("no TXOPs completed")
	}
	if net.NetworkCapacity() <= 0 {
		t.Fatal("no capacity delivered")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	a := runNetwork(t, topology.DAS, KindMIDAS, 7, 200*time.Millisecond)
	b := runNetwork(t, topology.DAS, KindMIDAS, 7, 200*time.Millisecond)
	if a.NetworkCapacity() != b.NetworkCapacity() {
		t.Errorf("capacity differs across identical runs: %v vs %v",
			a.NetworkCapacity(), b.NetworkCapacity())
	}
	if a.TotalTXOPs() != b.TotalTXOPs() {
		t.Errorf("TXOP counts differ: %d vs %d", a.TotalTXOPs(), b.TotalTXOPs())
	}
}

func TestMIDASOutperformsCASEndToEnd(t *testing.T) {
	// The headline end-to-end claim, on a handful of seeds to keep the
	// unit test fast; Fig 15's full 60-topology version lives in the
	// experiments and benches.
	var casSum, midasSum float64
	for seed := int64(0); seed < 5; seed++ {
		cas := runNetwork(t, topology.CAS, KindCAS, seed, 300*time.Millisecond)
		midas := runNetwork(t, topology.DAS, KindMIDAS, seed, 300*time.Millisecond)
		casSum += cas.NetworkCapacity()
		midasSum += midas.NetworkCapacity()
	}
	if midasSum <= casSum {
		t.Errorf("MIDAS aggregate capacity %v should exceed CAS %v", midasSum, casSum)
	}
	t.Logf("aggregate capacity: MIDAS %.1f vs CAS %.1f (%.0f%% gain)",
		midasSum, casSum, 100*(midasSum/casSum-1))
}

func TestKindAndOfficeStrings(t *testing.T) {
	if KindMIDAS.String() != "MIDAS" || KindCAS.String() != "CAS" {
		t.Error("Kind names wrong")
	}
	if OfficeA.String() != "OfficeA" || OfficeB.String() != "OfficeB" {
		t.Error("Office names wrong")
	}
}

func TestDefaultE2E(t *testing.T) {
	o := DefaultE2E(5)
	if o.Topologies != 60 || o.Seed != 5 || o.SimTime <= 0 {
		t.Errorf("DefaultE2E = %+v", o)
	}
}

func TestMeanGroupSizeZeroWhenIdle(t *testing.T) {
	cfg := topology.DefaultConfig(topology.CAS)
	dep := topology.SingleAP(cfg, rng.New(1))
	net := NewNetwork(dep, channel.Default(), DefaultStationOpts(KindCAS), rng.New(2))
	if net.MeanGroupSize() != 0 {
		t.Error("mean group size should be 0 before any TXOP")
	}
	if net.NetworkCapacity() != 0 {
		t.Error("capacity should be 0 at time 0")
	}
}
