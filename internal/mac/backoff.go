package mac

import (
	"repro/internal/rng"
)

// Backoff implements the 802.11 EDCA contention state machine for one
// contender (an AP's access category, or one MIDAS antenna): AIFS idle
// wait, slotted random backoff that freezes while the medium is busy, and
// binary-exponential contention-window growth on collision.
//
// The owner drives it with medium busy/idle transitions; Backoff calls
// `granted` when it wins a transmit opportunity.
type Backoff struct {
	Params EDCAParams

	eng     *Engine
	src     *rng.Source
	granted func()

	cw        int
	slotsLeft int
	timer     *Timer
	running   bool
	busy      bool
}

// NewBackoff creates a contender. `granted` fires when backoff completes.
func NewBackoff(eng *Engine, params EDCAParams, src *rng.Source, granted func()) *Backoff {
	return &Backoff{
		Params:  params,
		eng:     eng,
		src:     src,
		granted: granted,
		cw:      params.CWMin,
	}
}

// Start begins a contention cycle: draw a backoff counter and, if the
// medium is currently idle, start counting down after AIFS.
func (b *Backoff) Start() {
	if b.running {
		return
	}
	b.running = true
	b.slotsLeft = b.src.Intn(b.cw + 1)
	b.resume()
}

// Running reports whether a contention cycle is active.
func (b *Backoff) Running() bool { return b.running }

// MediumBusy must be called when the contender's medium becomes busy
// (physical or virtual carrier sense); it freezes the countdown.
func (b *Backoff) MediumBusy() {
	b.busy = true
	if b.timer != nil {
		b.timer.Cancel()
		b.timer = nil
	}
}

// MediumIdle must be called when the medium becomes idle again; the
// countdown resumes after a fresh AIFS.
func (b *Backoff) MediumIdle() {
	b.busy = false
	if b.running {
		b.resume()
	}
}

// resume restarts the countdown after an idle transition: a full AIFS,
// then one decrement per idle slot. Progress through the backoff counter
// is preserved across busy periods (the standard freeze/resume rule), so
// every contender eventually drains its counter and wins.
func (b *Backoff) resume() {
	if b.busy {
		return
	}
	if b.timer != nil {
		b.timer.Cancel()
	}
	b.timer = b.eng.Schedule(b.Params.AIFS(), b.tick)
}

// tick consumes one idle backoff slot, granting at zero.
func (b *Backoff) tick() {
	if b.busy || !b.running {
		return
	}
	if b.slotsLeft <= 0 {
		b.running = false
		b.timer = nil
		b.granted()
		return
	}
	b.slotsLeft--
	b.timer = b.eng.Schedule(SlotTime, b.tick)
}

// Collision doubles the contention window (up to CWMax) and starts a new
// cycle, as after a failed transmission.
func (b *Backoff) Collision() {
	b.cw = b.cw*2 + 1
	if b.cw > b.Params.CWMax {
		b.cw = b.Params.CWMax
	}
	b.running = false
	b.Start()
}

// Success resets the contention window to CWMin after a delivered
// transmission.
func (b *Backoff) Success() { b.cw = b.Params.CWMin }

// CW exposes the current contention window (for tests and stats).
func (b *Backoff) CW() int { return b.cw }

// Stop aborts the current cycle.
func (b *Backoff) Stop() {
	b.running = false
	if b.timer != nil {
		b.timer.Cancel()
		b.timer = nil
	}
}
