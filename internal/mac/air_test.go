package mac

import (
	"math"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frames"
	"repro/internal/geom"
	"repro/internal/stats"
)

func newTestAir() (*Engine, *Air) {
	e := NewEngine()
	return e, NewAir(e, channel.Default())
}

func TestBusyReflectsActiveTx(t *testing.T) {
	e, a := newTestAir()
	pos := geom.Pt(5, 0)
	if a.Busy(pos) {
		t.Fatal("medium should start idle")
	}
	_, err := a.StartTx(Tx{
		Antennas: []geom.Point{geom.Pt(0, 0)},
		PowerDBm: 20,
		Airtime:  100 * time.Microsecond,
		Data:     frames.Encode(&frames.CTS{RA: frames.MkAddr(1, 1)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Busy(pos) {
		t.Error("medium near an active tx should be busy")
	}
	far := geom.Pt(500, 0)
	if a.Busy(far) {
		t.Error("medium 500 m away should be idle")
	}
	e.Run(time.Second)
	if a.Busy(pos) {
		t.Error("medium should be idle after tx ends")
	}
	if a.ActiveCount() != 0 {
		t.Error("no active tx expected")
	}
}

func TestStartTxValidation(t *testing.T) {
	_, a := newTestAir()
	if _, err := a.StartTx(Tx{PowerDBm: 20, Airtime: time.Microsecond}); err == nil {
		t.Error("no antennas should error")
	}
	if _, err := a.StartTx(Tx{Antennas: []geom.Point{{}}, Airtime: 0}); err == nil {
		t.Error("zero airtime should error")
	}
}

func TestDeliveryToListener(t *testing.T) {
	e, a := newTestAir()
	var got []Rx
	a.Listen(Listener{Pos: geom.Pt(10, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	payload := frames.Encode(&frames.RTS{
		Duration: 300 * time.Microsecond,
		RA:       frames.MkAddr(1, 1), TA: frames.MkAddr(2, 2),
	})
	a.StartTx(Tx{
		Antennas: []geom.Point{geom.Pt(0, 0)},
		PowerDBm: 20,
		Airtime:  50 * time.Microsecond,
		Data:     payload,
	})
	e.Run(time.Second)
	if len(got) != 1 {
		t.Fatalf("got %d deliveries", len(got))
	}
	rx := got[0]
	if !rx.Decodable {
		t.Errorf("frame at 10 m should decode: power %v dBm, sinr %v dB", rx.PowerDBm, rx.SINRdB)
	}
	if rx.Start != 0 || rx.End != 50*time.Microsecond {
		t.Errorf("timing %v–%v", rx.Start, rx.End)
	}
	f, err := frames.Decode(rx.Data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dur() != 300*time.Microsecond {
		t.Errorf("decoded NAV duration %v", f.Dur())
	}
}

func TestFarListenerCannotDecode(t *testing.T) {
	e, a := newTestAir()
	var got []Rx
	a.Listen(Listener{Pos: geom.Pt(100, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	a.StartTx(Tx{
		Antennas: []geom.Point{geom.Pt(0, 0)},
		PowerDBm: 20,
		Airtime:  50 * time.Microsecond,
	})
	e.Run(time.Second)
	if len(got) != 1 {
		t.Fatalf("got %d deliveries", len(got))
	}
	if got[0].Decodable {
		t.Errorf("frame at 100 m decodable (power %v dBm)", got[0].PowerDBm)
	}
}

func TestCollisionDestroysBothFrames(t *testing.T) {
	e, a := newTestAir()
	var got []Rx
	// Listener midway between two simultaneous transmitters.
	a.Listen(Listener{Pos: geom.Pt(10, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(20, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	e.Run(time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d deliveries", len(got))
	}
	for i, rx := range got {
		if rx.Decodable {
			t.Errorf("frame %d should collide (sinr %v dB)", i, rx.SINRdB)
		}
	}
}

func TestCaptureEffect(t *testing.T) {
	e, a := newTestAir()
	var got []Rx
	// Listener right next to tx A; tx B far away → A captures.
	a.Listen(Listener{Pos: geom.Pt(2, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(40, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	e.Run(time.Second)
	var nearDecodable, farDecodable bool
	for _, rx := range got {
		if rx.From == 0 {
			nearDecodable = rx.Decodable
		} else {
			farDecodable = rx.Decodable
		}
	}
	if !nearDecodable {
		t.Error("near frame should capture")
	}
	if farDecodable {
		t.Error("far frame should be jammed at this listener")
	}
}

func TestOverlapIsConservative(t *testing.T) {
	// A frame that overlaps only briefly with another still counts the
	// interferer for its whole airtime (worst-case rule).
	e, a := newTestAir()
	var got []Rx
	a.Listen(Listener{Pos: geom.Pt(10, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	e.Schedule(90*time.Microsecond, func() {
		a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(20, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	})
	e.Run(time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d deliveries", len(got))
	}
	if got[0].Decodable {
		t.Error("first frame overlapped and should be counted as collided")
	}
}

func TestSequentialTxDoNotInterfere(t *testing.T) {
	e, a := newTestAir()
	var got []Rx
	a.Listen(Listener{Pos: geom.Pt(10, 0), Fn: func(rx Rx) { got = append(got, rx) }})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	e.Schedule(60*time.Microsecond, func() {
		a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(20, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	})
	e.Run(time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d deliveries", len(got))
	}
	for i, rx := range got {
		if !rx.Decodable {
			t.Errorf("frame %d should decode cleanly (sinr %v)", i, rx.SINRdB)
		}
	}
}

func TestMultiAntennaTxPower(t *testing.T) {
	_, a := newTestAir()
	tx := Tx{
		Antennas: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)},
		PowerDBm: 20,
	}
	pos := geom.Pt(1, 0)
	best := a.powerFrom(tx, pos)
	sum := a.sumPowerFrom(tx, pos)
	if best >= sum {
		t.Error("sum power should exceed best-antenna power")
	}
	wantBest := a.P.PowerAtPoint(geom.Pt(0, 0), pos, 20)
	if math.Abs(best-wantBest) > 1e-15 {
		t.Errorf("best = %v, want %v", best, wantBest)
	}
}

func TestDecodeRangeConsistent(t *testing.T) {
	e, a := newTestAir()
	r := a.DecodeRange()
	if r < 10 || r > 40 {
		t.Errorf("decode range %v m outside the testbed-like band", r)
	}
	_ = r
	// A frame from just inside the range decodes; outside does not.
	var in, out Rx
	a.Listen(Listener{Pos: geom.Pt(r*0.9, 0), Fn: func(rx Rx) { in = rx }})
	a.Listen(Listener{Pos: geom.Pt(r*1.2, 0), Fn: func(rx Rx) { out = rx }})
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: a.P.TxPowerDBm, Airtime: 10 * time.Microsecond})
	e.Run(time.Second)
	if !in.Decodable {
		t.Errorf("inside range should decode (power %v dBm, thr %v)", in.PowerDBm, a.CSThresholdDBm)
	}
	if out.Decodable {
		t.Errorf("outside range should not decode (power %v dBm)", out.PowerDBm)
	}
}

func TestUnlisten(t *testing.T) {
	e, a := newTestAir()
	calls := 0
	id := a.Listen(Listener{Pos: geom.Pt(1, 0), Fn: func(Rx) { calls++ }})
	a.Unlisten(id)
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: time.Microsecond})
	e.Run(time.Second)
	if calls != 0 {
		t.Error("unlistened listener received a frame")
	}
}

func TestPowerAtExclusion(t *testing.T) {
	_, a := newTestAir()
	id, _ := a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: time.Second})
	pos := geom.Pt(5, 0)
	if p := a.PowerAt(pos, id); p != 0 {
		t.Errorf("excluding the only tx should give 0, got %v", p)
	}
	if p := a.PowerAt(pos, -1); p <= 0 {
		t.Error("including the tx should give positive power")
	}
}

func TestCSThresholdUnits(t *testing.T) {
	// Internal consistency: Busy flips exactly at the CS-range distance,
	// which exceeds the decode range (energy detect is more sensitive).
	e, a := newTestAir()
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: a.P.TxPowerDBm, Airtime: time.Second})
	r := a.CSRange()
	if r <= a.DecodeRange() {
		t.Error("CS range should exceed decode range")
	}
	if !a.Busy(geom.Pt(r*0.95, 0)) {
		t.Error("just inside CS range should be busy")
	}
	if a.Busy(geom.Pt(r*1.3, 0)) {
		t.Error("well outside CS range should be idle")
	}
	_ = e
	_ = stats.DB // keep import for clarity of threshold units
}
