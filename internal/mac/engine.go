// Package mac provides the 802.11 medium-access substrate the MIDAS and
// CAS access points are built on: a deterministic discrete-event engine,
// a radio medium with per-position physical carrier sensing and frame
// delivery, per-antenna NAV (virtual carrier sense) tables, and EDCA
// backoff state machines (§3.2.2–3.2.3, §3.3 of the paper).
package mac

import (
	"container/heap"
	"time"
)

// Engine is a deterministic discrete-event simulator. Events scheduled at
// the same instant fire in scheduling order.
type Engine struct {
	now time.Duration
	pq  eventQueue
	seq uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay (relative to the current time). A negative
// delay is treated as zero. It returns a handle that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return &Timer{ev: ev}
}

// Run processes events until the queue is empty or the clock would pass
// `until`. It returns the number of events executed.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.pq)
		if next.cancelled {
			continue
		}
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.pq) }

// Timer is a handle to a scheduled event.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t != nil && t.ev != nil && t.ev.cancelled }

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
