package mac

import "time"

// 802.11ac (5 GHz OFDM) MAC timing constants.
const (
	// SlotTime is one backoff slot.
	SlotTime = 9 * time.Microsecond
	// SIFS separates frames within one exchange.
	SIFS = 16 * time.Microsecond
	// DIFS = SIFS + 2·slot, the baseline idle period before access — and
	// the wait window MIDAS uses for opportunistic antenna selection
	// (§3.2.3).
	DIFS = SIFS + 2*SlotTime
)

// AccessCategory is an 802.11e EDCA traffic class (§3.3: 802.11ac reuses
// the four 802.11e queues for MU-MIMO and selects a primary access class).
type AccessCategory int

// The four EDCA access categories.
const (
	ACBackground AccessCategory = iota
	ACBestEffort
	ACVideo
	ACVoice
	numAC
)

// String implements fmt.Stringer.
func (ac AccessCategory) String() string {
	switch ac {
	case ACBackground:
		return "AC_BK"
	case ACBestEffort:
		return "AC_BE"
	case ACVideo:
		return "AC_VI"
	case ACVoice:
		return "AC_VO"
	default:
		return "AC_?"
	}
}

// ACOfTID maps an 802.11e TID (0–7) to its access category.
func ACOfTID(tid uint8) AccessCategory {
	switch tid {
	case 1, 2:
		return ACBackground
	case 0, 3:
		return ACBestEffort
	case 4, 5:
		return ACVideo
	case 6, 7:
		return ACVoice
	default:
		return ACBestEffort
	}
}

// EDCAParams are the per-AC contention parameters.
type EDCAParams struct {
	AIFSN     int // AIFS = SIFS + AIFSN·slot
	CWMin     int
	CWMax     int
	TXOPLimit time.Duration
}

// DefaultEDCA returns the standard 802.11 EDCA parameter set for 5 GHz.
func DefaultEDCA(ac AccessCategory) EDCAParams {
	switch ac {
	case ACVoice:
		return EDCAParams{AIFSN: 2, CWMin: 3, CWMax: 7, TXOPLimit: 1504 * time.Microsecond}
	case ACVideo:
		return EDCAParams{AIFSN: 2, CWMin: 7, CWMax: 15, TXOPLimit: 3008 * time.Microsecond}
	case ACBestEffort:
		return EDCAParams{AIFSN: 3, CWMin: 15, CWMax: 1023, TXOPLimit: 2528 * time.Microsecond}
	default: // background
		return EDCAParams{AIFSN: 7, CWMin: 15, CWMax: 1023, TXOPLimit: 2528 * time.Microsecond}
	}
}

// AIFS returns the arbitration inter-frame space for the parameters.
func (p EDCAParams) AIFS() time.Duration {
	return SIFS + time.Duration(p.AIFSN)*SlotTime
}
