package mac

import (
	"math"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/geom"
)

func TestWatchEdges(t *testing.T) {
	e, a := newTestAir()
	var edges []bool
	id := a.Watch(geom.Pt(5, 0), func(busy bool) { edges = append(edges, busy) })
	if len(edges) != 1 || edges[0] {
		t.Fatalf("initial watch state = %v, want [false]", edges)
	}
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	e.Run(time.Second)
	if len(edges) != 3 || !edges[1] || edges[2] {
		t.Fatalf("edges = %v, want [false true false]", edges)
	}
	a.Unwatch(id)
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 50 * time.Microsecond})
	e.Run(2 * time.Second)
	if len(edges) != 3 {
		t.Error("unwatched watcher still notified")
	}
}

func TestWatchNoEdgeWhenAlreadyBusy(t *testing.T) {
	// Two overlapping transmissions near the watcher: only one busy edge.
	e, a := newTestAir()
	var edges []bool
	a.Watch(geom.Pt(5, 0), func(busy bool) { edges = append(edges, busy) })
	a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	e.Schedule(20*time.Microsecond, func() {
		a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(1, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	})
	e.Run(time.Second)
	// initial(false), busy at t=0, idle when the second tx ends.
	if len(edges) != 3 {
		t.Fatalf("edges = %v, want exactly 3", edges)
	}
}

func TestOverlapQueriesDuringFlight(t *testing.T) {
	e, a := newTestAir()
	pos := geom.Pt(10, 0)
	id1, _ := a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	if got := a.OverlapCount(id1); got != 0 {
		t.Errorf("fresh tx overlap count = %d", got)
	}
	if got := a.OverlapInterference(id1, pos); got != 0 {
		t.Errorf("fresh tx interference = %v", got)
	}
	sig := a.TxSignalAt(id1, pos)
	if sig <= 0 {
		t.Error("active tx should have positive signal")
	}
	var id2 int
	e.Schedule(50*time.Microsecond, func() {
		id2, _ = a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(20, 0)}, PowerDBm: 20, Airtime: 100 * time.Microsecond})
	})
	e.Schedule(99*time.Microsecond, func() {
		if got := a.OverlapCount(id1); got != 1 {
			t.Errorf("overlap count = %d, want 1", got)
		}
		oi := a.OverlapInterference(id1, pos)
		if oi <= 0 {
			t.Error("overlap interference should be positive")
		}
		// Weighted interference scales by the 50% overlap fraction.
		wi := a.WeightedInterference(id1, pos)
		if wi <= 0 || wi >= oi {
			t.Errorf("weighted %v should be positive and below worst-case %v", wi, oi)
		}
		if ratio := wi / oi; math.Abs(ratio-0.5) > 0.02 {
			t.Errorf("weighted/worst-case = %v, want ≈0.5 (50µs of 100µs)", ratio)
		}
		// And from id2's perspective the whole overlap window is within
		// its own airtime start..id1End — fraction (100-50)/100 = 0.5.
		if a.OverlapCount(id2) != 1 {
			t.Errorf("id2 overlap count = %d", a.OverlapCount(id2))
		}
	})
	e.Run(time.Second)
}

func TestOverlapQueriesAfterEnd(t *testing.T) {
	e, a := newTestAir()
	id, _ := a.StartTx(Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: time.Microsecond})
	e.Run(time.Second)
	if a.OverlapCount(id) != 0 || a.OverlapInterference(id, geom.Pt(1, 0)) != 0 ||
		a.WeightedInterference(id, geom.Pt(1, 0)) != 0 || a.TxSignalAt(id, geom.Pt(1, 0)) != 0 {
		t.Error("ended tx should answer zero to all overlap queries")
	}
}

func TestAirWithShadowField(t *testing.T) {
	// The same link budget query through a field must differ from the
	// free-space one, and Busy must follow the field.
	e := NewEngine()
	p := channel.Default()
	free := NewAir(e, p)
	walled := NewAir(e, p)
	walled.Shadow = p.NewField(12345)
	tx := Tx{Antennas: []geom.Point{geom.Pt(0, 0)}, PowerDBm: 20, Airtime: time.Second}
	free.StartTx(tx)
	walled.StartTx(tx)
	pos := geom.Pt(25, 0)
	pf := free.PowerAt(pos, -1)
	pw := walled.PowerAt(pos, -1)
	if pf == pw {
		t.Error("shadow field should change the link budget")
	}
	if w := walled.Shadow.Walls(geom.Pt(0, 0), pos); w > 0 && pw >= pf {
		t.Errorf("power through %d walls (%v) should be below free space (%v)", w, pw, pf)
	}
}

func TestNAVExpiryAccessor(t *testing.T) {
	var n NAV
	n.Update(77 * time.Microsecond)
	if n.Expiry() != 77*time.Microsecond {
		t.Errorf("Expiry = %v", n.Expiry())
	}
}

func TestCSRangeOrdering(t *testing.T) {
	_, a := newTestAir()
	if a.CSRange() <= a.DecodeRange() {
		t.Errorf("CS range %v should exceed decode range %v", a.CSRange(), a.DecodeRange())
	}
}
