package mac

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*time.Microsecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Microsecond, func() { order = append(order, 2) })
	n := e.Run(time.Second)
	if n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Microsecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v", order)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(42*time.Microsecond, func() { at = e.Now() })
	e.Run(time.Second)
	if at != 42*time.Microsecond {
		t.Errorf("event saw clock %v", at)
	}
	if e.Now() != time.Second {
		t.Errorf("Run should leave clock at `until`, got %v", e.Now())
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100*time.Microsecond, func() { fired = true })
	e.Run(50 * time.Microsecond)
	if fired {
		t.Error("event beyond `until` must not fire")
	}
	e.Run(200 * time.Microsecond)
	if !fired {
		t.Error("event should fire on the second Run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var log []time.Duration
	e.Schedule(10*time.Microsecond, func() {
		log = append(log, e.Now())
		e.Schedule(5*time.Microsecond, func() {
			log = append(log, e.Now())
		})
	})
	e.Run(time.Second)
	if len(log) != 2 || log[0] != 10*time.Microsecond || log[1] != 15*time.Microsecond {
		t.Errorf("log = %v", log)
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5*time.Microsecond, func() { fired = true })
	e.Run(time.Microsecond)
	if !fired {
		t.Error("negative delay should fire immediately")
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(10*time.Microsecond, func() { fired = true })
	tm.Cancel()
	if !tm.Cancelled() {
		t.Error("Cancelled() should be true")
	}
	e.Run(time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	tm.Cancel() // idempotent
	var nilTimer *Timer
	nilTimer.Cancel() // safe on nil
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Microsecond, func() {})
	e.Schedule(time.Microsecond, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Errorf("Pending after run = %d", e.Pending())
	}
}

func TestEngineManyEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 10000 {
			e.Schedule(time.Microsecond, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run(time.Second)
	if count != 10000 {
		t.Errorf("count = %d", count)
	}
}
