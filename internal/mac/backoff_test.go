package mac

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestBackoffGrantsAfterAIFSPlusSlots(t *testing.T) {
	e := NewEngine()
	params := DefaultEDCA(ACBestEffort)
	var grantedAt time.Duration
	b := NewBackoff(e, params, rng.New(1), func() { grantedAt = e.Now() })
	b.Start()
	e.Run(time.Second)
	if grantedAt == 0 {
		t.Fatal("never granted")
	}
	min := params.AIFS()
	max := params.AIFS() + time.Duration(params.CWMin)*SlotTime
	if grantedAt < min || grantedAt > max {
		t.Errorf("granted at %v, want in [%v, %v]", grantedAt, min, max)
	}
	if b.Running() {
		t.Error("should not be running after grant")
	}
}

func TestBackoffFreezesWhileBusy(t *testing.T) {
	e := NewEngine()
	params := DefaultEDCA(ACBestEffort)
	granted := false
	b := NewBackoff(e, params, rng.New(2), func() { granted = true })
	b.Start()
	b.MediumBusy()
	e.Run(10 * time.Millisecond)
	if granted {
		t.Fatal("granted while medium busy")
	}
	b.MediumIdle()
	e.Run(20 * time.Millisecond)
	if !granted {
		t.Error("should grant after medium went idle")
	}
}

func TestBackoffBusyIdleChurn(t *testing.T) {
	e := NewEngine()
	params := DefaultEDCA(ACBestEffort)
	granted := 0
	b := NewBackoff(e, params, rng.New(3), func() { granted++ })
	b.Start()
	// Rapid busy/idle cycling shorter than AIFS: never grants.
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * 20 * time.Microsecond
		e.At(at, func() { b.MediumBusy() })
		e.At(at+10*time.Microsecond, func() { b.MediumIdle() })
	}
	e.Run(20 * 20 * time.Microsecond)
	if granted != 0 {
		t.Errorf("granted %d times during churn", granted)
	}
	// Then a long idle period grants exactly once.
	e.Run(time.Second)
	if granted != 1 {
		t.Errorf("granted %d times, want 1", granted)
	}
}

func TestBackoffCollisionDoublesCW(t *testing.T) {
	e := NewEngine()
	params := DefaultEDCA(ACBestEffort)
	b := NewBackoff(e, params, rng.New(4), func() {})
	if b.CW() != params.CWMin {
		t.Fatalf("initial CW = %d", b.CW())
	}
	b.Collision()
	if b.CW() != params.CWMin*2+1 {
		t.Errorf("CW after collision = %d", b.CW())
	}
	for i := 0; i < 20; i++ {
		b.Collision()
	}
	if b.CW() != params.CWMax {
		t.Errorf("CW should cap at %d, got %d", params.CWMax, b.CW())
	}
	b.Success()
	if b.CW() != params.CWMin {
		t.Errorf("CW after success = %d", b.CW())
	}
}

func TestBackoffStop(t *testing.T) {
	e := NewEngine()
	granted := false
	b := NewBackoff(e, DefaultEDCA(ACVoice), rng.New(5), func() { granted = true })
	b.Start()
	b.Stop()
	e.Run(time.Second)
	if granted {
		t.Error("stopped backoff granted")
	}
}

func TestBackoffStartIdempotentWhileRunning(t *testing.T) {
	e := NewEngine()
	granted := 0
	b := NewBackoff(e, DefaultEDCA(ACVoice), rng.New(6), func() { granted++ })
	b.Start()
	b.Start() // no-op
	e.Run(time.Second)
	if granted != 1 {
		t.Errorf("granted %d times", granted)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	run := func(seed int64) time.Duration {
		e := NewEngine()
		var at time.Duration
		b := NewBackoff(e, DefaultEDCA(ACBestEffort), rng.New(seed), func() { at = e.Now() })
		b.Start()
		e.Run(time.Second)
		return at
	}
	if run(7) != run(7) {
		t.Error("same seed should grant at the same time")
	}
}

func TestBackoffContentionBetweenTwoStations(t *testing.T) {
	// Two contenders with different seeds: one wins earlier; after the
	// winner transmits (making the medium busy for the loser), the loser
	// grants later. This exercises the full freeze/resume path.
	e := NewEngine()
	var aAt, bAt time.Duration
	a := NewBackoff(e, DefaultEDCA(ACBestEffort), rng.New(1), func() { aAt = e.Now() })
	var bb *Backoff
	bb = NewBackoff(e, DefaultEDCA(ACBestEffort), rng.New(9), func() { bAt = e.Now() })
	a.Start()
	bb.Start()
	e.Run(time.Second)
	if aAt == bAt {
		t.Skip("seeds drew the same backoff; pick different seeds")
	}
	if aAt == 0 || bAt == 0 {
		t.Fatal("one contender never granted")
	}
}
