package mac

import "time"

// NAV is a network allocation vector — the 802.11 virtual carrier-sense
// timer. A conventional CAS AP keeps exactly one; a MIDAS AP provisions
// one per distributed antenna (§3.2.2) so each antenna tracks the medium
// occupancy in its own neighbourhood.
type NAV struct {
	until time.Duration
}

// Update extends the NAV to `until` if it is later than the current
// reservation (the standard NAV update rule).
func (n *NAV) Update(until time.Duration) {
	if until > n.until {
		n.until = until
	}
}

// Busy reports whether the NAV is set at time now.
func (n *NAV) Busy(now time.Duration) bool { return now < n.until }

// Expiry returns the absolute time the NAV runs out.
func (n *NAV) Expiry() time.Duration { return n.until }

// Clear resets the NAV (used when a CF-End-like release is heard).
func (n *NAV) Clear() { n.until = 0 }

// Table is a set of per-antenna NAVs plus per-antenna physical sensing
// hooks — the MIDAS AP's fine-grained channel state (§3.2.2).
type Table struct {
	navs []NAV
}

// NewTable returns a table with n independent NAVs.
func NewTable(n int) *Table { return &Table{navs: make([]NAV, n)} }

// Len returns the number of antennas tracked.
func (t *Table) Len() int { return len(t.navs) }

// Update extends antenna k's NAV.
func (t *Table) Update(k int, until time.Duration) { t.navs[k].Update(until) }

// UpdateAll extends every NAV — the CAS behaviour of coupling all
// antennas to a single channel state.
func (t *Table) UpdateAll(until time.Duration) {
	for k := range t.navs {
		t.navs[k].Update(until)
	}
}

// Busy reports antenna k's virtual carrier-sense state.
func (t *Table) Busy(k int, now time.Duration) bool { return t.navs[k].Busy(now) }

// Expiry returns antenna k's NAV expiry.
func (t *Table) Expiry(k int) time.Duration { return t.navs[k].Expiry() }

// Idle returns the antennas whose NAVs are clear at now.
func (t *Table) Idle(now time.Duration) []int {
	var idle []int
	for k := range t.navs {
		if !t.navs[k].Busy(now) {
			idle = append(idle, k)
		}
	}
	return idle
}

// ExpiringWithin returns the antennas whose NAVs are busy at now but
// expire within the window — the candidates MIDAS's opportunistic antenna
// selection waits for (§3.2.3).
func (t *Table) ExpiringWithin(now, window time.Duration) []int {
	var soon []int
	for k := range t.navs {
		if t.navs[k].Busy(now) && t.navs[k].Expiry() <= now+window {
			soon = append(soon, k)
		}
	}
	return soon
}

// ByExpiry returns the given antennas ordered by NAV expiry (earliest
// first, ties by index) — the order MIDAS considers antennas for client
// selection (§3.2.5).
func (t *Table) ByExpiry(antennas []int) []int {
	out := append([]int(nil), antennas...)
	// insertion sort: antenna counts are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if t.navs[a].Expiry() > t.navs[b].Expiry() ||
				(t.navs[a].Expiry() == t.navs[b].Expiry() && a > b) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
