package mac

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Sensing thresholds. With the default channel parameters these give a
// carrier-sense/decode range of ≈20 m, matching the inter-AP distances of
// the paper's testbed (three APs 15 m apart overhear each other; the 8-AP
// layout caps overhearing at 3 APs).
const (
	// DefaultCSThresholdDBm is the energy level above which an antenna
	// senses the medium busy (preamble/energy detection reaches below
	// the decode sensitivity).
	DefaultCSThresholdDBm = -82.0
	// DefaultDecodeMinDBm is the minimum receive power for a frame's
	// contents (headers, Duration) to be decodable.
	DefaultDecodeMinDBm = -69.0
	// DefaultCaptureSINRdB is the minimum SINR for a control frame to
	// survive overlapping transmissions (capture effect).
	DefaultCaptureSINRdB = 6.0
)

// Rx describes one frame arrival at a listener.
type Rx struct {
	Data     []byte  // encoded frame bytes
	PowerDBm float64 // strongest-antenna receive power
	SINRdB   float64 // against the worst-case overlap interference
	// Decodable is false when the frame was below sensitivity or
	// collided; such frames still raised energy on the medium.
	Decodable bool
	From      int // transmission ID
	Start     time.Duration
	End       time.Duration
}

// Listener receives every transmission that ends while it is registered.
type Listener struct {
	Pos geom.Point
	Fn  func(Rx)
}

// Tx describes one transmission: a set of transmitting antenna positions
// (one for SISO control frames; several for an MU PPDU), a per-antenna
// power, a duration and the encoded frame.
type Tx struct {
	Antennas []geom.Point
	PowerDBm float64
	Airtime  time.Duration
	Data     []byte
}

// Air is the shared radio medium: it tracks active transmissions, answers
// physical carrier-sense queries at arbitrary positions, and delivers
// frames to listeners with a geometric (path-loss) link budget. Fading is
// deliberately excluded from the control plane — sensing in the paper's
// analysis is a property of positions — while the data plane computes
// SINRs from the full fading channel (see internal/sim).
type Air struct {
	Eng            *Engine
	P              channel.Params
	CSThresholdDBm float64
	DecodeMinDBm   float64
	CaptureSINRdB  float64
	// Shadow, when non-nil, applies the deployment's shadow-fading field
	// to every sensing and control-frame link, making carrier sensing as
	// local (and as irregular) as the paper's office walls make it.
	Shadow *channel.ShadowField

	listeners map[int]*Listener
	nextLis   int
	active    map[int]*activeTx
	nextTx    int
	watchers  map[int]*watcher
	nextWatch int
}

// watcher tracks physical carrier-sense edges at one position.
type watcher struct {
	pos  geom.Point
	fn   func(busy bool)
	busy bool
}

type activeTx struct {
	id      int
	tx      Tx
	start   time.Duration
	end     time.Duration
	overlap map[int]overlapSpan // transmissions that overlapped this one
}

// overlapSpan records an interfering transmission and the interval over
// which it overlaps the owner.
type overlapSpan struct {
	tx       Tx
	from, to time.Duration
}

// NewAir creates a medium bound to the engine with the given propagation
// parameters and default thresholds.
func NewAir(eng *Engine, p channel.Params) *Air {
	return &Air{
		Eng:            eng,
		P:              p,
		CSThresholdDBm: DefaultCSThresholdDBm,
		DecodeMinDBm:   DefaultDecodeMinDBm,
		CaptureSINRdB:  DefaultCaptureSINRdB,
		listeners:      map[int]*Listener{},
		active:         map[int]*activeTx{},
		watchers:       map[int]*watcher{},
	}
}

// Watch registers a physical carrier-sense watcher at pos: fn fires on
// every busy/idle transition as transmissions start and end. The initial
// state is reported immediately. Returns the watcher id.
func (a *Air) Watch(pos geom.Point, fn func(busy bool)) int {
	id := a.nextWatch
	a.nextWatch++
	w := &watcher{pos: pos, fn: fn, busy: a.Busy(pos)}
	a.watchers[id] = w
	fn(w.busy)
	return id
}

// Unwatch removes a watcher.
func (a *Air) Unwatch(id int) { delete(a.watchers, id) }

// notifyWatchers re-evaluates every watcher after a medium change, in
// registration order.
func (a *Air) notifyWatchers() {
	ids := make([]int, 0, len(a.watchers))
	for id := range a.watchers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := a.watchers[id]
		if b := a.Busy(w.pos); b != w.busy {
			w.busy = b
			w.fn(b)
		}
	}
}

// activeIDs returns the active transmission ids in ascending order, so
// float summation and delivery order are deterministic.
func (a *Air) activeIDs() []int {
	ids := make([]int, 0, len(a.active))
	for id := range a.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Listen registers a listener and returns its id.
func (a *Air) Listen(l Listener) int {
	id := a.nextLis
	a.nextLis++
	a.listeners[id] = &l
	return id
}

// Unlisten removes a listener.
func (a *Air) Unlisten(id int) { delete(a.listeners, id) }

// powerFrom returns the strongest-antenna receive power (linear mW) at pos
// from the given transmission.
func (a *Air) powerFrom(tx Tx, pos geom.Point) float64 {
	best := 0.0
	for _, ant := range tx.Antennas {
		if p := a.linkPower(ant, pos, tx.PowerDBm); p > best {
			best = p
		}
	}
	return best
}

// linkPower is the control-plane link budget: path loss plus the shared
// shadow field.
func (a *Air) linkPower(from, to geom.Point, powerDBm float64) float64 {
	return a.P.PowerAtPoint(from, to, powerDBm) * a.Shadow.Shadow(from, to)
}

// sumPowerFrom returns the total receive power at pos from all antennas of
// the transmission (interference adds across antennas).
func (a *Air) sumPowerFrom(tx Tx, pos geom.Point) float64 {
	sum := 0.0
	for _, ant := range tx.Antennas {
		sum += a.linkPower(ant, pos, tx.PowerDBm)
	}
	return sum
}

// PowerAt returns the aggregate active transmit power (linear mW) at pos,
// excluding transmission id exclude (-1 for none).
func (a *Air) PowerAt(pos geom.Point, exclude int) float64 {
	sum := 0.0
	for _, id := range a.activeIDs() {
		if id == exclude {
			continue
		}
		sum += a.sumPowerFrom(a.active[id].tx, pos)
	}
	return sum
}

// Busy reports whether the medium is physically sensed busy at pos.
func (a *Air) Busy(pos geom.Point) bool {
	return a.PowerAt(pos, -1) >= stats.Milliwatt(a.CSThresholdDBm)
}

// ActiveCount returns the number of in-flight transmissions.
func (a *Air) ActiveCount() int { return len(a.active) }

// StartTx begins a transmission. Delivery to every listener is scheduled
// at the end of the airtime; the SINR each listener sees uses the
// worst-case set of transmissions that overlapped anywhere in the frame's
// lifetime, which is conservative in the same way real preamble/payload
// collisions are. It returns the transmission id.
func (a *Air) StartTx(tx Tx) (int, error) {
	if len(tx.Antennas) == 0 {
		return 0, fmt.Errorf("mac: transmission with no antennas")
	}
	if tx.Airtime <= 0 {
		return 0, fmt.Errorf("mac: non-positive airtime %v", tx.Airtime)
	}
	id := a.nextTx
	a.nextTx++
	now := a.Eng.Now()
	at := &activeTx{
		id:      id,
		tx:      tx,
		start:   now,
		end:     now + tx.Airtime,
		overlap: map[int]overlapSpan{},
	}
	// Mutual overlap bookkeeping with everything currently active.
	for _, oid := range a.activeIDs() {
		other := a.active[oid]
		to := at.end
		if other.end < to {
			to = other.end
		}
		other.overlap[id] = overlapSpan{tx: tx, from: now, to: to}
		at.overlap[oid] = overlapSpan{tx: other.tx, from: now, to: to}
	}
	a.active[id] = at
	a.Eng.Schedule(tx.Airtime, func() { a.endTx(at) })
	a.notifyWatchers()
	return id, nil
}

func (a *Air) endTx(at *activeTx) {
	delete(a.active, at.id)
	a.notifyWatchers()
	noise := a.P.NoiseLinear()
	minPower := stats.Milliwatt(a.DecodeMinDBm)
	lisIDs := make([]int, 0, len(a.listeners))
	for id := range a.listeners {
		lisIDs = append(lisIDs, id)
	}
	sort.Ints(lisIDs)
	oids := make([]int, 0, len(at.overlap))
	for oid := range at.overlap {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, lid := range lisIDs {
		l := a.listeners[lid]
		sig := a.powerFrom(at.tx, l.Pos)
		interf := 0.0
		for _, oid := range oids {
			interf += a.sumPowerFrom(at.overlap[oid].tx, l.Pos)
		}
		sinr := stats.DB(sig / (noise + interf))
		rx := Rx{
			Data:      at.tx.Data,
			PowerDBm:  stats.DBm(sig),
			SINRdB:    sinr,
			Decodable: sig >= minPower && sinr >= a.CaptureSINRdB,
			From:      at.id,
			Start:     at.start,
			End:       at.end,
		}
		l.Fn(rx)
	}
}

// DecodeRange returns the free-space distance at which a single antenna
// at full per-antenna power falls to the decode threshold — the nominal
// overhearing range of the medium (walls shorten it per link).
func (a *Air) DecodeRange() float64 {
	return a.P.RangeAt(a.DecodeMinDBm - a.P.NoiseFloorDBm)
}

// CSRange returns the free-space distance at which transmissions stop
// being sensed.
func (a *Air) CSRange() float64 {
	return a.P.RangeAt(a.CSThresholdDBm - a.P.NoiseFloorDBm)
}

// OverlapInterference returns, for an active transmission id, the total
// power (linear mW) at pos from the transmissions that have overlapped it
// so far. The MU-MIMO data plane samples this just before a burst ends to
// include other-cell interference in its stream SINRs.
func (a *Air) OverlapInterference(id int, pos geom.Point) float64 {
	at, ok := a.active[id]
	if !ok {
		return 0
	}
	sum := 0.0
	for _, oid := range overlapIDs(at) {
		sum += a.sumPowerFrom(at.overlap[oid].tx, pos)
	}
	return sum
}

// overlapIDs returns an active transmission's overlapper ids in order.
func overlapIDs(at *activeTx) []int {
	ids := make([]int, 0, len(at.overlap))
	for id := range at.overlap {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// WeightedInterference returns the time-averaged interference power
// (linear mW) at pos over the active transmission id's airtime: each
// overlapping transmission contributes its power scaled by the fraction
// of the frame it actually overlapped. This is the right average for a
// long data burst's Shannon rate; control-frame decoding keeps the
// worst-case OverlapInterference.
func (a *Air) WeightedInterference(id int, pos geom.Point) float64 {
	at, ok := a.active[id]
	if !ok {
		return 0
	}
	dur := at.end - at.start
	if dur <= 0 {
		return 0
	}
	sum := 0.0
	for _, oid := range overlapIDs(at) {
		sp := at.overlap[oid]
		frac := float64(sp.to-sp.from) / float64(dur)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		sum += a.sumPowerFrom(sp.tx, pos) * frac
	}
	return sum
}

// OverlapCount returns the number of transmissions that have overlapped
// the active transmission id so far.
func (a *Air) OverlapCount(id int) int {
	at, ok := a.active[id]
	if !ok {
		return 0
	}
	return len(at.overlap)
}

// TxSignalAt returns the strongest-antenna receive power (linear mW) at
// pos from the active transmission id, or 0 if it is not active.
func (a *Air) TxSignalAt(id int, pos geom.Point) float64 {
	at, ok := a.active[id]
	if !ok {
		return 0
	}
	return a.powerFrom(at.tx, pos)
}
