package mac

import (
	"reflect"
	"testing"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestNAVUpdateRule(t *testing.T) {
	var n NAV
	if n.Busy(0) {
		t.Error("fresh NAV should be idle")
	}
	n.Update(us(100))
	if !n.Busy(us(50)) || n.Busy(us(100)) {
		t.Error("NAV window wrong")
	}
	// Shorter reservation must not shrink the NAV.
	n.Update(us(60))
	if n.Expiry() != us(100) {
		t.Errorf("expiry = %v, want 100µs", n.Expiry())
	}
	n.Update(us(200))
	if n.Expiry() != us(200) {
		t.Errorf("expiry = %v, want 200µs", n.Expiry())
	}
	n.Clear()
	if n.Busy(0) {
		t.Error("cleared NAV should be idle")
	}
}

func TestTableIndependentNAVs(t *testing.T) {
	tab := NewTable(4)
	if tab.Len() != 4 {
		t.Fatalf("Len = %d", tab.Len())
	}
	tab.Update(1, us(100))
	tab.Update(3, us(50))
	if tab.Busy(0, us(10)) || tab.Busy(2, us(10)) {
		t.Error("untouched antennas should be idle")
	}
	if !tab.Busy(1, us(10)) || !tab.Busy(3, us(10)) {
		t.Error("updated antennas should be busy")
	}
	idle := tab.Idle(us(60))
	if !reflect.DeepEqual(idle, []int{0, 2, 3}) {
		t.Errorf("Idle = %v", idle)
	}
}

func TestTableUpdateAllCouplesState(t *testing.T) {
	tab := NewTable(3)
	tab.UpdateAll(us(80))
	for k := 0; k < 3; k++ {
		if !tab.Busy(k, us(10)) {
			t.Errorf("antenna %d should be busy after UpdateAll", k)
		}
	}
}

func TestExpiringWithin(t *testing.T) {
	tab := NewTable(4)
	tab.Update(0, us(100)) // expires at 100
	tab.Update(1, us(500)) // expires at 500
	tab.Update(2, us(130)) // expires at 130
	// antenna 3 idle
	got := tab.ExpiringWithin(us(95), us(40)) // window [95,135]
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("ExpiringWithin = %v, want [0 2]", got)
	}
	if got := tab.ExpiringWithin(us(95), 0); len(got) != 0 {
		t.Errorf("zero window should match nothing, got %v", got)
	}
}

func TestByExpiry(t *testing.T) {
	tab := NewTable(4)
	tab.Update(0, us(300))
	tab.Update(1, us(100))
	tab.Update(2, us(200))
	// antenna 3 never updated: expiry 0, earliest.
	got := tab.ByExpiry([]int{0, 1, 2, 3})
	if !reflect.DeepEqual(got, []int{3, 1, 2, 0}) {
		t.Errorf("ByExpiry = %v", got)
	}
	// Subset ordering and tie-break by index.
	tab2 := NewTable(3)
	tab2.Update(2, us(50))
	tab2.Update(1, us(50))
	if got := tab2.ByExpiry([]int{2, 1}); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("tie-break = %v, want [1 2]", got)
	}
	// Input not mutated.
	in := []int{2, 0}
	tab.ByExpiry(in)
	if !reflect.DeepEqual(in, []int{2, 0}) {
		t.Error("ByExpiry mutated its input")
	}
}

func TestACOfTID(t *testing.T) {
	cases := map[uint8]AccessCategory{
		0: ACBestEffort, 1: ACBackground, 2: ACBackground, 3: ACBestEffort,
		4: ACVideo, 5: ACVideo, 6: ACVoice, 7: ACVoice,
	}
	for tid, want := range cases {
		if got := ACOfTID(tid); got != want {
			t.Errorf("ACOfTID(%d) = %v, want %v", tid, got, want)
		}
	}
}

func TestEDCAParamsOrdering(t *testing.T) {
	// Voice must have the most aggressive parameters.
	vo, be := DefaultEDCA(ACVoice), DefaultEDCA(ACBestEffort)
	if vo.CWMin >= be.CWMin {
		t.Error("voice CWMin should be smaller than best-effort")
	}
	if vo.AIFS() > be.AIFS() {
		t.Error("voice AIFS should not exceed best-effort")
	}
	if DefaultEDCA(ACBackground).AIFSN <= be.AIFSN {
		t.Error("background AIFSN should exceed best-effort")
	}
}

func TestDIFSValue(t *testing.T) {
	if DIFS != 34*time.Microsecond {
		t.Errorf("DIFS = %v, want 34µs", DIFS)
	}
	for _, ac := range []AccessCategory{ACBackground, ACBestEffort, ACVideo, ACVoice} {
		if ac.String() == "AC_?" {
			t.Errorf("missing name for %d", ac)
		}
	}
}
