package telemetry

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

func TestCounterAccumulates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("midas_test_total", "test counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("midas_test_gauge", "test gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterFuncRendersAsCounter(t *testing.T) {
	r := NewRegistry()
	var n uint64 = 41
	r.NewCounterFunc("midas_sampled_total", "Externally owned cumulative count.",
		[]string{"tier"}, func() []GaugeSample {
			return []GaugeSample{{LabelValues: []string{"store"}, Value: float64(n)}}
		})
	n++
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE midas_sampled_total counter\n",
		"midas_sampled_total{tier=\"store\"} 42\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestVecCellsAreDistinctAndStable(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("midas_requests_total", "by code", "code")
	v.With("200").Add(2)
	v.With("500").Inc()
	if v.With("200").Value() != 2 || v.With("500").Value() != 1 {
		t.Fatalf("cells mixed up: 200=%v 500=%v", v.With("200").Value(), v.With("500").Value())
	}
	if v.With("200") != v.With("200") {
		t.Fatal("With is not stable for equal label values")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("midas_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("midas_dup_total", "second")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space", "midas.dots"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			NewRegistry().NewCounter(bad, "x")
		}()
	}
	// "le" is reserved on histograms (it would collide with the bucket
	// label) — reject it everywhere for uniformity.
	defer func() {
		if recover() == nil {
			t.Error(`label "le" did not panic`)
		}
	}()
	NewRegistry().NewCounterVec("midas_ok_total", "x", "le")
}

// TestHistogramBucketBoundaries pins the le-semantics: a value exactly
// on a bucket's upper bound counts into that bucket (inclusive above),
// the next larger value counts into the next bucket, and values above
// the last bound land in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("midas_lat_seconds", "test", []float64{0.1, 1, 10})

	h.Observe(0.1) // exactly on bound 0 -> bucket 0
	h.Observe(1.0) // exactly on bound 1 -> bucket 1
	h.Observe(10)  // exactly on bound 2 -> bucket 2
	h.Observe(10.000001)
	h.Observe(math.Inf(1)) // +Inf observation -> +Inf bucket
	h.Observe(0)           // below every bound -> bucket 0

	want := []uint64{2, 1, 1} // per-bucket (non-cumulative) counts
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.inf.Load(); got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got := h.Sum(); !math.IsInf(got, 1) {
		t.Errorf("Sum = %v, want +Inf (an Inf observation flows into the sum)", got)
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("midas_sum_seconds", "test", []float64{1})
	for _, v := range []float64{0.25, 0.5, 2} {
		h.Observe(v)
	}
	if got := h.Sum(); got != 2.75 {
		t.Errorf("Sum = %v, want 2.75", got)
	}
}

func TestHistogramRejectsNaNAndBadBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("midas_nan_seconds", "test", []float64{1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe(NaN) did not panic")
			}
		}()
		h.Observe(math.NaN())
	}()
	for name, buckets := range map[string][]float64{
		"midas_empty":      {},
		"midas_unsorted":   {2, 1},
		"midas_duplicate":  {1, 1},
		"midas_infinity":   {1, math.Inf(1)},
		"midas_nan_bucket": {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets %v did not panic", buckets)
				}
			}()
			NewRegistry().NewHistogram(name, "x", buckets)
		}()
	}
}

func TestExponentialAndLinearBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	if lin[0] != 0 || lin[1] != 0.5 || lin[2] != 1 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
}

// TestConcurrentObserveRender hammers every instrument type from many
// goroutines while rendering concurrently; run under -race (the
// test-race make target includes this package). Totals are checked
// afterwards, so lost updates fail even without the race detector.
func TestConcurrentObserveRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("midas_conc_total", "c", "worker")
	g := r.NewGauge("midas_conc_gauge", "g")
	h := r.NewHistogramVec("midas_conc_seconds", "h", []float64{0.25, 0.5, 0.75}, "worker")
	r.NewGaugeFunc("midas_conc_func", "f", []string{"k"}, func() []GaugeSample {
		return []GaugeSample{{LabelValues: []string{"a"}, Value: g.Value()}}
	})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.With(id).Inc()
				g.Add(1)
				h.With(id).Observe(float64(i%4) / 4.0)
			}
		}(w)
	}
	stop := make(chan struct{})
	var renders sync.WaitGroup
	for i := 0; i < 4; i++ {
		renders.Add(1)
		go func() {
			defer renders.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := r.Render(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	renders.Wait()

	for w := 0; w < workers; w++ {
		id := string(rune('a' + w))
		if got := c.With(id).Value(); got != perWorker {
			t.Errorf("counter %s = %v, want %d", id, got, perWorker)
		}
		if got := h.With(id).Count(); got != perWorker {
			t.Errorf("histogram %s count = %d, want %d", id, got, perWorker)
		}
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
}

// TestRenderGolden pins the full exposition format byte-for-byte
// against testdata/exposition.golden — HELP/TYPE headers, family and
// series ordering, label escaping, cumulative le-buckets, _sum/_count,
// float formatting. Regenerate after an intentional format change:
//
//	go test ./internal/telemetry -run TestRenderGolden -update
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()

	jobs := r.NewGaugeVec("midas_jobs", "Jobs in the retained table by state.", "state")
	jobs.With("queued").Set(2)
	jobs.With("running").Set(1)

	hits := r.NewCounter("midas_cache_hits_total", "Result-cache hits.")
	hits.Add(41)
	hits.Inc()

	lat := r.NewHistogramVec("midas_queue_wait_seconds",
		"Time from submission to dispatch.", []float64{0.001, 0.01, 0.1, 1}, "scenario")
	for _, v := range []float64{0.0005, 0.001, 0.05, 0.2, 3} {
		lat.With("fig12-spatial-reuse").Observe(v)
	}

	esc := r.NewCounterVec("midas_escape_total", "Help with a backslash \\ and\nnewline.", "path")
	esc.With("say \"hi\"\\\n").Inc()

	r.NewGaugeFunc("midas_up", "Callback gauge.", nil, func() []GaugeSample {
		return []GaugeSample{{Value: 1}}
	})

	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderParses is a light structural check of Render output that
// does not depend on the golden: every non-comment line is
// `name{labels} value` with a parsable float value, and every family
// has HELP before TYPE before samples.
func TestRenderParses(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("midas_a_total", "a").Inc()
	h := r.NewHistogram("midas_b_seconds", "b", []float64{1, 2})
	h.Observe(1.5)
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	sawHelp := map[string]bool{}
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			sawHelp[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name := strings.Fields(rest)[0]
			if !sawHelp[name] {
				t.Errorf("TYPE before HELP for %s", name)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %q is not `series value`", line)
		}
	}
}
