// Package telemetry is the zero-dependency metrics layer for the MIDAS
// serving stack: counters, gauges and fixed-bucket histograms that a
// Registry renders in the Prometheus text exposition format (version
// 0.0.4), so any Prometheus-compatible scraper can consume
// midas-serve's /metrics without the repo importing a client library.
//
// The histogram follows the same bucket discipline as the stats
// package's CDFSketch (internal/stats): a fixed set of upper bounds
// chosen up front, one counter per bucket, constant memory per series
// regardless of observation count. Where the sketch buckets uniformly
// over a known [lo, hi) to bound quantile error, a latency histogram
// buckets exponentially over an open range and leaves the quantile
// estimation to the scraper — the shared idea is that a distribution
// summarized into fixed buckets is mergeable and memory-bounded, which
// is what lets a scrape (or a fleet of them) aggregate safely.
//
// Metrics are identified by name plus an ordered label set. The *Vec
// types key a family by label values; the plain types are the
// zero-label case. All instruments are safe for concurrent use; Observe
// and Add are lock-free on the hot path (atomics), Render takes a
// snapshot under the registry lock.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can render: one family's # HELP /
// # TYPE header plus its sample lines.
type metric interface {
	name() string
	help() string
	typ() string
	// samples appends exposition lines (without trailing newline) for
	// every series of the family, label-sorted, to dst.
	samples(dst []string) []string
}

// Registry holds a set of metric families and renders them as
// Prometheus text exposition. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]metric
	order    []string // registration order is irrelevant; render sorts
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]metric)}
}

// register adds a family, panicking on a duplicate name: two
// instruments fighting over one family is a programming error, caught
// at construction (all registration happens at startup).
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[m.name()]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name()))
	}
	r.families[m.name()] = m
	r.order = append(r.order, m.name())
}

// Render writes the whole registry in Prometheus text exposition
// format (families sorted by name, series sorted by label values).
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name(), escapeHelp(m.help()))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name(), m.typ())
		for _, line := range m.samples(nil) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition spec.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders `{k1="v1",k2="v2"}` (empty string for no labels).
// extra, when non-empty, is appended as a pre-rendered pair (the
// histogram's le label).
func labelPairs(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// validName reports whether s is a legal metric or label name
// ([a-zA-Z_][a-zA-Z0-9_]*; metric names additionally allow ':', which
// this layer does not use).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func mustValidNames(metricName string, labels []string) {
	if !validName(metricName) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", metricName))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, metricName))
		}
	}
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value. Add with a negative
// delta panics — a decreasing counter corrupts every rate() computed
// over it.
type Counter struct {
	bits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Add increments the counter by v (v >= 0).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("telemetry: counter decrement %v", v))
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// counterFamily is the registered form: a fixed label-name set mapping
// label values to Counter cells.
type counterFamily struct {
	fname, fhelp string
	labels       []string
	mu           sync.Mutex
	cells        map[string]*Counter // key: joined label values
	keys         map[string][]string // key -> label values
}

func (f *counterFamily) name() string { return f.fname }
func (f *counterFamily) help() string { return f.fhelp }
func (f *counterFamily) typ() string  { return "counter" }

func (f *counterFamily) samples(dst []string) []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{labelPairs(f.labels, f.keys[k], ""), f.cells[k].Value()})
	}
	f.mu.Unlock()
	for _, r := range rows {
		dst = append(dst, f.fname+r.labels+" "+formatFloat(r.val))
	}
	return dst
}

// with returns (creating on first use) the cell for the given values.
func (f *counterFamily) with(values []string) *Counter {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.fname, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.cells[key]
	if !ok {
		c = &Counter{}
		f.cells[key] = c
		f.keys[key] = append([]string(nil), values...)
	}
	return c
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *counterFamily }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	mustValidNames(name, labels)
	f := &counterFamily{fname: name, fhelp: help, labels: labels,
		cells: make(map[string]*Counter), keys: make(map[string][]string)}
	r.register(f)
	return &CounterVec{f: f}
}

// With returns the counter cell for the given label values, creating it
// at zero on first use (so a series exists, and renders, before its
// first increment only if touched).
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values) }

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	vec := r.NewCounterVec(name, help)
	return vec.With()
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type gaugeFamily struct {
	fname, fhelp string
	// ftyp is the exposition TYPE line: "gauge", or "counter" for a
	// NewCounterFunc family that samples an externally owned
	// monotonic value at scrape time.
	ftyp   string
	labels []string
	mu     sync.Mutex
	cells  map[string]*Gauge
	keys   map[string][]string
	// fn, when non-nil, makes this a callback family: samples come from
	// one function call at render time instead of stored cells.
	fn func() []GaugeSample
}

// GaugeSample is one series a GaugeFunc reports at scrape time.
type GaugeSample struct {
	LabelValues []string
	Value       float64
}

func (f *gaugeFamily) name() string { return f.fname }
func (f *gaugeFamily) help() string { return f.fhelp }
func (f *gaugeFamily) typ() string  { return f.ftyp }

func (f *gaugeFamily) samples(dst []string) []string {
	if f.fn != nil {
		ss := f.fn()
		sort.Slice(ss, func(i, j int) bool { return joinKey(ss[i].LabelValues) < joinKey(ss[j].LabelValues) })
		for _, s := range ss {
			if len(s.LabelValues) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: %s callback returned %d label values, want %d", f.fname, len(s.LabelValues), len(f.labels)))
			}
			dst = append(dst, f.fname+labelPairs(f.labels, s.LabelValues, "")+" "+formatFloat(s.Value))
		}
		return dst
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{labelPairs(f.labels, f.keys[k], ""), f.cells[k].Value()})
	}
	f.mu.Unlock()
	for _, r := range rows {
		dst = append(dst, f.fname+r.labels+" "+formatFloat(r.val))
	}
	return dst
}

func (f *gaugeFamily) with(values []string) *Gauge {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.fname, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.cells[key]
	if !ok {
		g = &Gauge{}
		f.cells[key] = g
		f.keys[key] = append([]string(nil), values...)
	}
	return g
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *gaugeFamily }

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	mustValidNames(name, labels)
	f := &gaugeFamily{fname: name, fhelp: help, ftyp: "gauge", labels: labels,
		cells: make(map[string]*Gauge), keys: make(map[string][]string)}
	r.register(f)
	return &GaugeVec{f: f}
}

// With returns the gauge cell for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values) }

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeVec(name, help).With()
}

// NewGaugeFunc registers a gauge family whose series are produced by fn
// at every scrape — for values that already live elsewhere (queue
// depth, jobs by state) and would otherwise need write-through
// mirroring on every transition. fn must be safe to call concurrently
// with anything.
func (r *Registry) NewGaugeFunc(name, help string, labels []string, fn func() []GaugeSample) {
	mustValidNames(name, labels)
	r.register(&gaugeFamily{fname: name, fhelp: help, ftyp: "gauge", labels: labels, fn: fn})
}

// NewCounterFunc registers a counter family whose series are sampled by
// fn at every scrape — for cumulative counts that an existing subsystem
// already tracks (the store's hit/write/eviction tallies) and that
// would otherwise need write-through mirroring on every operation. The
// values fn reports must be monotonically non-decreasing over the
// process lifetime; fn must be safe to call concurrently with anything.
func (r *Registry) NewCounterFunc(name, help string, labels []string, fn func() []GaugeSample) {
	mustValidNames(name, labels)
	r.register(&gaugeFamily{fname: name, fhelp: help, ftyp: "counter", labels: labels, fn: fn})
}

// ---------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed cumulative buckets — the
// CDFSketch discipline with Prometheus bucket semantics: bucket i
// counts observations <= Upper[i], an implicit +Inf bucket counts
// everything, and the sum of observations rides along so scrapers can
// derive a mean. Memory is constant per series.
type Histogram struct {
	upper  []float64 // sorted upper bounds, no +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64 // observations above the last bound
	sum    atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value. NaN observations panic: they would poison
// the sum silently (the stats package rejects them for the same
// reason).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		panic("telemetry: histogram Observe(NaN)")
	}
	// Binary search for the first bound >= v: le-buckets are inclusive
	// above, so a value exactly on a boundary lands in that boundary's
	// bucket.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

type histogramFamily struct {
	fname, fhelp string
	labels       []string
	upper        []float64
	mu           sync.Mutex
	cells        map[string]*Histogram
	keys         map[string][]string
}

func (f *histogramFamily) name() string { return f.fname }
func (f *histogramFamily) help() string { return f.fhelp }
func (f *histogramFamily) typ() string  { return "histogram" }

func (f *histogramFamily) samples(dst []string) []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		values []string
		h      *Histogram
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{f.keys[k], f.cells[k]})
	}
	f.mu.Unlock()

	for _, r := range rows {
		// Cumulative counts: each le-bucket includes every bucket below
		// it. The loads are not atomic as a set — a scrape racing an
		// Observe may see the observation in _count but not yet in a
		// bucket (or vice versa); Prometheus tolerates that, monotone
		// rates smooth it out.
		var cum uint64
		for i, ub := range r.h.upper {
			cum += r.h.counts[i].Load()
			le := `le="` + formatFloat(ub) + `"`
			dst = append(dst, f.fname+"_bucket"+labelPairs(f.labels, r.values, le)+" "+strconv.FormatUint(cum, 10))
		}
		cum += r.h.inf.Load()
		dst = append(dst, f.fname+"_bucket"+labelPairs(f.labels, r.values, `le="+Inf"`)+" "+strconv.FormatUint(cum, 10))
		dst = append(dst, f.fname+"_sum"+labelPairs(f.labels, r.values, "")+" "+formatFloat(r.h.Sum()))
		dst = append(dst, f.fname+"_count"+labelPairs(f.labels, r.values, "")+" "+strconv.FormatUint(cum, 10))
	}
	return dst
}

func (f *histogramFamily) with(values []string) *Histogram {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.fname, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.cells[key]
	if !ok {
		h = &Histogram{upper: f.upper, counts: make([]atomic.Uint64, len(f.upper))}
		f.cells[key] = h
		f.keys[key] = append([]string(nil), values...)
	}
	return h
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *histogramFamily }

// NewHistogramVec registers a labelled histogram family over the given
// bucket upper bounds (sorted ascending, finite, non-empty; a trailing
// +Inf is implicit and must not be passed).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	mustValidNames(name, labels)
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: %s: empty bucket list", name))
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: %s: bucket %v is not finite (the +Inf bucket is implicit)", name, b))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: %s: buckets not strictly increasing at %v", name, b))
		}
	}
	f := &histogramFamily{fname: name, fhelp: help, labels: labels,
		upper: append([]float64(nil), buckets...),
		cells: make(map[string]*Histogram), keys: make(map[string][]string)}
	r.register(f)
	return &HistogramVec{f: f}
}

// With returns the histogram cell for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values) }

// NewHistogram registers an unlabelled histogram.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.NewHistogramVec(name, help, buckets).With()
}

// ExponentialBuckets returns n upper bounds start, start*factor, …, the
// standard shape for latency histograms (spans decades in few buckets).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, … — the
// CDFSketch's uniform-bucket shape for bounded ranges.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// joinKey builds a map key from label values. \xff cannot appear in the
// middle of a UTF-8 rune, so the join is unambiguous.
func joinKey(values []string) string { return strings.Join(values, "\xff") }
