package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-1, 0},
		{1, 12.706}, {2, 4.303}, {10, 2.228}, {30, 2.042},
	}
	for _, tc := range cases {
		if got := TCritical95(tc.df); got != tc.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	// Beyond the table: monotone decreasing toward the normal limit,
	// and close to standard table values at the anchors.
	approx := []struct {
		df   int
		want float64
	}{{40, 2.021}, {60, 2.000}, {120, 1.980}}
	for _, tc := range approx {
		if got := TCritical95(tc.df); math.Abs(got-tc.want) > 0.005 {
			t.Errorf("TCritical95(%d) = %v, want ≈%v", tc.df, got, tc.want)
		}
	}
	if got := TCritical95(1 << 20); math.Abs(got-zCrit95) > 1e-3 {
		t.Errorf("TCritical95(large) = %v, want ≈%v", got, zCrit95)
	}
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		got := TCritical95(df)
		if got > prev {
			t.Fatalf("TCritical95 not monotone at df=%d: %v > %v", df, got, prev)
		}
		prev = got
	}
}

func TestSummaryCI95(t *testing.T) {
	var s Summary
	if s.CI95() != 0 {
		t.Errorf("empty CI95 = %v, want 0", s.CI95())
	}
	s.Add(5)
	if s.CI95() != 0 {
		t.Errorf("n=1 CI95 = %v, want 0", s.CI95())
	}
	// n=2, values 1 and 3: mean 2, std sqrt(2), CI = 12.706·sqrt(2)/sqrt(2).
	var p Summary
	p.Add(1)
	p.Add(3)
	want := 12.706 * math.Sqrt2 / math.Sqrt2
	if got := p.CI95(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestSummaryMerge(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rnd.NormFloat64()*3 + 7
	}
	var whole Summary
	for _, x := range xs {
		whole.Add(x)
	}
	// Merge in uneven chunks; statistics must match the single pass to
	// rounding error.
	var merged Summary
	for lo := 0; lo < len(xs); {
		hi := lo + 1 + rnd.Intn(64)
		if hi > len(xs) {
			hi = len(xs)
		}
		var part Summary
		for _, x := range xs[lo:hi] {
			part.Add(x)
		}
		merged.Merge(part)
		lo = hi
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge lost counts/extremes: %v vs %v", merged.String(), whole.String())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-12 || math.Abs(merged.Var()-whole.Var()) > 1e-10 {
		t.Errorf("merge drifted: mean %v vs %v, var %v vs %v",
			merged.Mean(), whole.Mean(), merged.Var(), whole.Var())
	}

	// Merging into/from empties.
	var empty, target Summary
	target.Merge(empty)
	if target.N() != 0 {
		t.Error("merging an empty summary must be a no-op")
	}
	target.Merge(whole)
	if target.N() != whole.N() || target.Mean() != whole.Mean() {
		t.Error("merging into an empty summary must copy")
	}
}

func TestP2QuantileSmallSamplesExact(t *testing.T) {
	// Below five observations the estimate is the exact order statistic.
	p := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Errorf("empty P² value = %v, want NaN", p.Value())
	}
	p.Add(9)
	if p.Value() != 9 {
		t.Errorf("n=1 value = %v, want 9", p.Value())
	}
	p.Add(1)
	p.Add(5)
	if p.Value() != 5 { // rank ceil(0.5·3)=2 of {1,5,9}
		t.Errorf("n=3 median = %v, want 5", p.Value())
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	for _, q := range []float64{0.1, 0.5, 0.9} {
		for seed := int64(1); seed <= 3; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			p := NewP2Quantile(q)
			xs := make([]float64, 5000)
			for i := range xs {
				xs[i] = rnd.NormFloat64()
			}
			for _, x := range xs {
				p.Add(x)
			}
			sort.Float64s(xs)
			exact := xs[int(math.Ceil(q*float64(len(xs))))-1]
			// On a well-behaved unimodal distribution the P² estimate
			// tracks the exact quantile closely; 0.05 is ~4× the typical
			// observed error at n=5000 and catches any algorithmic break.
			if math.Abs(p.Value()-exact) > 0.05 {
				t.Errorf("q=%v seed=%d: P² %v vs exact %v", q, seed, p.Value(), exact)
			}
			if p.N() != len(xs) {
				t.Errorf("N = %d, want %d", p.N(), len(xs))
			}
		}
	}
}

func TestP2QuantileRejectsNonFinite(t *testing.T) {
	p := NewP2Quantile(0.5)
	for _, x := range []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)} {
		p.Add(x)
	}
	if p.N() != 3 || p.NaNs() != 3 {
		t.Errorf("n=%d nans=%d, want 3 and 3", p.N(), p.NaNs())
	}
	if p.Value() != 2 {
		t.Errorf("median = %v, want 2", p.Value())
	}
}

func TestCDFSketchQuantileWithinOneBucket(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	const buckets = 64
	sk := NewCDFSketch(-4, 4, buckets)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rnd.NormFloat64() // a few points land outside ±4
	}
	for _, x := range xs {
		sk.Add(x)
	}
	sort.Float64s(xs)
	width := 8.0 / buckets
	for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 1} {
		r := int(math.Ceil(q * float64(len(xs))))
		if r < 1 {
			r = 1
		}
		exact := xs[r-1]
		got := sk.Quantile(q)
		if got < exact-1e-12 || got > exact+width+1e-12 {
			t.Errorf("q=%v: sketch %v outside [exact, exact+width] = [%v, %v]", q, got, exact, exact+width)
		}
	}
	if sk.Min() != xs[0] || sk.Max() != xs[len(xs)-1] {
		t.Errorf("extremes: sketch [%v, %v], exact [%v, %v]", sk.Min(), sk.Max(), xs[0], xs[len(xs)-1])
	}
}

func TestCDFSketchCDF(t *testing.T) {
	sk := NewCDFSketch(0, 10, 10)
	for _, x := range []float64{-1, 0.5, 0.6, 3.2, 9.9, 12} {
		sk.Add(x)
	}
	c := sk.CDF()
	if got := c.At(sk.Max()); got != 1 {
		t.Errorf("F(max) = %v, want 1", got)
	}
	if len(c.X) > 12 {
		t.Errorf("sketch CDF has %d points, want <= buckets+2", len(c.X))
	}
	if !sort.Float64sAreSorted(c.X) || !sort.Float64sAreSorted(c.F) {
		t.Errorf("sketch CDF not monotone: %+v", c)
	}
	// Table renders through the shared CDF path.
	if sk.CDF().Table(5) == "" {
		t.Error("non-empty sketch must render a table")
	}

	empty := NewCDFSketch(0, 1, 4)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Errorf("empty sketch quantile = %v, want NaN", empty.Quantile(0.5))
	}
	if got := empty.CDF().Table(3); got != "" {
		t.Errorf("empty sketch table = %q, want empty", got)
	}
}

func TestCDFSketchRejectsNonFinite(t *testing.T) {
	sk := NewCDFSketch(0, 1, 4)
	sk.Add(math.NaN())
	sk.Add(math.Inf(1))
	sk.Add(0.5)
	if sk.N() != 1 || sk.NaNs() != 2 {
		t.Errorf("n=%d nans=%d, want 1 and 2", sk.N(), sk.NaNs())
	}
}

func TestNewCDFSketchPanicsOnBadBounds(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{1, 1}, {2, 1}, {math.NaN(), 1}, {0, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCDFSketch(%v, %v, 4) did not panic", tc.lo, tc.hi)
				}
			}()
			NewCDFSketch(tc.lo, tc.hi, 4)
		}()
	}
}
