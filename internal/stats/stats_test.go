package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 20, 60} {
		if got := DB(Linear(db)); !almost(got, db, 1e-9) {
			t.Errorf("DB(Linear(%v)) = %v", db, got)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	if got := DB(100); !almost(got, 20, 1e-12) {
		t.Errorf("DB(100) = %v, want 20", got)
	}
	if got := Linear(3); !almost(got, 1.9952623, 1e-6) {
		t.Errorf("Linear(3) = %v", got)
	}
	if !math.IsInf(DB(0), -1) {
		t.Errorf("DB(0) should be -Inf, got %v", DB(0))
	}
}

func TestDBmMilliwatt(t *testing.T) {
	if got := DBm(1); !almost(got, 0, 1e-12) {
		t.Errorf("DBm(1mW) = %v, want 0", got)
	}
	if got := Milliwatt(30); !almost(got, 1000, 1e-9) {
		t.Errorf("Milliwatt(30dBm) = %v, want 1000", got)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almost(s.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Errorf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Var() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Errorf("zero Summary should be all-zero: %s", s.String())
	}
	s.Add(42)
	if s.Var() != 0 {
		t.Errorf("single-sample variance should be 0, got %v", s.Var())
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Errorf("min/max after one add: %v %v", s.Min(), s.Max())
	}
}

func TestSampleQuantile(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := s.Quantile(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestSampleQuantileInterpolation(t *testing.T) {
	s := NewSample(10, 20)
	got, _ := s.Quantile(0.5)
	if !almost(got, 15, 1e-12) {
		t.Errorf("interp median = %v, want 15", got)
	}
	got, _ = s.Quantile(0.75)
	if !almost(got, 17.5, 1e-12) {
		t.Errorf("q75 = %v, want 17.5", got)
	}
}

func TestSampleErrors(t *testing.T) {
	var s Sample
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty quantile err = %v", err)
	}
	if _, err := s.Mean(); err != ErrEmpty {
		t.Errorf("empty mean err = %v", err)
	}
	s.Add(1)
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("expected range error for q=1.5")
	}
}

func TestECDF(t *testing.T) {
	s := NewSample(3, 1, 2)
	c := s.ECDF()
	if len(c.X) != 3 {
		t.Fatalf("len = %d", len(c.X))
	}
	if !sort.Float64sAreSorted(c.X) {
		t.Error("ECDF X not sorted")
	}
	if c.F[2] != 1 {
		t.Errorf("F[last] = %v", c.F[2])
	}
	if got := c.At(2); !almost(got, 2.0/3.0, 1e-12) {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(99); got != 1 {
		t.Errorf("At(99) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("CDF quantile(0.5) = %v, want 2", got)
	}
}

func TestCDFTable(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tab := s.ECDF().Table(5)
	if tab == "" {
		t.Fatal("empty table")
	}
	lines := 0
	for _, ch := range tab {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 5 {
		t.Errorf("table rows = %d, want 5", lines)
	}
}

// TestCDFTableSinglePoint pins the n=1 edge: a one-observation series
// (e.g. a 1-topology scenario run through the text sink) must render
// one row, not divide by zero.
func TestCDFTableSinglePoint(t *testing.T) {
	got := NewSample(7.5).ECDF().Table(20)
	if got != "7.5\t1.0000\n" {
		t.Errorf("one-point table = %q, want %q", got, "7.5\t1.0000\n")
	}
	if got := NewSample(1, 2, 3).ECDF().Table(1); got != "3\t1.0000\n" {
		t.Errorf("one-row table = %q, want the maximum row", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.N() != 4 {
		t.Errorf("in-range N = %d, want 4", h.N())
	}
	u, o := h.Outliers()
	if u != 1 || o != 2 {
		t.Errorf("outliers = %d,%d want 1,2", u, o)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	lo, hi := h.Bin(1)
	if lo != 2 || hi != 4 {
		t.Errorf("Bin(1) = [%v,%v)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid bounds")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestRatio(t *testing.T) {
	r, err := Ratio([]float64{2, 9}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 2 || r[1] != 3 {
		t.Errorf("ratio = %v", r)
	}
	if _, err := Ratio([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Ratio([]float64{1}, []float64{0}); err == nil {
		t.Error("expected divide-by-zero error")
	}
}

func TestMedianGain(t *testing.T) {
	a := NewSample(2, 3, 4) // median 3
	b := NewSample(1, 2, 3) // median 2
	g, err := MedianGain(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(g, 0.5, 1e-12) {
		t.Errorf("gain = %v, want 0.5", g)
	}
}

// Property: quantile is monotone non-decreasing in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		s := &Sample{}
		for i := 0; i < m; i++ {
			s.Add(r.NormFloat64() * 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := s.Quantile(q)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		min, _ := s.Quantile(0)
		max, _ := s.Quantile(1)
		vals := s.Values()
		return min == vals[0] && max == vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ECDF.At is a valid CDF — nondecreasing, 0 below min, 1 at max.
func TestECDFProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%40) + 1
		s := &Sample{}
		for i := 0; i < m; i++ {
			s.Add(r.Float64() * 100)
		}
		c := s.ECDF()
		prev := 0.0
		for x := -10.0; x <= 110; x += 3 {
			fx := c.At(x)
			if fx < prev || fx < 0 || fx > 1 {
				return false
			}
			prev = fx
		}
		return c.At(c.X[len(c.X)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summary mean/var agree with direct two-pass computation.
func TestSummaryMatchesTwoPass(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%60) + 2
		xs := make([]float64, m)
		var s Summary
		for i := range xs {
			xs[i] = r.NormFloat64()*5 + 3
			s.Add(xs[i])
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(m)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return almost(s.Mean(), mean, 1e-9) && almost(s.Var(), ss/float64(m-1), 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleAddAllAndN(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if m := s.MustMedian(); m != 2 {
		t.Errorf("median = %v", m)
	}
	mean, err := s.Mean()
	if err != nil || mean != 2 {
		t.Errorf("mean = %v, %v", mean, err)
	}
}

func TestMustMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Sample{}).MustMedian()
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	if str := s.String(); str == "" {
		t.Error("empty String()")
	}
}

func TestCDFQuantileEdges(t *testing.T) {
	var empty CDF
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty CDF quantile should be NaN")
	}
	c := NewSample(1, 2, 3).ECDF()
	if got := c.Quantile(2); got != 3 {
		t.Errorf("q beyond 1 should clamp to max, got %v", got)
	}
}

func TestMedianGainErrors(t *testing.T) {
	if _, err := MedianGain(&Sample{}, NewSample(1)); err == nil {
		t.Error("empty a should error")
	}
	if _, err := MedianGain(NewSample(1), &Sample{}); err == nil {
		t.Error("empty b should error")
	}
	if _, err := MedianGain(NewSample(1), NewSample(0)); err == nil {
		t.Error("zero baseline should error")
	}
}
