package stats

import (
	"math"
	"testing"
)

// TestSampleEdgeCases table-drives the whole-sample reductions through
// the degenerate inputs the replication layer can feed them: empty
// series, a single point, all-equal values, and NaN observations.
func TestSampleEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		wantN      int
		wantNaNs   int
		wantErr    bool    // from Mean/Median/Quantile
		wantMedian float64 // when !wantErr
	}{
		{"empty", nil, 0, 0, true, 0},
		{"single point", []float64{3.5}, 1, 0, false, 3.5},
		{"all equal", []float64{2, 2, 2, 2}, 4, 0, false, 2},
		{"all NaN", []float64{math.NaN(), math.NaN()}, 0, 2, true, 0},
		{"NaN among values", []float64{1, math.NaN(), 3}, 2, 1, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSample(tc.xs...)
			if s.N() != tc.wantN || s.NaNs() != tc.wantNaNs {
				t.Fatalf("N=%d NaNs=%d, want %d and %d", s.N(), s.NaNs(), tc.wantN, tc.wantNaNs)
			}
			med, err := s.Median()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Median() = %v, want error", med)
				}
				if _, err := s.Mean(); err == nil {
					t.Error("Mean() on empty must error")
				}
				if _, err := s.Quantile(0.5); err == nil {
					t.Error("Quantile() on empty must error")
				}
				// ECDF of an empty sample degrades gracefully end to end.
				c := s.ECDF()
				if got := c.Table(10); got != "" {
					t.Errorf("empty ECDF table = %q", got)
				}
				if got := c.At(1); got != 0 {
					t.Errorf("empty ECDF At = %v, want 0", got)
				}
				if got := c.Quantile(0.5); !math.IsNaN(got) {
					t.Errorf("empty ECDF quantile = %v, want NaN", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if med != tc.wantMedian {
				t.Errorf("median = %v, want %v", med, tc.wantMedian)
			}
			for _, q := range []float64{0, 1} {
				if v, err := s.Quantile(q); err != nil || math.IsNaN(v) {
					t.Errorf("Quantile(%v) = %v, %v", q, v, err)
				}
			}
		})
	}
}

// TestQuantileRejectsNaNQ pins the guard on the quantile argument
// itself: NaN compares false against both bounds, so an explicit check
// must reject it before the index arithmetic.
func TestQuantileRejectsNaNQ(t *testing.T) {
	s := NewSample(1, 2, 3)
	if v, err := s.Quantile(math.NaN()); err == nil {
		t.Errorf("Sample.Quantile(NaN) = %v, want error", v)
	}
	c := s.ECDF()
	if got := c.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("CDF.Quantile(NaN) = %v, want NaN", got)
	}
	if got := c.At(math.NaN()); !math.IsNaN(got) {
		t.Errorf("CDF.At(NaN) = %v, want NaN", got)
	}
}

// TestSummaryNaNRejection verifies the Welford accumulator drops
// non-finite observations without poisoning the running statistics (a
// single ±Inf would otherwise NaN the mean on the next finite Add).
func TestSummaryNaNRejection(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(3)
	if s.N() != 2 || s.NaNs() != 3 {
		t.Fatalf("N=%d NaNs=%d, want 2 and 3", s.N(), s.NaNs())
	}
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Errorf("stats poisoned: %v", s.String())
	}
	// Merge carries the rejection count.
	var o Summary
	o.Add(math.NaN())
	s.Merge(o)
	if s.NaNs() != 4 || s.N() != 2 {
		t.Errorf("merge lost NaN tally: N=%d NaNs=%d", s.N(), s.NaNs())
	}
}

// TestHistogramNaN pins the fix for the NaN bin-index conversion: NaN
// compares false against both range bounds, so before the guard it
// reached int((NaN-lo)/w) — an undefined conversion that indexes out of
// bounds on most platforms.
func TestHistogramNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(5)
	if h.N() != 1 || h.NaNs() != 1 {
		t.Errorf("N=%d NaNs=%d, want 1 and 1", h.N(), h.NaNs())
	}
	under, over := h.Outliers()
	if under != 0 || over != 0 {
		t.Errorf("NaN must not count as an outlier: under=%d over=%d", under, over)
	}
}

// TestMedianGainEdgeCases covers the remaining whole-sample helpers on
// empty input.
func TestMedianGainEdgeCases(t *testing.T) {
	empty := NewSample()
	full := NewSample(1, 2)
	if _, err := MedianGain(empty, full); err == nil {
		t.Error("MedianGain(empty, ...) must error")
	}
	if _, err := MedianGain(full, empty); err == nil {
		t.Error("MedianGain(..., empty) must error")
	}
	if _, err := MedianGain(full, NewSample(0, 0)); err == nil {
		t.Error("MedianGain with zero baseline must error")
	}
	if _, err := Ratio([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Ratio length mismatch must error")
	}
	if _, err := Ratio([]float64{1}, []float64{0}); err == nil {
		t.Error("Ratio divide-by-zero must error")
	}
}
