package stats

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzStreamingVsExact cross-checks the streaming accumulators against
// exact whole-sample computation on arbitrary input series (8 fuzzed
// bytes decode to one float64 observation). Documented tolerances,
// which double as the layer's accuracy contract (see README
// "Statistics & replication"):
//
//   - Welford mean vs the exact sum: within 1e-9·(1+max|x|)·n — both
//     accumulate one rounding error per observation, so any violation
//     is an algorithmic bug, not noise.
//   - Welford variance vs the exact two-pass sum of squared deviations:
//     within 1e-9·(1+max|x|)²·n on the same reasoning.
//   - CDFSketch quantiles: within [exact, exact+bucketWidth] — the
//     sketch's provable bound when fed its exact data range.
//   - P² quantiles: exactly the order statistic below five
//     observations, always inside the exact [min, max] after (the P²
//     markers clamp to observed extremes; mid-marker error is
//     distribution-dependent and deliberately not asserted here — see
//     TestP2QuantileAccuracy for the distributional check).
//   - NaN observations are rejected by every accumulator: counts only
//     reflect finite input.
func FuzzStreamingVsExact(f *testing.F) {
	f.Add([]byte("MIDAS replicated statistics: streaming-vs-exact seed corpus."))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8})         // NaN then a tiny denormal
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\xf0?\x00\x00\x00\x00\x00\x00\xf0?")) // 1.0, 1.0 (all-equal)
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxVals = 2048
		var xs []float64
		nans := 0
		for i := 0; i+8 <= len(data) && len(xs) < maxVals; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i : i+8]))
			switch {
			case math.IsNaN(v):
				nans++
				xs = append(xs, v) // fed to accumulators, must be dropped
			case math.IsInf(v, 0):
				// ±Inf makes the exact reference itself meaningless; the
				// ingestion guards are covered by unit tests.
				continue
			default:
				// Clamp magnitude so the exact reference sums cannot
				// overflow; Mod keeps the value's low-order structure.
				if math.Abs(v) > 1e12 {
					v = math.Mod(v, 1e12)
				}
				xs = append(xs, v)
			}
		}

		var sum Summary
		for _, x := range xs {
			sum.Add(x)
		}
		finite := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) {
				finite = append(finite, x)
			}
		}
		if sum.N() != len(finite) || sum.NaNs() != nans {
			t.Fatalf("Welford counts n=%d nans=%d, want %d and %d", sum.N(), sum.NaNs(), len(finite), nans)
		}
		if len(finite) == 0 {
			return
		}

		maxAbs := 0.0
		exactSum := 0.0
		for _, x := range finite {
			exactSum += x
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		n := float64(len(finite))
		exactMean := exactSum / n
		tol := 1e-9 * (1 + maxAbs) * n
		if d := math.Abs(sum.Mean() - exactMean); d > tol {
			t.Errorf("Welford mean %v vs exact %v (Δ %v > tol %v)", sum.Mean(), exactMean, d, tol)
		}
		if len(finite) >= 2 {
			ss := 0.0
			for _, x := range finite {
				d := x - exactMean
				ss += d * d
			}
			exactVar := ss / (n - 1)
			vtol := 1e-9 * (1 + maxAbs) * (1 + maxAbs) * n
			if d := math.Abs(sum.Var() - exactVar); d > vtol {
				t.Errorf("Welford var %v vs two-pass %v (Δ %v > tol %v)", sum.Var(), exactVar, d, vtol)
			}
		}

		sorted := append([]float64(nil), finite...)
		sort.Float64s(sorted)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		exactQ := func(q float64) float64 {
			r := int(math.Ceil(q * n))
			if r < 1 {
				r = 1
			}
			return sorted[r-1]
		}

		const buckets = 32
		if hi > lo {
			sk := NewCDFSketch(lo, hi, buckets)
			for _, x := range xs {
				sk.Add(x)
			}
			if sk.N() != len(finite) {
				t.Fatalf("sketch n=%d, want %d", sk.N(), len(finite))
			}
			width := (hi - lo) / buckets
			for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
				exact := exactQ(q)
				got := sk.Quantile(q)
				// One bucket of slack plus an ulp-scale epsilon for the
				// edge arithmetic.
				eps := 1e-9 * (1 + math.Abs(exact) + width)
				if got < exact-eps || got > exact+width+eps {
					t.Errorf("sketch q=%v: %v outside [%v, %v]", q, got, exact, exact+width)
				}
			}
		}

		for _, q := range []float64{0.1, 0.5, 0.9} {
			p := NewP2Quantile(q)
			for _, x := range xs {
				p.Add(x)
			}
			if p.N() != len(finite) {
				t.Fatalf("P² n=%d, want %d", p.N(), len(finite))
			}
			got := p.Value()
			if len(finite) < 5 {
				if want := exactQ(q); got != want {
					t.Errorf("P² q=%v with n=%d: %v, want exact order statistic %v", q, len(finite), got, want)
				}
				continue
			}
			if math.IsNaN(got) || got < lo || got > hi {
				t.Errorf("P² q=%v: estimate %v escapes the observed range [%v, %v]", q, got, lo, hi)
			}
		}
	})
}
