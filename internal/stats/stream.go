// Streaming replicate statistics: Student-t confidence intervals on the
// Welford Summary, a parallel-merge rule, the P² single-quantile
// estimator and a fixed-bucket CDF sketch. Together they let the
// scenario engine aggregate any number of replicate runs online —
// memory stays bounded by the result schema, never by replicates ×
// samples — while the exact whole-sample path (Sample/CDF) remains for
// single-replicate golden runs.

package stats

import (
	"fmt"
	"math"
	"sort"
)

// tCrit95 holds two-sided 95% Student-t critical values for 1–30
// degrees of freedom (standard table values).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// zCrit95 is the normal-approximation limit of the t distribution.
const zCrit95 = 1.960

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values for df <= 30, a linear
// interpolation in 1/df between the df=30 and asymptotic values beyond
// (error < 0.002 there), and 0 for df < 1 (no interval exists).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		// t(df) - t(inf) decays like 1/df: anchor at df=30.
		t30 := tCrit95[len(tCrit95)-1]
		return zCrit95 + (t30-zCrit95)*30/float64(df)
	}
}

// CI95 returns the half-width of the two-sided 95% Student-t confidence
// interval on the mean: t_{0.975, n-1} · s/√n. It is 0 for fewer than
// two observations (no spread information exists).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(s.n-1) * s.Std() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into s (Chan et al. pairwise update), as
// if every observation of o had been Added to s. Merge order affects
// only floating-point rounding, not the statistics.
func (s *Summary) Merge(o Summary) {
	s.nans += o.nans
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		nans := s.nans
		*s = o
		s.nans = nans
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
}

// P2Quantile estimates a single quantile of a stream in O(1) memory
// using the P² algorithm (Jain & Chlamtac 1985): five markers track the
// min, max, the target quantile and its two flanking quantiles, and are
// nudged by parabolic interpolation as observations arrive. Until five
// observations have been seen the estimate is the exact order
// statistic. Non-finite observations are ignored (see NaNs).
//
// The estimate is always within [min, max] of the observed data; its
// error against the exact quantile depends on the input distribution
// and is not worst-case bounded — use CDFSketch when a hard error bound
// matters and the value range is known.
type P2Quantile struct {
	q    float64
	n    int
	nans int
	// h are marker heights, pos their current positions (1-based ranks),
	// want their desired positions.
	h    [5]float64
	pos  [5]int
	want [5]float64
	inc  [5]float64
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	if !(q > 0 && q < 1) {
		panic(fmt.Sprintf("stats: P² quantile %v out of (0,1)", q))
	}
	p := &P2Quantile{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the quantile this estimator targets.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of (finite) observations recorded.
func (p *P2Quantile) N() int { return p.n }

// NaNs returns the number of non-finite observations ignored by Add.
func (p *P2Quantile) NaNs() int { return p.nans }

// Add records one observation. NaN and ±Inf are counted separately and
// do not perturb the estimate.
func (p *P2Quantile) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		p.nans++
		return
	}
	if p.n < 5 {
		p.h[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.h[:])
			for i := range p.pos {
				p.pos[i] = i + 1
				p.want[i] = 1 + 4*p.inc[i]
			}
		}
		return
	}

	// Find the cell k with h[k] <= x < h[k+1], stretching the extremes.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	p.n++
	for i := range p.want {
		p.want[i] = 1 + float64(p.n-1)*p.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - float64(p.pos[i])
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			h := p.parabolic(i, s)
			if p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

func (p *P2Quantile) parabolic(i, s int) float64 {
	fs := float64(s)
	qi, qm, qp := p.h[i], p.h[i-1], p.h[i+1]
	ni, nm, np := float64(p.pos[i]), float64(p.pos[i-1]), float64(p.pos[i+1])
	return qi + fs/(np-nm)*((ni-nm+fs)*(qp-qi)/(np-ni)+(np-ni-fs)*(qi-qm)/(ni-nm))
}

func (p *P2Quantile) linear(i, s int) float64 {
	return p.h[i] + float64(s)*(p.h[i+s]-p.h[i])/float64(p.pos[i+s]-p.pos[i])
}

// Value returns the current quantile estimate: the exact order
// statistic (smallest x with F(x) >= q) while fewer than five
// observations have been seen, the P² center-marker height after.
// With no observations it returns NaN.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		xs := append([]float64(nil), p.h[:p.n]...)
		sort.Float64s(xs)
		r := int(math.Ceil(p.q * float64(p.n)))
		if r < 1 {
			r = 1
		}
		return xs[r-1]
	}
	return p.h[2]
}

// CDFSketch approximates an empirical CDF in bounded memory: a fixed
// number of uniform buckets over [lo, hi), exact min/max, and tallies
// for out-of-range observations (attributed to the min/max in quantile
// queries). Unlike Sample it never materializes observations, so a run
// of any length costs the same memory.
//
// For observations inside [lo, hi) a quantile estimate is within one
// bucket width above the exact order statistic — the trade-off against
// the exact Sample path is that one-bucket value resolution.
type CDFSketch struct {
	lo, hi   float64
	counts   []int
	n        int
	under    int // observations < lo (counted, valued at min)
	over     int // observations >= hi (counted, valued at max)
	nans     int
	min, max float64
}

// NewCDFSketch creates a sketch with buckets uniform buckets over
// [lo, hi).
func NewCDFSketch(lo, hi float64, buckets int) *CDFSketch {
	if buckets <= 0 || !(hi > lo) || math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		panic("stats: invalid CDF sketch bounds")
	}
	return &CDFSketch{lo: lo, hi: hi, counts: make([]int, buckets)}
}

// Add records one observation. Out-of-range values are tallied at the
// extremes; NaN and ±Inf are counted separately and otherwise ignored.
func (c *CDFSketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		c.nans++
		return
	}
	if c.n == 0 {
		c.min, c.max = x, x
	} else {
		if x < c.min {
			c.min = x
		}
		if x > c.max {
			c.max = x
		}
	}
	c.n++
	switch {
	case x < c.lo:
		c.under++
	case x >= c.hi:
		c.over++
	default:
		i := int((x - c.lo) / (c.hi - c.lo) * float64(len(c.counts)))
		if i == len(c.counts) { // x == hi after fp rounding
			i--
		}
		c.counts[i]++
	}
}

// N returns the number of (finite) observations recorded.
func (c *CDFSketch) N() int { return c.n }

// NaNs returns the number of non-finite observations ignored by Add.
func (c *CDFSketch) NaNs() int { return c.nans }

// Min and Max return the exact observed extremes (0 if empty).
func (c *CDFSketch) Min() float64 { return c.min }

// Max returns the largest observation (0 if none).
func (c *CDFSketch) Max() float64 { return c.max }

// width returns the bucket width.
func (c *CDFSketch) width() float64 { return (c.hi - c.lo) / float64(len(c.counts)) }

// Quantile returns an estimate of the smallest x with F(x) >= q. For
// data inside [lo, hi) the estimate is the right edge of the bucket
// holding the exact order statistic, clamped to the observed max — at
// most one bucket width above the exact value, never below it. An empty
// sketch returns NaN; q outside [0, 1] or NaN returns NaN.
func (c *CDFSketch) Quantile(q float64) float64 {
	if c.n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	r := int(math.Ceil(q * float64(c.n)))
	if r < 1 {
		r = 1
	}
	if r <= c.under {
		return c.min
	}
	cum := c.under
	for i, cnt := range c.counts {
		cum += cnt
		if cum >= r {
			edge := c.lo + float64(i+1)*c.width()
			return math.Min(edge, c.max)
		}
	}
	return c.max
}

// CDF renders the sketch as a CDF over the bucket right edges (plus the
// exact extremes), compatible with CDF.At/Quantile/Table. Empty buckets
// are skipped, so the result has at most buckets+2 points.
func (c *CDFSketch) CDF() *CDF {
	out := &CDF{}
	if c.n == 0 {
		return out
	}
	total := float64(c.n)
	cum := 0
	add := func(x float64, cnt int) {
		if cnt == 0 {
			return
		}
		cum += cnt
		out.X = append(out.X, x)
		out.F = append(out.F, float64(cum)/total)
	}
	add(c.min, c.under)
	for i, cnt := range c.counts {
		add(math.Min(c.lo+float64(i+1)*c.width(), c.max), cnt)
	}
	add(c.max, c.over)
	return out
}
