// Package stats provides small statistical helpers used throughout the
// MIDAS simulator: empirical CDFs, percentiles, streaming summaries,
// histograms and dB/linear conversions.
//
// All types are deterministic and allocation-conscious; none of them are
// safe for concurrent mutation unless stated otherwise.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by reductions over empty sample sets.
var ErrEmpty = errors.New("stats: empty sample set")

// DB converts a linear power ratio to decibels.
// DB(0) returns -Inf, matching the mathematical limit.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// Linear converts decibels to a linear power ratio.
func Linear(db float64) float64 {
	return math.Pow(10, db/10)
}

// DBm converts a power in milliwatts to dBm.
func DBm(milliwatt float64) float64 { return DB(milliwatt) }

// Milliwatt converts dBm to milliwatts.
func Milliwatt(dbm float64) float64 { return Linear(dbm) }

// Summary accumulates count, mean, variance (Welford), min and max of a
// stream of float64 observations without storing them.
type Summary struct {
	n        int
	nans     int
	mean, m2 float64
	min, max float64
}

// Add records one observation. Non-finite observations (NaN, ±Inf) are
// counted separately (see NaNs) and do not perturb the statistics — a
// single bad replicate value must not poison a whole aggregation, and
// one ±Inf would turn the running mean/variance into NaN on the next
// finite observation.
func (s *Summary) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		s.nans++
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records x with multiplicity k (k >= 1).
func (s *Summary) AddN(x float64, k int) {
	for i := 0; i < k; i++ {
		s.Add(x)
	}
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// NaNs returns the number of non-finite observations rejected by Add.
func (s *Summary) NaNs() int { return s.nans }

// Mean returns the running mean, or 0 if no observations were recorded.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if none).
func (s *Summary) Max() float64 { return s.max }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Sample is a growable collection of observations supporting quantile
// queries. The zero value is ready to use.
type Sample struct {
	xs     []float64
	nans   int
	sorted bool
}

// NewSample returns a Sample pre-seeded with xs (the slice is copied).
func NewSample(xs ...float64) *Sample {
	s := &Sample{xs: make([]float64, 0, len(xs))}
	s.AddAll(xs)
	return s
}

// Add appends one observation. NaN is rejected (counted via NaNs, never
// stored): a NaN in the sample would make it unsortable and poison
// every quantile.
func (s *Sample) Add(x float64) {
	if math.IsNaN(x) {
		s.nans++
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends every observation in xs, rejecting NaNs like Add.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// NaNs returns the number of NaN observations rejected by Add/AddAll.
func (s *Sample) NaNs() int { return s.nans }

// Values returns the observations in ascending order. The returned slice
// is owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7 estimator, as in R and NumPy).
func (s *Sample) Quantile(q float64) (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	// NaN compares false against both bounds, so test it explicitly —
	// otherwise it would flow into the index arithmetic below.
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s.sort()
	if len(s.xs) == 1 {
		return s.xs[0], nil
	}
	h := q * float64(len(s.xs)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s.xs[lo], nil
	}
	frac := h - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() (float64, error) { return s.Quantile(0.5) }

// MustMedian is Median but panics on an empty sample; convenient in
// experiment code where emptiness is a programming error.
func (s *Sample) MustMedian() float64 {
	m, err := s.Median()
	if err != nil {
		panic(err)
	}
	return m
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs)), nil
}

// CDF is an empirical cumulative distribution function: a sorted list of
// (x, F(x)) points suitable for plotting or quantile lookup.
type CDF struct {
	X []float64 // ascending sample values
	F []float64 // cumulative probability at X[i], in (0, 1]
}

// ECDF builds the empirical CDF of the sample.
func (s *Sample) ECDF() *CDF {
	s.sort()
	n := len(s.xs)
	c := &CDF{X: make([]float64, n), F: make([]float64, n)}
	copy(c.X, s.xs)
	for i := range c.F {
		c.F[i] = float64(i+1) / float64(n)
	}
	return c
}

// At returns F(x) — the fraction of mass at or below x. F(NaN) is NaN.
func (c *CDF) At(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	// First index with X[i] > x; F is the count of values <= x.
	i := sort.SearchFloat64s(c.X, math.Nextafter(x, math.Inf(1)))
	if i == 0 {
		return 0
	}
	return c.F[i-1]
}

// Quantile returns the smallest x with F(x) >= q. An empty CDF or a NaN
// q returns NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.X) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.F, q)
	if i >= len(c.X) {
		i = len(c.X) - 1
	}
	return c.X[i]
}

// Table renders the CDF downsampled to at most points rows, as
// tab-separated "x\tF" lines. Useful for regenerating paper figures as
// text series.
func (c *CDF) Table(points int) string {
	var b strings.Builder
	n := len(c.X)
	if n == 0 {
		return ""
	}
	if points <= 0 || points > n {
		points = n
	}
	for i := 0; i < points; i++ {
		// A single-row table shows the maximum (F=1); guard before the
		// division, which a one-point CDF would otherwise hit as /0.
		j := n - 1
		if points > 1 {
			j = i * (n - 1) / (points - 1)
		}
		fmt.Fprintf(&b, "%.4g\t%.4f\n", c.X[j], c.F[j])
	}
	return b.String()
}

// Histogram counts observations into uniform bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	nans   int
}

// NewHistogram creates a histogram with bins uniform bins spanning [lo,hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation; out-of-range values are tallied
// separately, as are NaNs — a NaN compares false against both bounds
// and would otherwise reach the bin index conversion, whose result is
// undefined (an out-of-bounds panic on most platforms).
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nans++
		return
	}
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) { // x == Hi after fp rounding
		i--
	}
	h.Counts[i]++
}

// N returns the total number of in-range observations.
func (h *Histogram) N() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Outliers returns the number of observations below Lo and at/above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// NaNs returns the number of NaN observations rejected by Add.
func (h *Histogram) NaNs() int { return h.nans }

// Bin returns the [lo,hi) bounds of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Ratio divides a by b element-wise over paired samples, returning the
// per-pair ratios; used for e.g. MIDAS/CAS stream-count ratios (Fig 12).
func Ratio(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: ratio length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		if b[i] == 0 {
			return nil, fmt.Errorf("stats: ratio divide by zero at %d", i)
		}
		out[i] = a[i] / b[i]
	}
	return out, nil
}

// MedianGain returns (median(a)/median(b) - 1), the fractional median gain
// of sample a over sample b. Both samples must be non-empty.
func MedianGain(a, b *Sample) (float64, error) {
	ma, err := a.Median()
	if err != nil {
		return 0, err
	}
	mb, err := b.Median()
	if err != nil {
		return 0, err
	}
	if mb == 0 {
		return 0, errors.New("stats: zero baseline median")
	}
	return ma/mb - 1, nil
}
