// Destination-passing kernels for the precoding hot path. Every TXOP of
// the DES recomputes a ZFBF/power-balanced precoder; the value-returning
// API in matrix.go allocates a fresh matrix per operation, which dominates
// the per-core cost of small (4×4–8×8) problems. The *Into variants below
// write into caller-owned storage instead, and the fused kernels (Gram,
// MulHerm) skip the intermediate Hermitian entirely.
//
// Bit-exactness contract: each *Into kernel performs the same floating-
// point operations in the same order as the value-returning composition it
// replaces (e.g. GramInto(dst, m) ≡ m.Mul(m.Hermitian()), including the
// zero-entry skip), so figure-level outputs are unchanged to the last bit.
//
// Aliasing: unless documented otherwise, dst must not alias any input.
package matrix

import (
	"fmt"
	"math/cmplx"
)

// abs2 is the squared modulus |v|² — cheaper than cmplx.Abs and order-
// preserving, so it can stand in for it in magnitude comparisons.
func abs2(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// Reuse reshapes m to r×c, reusing the backing array when it has capacity
// and zeroing all entries. It returns m for chaining. A zero-value Mat is
// a valid target. This is the growth primitive behind Workspace: in steady
// state (shapes no larger than previously seen) it does not allocate.
func (m *Mat) Reuse(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", r, c))
	}
	n := r * c
	if cap(m.a) < n {
		m.a = make([]complex128, n)
	} else {
		m.a = m.a[:n]
		for i := range m.a {
			m.a[i] = 0
		}
	}
	m.r, m.c = r, c
	return m
}

// CopyFrom reshapes m to src's shape (reusing backing storage when
// possible) and copies src's entries. Returns m for chaining.
func (m *Mat) CopyFrom(src *Mat) *Mat {
	n := src.r * src.c
	if cap(m.a) < n {
		m.a = make([]complex128, n)
	} else {
		m.a = m.a[:n]
	}
	m.r, m.c = src.r, src.c
	copy(m.a, src.a)
	return m
}

// SetIdentity reshapes m to n×n and sets it to the identity.
func (m *Mat) SetIdentity(n int) *Mat {
	m.Reuse(n, n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 1
	}
	return m
}

// MulInto computes dst = a·b. dst is reshaped to a.Rows()×b.Cols() and
// must not alias a or b. Bit-identical to a.Mul(b).
func MulInto(dst, a, b *Mat) *Mat {
	if a.c != b.r {
		panic(ErrShape)
	}
	dst.Reuse(a.r, b.c)
	for i := 0; i < a.r; i++ {
		outBase := i * b.c
		for k := 0; k < a.c; k++ {
			aik := a.a[i*a.c+k]
			if aik == 0 {
				continue
			}
			base := k * b.c
			for j := 0; j < b.c; j++ {
				dst.a[outBase+j] += aik * b.a[base+j]
			}
		}
	}
	return dst
}

// MulVecInto computes dst = m·x for a column vector x of length m.Cols(),
// writing into dst (which must have length m.Rows() and not alias x).
// Bit-identical to m.MulVec(x).
func MulVecInto(dst []complex128, m *Mat, x []complex128) []complex128 {
	if len(x) != m.c || len(dst) != m.r {
		panic(ErrShape)
	}
	for i := 0; i < m.r; i++ {
		var s complex128
		base := i * m.c
		for j := 0; j < m.c; j++ {
			s += m.a[base+j] * x[j]
		}
		dst[i] = s
	}
	return dst
}

// HermitianInto computes dst = mᴴ. dst must not alias m.
func HermitianInto(dst, m *Mat) *Mat {
	dst.Reuse(m.c, m.r)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			dst.a[j*m.r+i] = cmplx.Conj(m.a[i*m.c+j])
		}
	}
	return dst
}

// AddScaledInto computes dst = a + k·b for same-shaped a and b. dst may
// alias a or b.
func AddScaledInto(dst, a *Mat, k complex128, b *Mat) *Mat {
	a.mustSameShape(b)
	if dst != a && dst != b {
		dst.Reuse(a.r, a.c)
	}
	for i := range a.a {
		dst.a[i] = a.a[i] + k*b.a[i]
	}
	return dst
}

// GramInto computes the Gram matrix dst = m·mᴴ (Rows×Rows) without
// materialising the Hermitian. Bit-identical to m.Mul(m.Hermitian()).
func GramInto(dst, m *Mat) *Mat {
	r, c := m.r, m.c
	if r == 4 && c == 4 {
		return gram4(dst, m)
	}
	dst.Reuse(r, r)
	for i := 0; i < r; i++ {
		out := dst.a[i*r : i*r+r]
		mrow := m.a[i*c : i*c+c]
		for k := 0; k < c; k++ {
			mik := mrow[k]
			if mik == 0 {
				continue
			}
			// Hermitian row k is conj of m's column k (stride-c walk).
			jk := k
			for j := 0; j < r; j++ {
				out[j] += mik * cmplx.Conj(m.a[jk])
				jk += c
			}
		}
	}
	return dst
}

// GramTInto computes dst = mᴴ·m (Cols×Cols) without materialising the
// Hermitian. Bit-identical to m.Hermitian().Mul(m).
func GramTInto(dst, m *Mat) *Mat {
	dst.Reuse(m.c, m.c)
	for i := 0; i < m.c; i++ {
		outBase := i * m.c
		for k := 0; k < m.r; k++ {
			// Hermitian entry (i,k) is conj of m's (k,i).
			hik := cmplx.Conj(m.a[k*m.c+i])
			if hik == 0 {
				continue
			}
			base := k * m.c
			for j := 0; j < m.c; j++ {
				dst.a[outBase+j] += hik * m.a[base+j]
			}
		}
	}
	return dst
}

// MulHermInto computes dst = mᴴ·g without materialising mᴴ.
// Bit-identical to m.Hermitian().Mul(g).
func MulHermInto(dst, m, g *Mat) *Mat {
	if m.r != g.r {
		panic(ErrShape)
	}
	gc := g.c
	if m.r == 4 && m.c == 4 && gc == 4 {
		return mulHerm4(dst, m, g)
	}
	dst.Reuse(m.c, gc)
	for i := 0; i < m.c; i++ {
		out := dst.a[i*gc : i*gc+gc]
		ki := i
		for k := 0; k < m.r; k++ {
			hik := cmplx.Conj(m.a[ki])
			ki += m.c
			if hik == 0 {
				continue
			}
			grow := g.a[k*gc : k*gc+gc]
			for j, gv := range grow {
				out[j] += hik * gv
			}
		}
	}
	return dst
}

// MulByHermInto computes dst = g·mᴴ without materialising mᴴ.
// Bit-identical to g.Mul(m.Hermitian()).
func MulByHermInto(dst, g, m *Mat) *Mat {
	if g.c != m.c {
		panic(ErrShape)
	}
	dst.Reuse(g.r, m.r)
	for i := 0; i < g.r; i++ {
		outBase := i * m.r
		for k := 0; k < g.c; k++ {
			gik := g.a[i*g.c+k]
			if gik == 0 {
				continue
			}
			// Hermitian row k is conj of m's column k.
			for j := 0; j < m.r; j++ {
				dst.a[outBase+j] += gik * cmplx.Conj(m.a[j*m.c+k])
			}
		}
	}
	return dst
}

// InverseInto computes dst = src⁻¹ by the same Gauss–Jordan elimination
// with partial pivoting as Inverse (bit-identical results), scratching in
// ws instead of allocating. dst must not alias src.
func InverseInto(dst, src *Mat, ws *Workspace) error {
	if src.r != src.c {
		return ErrShape
	}
	n := src.r
	mark := ws.Mark()
	defer ws.Release(mark)
	a := ws.TakeCopy(src)
	dst.SetIdentity(n)
	if n == 4 {
		return inverse4(dst, a)
	}
	const tol = 1e-13
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return ErrSingular
	}
	tolScale2 := tol * scale
	tolScale2 *= tolScale2
	for col := 0; col < n; col++ {
		// Pivot comparisons use squared magnitudes (|x|² = re²+im²) in
		// place of Inverse's cmplx.Abs: strictly monotone in |x|, so the
		// chosen pivot — and hence every arithmetic result — matches
		// unless two candidates agree to within rounding error, which the
		// equivalence tests would surface.
		p := col
		best := abs2(a.a[col*n+col])
		for row := col + 1; row < n; row++ {
			if v := abs2(a.a[row*n+col]); v > best {
				p, best = row, v
			}
		}
		if best <= tolScale2 {
			return ErrSingular
		}
		if p != col {
			a.swapRows(p, col)
			dst.swapRows(p, col)
		}
		acol := a.a[col*n : col*n+n]
		dcol := dst.a[col*n : col*n+n]
		piv := acol[col]
		for j := 0; j < n; j++ {
			acol[j] /= piv
			dcol[j] /= piv
		}
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			arow := a.a[row*n : row*n+n]
			f := arow[col]
			if f == 0 {
				continue
			}
			drow := dst.a[row*n : row*n+n]
			for j := 0; j < n; j++ {
				arow[j] -= f * acol[j]
				drow[j] -= f * dcol[j]
			}
		}
	}
	return nil
}

// PseudoInverseInto computes dst = src† (Moore–Penrose pseudoinverse of a
// full-rank matrix), scratching in ws. For a wide matrix it computes the
// right inverse srcᴴ(src·srcᴴ)⁻¹; for a tall one, the left inverse
// (srcᴴ·src)⁻¹srcᴴ. The Gram products and the Gauss–Jordan inversion
// replay PseudoInverse's arithmetic exactly, so results are bit-identical.
// dst must not alias src.
func PseudoInverseInto(dst, src *Mat, ws *Workspace) error {
	mark := ws.Mark()
	if src.r <= src.c {
		gram := GramInto(ws.takeDirty(), src) // src·srcᴴ, r×r
		g := ws.takeDirty()
		if err := InverseInto(g, gram, ws); err != nil {
			ws.Release(mark)
			return fmt.Errorf("pseudoinverse: %w", err)
		}
		MulHermInto(dst, src, g) // srcᴴ·(src·srcᴴ)⁻¹
		ws.Release(mark)
		return nil
	}
	gram := GramTInto(ws.takeDirty(), src) // srcᴴ·src, c×c
	g := ws.takeDirty()
	if err := InverseInto(g, gram, ws); err != nil {
		ws.Release(mark)
		return fmt.Errorf("pseudoinverse: %w", err)
	}
	MulByHermInto(dst, g, src) // (srcᴴ·src)⁻¹·srcᴴ
	ws.Release(mark)
	return nil
}

// Workspace is a reusable scratch arena for the *Into kernels. Take hands
// out scratch matrices in stack order; Mark/Release scope them so nested
// kernels (PseudoInverseInto calling InverseInto) compose. Each slot owns
// backing storage that grows to the largest shape it has held, so a
// workspace reused across same-sized problems performs no allocations in
// steady state. A Workspace is not safe for concurrent use.
type Workspace struct {
	mats []*Mat
	top  int
}

// Mark returns the current stack position for a later Release.
func (w *Workspace) Mark() int { return w.top }

// Release pops every matrix taken since the matching Mark. The popped
// matrices' storage stays with the workspace for reuse; the caller must
// not retain pointers to them past the Release.
func (w *Workspace) Release(mark int) {
	if mark < 0 || mark > w.top {
		panic("matrix: bad workspace mark")
	}
	w.top = mark
}

// Take returns an r×c zeroed scratch matrix owned by the workspace, valid
// until the enclosing Release.
func (w *Workspace) Take(r, c int) *Mat {
	if w.top == len(w.mats) {
		w.mats = append(w.mats, &Mat{})
	}
	m := w.mats[w.top]
	w.top++
	return m.Reuse(r, c)
}

// takeDirty is Take without the zero fill, for kernels that fully
// initialise their destination (MulInto, GramInto, InverseInto, … all
// reshape dst themselves).
func (w *Workspace) takeDirty() *Mat {
	if w.top == len(w.mats) {
		w.mats = append(w.mats, &Mat{})
	}
	m := w.mats[w.top]
	w.top++
	return m
}

// TakeCopy returns a workspace copy of src (no intermediate zeroing).
func (w *Workspace) TakeCopy(src *Mat) *Mat {
	if w.top == len(w.mats) {
		w.mats = append(w.mats, &Mat{})
	}
	m := w.mats[w.top]
	w.top++
	return m.CopyFrom(src)
}

// LU is a reusable LU factorisation with partial pivoting: P·A = L·U with
// unit-diagonal L. Factor once, then solve any number of right-hand sides
// by forward/back substitution — no full inverse is ever materialised.
// The factor and pivot buffers are retained across Factor calls, so
// steady-state refactorisation of same-sized systems does not allocate.
type LU struct {
	lu   Mat
	piv  []int
	perm []int
}

// Factor decomposes the square matrix a. It returns ErrSingular when a
// pivot falls below tol times the matrix magnitude (the same criterion as
// Inverse).
func (f *LU) Factor(a *Mat) error {
	if a.r != a.c {
		return ErrShape
	}
	n := a.r
	f.lu.CopyFrom(a)
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	} else {
		f.piv = f.piv[:n]
	}
	const tol = 1e-13
	scale := f.lu.FrobeniusNorm()
	if scale == 0 {
		return ErrSingular
	}
	tolScale2 := tol * scale
	tolScale2 *= tolScale2
	for col := 0; col < n; col++ {
		// Partial pivot on the current column (squared-magnitude
		// comparisons, as in InverseInto).
		p := col
		best := abs2(f.lu.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := abs2(f.lu.At(row, col)); v > best {
				p, best = row, v
			}
		}
		if best <= tolScale2 {
			return ErrSingular
		}
		f.piv[col] = p
		if p != col {
			f.lu.swapRows(p, col)
		}
		piv := f.lu.At(col, col)
		for row := col + 1; row < n; row++ {
			m := f.lu.At(row, col) / piv
			f.lu.Set(row, col, m)
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu.Set(row, j, f.lu.At(row, j)-m*f.lu.At(col, j))
			}
		}
	}
	return nil
}

// SolveVecInto solves A·x = b into dst using the current factorisation.
// dst and b must have length N; dst may alias b.
func (f *LU) SolveVecInto(dst, b []complex128) []complex128 {
	n := f.lu.r
	if n == 0 || len(dst) != n || len(b) != n {
		panic(ErrShape)
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Apply every recorded row exchange first: the stored multipliers
	// reflect the fully-pivoted row order, so the RHS must too before any
	// elimination uses them. Then L⁻¹ (unit lower), then U⁻¹.
	for col := 0; col < n; col++ {
		if p := f.piv[col]; p != col {
			dst[col], dst[p] = dst[p], dst[col]
		}
	}
	for col := 0; col < n; col++ {
		for row := col + 1; row < n; row++ {
			dst[row] -= f.lu.At(row, col) * dst[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		dst[col] /= f.lu.At(col, col)
		for row := 0; row < col; row++ {
			dst[row] -= f.lu.At(row, col) * dst[col]
		}
	}
	return dst
}

// SolveMatInto solves A·X = B column-by-column into dst (reshaped to B's
// shape). dst must not alias b.
func (f *LU) SolveMatInto(dst, b *Mat) *Mat {
	n := f.lu.r
	if b.r != n {
		panic(ErrShape)
	}
	dst.Reuse(n, b.c)
	// Copy B with the pivot permutation applied: row i of the permuted
	// system reads row perm[i] of B. Substitution then runs over all
	// right-hand sides at once, row-major.
	perm := f.permInto()
	for i := 0; i < n; i++ {
		copy(dst.a[i*b.c:(i+1)*b.c], b.a[perm[i]*b.c:(perm[i]+1)*b.c])
	}
	for col := 0; col < n; col++ {
		for row := col + 1; row < n; row++ {
			m := f.lu.At(row, col)
			if m == 0 {
				continue
			}
			for j := 0; j < b.c; j++ {
				dst.a[row*b.c+j] -= m * dst.a[col*b.c+j]
			}
		}
	}
	for col := n - 1; col >= 0; col-- {
		d := f.lu.At(col, col)
		for j := 0; j < b.c; j++ {
			dst.a[col*b.c+j] /= d
		}
		for row := 0; row < col; row++ {
			m := f.lu.At(row, col)
			if m == 0 {
				continue
			}
			for j := 0; j < b.c; j++ {
				dst.a[row*b.c+j] -= m * dst.a[col*b.c+j]
			}
		}
	}
	return dst
}

// permInto expands the pairwise pivot exchanges into an explicit
// permutation in a buffer retained by the factorisation: perm[i] is the
// source row of B feeding row i of the permuted system.
func (f *LU) permInto() []int {
	n := f.lu.r
	if cap(f.perm) < n {
		f.perm = make([]int, n)
	} else {
		f.perm = f.perm[:n]
	}
	for i := 0; i < n; i++ {
		f.perm[i] = i
	}
	for col := 0; col < n; col++ {
		if p := f.piv[col]; p != col {
			f.perm[col], f.perm[p] = f.perm[p], f.perm[col]
		}
	}
	return f.perm
}
