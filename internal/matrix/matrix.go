// Package matrix implements the dense complex-valued linear algebra needed
// by MU-MIMO precoding: multiplication, Hermitian transpose, inversion with
// partial pivoting, the Moore–Penrose pseudoinverse (the closed-form ZFBF
// precoder, §3.1.1 of the MIDAS paper), QR factorisation, and norms.
//
// Matrices are dense, row-major, and sized at construction. The package is
// stdlib-only and deterministic.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when inverting a (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// ErrShape is returned for dimension mismatches.
var ErrShape = errors.New("matrix: dimension mismatch")

// Mat is a dense complex matrix with row-major storage.
type Mat struct {
	r, c int
	a    []complex128
}

// New returns an r×c zero matrix.
func New(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", r, c))
	}
	return &Mat{r: r, c: c, a: make([]complex128, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Mat {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows on empty data")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.c {
			panic("matrix: ragged rows")
		}
		copy(m.a[i*m.c:(i+1)*m.c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.r }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.c }

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) complex128 { return m.a[i*m.c+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v complex128) { m.a[i*m.c+j] = v }

// Row returns a copy of row i.
func (m *Mat) Row(i int) []complex128 {
	out := make([]complex128, m.c)
	copy(out, m.a[i*m.c:(i+1)*m.c])
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []complex128 {
	out := make([]complex128, m.r)
	for i := 0; i < m.r; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Raw exposes the row-major backing slice (entry (i,j) is Raw()[i*Cols()+j]).
// It is intended for allocation-free kernels that need direct indexing;
// mutating it mutates the matrix.
func (m *Mat) Raw() []complex128 { return m.a }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	n := New(m.r, m.c)
	copy(n.a, m.a)
	return n
}

// Equalish reports whether m and n have the same shape and all entries
// within tol of each other (by complex modulus of the difference).
func (m *Mat) Equalish(n *Mat, tol float64) bool {
	if m.r != n.r || m.c != n.c {
		return false
	}
	for i := range m.a {
		if cmplx.Abs(m.a[i]-n.a[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			if j > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%.4g%+.4gi", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Add returns m + n.
func (m *Mat) Add(n *Mat) *Mat {
	m.mustSameShape(n)
	out := New(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] + n.a[i]
	}
	return out
}

// Sub returns m - n.
func (m *Mat) Sub(n *Mat) *Mat {
	m.mustSameShape(n)
	out := New(m.r, m.c)
	for i := range m.a {
		out.a[i] = m.a[i] - n.a[i]
	}
	return out
}

func (m *Mat) mustSameShape(n *Mat) {
	if m.r != n.r || m.c != n.c {
		panic(ErrShape)
	}
}

// Scale returns k*m.
func (m *Mat) Scale(k complex128) *Mat {
	out := New(m.r, m.c)
	for i := range m.a {
		out.a[i] = k * m.a[i]
	}
	return out
}

// Mul returns the matrix product m·n. It panics unless m.Cols() == n.Rows().
func (m *Mat) Mul(n *Mat) *Mat {
	if m.c != n.r {
		panic(ErrShape)
	}
	out := New(m.r, n.c)
	for i := 0; i < m.r; i++ {
		for k := 0; k < m.c; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			base := k * n.c
			outBase := i * n.c
			for j := 0; j < n.c; j++ {
				out.a[outBase+j] += mik * n.a[base+j]
			}
		}
	}
	return out
}

// MulVec returns m·x for a column vector x of length m.Cols().
func (m *Mat) MulVec(x []complex128) []complex128 {
	if len(x) != m.c {
		panic(ErrShape)
	}
	out := make([]complex128, m.r)
	for i := 0; i < m.r; i++ {
		var s complex128
		base := i * m.c
		for j := 0; j < m.c; j++ {
			s += m.a[base+j] * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	out := New(m.c, m.r)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Hermitian returns the conjugate transpose mᴴ.
func (m *Mat) Hermitian() *Mat {
	out := New(m.c, m.r)
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Conj returns the element-wise complex conjugate.
func (m *Mat) Conj() *Mat {
	out := New(m.r, m.c)
	for i := range m.a {
		out.a[i] = cmplx.Conj(m.a[i])
	}
	return out
}

// FrobeniusNorm returns sqrt(Σ|a_ij|²).
func (m *Mat) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.a {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// RowPower returns Σ_j |a_ij|² for row i — the transmit power loading of
// antenna i when the matrix is a precoder (rows = antennas).
func (m *Mat) RowPower(i int) float64 {
	s := 0.0
	for _, v := range m.a[i*m.c : (i+1)*m.c] {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// ColPower returns Σ_i |a_ij|² for column j — the total power assigned to
// stream j when the matrix is a precoder (columns = streams).
func (m *Mat) ColPower(j int) float64 {
	s := 0.0
	for ij := j; ij < len(m.a); ij += m.c {
		v := m.a[ij]
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// MaxRowPower returns the largest row power and its row index.
func (m *Mat) MaxRowPower() (row int, power float64) {
	power = math.Inf(-1)
	for i := 0; i < m.r; i++ {
		if p := m.RowPower(i); p > power {
			row, power = i, p
		}
	}
	return row, power
}

// ScaleCol multiplies column j in place by the real factor w.
func (m *Mat) ScaleCol(j int, w float64) {
	for ij := j; ij < len(m.a); ij += m.c {
		m.a[ij] *= complex(w, 0)
	}
}

// ScaleCol2 multiplies column j in place by w1 and then by w2 as two
// successive multiplications per element — bit-identical to
// ScaleCol(j, w1); ScaleCol(j, w2) but in a single pass.
func (m *Mat) ScaleCol2(j int, w1, w2 float64) {
	c1, c2 := complex(w1, 0), complex(w2, 0)
	for ij := j; ij < len(m.a); ij += m.c {
		v := m.a[ij] * c1
		m.a[ij] = v * c2
	}
}

// NormalizeCols scales every column to unit L2 norm (zero columns are left
// untouched). Returns the receiver for chaining.
func (m *Mat) NormalizeCols() *Mat {
	for j := 0; j < m.c; j++ {
		p := m.ColPower(j)
		if p > 0 {
			m.ScaleCol(j, 1/math.Sqrt(p))
		}
	}
	return m
}

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. It returns ErrSingular when a pivot is smaller than tol times
// the largest row magnitude.
func (m *Mat) Inverse() (*Mat, error) {
	if m.r != m.c {
		return nil, ErrShape
	}
	n := m.r
	// Augmented [A | I] worked in place.
	a := m.Clone()
	inv := Identity(n)
	const tol = 1e-13
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return nil, ErrSingular
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[row][col]| for row >= col.
		p := col
		best := cmplx.Abs(a.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := cmplx.Abs(a.At(row, col)); v > best {
				p, best = row, v
			}
		}
		if best <= tol*scale {
			return nil, ErrSingular
		}
		if p != col {
			a.swapRows(p, col)
			inv.swapRows(p, col)
		}
		// Normalise pivot row.
		piv := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/piv)
			inv.Set(col, j, inv.At(col, j)/piv)
		}
		// Eliminate other rows.
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			f := a.At(row, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(row, j, a.At(row, j)-f*a.At(col, j))
				inv.Set(row, j, inv.At(row, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Mat) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.a[i*m.c : (i+1)*m.c]
	rj := m.a[j*m.c : (j+1)*m.c]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// PseudoInverse returns the Moore–Penrose pseudoinverse H† of a full-rank
// matrix. For a wide matrix (r <= c, the usual MU-MIMO downlink case with
// clients <= antennas) it computes the right inverse Hᴴ(HHᴴ)⁻¹; for a tall
// matrix, the left inverse (HᴴH)⁻¹Hᴴ.
func (m *Mat) PseudoInverse() (*Mat, error) {
	h := m.Hermitian()
	if m.r <= m.c {
		g, err := m.Mul(h).Inverse() // (H Hᴴ)⁻¹, r×r
		if err != nil {
			return nil, fmt.Errorf("pseudoinverse: %w", err)
		}
		return h.Mul(g), nil
	}
	g, err := h.Mul(m).Inverse() // (Hᴴ H)⁻¹, c×c
	if err != nil {
		return nil, fmt.Errorf("pseudoinverse: %w", err)
	}
	return g.Mul(h), nil
}

// Solve returns x with m·x = b for square m by LU factorisation with
// partial pivoting and forward/back substitution — O(n³/3) instead of the
// O(n³) full inverse, and without the extra rounding a materialised
// inverse injects into every solution component.
func (m *Mat) Solve(b []complex128) ([]complex128, error) {
	if len(b) != m.r {
		return nil, ErrShape
	}
	var f LU
	if err := f.Factor(m); err != nil {
		return nil, err
	}
	x := make([]complex128, len(b))
	return f.SolveVecInto(x, b), nil
}

// SolveMat returns X with m·X = b for square m, factoring once and
// substituting every column of b through the shared LU decomposition.
func (m *Mat) SolveMat(b *Mat) (*Mat, error) {
	if b.r != m.r {
		return nil, ErrShape
	}
	var f LU
	if err := f.Factor(m); err != nil {
		return nil, err
	}
	return f.SolveMatInto(New(b.r, b.c), b), nil
}

// QR computes the thin QR factorisation m = Q·R using modified
// Gram–Schmidt. Q is r×c with orthonormal columns and R is c×c upper
// triangular. Requires r >= c.
func (m *Mat) QR() (q, r *Mat, err error) {
	if m.r < m.c {
		return nil, nil, ErrShape
	}
	q = m.Clone()
	r = New(m.c, m.c)
	for j := 0; j < m.c; j++ {
		// r_jj = ||q_j||
		norm := math.Sqrt(q.ColPower(j))
		r.Set(j, j, complex(norm, 0))
		if norm < 1e-300 {
			return nil, nil, ErrSingular
		}
		q.ScaleCol(j, 1/norm)
		for k := j + 1; k < m.c; k++ {
			// r_jk = q_j ᴴ q_k
			var dot complex128
			for i := 0; i < m.r; i++ {
				dot += cmplx.Conj(q.At(i, j)) * q.At(i, k)
			}
			r.Set(j, k, dot)
			for i := 0; i < m.r; i++ {
				q.Set(i, k, q.At(i, k)-dot*q.At(i, j))
			}
		}
	}
	return q, r, nil
}

// Rank estimates the numerical rank via QR: the count of diagonal entries
// of R above tol times the largest.
func (m *Mat) Rank(tol float64) int {
	a := m
	if m.r < m.c {
		a = m.Hermitian()
	}
	_, r, err := a.QR()
	if err != nil {
		// Fall back: count nonzero rows after elimination is overkill;
		// a singular QR means rank deficiency appeared at some column.
		// Redo with column pivoting via greedy norm selection.
		return m.rankPivoted(tol)
	}
	maxDiag := 0.0
	for i := 0; i < r.Rows(); i++ {
		if v := cmplx.Abs(r.At(i, i)); v > maxDiag {
			maxDiag = v
		}
	}
	if maxDiag == 0 {
		return 0
	}
	rank := 0
	for i := 0; i < r.Rows(); i++ {
		if cmplx.Abs(r.At(i, i)) > tol*maxDiag {
			rank++
		}
	}
	return rank
}

// rankPivoted estimates rank by Gaussian elimination with full pivoting.
func (m *Mat) rankPivoted(tol float64) int {
	a := m.Clone()
	rows, cols := a.r, a.c
	rank := 0
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return 0
	}
	rowUsed := make([]bool, rows)
	for c := 0; c < cols; c++ {
		// find pivot row
		p, best := -1, tol*scale
		for r := 0; r < rows; r++ {
			if rowUsed[r] {
				continue
			}
			if v := cmplx.Abs(a.At(r, c)); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			continue
		}
		rowUsed[p] = true
		rank++
		piv := a.At(p, c)
		for r := 0; r < rows; r++ {
			if r == p || rowUsed[r] {
				continue
			}
			f := a.At(r, c) / piv
			for j := c; j < cols; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(p, j))
			}
		}
	}
	return rank
}

// Diag returns the main diagonal as a slice.
func (m *Mat) Diag() []complex128 {
	n := m.r
	if m.c < n {
		n = m.c
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = m.At(i, i)
	}
	return out
}

// OffDiagMax returns the largest |a_ij| with i != j — used to verify the
// zero-interference property of ZFBF (the SINR matrix must be diagonal).
func (m *Mat) OffDiagMax() float64 {
	max := 0.0
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			if i == j {
				continue
			}
			if v := cmplx.Abs(m.At(i, j)); v > max {
				max = v
			}
		}
	}
	return max
}
