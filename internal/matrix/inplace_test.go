package matrix

import (
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

// identical reports bitwise equality of two matrices — the *Into kernels
// promise bit-identical results, not merely close ones.
func identical(t *testing.T, name string, got, want *Mat) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %d×%d, want %d×%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: entry (%d,%d) = %v, want %v (bitwise)", name, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestIntoKernelsBitExact(t *testing.T) {
	s := rng.New(7)
	shapes := []struct{ r, c int }{{2, 2}, {4, 4}, {4, 8}, {8, 4}, {8, 8}, {3, 5}}
	var ws Workspace
	for _, sh := range shapes {
		m := randomMat(s, sh.r, sh.c)
		sq := randomMat(s, sh.r, sh.r) // left-compatible square factor

		identical(t, "MulInto", MulInto(&Mat{}, sq, m), sq.Mul(m))
		identical(t, "HermitianInto", HermitianInto(&Mat{}, m), m.Hermitian())
		identical(t, "GramInto", GramInto(&Mat{}, m), m.Mul(m.Hermitian()))
		identical(t, "GramTInto", GramTInto(&Mat{}, m), m.Hermitian().Mul(m))

		g := randomMat(s, sh.r, sh.c)
		identical(t, "MulHermInto", MulHermInto(&Mat{}, m, g), m.Hermitian().Mul(g))
		gr := randomMat(s, sh.r, sh.c)
		identical(t, "MulByHermInto", MulByHermInto(&Mat{}, gr, m), gr.Mul(m.Hermitian()))

		other := randomMat(s, sh.r, sh.c)
		identical(t, "AddScaledInto", AddScaledInto(&Mat{}, m, 2-1i, other), m.Add(other.Scale(2-1i)))

		// PseudoInverseInto covers both the wide and tall branch via the
		// shape list.
		want, err := m.PseudoInverse()
		if err != nil {
			t.Fatalf("PseudoInverse(%d×%d): %v", sh.r, sh.c, err)
		}
		got := &Mat{}
		if err := PseudoInverseInto(got, m, &ws); err != nil {
			t.Fatalf("PseudoInverseInto(%d×%d): %v", sh.r, sh.c, err)
		}
		identical(t, "PseudoInverseInto", got, want)
	}
}

func TestMulVecInto(t *testing.T) {
	s := rng.New(9)
	m := randomMat(s, 4, 6)
	x := make([]complex128, 6)
	for i := range x {
		x[i] = s.ComplexCircular(1)
	}
	want := m.MulVec(x)
	got := MulVecInto(make([]complex128, 4), m, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInverseIntoBitExact(t *testing.T) {
	s := rng.New(11)
	var ws Workspace
	for _, n := range []int{1, 2, 4, 8} {
		m := randomMat(s, n, n)
		want, err := m.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		got := &Mat{}
		if err := InverseInto(got, m, &ws); err != nil {
			t.Fatal(err)
		}
		identical(t, "InverseInto", got, want)
	}
	if err := InverseInto(&Mat{}, New(3, 3), &ws); err != ErrSingular {
		t.Errorf("InverseInto(zero) = %v, want ErrSingular", err)
	}
}

func TestLUSolve(t *testing.T) {
	s := rng.New(13)
	for _, n := range []int{1, 2, 4, 8} {
		a := randomMat(s, n, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = s.ComplexCircular(1)
		}
		var f LU
		if err := f.Factor(a); err != nil {
			t.Fatal(err)
		}
		x := f.SolveVecInto(make([]complex128, n), b)
		// Residual check: A·x ≈ b.
		r := a.MulVec(x)
		for i := range b {
			if cmplx.Abs(r[i]-b[i]) > 1e-10 {
				t.Fatalf("n=%d: residual %v at %d", n, cmplx.Abs(r[i]-b[i]), i)
			}
		}
		// In-place RHS: dst aliasing b.
		bb := append([]complex128(nil), b...)
		f.SolveVecInto(bb, bb)
		for i := range x {
			if bb[i] != x[i] {
				t.Fatalf("aliased solve differs at %d", i)
			}
		}
		// Multi-RHS against per-column solves.
		rhs := randomMat(s, n, 3)
		var xm Mat
		f.SolveMatInto(&xm, rhs)
		for j := 0; j < 3; j++ {
			col := f.SolveVecInto(make([]complex128, n), rhs.Col(j))
			for i := 0; i < n; i++ {
				if xm.At(i, j) != col[i] {
					t.Fatalf("SolveMatInto(%d,%d) = %v, want %v", i, j, xm.At(i, j), col[i])
				}
			}
		}
	}
	var f LU
	if err := f.Factor(New(2, 2)); err != ErrSingular {
		t.Errorf("Factor(zero) = %v, want ErrSingular", err)
	}
	if err := f.Factor(randomMat(s, 2, 3)); err != ErrShape {
		t.Errorf("Factor(rect) = %v, want ErrShape", err)
	}
}

func TestSolveMat(t *testing.T) {
	s := rng.New(17)
	a := randomMat(s, 5, 5)
	b := randomMat(s, 5, 2)
	x, err := a.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equalish(b, 1e-10) {
		t.Error("A·X != B")
	}
}

func TestWorkspaceReuse(t *testing.T) {
	var ws Workspace
	mark := ws.Mark()
	a := ws.Take(4, 4)
	a.Set(0, 0, 3)
	ws.Release(mark)
	// A released slot comes back zeroed at any smaller-or-equal size.
	b := ws.Take(2, 8)
	if b.Rows() != 2 || b.Cols() != 8 {
		t.Fatalf("Take shape %d×%d", b.Rows(), b.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 8; j++ {
			if b.At(i, j) != 0 {
				t.Fatal("reused scratch not zeroed")
			}
		}
	}
	ws.Release(mark)
}

func TestWorkspaceZeroAlloc(t *testing.T) {
	var ws Workspace
	s := rng.New(19)
	m := randomMat(s, 8, 8)
	dst := &Mat{}
	// Warm up sizes once, then the checkout loop must be allocation-free.
	if err := PseudoInverseInto(dst, m, &ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := PseudoInverseInto(dst, m, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PseudoInverseInto allocates %v per run, want 0", allocs)
	}
}

func TestReuseAndCopyFrom(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 5)
	m.Reuse(2, 2)
	if m.At(1, 1) != 0 {
		t.Error("Reuse did not zero")
	}
	src := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	m.CopyFrom(src)
	identical(t, "CopyFrom", m, src)
	// Growing past capacity still works.
	m.Reuse(10, 10)
	if m.Rows() != 10 || m.Cols() != 10 {
		t.Error("Reuse grow failed")
	}
}
