// Specialised 4×4 fast paths for the in-place kernels. Four antennas and
// four clients is the paper's canonical MU-MIMO dimension, so the DES
// spends most of its precoding time exactly here. Each function performs
// the same floating-point operations in the same order as its generic
// counterpart — loops are unrolled and accumulators live in registers, but
// every accumulation chain is untouched, so results stay bit-identical
// (the equivalence tests in inplace_test.go cover these paths).
package matrix

import "math/cmplx"

// reshapeDirty resizes m without zeroing — for kernels about to overwrite
// every entry.
func (m *Mat) reshapeDirty(r, c int) {
	n := r * c
	if cap(m.a) < n {
		m.a = make([]complex128, n)
	} else {
		m.a = m.a[:n]
	}
	m.r, m.c = r, c
}

// gram4 is GramInto for a 4×4 m.
func gram4(dst, m *Mat) *Mat {
	ma := m.a[:16:16]
	dst.reshapeDirty(4, 4)
	for i := 0; i < 4; i++ {
		mrow := ma[i*4 : i*4+4]
		var s0, s1, s2, s3 complex128
		for k := 0; k < 4; k++ {
			mik := mrow[k]
			if mik == 0 {
				continue
			}
			s0 += mik * cmplx.Conj(ma[k])
			s1 += mik * cmplx.Conj(ma[4+k])
			s2 += mik * cmplx.Conj(ma[8+k])
			s3 += mik * cmplx.Conj(ma[12+k])
		}
		o := dst.a[i*4 : i*4+4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	}
	return dst
}

// mulHerm4 is MulHermInto for 4×4 m and g.
func mulHerm4(dst, m, g *Mat) *Mat {
	ma := m.a[:16:16]
	ga := g.a[:16:16]
	dst.reshapeDirty(4, 4)
	for i := 0; i < 4; i++ {
		var s0, s1, s2, s3 complex128
		for k := 0; k < 4; k++ {
			hik := cmplx.Conj(ma[k*4+i])
			if hik == 0 {
				continue
			}
			gr := ga[k*4 : k*4+4]
			s0 += hik * gr[0]
			s1 += hik * gr[1]
			s2 += hik * gr[2]
			s3 += hik * gr[3]
		}
		o := dst.a[i*4 : i*4+4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	}
	return dst
}

// inverse4 is the n = 4 Gauss–Jordan of InverseInto: a holds a scratch
// copy of the source (consumed), dst the identity. The normalisation and
// elimination steps update independent entries, so computing the a-row
// before the dst-row (rather than interleaved per column) is bit-identical
// to the generic loop.
func inverse4(dst, a *Mat) error {
	aa := a.a[:16:16]
	da := dst.a[:16:16]
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return ErrSingular
	}
	const tol = 1e-13
	t2 := tol * scale
	t2 *= t2
	for col := 0; col < 4; col++ {
		p := col
		best := abs2(aa[col*4+col])
		for row := col + 1; row < 4; row++ {
			if v := abs2(aa[row*4+col]); v > best {
				p, best = row, v
			}
		}
		if best <= t2 {
			return ErrSingular
		}
		if p != col {
			a.swapRows(p, col)
			dst.swapRows(p, col)
		}
		c4 := col * 4
		piv := aa[c4+col]
		a0, a1, a2, a3 := aa[c4]/piv, aa[c4+1]/piv, aa[c4+2]/piv, aa[c4+3]/piv
		aa[c4], aa[c4+1], aa[c4+2], aa[c4+3] = a0, a1, a2, a3
		d0, d1, d2, d3 := da[c4]/piv, da[c4+1]/piv, da[c4+2]/piv, da[c4+3]/piv
		da[c4], da[c4+1], da[c4+2], da[c4+3] = d0, d1, d2, d3
		for row := 0; row < 4; row++ {
			if row == col {
				continue
			}
			r4 := row * 4
			f := aa[r4+col]
			if f == 0 {
				continue
			}
			aa[r4] -= f * a0
			aa[r4+1] -= f * a1
			aa[r4+2] -= f * a2
			aa[r4+3] -= f * a3
			da[r4] -= f * d0
			da[r4+1] -= f * d1
			da[r4+2] -= f * d2
			da[r4+3] -= f * d3
		}
	}
	return nil
}
