package matrix

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomMat(s *rng.Source, r, c int) *Mat {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, s.ComplexCircular(1))
		}
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 3+4i)
	if m.At(1, 2) != 3+4i {
		t.Errorf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 3+4i {
		t.Errorf("Row = %v", row)
	}
	col := m.Col(2)
	if len(col) != 2 || col[1] != 3+4i {
		t.Errorf("Col = %v", col)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong: %v", m)
	}
}

func TestIdentityMul(t *testing.T) {
	s := rng.New(1)
	a := randomMat(s, 4, 4)
	i4 := Identity(4)
	if !a.Mul(i4).Equalish(a, 1e-12) || !i4.Mul(a).Equalish(a, 1e-12) {
		t.Error("identity multiplication failed")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !a.Mul(b).Equalish(want, 1e-12) {
		t.Errorf("Mul = %v", a.Mul(b))
	}
}

func TestMulComplex(t *testing.T) {
	a := FromRows([][]complex128{{1i}})
	b := FromRows([][]complex128{{1i}})
	if got := a.Mul(b).At(0, 0); got != -1 {
		t.Errorf("i*i = %v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}})
	b := FromRows([][]complex128{{10, 20}})
	if got := a.Add(b); got.At(0, 1) != 22 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got.At(0, 0) != 9 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2i); got.At(0, 0) != 2i {
		t.Errorf("Scale = %v", got)
	}
}

func TestHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 2i}})
	h := a.Hermitian()
	if h.At(0, 0) != 1-1i || h.At(1, 0) != 2 || h.At(0, 1) != 3 || h.At(1, 1) != 4+2i {
		t.Errorf("Hermitian = %v", h)
	}
}

func TestTransposeConj(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2i}})
	tr := a.Transpose()
	if tr.Rows() != 2 || tr.At(1, 0) != 2i {
		t.Errorf("Transpose = %v", tr)
	}
	cj := a.Conj()
	if cj.At(0, 0) != 1-1i {
		t.Errorf("Conj = %v", cj)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]complex128{{3, 4}, {0, 0}})
	if got := a.FrobeniusNorm(); got != 5 {
		t.Errorf("Frobenius = %v", got)
	}
	if got := a.RowPower(0); got != 25 {
		t.Errorf("RowPower = %v", got)
	}
	if got := a.ColPower(1); got != 16 {
		t.Errorf("ColPower = %v", got)
	}
	row, p := a.MaxRowPower()
	if row != 0 || p != 25 {
		t.Errorf("MaxRowPower = %d,%v", row, p)
	}
}

func TestScaleColNormalizeCols(t *testing.T) {
	a := FromRows([][]complex128{{3, 1}, {4, 0}})
	a.ScaleCol(0, 0.5)
	if a.At(0, 0) != 1.5 || a.At(1, 0) != 2 {
		t.Errorf("ScaleCol = %v", a)
	}
	a.NormalizeCols()
	for j := 0; j < 2; j++ {
		if math.Abs(a.ColPower(j)-1) > 1e-12 {
			t.Errorf("col %d power = %v", j, a.ColPower(j))
		}
	}
	// Zero column stays zero.
	z := New(2, 1)
	z.NormalizeCols()
	if z.ColPower(0) != 0 {
		t.Error("zero column should be untouched")
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]complex128{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]complex128{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.Equalish(want, 1e-12) {
		t.Errorf("Inverse = %v", inv)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	z := New(3, 3)
	if _, err := z.Inverse(); err != ErrSingular {
		t.Errorf("zero matrix err = %v", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err != ErrShape {
		t.Error("expected ErrShape")
	}
}

func TestInverseRandomProperty(t *testing.T) {
	s := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + s.Intn(6)
		a := randomMat(s, n, n)
		inv, err := a.Inverse()
		if err != nil {
			continue // singular random draw, astronomically unlikely
		}
		if !a.Mul(inv).Equalish(Identity(n), 1e-8) {
			t.Fatalf("A·A⁻¹ != I for n=%d", n)
		}
		if !inv.Mul(a).Equalish(Identity(n), 1e-8) {
			t.Fatalf("A⁻¹·A != I for n=%d", n)
		}
	}
}

func TestPseudoInverseWide(t *testing.T) {
	// Wide full-rank matrix: H·H† = I.
	s := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		r := 2 + s.Intn(3)
		c := r + s.Intn(3) + 1 // c > r
		h := randomMat(s, r, c)
		pinv, err := h.PseudoInverse()
		if err != nil {
			t.Fatal(err)
		}
		if pinv.Rows() != c || pinv.Cols() != r {
			t.Fatalf("pinv shape %dx%d", pinv.Rows(), pinv.Cols())
		}
		if !h.Mul(pinv).Equalish(Identity(r), 1e-8) {
			t.Fatal("H·H† != I for wide H")
		}
	}
}

func TestPseudoInverseTall(t *testing.T) {
	s := rng.New(8)
	h := randomMat(s, 5, 3)
	pinv, err := h.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	if !pinv.Mul(h).Equalish(Identity(3), 1e-8) {
		t.Error("H†·H != I for tall H")
	}
}

func TestPseudoInverseSquareMatchesInverse(t *testing.T) {
	s := rng.New(9)
	a := randomMat(s, 4, 4)
	pinv, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !pinv.Equalish(inv, 1e-7) {
		t.Error("square pseudoinverse != inverse")
	}
}

// Property: Moore–Penrose conditions H·H†·H = H and H†·H·H† = H†.
func TestPenroseConditionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := rng.New(seed)
		r := 1 + s.Intn(4)
		c := r + s.Intn(4)
		h := randomMat(s, r, c)
		pinv, err := h.PseudoInverse()
		if err != nil {
			return true // skip singular draws
		}
		c1 := h.Mul(pinv).Mul(h).Equalish(h, 1e-7)
		c2 := pinv.Mul(h).Mul(pinv).Equalish(pinv, 1e-7)
		return c1 && c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]complex128{{2, 0}, {0, 4}})
	x, err := a.Solve([]complex128{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Solve = %v", x)
	}
}

func TestQR(t *testing.T) {
	s := rng.New(21)
	a := randomMat(s, 5, 3)
	q, r, err := a.QR()
	if err != nil {
		t.Fatal(err)
	}
	// Q has orthonormal columns.
	if !q.Hermitian().Mul(q).Equalish(Identity(3), 1e-9) {
		t.Error("QᴴQ != I")
	}
	// R upper triangular.
	for i := 1; i < 3; i++ {
		for j := 0; j < i; j++ {
			if cmplx.Abs(r.At(i, j)) > 1e-10 {
				t.Errorf("R not upper triangular at %d,%d", i, j)
			}
		}
	}
	// QR = A.
	if !q.Mul(r).Equalish(a, 1e-9) {
		t.Error("QR != A")
	}
}

func TestQRShapeError(t *testing.T) {
	if _, _, err := New(2, 3).QR(); err != ErrShape {
		t.Error("expected ErrShape for wide QR")
	}
}

func TestRank(t *testing.T) {
	s := rng.New(33)
	full := randomMat(s, 4, 4)
	if got := full.Rank(1e-10); got != 4 {
		t.Errorf("full rank = %d", got)
	}
	// Rank-deficient: duplicate a row.
	def := full.Clone()
	for j := 0; j < 4; j++ {
		def.Set(3, j, def.At(0, j))
	}
	if got := def.Rank(1e-10); got != 3 {
		t.Errorf("deficient rank = %d, want 3", got)
	}
	if got := New(3, 3).Rank(1e-10); got != 0 {
		t.Errorf("zero rank = %d", got)
	}
	// Wide matrix.
	wide := randomMat(s, 2, 5)
	if got := wide.Rank(1e-10); got != 2 {
		t.Errorf("wide rank = %d", got)
	}
}

func TestDiagOffDiag(t *testing.T) {
	a := FromRows([][]complex128{{1, 5}, {0.25, 2}})
	d := a.Diag()
	if d[0] != 1 || d[1] != 2 {
		t.Errorf("Diag = %v", d)
	}
	if got := a.OffDiagMax(); got != 5 {
		t.Errorf("OffDiagMax = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]complex128{{1}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone is shallow")
	}
}

func TestEqualishShapes(t *testing.T) {
	if New(1, 2).Equalish(New(2, 1), 1) {
		t.Error("different shapes must not be Equalish")
	}
}

func TestStringSmoke(t *testing.T) {
	if s := FromRows([][]complex128{{1 + 2i}}).String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkMul4x4(b *testing.B) {
	s := rng.New(1)
	x := randomMat(s, 4, 4)
	y := randomMat(s, 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

// benchMulInto covers the destination-passing multiply at the shapes the
// DES exercises: square 4×4/8×8 and the rectangular 4×8 channel times its
// 8×4 precoder.
func benchMulInto(b *testing.B, r, k, c int) {
	b.Helper()
	s := rng.New(1)
	x := randomMat(s, r, k)
	y := randomMat(s, k, c)
	var dst Mat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(&dst, x, y)
	}
}

func BenchmarkMulInto4x4(b *testing.B)   { benchMulInto(b, 4, 4, 4) }
func BenchmarkMulInto8x8(b *testing.B)   { benchMulInto(b, 8, 8, 8) }
func BenchmarkMulInto4x8x4(b *testing.B) { benchMulInto(b, 4, 8, 4) }

func BenchmarkMulVec8(b *testing.B) {
	s := rng.New(1)
	m := randomMat(s, 8, 8)
	x := make([]complex128, 8)
	for i := range x {
		x[i] = s.ComplexCircular(1)
	}
	dst := make([]complex128, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulVecInto(dst, m, x)
	}
}

func benchGram(b *testing.B, r, c int) {
	b.Helper()
	s := rng.New(1)
	m := randomMat(s, r, c)
	var dst Mat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GramInto(&dst, m)
	}
}

func BenchmarkGram4x4(b *testing.B) { benchGram(b, 4, 4) }
func BenchmarkGram8x8(b *testing.B) { benchGram(b, 8, 8) }
func BenchmarkGram4x8(b *testing.B) { benchGram(b, 4, 8) }

func BenchmarkPseudoInverse4x4(b *testing.B) {
	s := rng.New(1)
	h := randomMat(s, 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.PseudoInverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPseudoInverseInto(b *testing.B, r, c int) {
	b.Helper()
	s := rng.New(1)
	h := randomMat(s, r, c)
	var dst Mat
	var ws Workspace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := PseudoInverseInto(&dst, h, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPseudoInverseInto4x4(b *testing.B) { benchPseudoInverseInto(b, 4, 4) }
func BenchmarkPseudoInverseInto8x8(b *testing.B) { benchPseudoInverseInto(b, 8, 8) }
func BenchmarkPseudoInverseInto4x8(b *testing.B) { benchPseudoInverseInto(b, 4, 8) }

// BenchmarkLUSolve8 measures the factor-once/substitute path that replaced
// the inverse-based Solve.
func BenchmarkLUSolve8(b *testing.B) {
	s := rng.New(1)
	a := randomMat(s, 8, 8)
	rhs := make([]complex128, 8)
	for i := range rhs {
		rhs[i] = s.ComplexCircular(1)
	}
	x := make([]complex128, 8)
	var f LU
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.Factor(a); err != nil {
			b.Fatal(err)
		}
		f.SolveVecInto(x, rhs)
	}
}
