package service

import (
	"repro/internal/store"
	"repro/internal/telemetry"
)

// This file owns the service's Prometheus-grade instruments — the
// telemetry the JSON Metrics() snapshot cannot express: latency
// *distributions* (queue wait, run duration, cache-path latencies) in
// fixed-bucket histograms, plus cumulative counters and scrape-time
// gauges. GET /metrics renders them in exposition format; the JSON
// snapshot stays at /v1/metrics.json.
//
// Naming follows the Prometheus conventions: midas_ prefix, base
// units (seconds), _total on counters. Everything is registered once
// at New; the instruments are atomics, so observing under the service
// mutex costs nanoseconds, while rendering never takes it (the
// GaugeFunc callbacks grab it briefly to snapshot the job table).

// Latency bucket layouts. Submissions answered from the cache or
// coalesced onto an in-flight run complete in microseconds; queue wait
// and engine runs range from sub-millisecond (cached-scale specs) to
// minutes (full paper figures), so both spans are covered by
// exponential buckets — the CDFSketch fixed-bucket discipline, shaped
// for an open-ended range.
var (
	// 1µs … ~4s in 11 buckets: the submit-path latencies.
	submitPathBuckets = telemetry.ExponentialBuckets(1e-6, 4, 11)
	// 0.5ms … ~65s in 18 buckets: queue wait, per-task and whole-run
	// durations.
	runBuckets = telemetry.ExponentialBuckets(0.0005, 2, 18)
)

// instruments bundles every metric the service records.
type instruments struct {
	reg *telemetry.Registry

	submissions *telemetry.CounterVec // outcome: queued|cached|coalesced|rejected
	finished    *telemetry.CounterVec // state: done|failed|cancelled
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	coalesced   *telemetry.Counter

	queueWait    *telemetry.Histogram    // submission -> worker dispatch
	runDuration  *telemetry.HistogramVec // scenario-labelled engine run wall time
	taskSeconds  *telemetry.Histogram    // one expanded run (sweep point × replicate)
	cacheHitLat  *telemetry.Histogram    // Submit answered from cache
	cacheMissLat *telemetry.Histogram    // Submit that had to enqueue
	coalesceLat  *telemetry.Histogram    // Submit attached to an in-flight leader
}

// newInstruments registers the service metrics on reg and wires the
// scrape-time gauges to the service's live state.
func newInstruments(reg *telemetry.Registry, s *Service) *instruments {
	in := &instruments{
		reg: reg,
		submissions: reg.NewCounterVec("midas_submissions_total",
			"Spec submissions by outcome (queued, cached, coalesced, rejected).", "outcome"),
		finished: reg.NewCounterVec("midas_jobs_finished_total",
			"Jobs reaching a terminal state, by state.", "state"),
		cacheHits: reg.NewCounter("midas_cache_hits_total",
			"Submissions answered from the spec-hash result cache."),
		cacheMisses: reg.NewCounter("midas_cache_misses_total",
			"Submissions that missed the result cache."),
		coalesced: reg.NewCounter("midas_coalesced_total",
			"Submissions attached to an identical in-flight run (single-flight)."),
		queueWait: reg.NewHistogram("midas_job_queue_wait_seconds",
			"Time a job waited between submission and worker dispatch.", runBuckets),
		runDuration: reg.NewHistogramVec("midas_job_run_seconds",
			"Wall time of one engine run, by scenario.", runBuckets, "scenario"),
		taskSeconds: reg.NewHistogram("midas_run_task_seconds",
			"Wall time of one expanded run (sweep point × replicate) inside a job.", runBuckets),
		cacheHitLat: reg.NewHistogram("midas_cache_hit_seconds",
			"Submit latency when answered from the result cache.", submitPathBuckets),
		cacheMissLat: reg.NewHistogram("midas_cache_miss_seconds",
			"Submit latency when the spec had to be enqueued for a fresh run.", submitPathBuckets),
		coalesceLat: reg.NewHistogram("midas_coalesce_seconds",
			"Submit latency when attached to an identical in-flight run.", submitPathBuckets),
	}
	reg.NewGaugeFunc("midas_jobs", "Jobs in the retained table, by state.",
		[]string{"state"}, func() []telemetry.GaugeSample {
			m := s.Metrics()
			out := make([]telemetry.GaugeSample, 0, len(m.Jobs))
			for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
				out = append(out, telemetry.GaugeSample{LabelValues: []string{string(st)}, Value: float64(m.Jobs[st])})
			}
			return out
		})
	reg.NewGaugeFunc("midas_queue_depth", "Jobs waiting for a worker.",
		nil, func() []telemetry.GaugeSample {
			s.mu.Lock()
			depth := len(s.queue)
			s.mu.Unlock()
			return []telemetry.GaugeSample{{Value: float64(depth)}}
		})
	reg.NewGaugeFunc("midas_cache_entries", "Result-cache entries resident.",
		nil, func() []telemetry.GaugeSample {
			s.mu.Lock()
			n := s.cache.Len()
			s.mu.Unlock()
			return []telemetry.GaugeSample{{Value: float64(n)}}
		})
	reg.NewGaugeFunc("midas_draining", "1 while Shutdown is draining the pool.",
		nil, func() []telemetry.GaugeSample {
			v := 0.0
			if s.Draining() {
				v = 1
			}
			return []telemetry.GaugeSample{{Value: v}}
		})
	reg.NewGauge("midas_workers", "Size of the job worker pool.").Set(float64(s.cfg.workers()))
	if s.store != nil {
		registerStoreInstruments(reg, s)
	}
	return in
}

// registerStoreInstruments exposes the durable result tier. The store
// keeps its own cumulative tallies (it is self-locking and shared with
// the admission path), so the counters are sampled from Stats() at
// scrape time via NewCounterFunc instead of being mirrored write-
// through.
func registerStoreInstruments(reg *telemetry.Registry, s *Service) {
	sample := func(pick func(store.Stats) float64) func() []telemetry.GaugeSample {
		return func() []telemetry.GaugeSample {
			return []telemetry.GaugeSample{{Value: pick(s.store.Stats())}}
		}
	}
	for _, c := range []struct {
		name, help string
		pick       func(store.Stats) float64
	}{
		{"midas_store_hits_total", "Store-tier lookups that served a verified entry.",
			func(st store.Stats) float64 { return float64(st.Hits) }},
		{"midas_store_misses_total", "Store-tier lookups that found nothing servable.",
			func(st store.Stats) float64 { return float64(st.Misses) }},
		{"midas_store_writes_total", "Results durably persisted to the store.",
			func(st store.Stats) float64 { return float64(st.Writes) }},
		{"midas_store_write_errors_total", "Store persists that failed (result still served from memory).",
			func(st store.Stats) float64 { return float64(st.WriteErrors) }},
		{"midas_store_evictions_total", "Entries evicted to hold the store's byte budget.",
			func(st store.Stats) float64 { return float64(st.Evictions) }},
		{"midas_store_quarantined_total", "Entries that failed verification and were quarantined.",
			func(st store.Stats) float64 { return float64(st.Quarantined) }},
	} {
		reg.NewCounterFunc(c.name, c.help, nil, sample(c.pick))
	}
	reg.NewGaugeFunc("midas_store_entries", "Entries resident in the durable store.",
		nil, sample(func(st store.Stats) float64 { return float64(st.Entries) }))
	reg.NewGaugeFunc("midas_store_bytes", "Bytes resident in the durable store (headers included).",
		nil, sample(func(st store.Stats) float64 { return float64(st.Bytes) }))
}
