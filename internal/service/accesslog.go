package service

import (
	"context"
	"net/http"
	"time"
)

// accessEntry carries per-request fields handlers contribute to the
// access-log line — currently the job ID the job endpoints touch.
type accessEntry struct{ job string }

type accessKey struct{}

// setLogJob records the job ID a handler operated on so the request's
// access-log line can carry it. A no-op when the request did not pass
// through the accessLog middleware (tests driving handlers directly).
func setLogJob(r *http.Request, id string) {
	if e, ok := r.Context().Value(accessKey{}).(*accessEntry); ok && id != "" {
		e.job = id
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog wraps the API mux with one structured log line per
// request: method, path, status, duration, and — when the handler
// touched one — the job ID.
func (s *Service) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := &accessEntry{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), accessKey{}, e)))
		attrs := []any{
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start),
		}
		if e.job != "" {
			attrs = append(attrs, "job", e.job)
		}
		s.log.Info("http request", attrs...)
	})
}
