package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
)

func doJSON(t *testing.T, client *http.Client, method, url, body string) (int, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeStatus(t *testing.T, b []byte) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	return st
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal — the
// same loop a curl client runs.
func pollDone(t *testing.T, client *http.Client, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, b := doJSON(t, client, http.MethodGet, base+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %s", code, b)
		}
		st := decodeStatus(t, b)
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// The full curl session of the README: submit, poll, fetch the result,
// resubmit and observe the cache hit with a byte-identical body.
func TestHTTPJobLifecycleAndCache(t *testing.T) {
	run, calls := countingRun()
	s := New(Config{Workers: 2, Run: run})
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	spec := `{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": 7}`
	code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	st := decodeStatus(t, b)
	if st.ID == "" || st.SpecHash == "" || st.Scenario != "fig12-spatial-reuse" {
		t.Fatalf("submit status %+v", st)
	}
	if final := pollDone(t, c, srv.URL, st.ID); final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	code, cold := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/"+st.ID+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, cold)
	}
	var snap runner.Snapshot
	if err := json.Unmarshal(cold, &snap); err != nil {
		t.Fatalf("result is not a snapshot: %v\n%s", err, cold)
	}
	if snap.Meta.Tool != "midas-serve" || len(snap.Results) != 1 {
		t.Fatalf("snapshot meta %+v, %d results", snap.Meta, len(snap.Results))
	}

	// Resubmit: served from cache, 200 (not 202), byte-identical body.
	code, b = doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if code != http.StatusOK {
		t.Fatalf("cached submit: %d %s", code, b)
	}
	st2 := decodeStatus(t, b)
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("cached submit status %+v", st2)
	}
	_, warm := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/"+st2.ID+"/result", "")
	if string(cold) != string(warm) {
		t.Fatalf("cache hit body differs from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times over the HTTP lifecycle, want 1", n)
	}

	// The JSON metrics snapshot reflects the session.
	code, b = doJSON(t, c, http.MethodGet, srv.URL+"/v1/metrics.json", "")
	if code != http.StatusOK {
		t.Fatalf("metrics.json: %d", code)
	}
	var m Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.Jobs[StateDone] != 2 {
		t.Fatalf("metrics %+v", m)
	}

	// And /metrics serves the same facts as Prometheus exposition.
	resp, err := c.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("exposition content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE midas_job_queue_wait_seconds histogram",
		"# TYPE midas_job_run_seconds histogram",
		"midas_cache_hits_total 1",
		"midas_cache_misses_total 1",
		`midas_submissions_total{outcome="cached"} 1`,
		`midas_jobs_finished_total{state="done"} 1`,
		`midas_jobs{state="done"} 2`,
		"midas_job_queue_wait_seconds_count 1",
		`midas_job_run_seconds_count{scenario="fig12-spatial-reuse"} 1`,
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %q\n%s", want, expo)
		}
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"scenaro": "fig3"}`, http.StatusBadRequest},
		{"no scenario", `{"topologies": 2}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario": "no-such"}`, http.StatusBadRequest},
		{"invalid spec", `{"scenario": "fig12-spatial-reuse", "topologies": -4}`, http.StatusBadRequest},
		// A body past the transport cap is rejected before the JSON
		// decoder materializes it, so a hostile multi-gigabyte value
		// array cannot OOM the server — and the client is told it was
		// size, not syntax.
		{"oversized body", `{"scenario": "fig3", "sweep": {"seed": [` +
			strings.Repeat("1,", maxSpecBytes/2) + `1]}}`, http.StatusRequestEntityTooLarge},
	} {
		if code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", tc.body); code != tc.want {
			t.Errorf("%s: got %d %s, want %d", tc.name, code, b, tc.want)
		}
	}

	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/j424242", ""); code != http.StatusNotFound {
		t.Errorf("unknown job status: %d", code)
	}
	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/j424242/result", ""); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d", code)
	}
	if code, _ := doJSON(t, c, http.MethodDelete, srv.URL+"/v1/jobs/j424242", ""); code != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d", code)
	}

	// In-flight job: result is a conflict; cancel flips it to
	// cancelled; its result is then gone; double cancel conflicts.
	code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", `{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": 9}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	id := decodeStatus(t, b).ID
	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/"+id+"/result", ""); code != http.StatusConflict {
		t.Errorf("result of in-flight job: %d", code)
	}
	if code, b := doJSON(t, c, http.MethodDelete, srv.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, b)
	}
	if st := pollDone(t, c, srv.URL, id); st.State != StateCancelled {
		t.Fatalf("after cancel: %s", st.State)
	}
	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/"+id+"/result", ""); code != http.StatusGone {
		t.Errorf("result of cancelled job: %d", code)
	}
	if code, _ := doJSON(t, c, http.MethodDelete, srv.URL+"/v1/jobs/"+id, ""); code != http.StatusConflict {
		t.Errorf("double cancel: %d", code)
	}
}

func TestHTTPScenariosAndHealth(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	code, b := doJSON(t, c, http.MethodGet, srv.URL+"/v1/scenarios", "")
	if code != http.StatusOK {
		t.Fatalf("scenarios: %d", code)
	}
	var infos []scenarioInfo
	if err := json.Unmarshal(b, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(scenario.Names()) {
		t.Fatalf("listing has %d scenarios, registry has %d", len(infos), len(scenario.Names()))
	}
	byName := map[string]scenarioInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	fig15, ok := byName["fig15-end-to-end"]
	if !ok {
		t.Fatal("fig15-end-to-end missing from listing")
	}
	if len(fig15.Aliases) != 1 || fig15.Aliases[0] != "fig15" {
		t.Fatalf("fig15 aliases %v", fig15.Aliases)
	}
	if byName["fig12-spatial-reuse"].DefaultSpec.Topologies < 1 {
		t.Fatalf("default spec not populated: %+v", byName["fig12-spatial-reuse"])
	}

	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/healthz", ""); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	mustShutdown(t, s)
	if code, _ := doJSON(t, c, http.MethodGet, srv.URL+"/healthz", ""); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d", code)
	}
	if code, _ := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", `{"scenario": "fig3"}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d", code)
	}
}

// The result endpoint's conditional-request contract: the ETag is the
// spec's canonical hash (strong, stable across restarts because the
// rendering is deterministic), and If-None-Match answers 304 with an
// empty body for exact, weak-prefixed, list and wildcard candidates.
func TestHTTPResultETagConditional(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", `{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": 7}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	st := pollDone(t, c, srv.URL, decodeStatus(t, b).ID)
	resultURL := srv.URL + "/v1/jobs/" + st.ID + "/result"

	resp, err := c.Get(resultURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if want := `"` + st.SpecHash + `"`; etag != want {
		t.Fatalf("ETag %q, want the quoted spec hash %q", etag, want)
	}
	if len(body) == 0 {
		t.Fatal("unconditional GET returned no body")
	}

	get := func(ifNoneMatch string) (int, int, string) {
		req, err := http.NewRequest(http.MethodGet, resultURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ifNoneMatch != "" {
			req.Header.Set("If-None-Match", ifNoneMatch)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, len(b), resp.Header.Get("ETag")
	}

	for _, match := range []string{etag, "W/" + etag, `"bogus", ` + etag, "*"} {
		code, n, tag := get(match)
		if code != http.StatusNotModified || n != 0 {
			t.Errorf("If-None-Match %q: got %d with %d body bytes, want body-less 304", match, code, n)
		}
		if tag != etag {
			t.Errorf("If-None-Match %q: 304 lost the ETag header (%q)", match, tag)
		}
	}
	for _, miss := range []string{`"` + strings.Repeat("0", 64) + `"`, st.SpecHash /* unquoted */} {
		if code, n, _ := get(miss); code != http.StatusOK || n == 0 {
			t.Errorf("If-None-Match %q: got %d with %d body bytes, want full 200", miss, code, n)
		}
	}
}

// Queue saturation is transient backpressure: the submission gets a
// 503 with Retry-After, and /healthz stays 200 but says "busy" —
// distinct from draining's terminal 503.
func TestHTTPQueueFullRetryAfterAndBusyHealth(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, QueueDepth: 1, Run: run})
	defer mustShutdown(t, s)
	defer close(release) // LIFO: unblock the stub before the drain
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	submit := func(seed string) (int, http.Header, []byte) {
		resp, err := c.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": `+seed+`}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, b
	}

	// First job occupies the single worker...
	code, _, b := submit("1")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", code, b)
	}
	waitState(t, s, decodeStatus(t, b).ID, StateRunning)
	// ...second fills the depth-1 queue...
	if code, _, b = submit("2"); code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", code, b)
	}

	// ...so the service is saturated: alive (200) but busy.
	code, body := doJSON(t, c, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"busy"`) {
		t.Errorf("healthz at saturation: %d %s, want 200 busy", code, body)
	}

	// ...and a third distinct spec is rejected with retry guidance. No
	// run has completed yet, so the hint falls back to the eager 1s.
	code, hdr, b := submit("3")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit at queue-full: %d %s", code, b)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Errorf("queue-full Retry-After before any observed run = %q, want \"1\"", ra)
	}
	if !strings.Contains(string(b), "queue full") {
		t.Errorf("queue-full body %s", b)
	}

	// Once run time has been observed, the hint tracks the backlog's
	// drain estimate instead of the old hardcoded constant: mean 5s ×
	// 1 queued / 1 worker = 5.
	s.observeRunTime(5.0)
	if code, hdr, b = submit("4"); code != http.StatusServiceUnavailable {
		t.Fatalf("submit at queue-full: %d %s", code, b)
	}
	if ra := hdr.Get("Retry-After"); ra != "5" {
		t.Errorf("queue-full Retry-After with 5s observed runs = %q, want \"5\"", ra)
	}
}

// The serve-smoke contract, in-process: the HTTP-served snapshot for a
// spec equals midas-sim's -format json output for the same spec except
// for the meta tool name.
func TestHTTPServedResultMatchesDirectRun(t *testing.T) {
	s := New(Config{Workers: 2}) // real engine
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	spec := scenario.Spec{Scenario: "fig3", Topologies: 2, Seed: 11}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs", string(body))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	st := pollDone(t, c, srv.URL, decodeStatus(t, b).ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	_, served := doJSON(t, c, http.MethodGet, srv.URL+"/v1/jobs/"+st.ID+"/result", "")

	sc, err := scenario.Find("fig3")
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := scenario.Resolve(sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.RunResolved(context.Background(), sc, resolved, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.RenderJSON(resolved.SinkMeta("midas-serve"), res.RunnerResult())
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != string(want) {
		t.Fatalf("served snapshot diverges from the direct render:\nserved: %s\nwant: %s", served, want)
	}
}
