package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Integration tests for the durable result tier (Config.Store): the
// two-tier read-through path, persist-before-done, restart survival,
// and the corruption/fault behaviors the e2e (scripts/drain-e2e.sh)
// proves against the real binary.

// openStore opens a store on dir and registers its Close.
func openStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// The restart-survival pin: a result computed by one Service is served
// by the next one — same store dir, fresh process state — from the
// disk tier, without an engine run, and promoted into memory for the
// submission after that.
func TestStoreRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	spec := specFor(41)

	run1, calls1 := countingRun()
	s1 := New(Config{Workers: 2, Run: run1, Store: openStore(t, store.Config{Dir: dir})})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, st.ID)
	want := renderJob(t, s1, st.ID)
	mustShutdown(t, s1)
	if calls1.Load() != 1 {
		t.Fatalf("cold run calls = %d", calls1.Load())
	}

	// "Restart": a fresh Service over a fresh Store on the same dir.
	run2, calls2 := countingRun()
	s2 := New(Config{Workers: 2, Run: run2, Store: openStore(t, store.Config{Dir: dir})})
	defer mustShutdown(t, s2)

	st2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.CacheTier != "store" {
		t.Fatalf("restarted submission cached=%v tier=%q, want store hit", st2.Cached, st2.CacheTier)
	}
	if calls2.Load() != 0 {
		t.Fatalf("engine re-ran after restart (calls=%d)", calls2.Load())
	}
	if got := renderJob(t, s2, st2.ID); string(got) != string(want) {
		t.Fatalf("restart-served result not byte-identical:\n%s\nvs\n%s", got, want)
	}

	// The store hit promoted the result into the memory LRU.
	st3, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached || st3.CacheTier != "memory" {
		t.Fatalf("promotion missing: cached=%v tier=%q", st3.Cached, st3.CacheTier)
	}
	m := s2.Metrics()
	if m.Store == nil || m.Store.Hits != 1 || m.CacheHits != 2 {
		t.Fatalf("metrics after restart: %+v store %+v", m, m.Store)
	}
}

// Same survival without the first store ever being Closed — the
// in-process equivalent of kill -9: persist-before-done plus the
// warm scan alone must carry the result across.
func TestStoreSurvivalWithoutClose(t *testing.T) {
	dir := t.TempDir()
	spec := specFor(43)

	run1, _ := countingRun()
	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Run: run1, Store: st1})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, st.ID)
	want := renderJob(t, s1, st.ID)
	mustShutdown(t, s1)
	// No st1.Close(): the crashed process never got to it.

	run2, calls2 := countingRun()
	s2 := New(Config{Workers: 1, Run: run2, Store: openStore(t, store.Config{Dir: dir})})
	defer mustShutdown(t, s2)
	st2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.CacheTier != "store" || calls2.Load() != 0 {
		t.Fatalf("result lost without Close: cached=%v tier=%q calls=%d",
			st2.Cached, st2.CacheTier, calls2.Load())
	}
	if got := renderJob(t, s2, st2.ID); string(got) != string(want) {
		t.Fatal("crash-survived result not byte-identical")
	}
}

// A corrupted store entry (bit flip that preserves length, so the warm
// scan admits it) must be quarantined at read time and the spec
// recomputed — never served.
func TestCorruptStoreEntryRecomputedNotServed(t *testing.T) {
	dir := t.TempDir()
	spec := specFor(47)
	hash := mustResolveHash(t, spec)

	run1, _ := countingRun()
	s1 := New(Config{Workers: 1, Run: run1, Store: openStore(t, store.Config{Dir: dir})})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, st.ID)
	mustShutdown(t, s1)

	path := filepath.Join(dir, store.EntryRel(hash))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("entry file missing after persist: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	run2, calls2 := countingRun()
	s2 := New(Config{Workers: 1, Run: run2, Store: openStore(t, store.Config{Dir: dir})})
	defer mustShutdown(t, s2)
	st2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	waitDone(t, s2, st2.ID)
	if calls2.Load() != 1 {
		t.Fatalf("corrupt entry did not trigger a recompute (calls=%d)", calls2.Load())
	}
	m := s2.Metrics()
	if m.Store == nil || m.Store.Quarantined != 1 {
		t.Fatalf("corruption not quarantined: %+v", m.Store)
	}
}

// An entry that verifies at the byte level but does not decode as a
// result (wrong producer, future format) is quarantined by the service
// and recomputed.
func TestUndecodableStoreEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	spec := specFor(53)
	hash := mustResolveHash(t, spec)

	st := openStore(t, store.Config{Dir: dir})
	if err := st.Put(hash, []byte("not a result {")); err != nil {
		t.Fatal(err)
	}
	run, calls := countingRun()
	s := New(Config{Workers: 1, Run: run, Store: st})
	defer mustShutdown(t, s)

	js, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if js.Cached {
		t.Fatal("undecodable entry served")
	}
	waitDone(t, s, js.ID)
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
	m := s.Metrics()
	if m.Store == nil || m.Store.Quarantined != 1 || m.Store.Hits != 1 {
		// The store itself saw a byte-valid hit; the service demoted it.
		t.Fatalf("unexpected store stats: %+v", m.Store)
	}
	// The recomputed result must have replaced the quarantined bytes.
	if _, ok := st.Get(hash); !ok {
		t.Fatal("recomputed result not persisted over the quarantined entry")
	}
}

// A store write failure must not fail the job: the result still
// completes and serves from memory, and the error is only a counter.
func TestStoreWriteFailureDoesNotFailJob(t *testing.T) {
	boom := errors.New("injected disk failure")
	st := openStore(t, store.Config{
		Dir:    t.TempDir(),
		Faults: &store.FaultFS{WriteFile: func(string) error { return boom }},
	})
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run, Store: st})
	defer mustShutdown(t, s)

	js, err := s.Submit(specFor(59))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, s, js.ID); got.State != StateDone {
		t.Fatalf("job ended %s (%s) under store write failure", got.State, got.Error)
	}
	if body := renderJob(t, s, js.ID); len(body) == 0 {
		t.Fatal("no result body")
	}
	m := s.Metrics()
	if m.Store == nil || m.Store.WriteErrors != 1 || m.Store.Writes != 0 {
		t.Fatalf("write failure not counted: %+v", m.Store)
	}
}

// mustResolveHash computes the canonical hash the service will use for
// a submitted spec (resolve against the registry first — the hash
// covers the resolved spec, not the overrides).
func mustResolveHash(t *testing.T, overrides scenario.Spec) string {
	t.Helper()
	sc, err := scenario.Find(overrides.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := scenario.Resolve(sc, overrides)
	if err != nil {
		t.Fatal(err)
	}
	return resolved.CanonicalHash()
}
