package service

import (
	"container/list"
	"fmt"

	"repro/internal/scenario"
)

// resultCache is the memory tier of the content-addressed result
// cache: completed results keyed by the canonical hash of the resolved
// spec that produced them (scenario.Spec.CanonicalHash). Because every
// run is deterministic in its resolved spec, a hit is exactly the
// result a fresh run would compute, so re-submitting an identical spec
// never re-runs the engine. The cache is bounded by entry count with
// LRU eviction; both hits (lookup) and insertions (Put) refresh
// recency. The durable tier below it is internal/store, consulted by
// the Service's admission path when this one misses.
//
// resultCache is not self-locking: the owning Service serializes all
// access under its own mutex, which also keeps the hit/miss counters
// consistent with the job bookkeeping they are reported next to. The
// counters span both tiers — they tally submissions answered from
// *any* cache versus submissions that needed an engine run (or an
// in-flight one to coalesce onto), which is the number capacity
// planning wants — and are incremented by the admission logic, not
// here, so the two-pass memory/store lookup counts each submission
// exactly once.
type resultCache struct {
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element in ll
	hits    uint64
	misses  uint64
}

// cacheEntry is one ll element's payload. The resolved spec rides next
// to the result so a hash-addressed lookup (GET /v1/results/{hash})
// can render the full body — meta block included — without a job
// record for the spec.
type cacheEntry struct {
	hash   string
	spec   scenario.Spec
	result scenario.Result
}

// newResultCache builds a cache bounded to max entries; max < 1
// disables caching (every Get misses, Put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// lookup returns the cached result and resolved spec for hash,
// refreshing its recency. It does not touch the hit/miss counters —
// the admission path owns those (see the type comment).
func (c *resultCache) lookup(hash string) (scenario.Result, scenario.Spec, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return scenario.Result{}, scenario.Spec{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.result, e.spec, true
}

// Put stores a completed result (and the resolved spec that produced
// it) under its spec hash, evicting the least-recently-used entry when
// the bound is exceeded. Re-putting an existing hash refreshes recency
// (the result is identical by construction — same hash, deterministic
// engine).
func (c *resultCache) Put(hash string, spec scenario.Spec, res scenario.Result) {
	if c.max < 1 {
		return
	}
	if el, ok := c.entries[hash]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.entries[hash] = c.ll.PushFront(&cacheEntry{hash: hash, spec: spec, result: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int { return c.ll.Len() }

// encodeResult is the store-tier wire format: the self-contained
// scenario.ResultEnvelope (resolved spec + result, deterministic
// indented JSON), so the bytes on disk are human-inspectable, decode
// back to a Result that renders byte-identically to the run that
// produced it, and carry enough context for a process that never saw
// the submission — a restarted server, a sibling coordinator, the
// /v1/results/{hash} endpoint — to render the full response body.
func encodeResult(spec scenario.Spec, res scenario.Result) ([]byte, error) {
	return scenario.EncodeResultEnvelope(spec, res)
}

// decodeResult inverts encodeResult and pins the envelope to its
// content address: the embedded spec must hash to the address the
// payload was stored under. Pre-envelope entries (a bare Result) fail
// here; the caller quarantines them and recomputes — the documented
// migration cost, one re-run per legacy entry.
func decodeResult(hash string, payload []byte) (scenario.Spec, scenario.Result, error) {
	env, err := scenario.DecodeResultEnvelope(payload)
	if err != nil {
		return scenario.Spec{}, scenario.Result{}, err
	}
	if got := env.Spec.CanonicalHash(); got != hash {
		return scenario.Spec{}, scenario.Result{}, fmt.Errorf(
			"service: envelope spec hashes to %s, stored under %s", got, hash)
	}
	return env.Spec, env.Result, nil
}
