package service

import (
	"container/list"

	"repro/internal/scenario"
)

// resultCache is the content-addressed result store: completed results
// keyed by the canonical hash of the resolved spec that produced them
// (scenario.Spec.CanonicalHash). Because every run is deterministic in
// its resolved spec, a hit is exactly the result a fresh run would
// compute, so re-submitting an identical spec never re-runs the
// engine. The cache is bounded by entry count with LRU eviction; both
// hits (Get) and insertions (Put) refresh recency.
//
// resultCache is not self-locking: the owning Service serializes all
// access under its own mutex, which also keeps the hit/miss counters
// consistent with the job bookkeeping they are reported next to.
type resultCache struct {
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element in ll
	hits    uint64
	misses  uint64
}

// cacheEntry is one ll element's payload.
type cacheEntry struct {
	hash   string
	result scenario.Result
}

// newResultCache builds a cache bounded to max entries; max < 1
// disables caching (every Get misses, Put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for hash, refreshing its recency, and
// tallies the lookup as a hit or miss.
func (c *resultCache) Get(hash string) (scenario.Result, bool) {
	el, ok := c.entries[hash]
	if !ok {
		c.misses++
		return scenario.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a completed result under its spec hash, evicting the
// least-recently-used entry when the bound is exceeded. Re-putting an
// existing hash refreshes recency (the result is identical by
// construction — same hash, deterministic engine).
func (c *resultCache) Put(hash string, res scenario.Result) {
	if c.max < 1 {
		return
	}
	if el, ok := c.entries[hash]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.entries[hash] = c.ll.PushFront(&cacheEntry{hash: hash, result: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int { return c.ll.Len() }
