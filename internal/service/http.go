package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/store"
)

// This file is the HTTP face of the Service — the API cmd/midas-serve
// exposes:
//
//	POST   /v1/jobs             submit a spec (midas-sim -spec schema)
//	GET    /v1/jobs/{id}        job status + progress
//	GET    /v1/jobs/{id}/result rendered result snapshot (JSON sink)
//	GET    /v1/results/{hash}   content-addressed result snapshot
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/scenarios        registry listing with default specs
//	GET    /v1/metrics.json     JSON metrics snapshot (jobs by state, cache hit rate, queue depth)
//	GET    /healthz             liveness (503 "draining" while draining, 200 "busy" at queue saturation)
//	GET    /metrics             Prometheus text exposition (counters, gauges, latency histograms)
//
// Results are rendered through the same runner.Meta + JSON sink path
// as midas-sim -format json, so an HTTP-served snapshot differs from
// the CLI's for the same spec only in the meta tool name — the
// property `make serve-smoke` pins end to end.
//
// Every non-2xx response carries the unified api.Error envelope:
// {"error": ..., "code": ..., "retry_after_seconds": N}.

// scenarioInfo is one row of GET /v1/scenarios.
type scenarioInfo struct {
	Name        string        `json:"name"`
	Aliases     []string      `json:"aliases,omitempty"`
	About       string        `json:"about,omitempty"`
	DefaultSpec scenario.Spec `json:"default_spec"`
}

// Handler builds the HTTP API over the service, wrapped in the
// access-log middleware (one structured line per request).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResultByHash)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.accessLog(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing to do about a broken client connection
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	api.Write(w, status, code, err.Error())
}

// maxSpecBytes bounds a submitted spec body. A valid spec is a few
// hundred bytes; the cap only exists so a hostile multi-gigabyte value
// array is rejected at the transport instead of being materialized by
// the JSON decoder before Validate's expansion cap can run.
const maxSpecBytes = 1 << 20

// handleSubmit decodes the request body as a spec (the midas-sim -spec
// schema, scenario named by its "scenario" field) and submits it. A
// job answered from the spec-hash cache returns 200 with its terminal
// status; a queued job returns 202 Accepted.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := scenario.DecodeSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "spec_too_large", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Transient backpressure, worth retrying shortly — unlike
		// draining, where this process will never accept the job. The
		// hint tracks how long the queue actually takes to drain
		// (observed run time × depth / workers), so honoring clients
		// come back when a slot is plausible instead of hammering. The
		// hint rides both the Retry-After header and the envelope's
		// retry_after_seconds (api.WriteRetry), so clients behind
		// header-stripping proxies still see it.
		api.WriteRetry(w, http.StatusServiceUnavailable, "queue_full", err.Error(), s.RetryAfterHint())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", err)
		return
	case err != nil:
		// Unknown scenario, ignored-knob override, validation failure:
		// the request itself is wrong.
		writeError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	setLogJob(r, st.ID)
	if st.State == StateDone {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	setLogJob(r, r.PathValue("id"))
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown_job", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult renders a done job's result exactly as midas-sim
// -format json would: the resolved spec's meta block (tool
// "midas-serve") plus the result through the JSON sink. The rendering
// is deterministic, so cached and cold runs of one spec serve
// byte-identical bodies — which also makes the spec's canonical hash a
// valid strong ETag for the body: a client that saved it can revalidate
// with If-None-Match and get a body-less 304 across restarts, deploys,
// and any server that ever computed the same spec.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setLogJob(r, id)
	res, spec, err := s.Result(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown_job", err)
		return
	case errors.Is(err, ErrNotFinished):
		writeError(w, http.StatusConflict, "not_finished", err)
		return
	case err != nil:
		// Failed or cancelled: the job is terminal but has no result.
		writeError(w, http.StatusGone, "job_failed", err)
		return
	}
	s.writeRenderedResult(w, r, spec, res)
}

// handleResultByHash serves a completed result by its spec's canonical
// hash — no job id needed, which is what makes results portable across
// processes: any server sharing the durable store (or its backend, on
// a shared mount) serves a result computed by any other. The body is
// rendered by the identical path as GET /v1/jobs/{id}/result, so for a
// spec that leaves "parallelism" unset (it is excluded from the hash
// and canonicalized to the host default at render time) the two
// endpoints serve byte-identical bodies — same ETag, same
// If-None-Match revalidation.
func (s *Service) handleResultByHash(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !store.ValidHash(hash) {
		api.Write(w, http.StatusBadRequest, "bad_hash",
			"service: result address must be 64 lowercase hex characters (a spec's canonical sha256)")
		return
	}
	res, spec, err := s.ResultByHash(hash)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown_result", err)
		return
	}
	s.writeRenderedResult(w, r, spec, res)
}

// writeRenderedResult renders (spec, result) exactly as midas-sim
// -format json would — meta block plus the JSON sink — with the spec's
// canonical hash as a strong ETag. The rendering is deterministic, so
// cached, cold, restarted and sibling-process serves of one spec emit
// byte-identical bodies, and If-None-Match revalidation works across
// all of them.
func (s *Service) writeRenderedResult(w http.ResponseWriter, r *http.Request, spec scenario.Spec, res scenario.Result) {
	etag := `"` + spec.CanonicalHash() + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := runner.RenderJSON(spec.SinkMeta("midas-serve"), res.RunnerResult())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// etagMatches implements If-None-Match matching for one strong ETag: a
// comma-separated candidate list, "*" matching anything, and W/
// weak-comparison prefixes ignored (weak comparison is allowed for
// If-None-Match, RFC 9110 §13.1.2).
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	setLogJob(r, r.PathValue("id"))
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown_job", err)
		return
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, "already_finished", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	names := scenario.Names()
	infos := make([]scenarioInfo, 0, len(names))
	for _, name := range names {
		sc, ok := scenario.Get(name)
		if !ok {
			continue
		}
		info := scenarioInfo{Name: name, DefaultSpec: sc.DefaultSpec()}
		if a, ok := sc.(scenario.About); ok {
			info.About = a.About()
		}
		if al, ok := sc.(scenario.Aliaser); ok {
			info.Aliases = al.Aliases()
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleHealth distinguishes the two unhappy states a balancer treats
// differently: draining is terminal for this process (503 — route
// elsewhere, permanently), queue saturation is transient backpressure
// (200 "busy" — the process is alive and will recover; submissions
// meanwhile get 503 + Retry-After).
func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.QueueSaturated():
		writeJSON(w, http.StatusOK, map[string]string{"status": "busy"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

// handleMetricsJSON serves the legacy JSON snapshot — the same value
// Metrics() returns, for scripts that want counts without parsing the
// Prometheus exposition.
func (s *Service) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format 0.0.4.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.reg.Render(w) // nothing to do about a broken client connection
}
