package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/store"
)

// GET /v1/results/{hash}: the content-addressed result endpoint. Its
// body must be byte-identical to the job-result body for the same spec
// (same render path, same ETag), it must serve results across the
// memory and store tiers, and — the portability claim — a process that
// never saw the submission must serve it from a shared store.

func getWithHeader(t *testing.T, c *http.Client, url, hdr, val string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != "" {
		req.Header.Set(hdr, val)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestHTTPResultByHash(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	code, b := doJSON(t, c, http.MethodPost, srv.URL+"/v1/jobs",
		`{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": 31}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	st := pollDone(t, c, srv.URL, decodeStatus(t, b).ID)

	// The two endpoints render byte-identical bodies under one ETag
	// (the spec leaves parallelism unset, so the render canonicalizes
	// identically on both paths).
	jobResp, jobBody := getWithHeader(t, c, srv.URL+"/v1/jobs/"+st.ID+"/result", "", "")
	hashResp, hashBody := getWithHeader(t, c, srv.URL+"/v1/results/"+st.SpecHash, "", "")
	if hashResp.StatusCode != http.StatusOK {
		t.Fatalf("result by hash: %d %s", hashResp.StatusCode, hashBody)
	}
	if string(jobBody) != string(hashBody) {
		t.Fatalf("hash-addressed body differs from job body:\njob:  %s\nhash: %s", jobBody, hashBody)
	}
	etag := hashResp.Header.Get("ETag")
	if want := `"` + st.SpecHash + `"`; etag != want {
		t.Fatalf("hash-endpoint ETag %q, want %q", etag, want)
	}
	if jobResp.Header.Get("ETag") != etag {
		t.Fatalf("job and hash endpoints disagree on ETag: %q vs %q", jobResp.Header.Get("ETag"), etag)
	}

	// If-None-Match revalidation works here exactly as on the job path.
	resp, body := getWithHeader(t, c, srv.URL+"/v1/results/"+st.SpecHash, "If-None-Match", etag)
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("revalidation: got %d with %d body bytes, want body-less 304", resp.StatusCode, len(body))
	}
}

func TestHTTPResultByHashErrors(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	for _, tc := range []struct {
		name, hash, code string
		status           int
	}{
		{"not hex", "zz" + strings.Repeat("0", 62), "bad_hash", http.StatusBadRequest},
		{"too short", "abcd", "bad_hash", http.StatusBadRequest},
		{"uppercase", strings.Repeat("A", 64), "bad_hash", http.StatusBadRequest},
		{"valid but unknown", strings.Repeat("a", 64), "unknown_result", http.StatusNotFound},
	} {
		status, b := doJSON(t, c, http.MethodGet, srv.URL+"/v1/results/"+tc.hash, "")
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, b)
			continue
		}
		var e api.Error
		if err := json.Unmarshal(b, &e); err != nil {
			t.Errorf("%s: non-envelope error body %s", tc.name, b)
			continue
		}
		if e.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.code)
		}
	}
}

// TestHTTPResultByHashAcrossProcesses is the portability proof: a
// second service process that never saw the submission serves the
// result by hash from the shared durable store, byte-identical to the
// original serve — the property that lets any coordinator on a shared
// mount answer for any other.
func TestHTTPResultByHashAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	run, calls := countingRun()

	// Process one computes and persists.
	s1 := New(Config{Workers: 1, Run: run, Store: openStore(t, store.Config{Dir: dir})})
	srv1 := httptest.NewServer(s1.Handler())
	c := srv1.Client()
	code, b := doJSON(t, c, http.MethodPost, srv1.URL+"/v1/jobs",
		`{"scenario": "fig12-spatial-reuse", "topologies": 2, "seed": 41}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	st := pollDone(t, c, srv1.URL, decodeStatus(t, b).ID)
	_, original := doJSON(t, c, http.MethodGet, srv1.URL+"/v1/jobs/"+st.ID+"/result", "")
	srv1.Close()
	mustShutdown(t, s1)

	// Process two opens the same store directory cold: no jobs, no
	// memory cache — only the store tier can answer.
	s2 := New(Config{Workers: 1, Run: run, Store: openStore(t, store.Config{Dir: dir})})
	defer mustShutdown(t, s2)
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()

	status, served := doJSON(t, srv2.Client(), http.MethodGet, srv2.URL+"/v1/results/"+st.SpecHash, "")
	if status != http.StatusOK {
		t.Fatalf("result by hash on sibling process: %d %s", status, served)
	}
	if string(served) != string(original) {
		t.Fatalf("sibling-served body differs:\noriginal: %s\nsibling:  %s", original, served)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times across both processes, want 1", n)
	}
}
