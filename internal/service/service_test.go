package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// specFor is a cheap distinct spec per seed: the scenario is real (so
// Find/Resolve exercise the registry) but tests that should not
// simulate substitute Config.Run.
func specFor(seed int64) scenario.Spec {
	return scenario.Spec{Scenario: "fig12-spatial-reuse", Topologies: 2, Seed: seed}
}

// fixedResult is what the stub engine "computes".
func fixedResult(spec scenario.Spec) scenario.Result {
	r := scenario.Result{Scenario: spec.Scenario}
	r.AddMetric("seed echo", float64(spec.Seed), "", "")
	r.Series = append(r.Series, runner.Series{Label: "cap", Unit: "bit/s/Hz", Values: []float64{1, 2, 3}})
	return r
}

// countingRun returns a RunFunc that tallies engine invocations and
// reports full progress, plus the counter.
func countingRun() (RunFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(_ context.Context, _ scenario.Scenario, spec scenario.Spec, opts scenario.RunOptions) (scenario.Result, error) {
		calls.Add(1)
		if opts.OnProgress != nil {
			opts.OnProgress(spec.ExpandedRuns(), spec.ExpandedRuns())
		}
		return fixedResult(spec), nil
	}, &calls
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Service, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitDone(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

func mustShutdown(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func renderJob(t *testing.T, s *Service, id string) []byte {
	t.Helper()
	res, spec, err := s.Result(id)
	if err != nil {
		t.Fatalf("Result(%s): %v", id, err)
	}
	body, err := runner.RenderJSON(spec.SinkMeta("midas-serve"), res.RunnerResult())
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return body
}

// The acceptance-criteria pin: submitting one spec twice runs the
// engine exactly once; the second job is born done from the cache and
// renders byte-identical JSON.
func TestResubmitIdenticalSpecRunsEngineOnce(t *testing.T) {
	run, calls := countingRun()
	s := New(Config{Workers: 2, Run: run})
	defer mustShutdown(t, s)

	first, err := s.Submit(specFor(7))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatalf("cold submission marked cached")
	}
	st := waitDone(t, s, first.ID)
	if st.State != StateDone {
		t.Fatalf("cold job ended %s (%s)", st.State, st.Error)
	}
	if st.Progress.Completed != st.Progress.Total || st.Progress.Total < 1 {
		t.Fatalf("done job progress %+v", st.Progress)
	}
	cold := renderJob(t, s, first.ID)

	second, err := s.Submit(specFor(7))
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.SpecHash != first.SpecHash {
		t.Fatalf("identical specs got different hashes: %s vs %s", first.SpecHash, second.SpecHash)
	}
	warm := renderJob(t, s, second.ID)
	if string(cold) != string(warm) {
		t.Fatalf("cache hit is not byte-identical to the cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times for two identical submissions, want exactly 1", n)
	}

	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", m.CacheHitRate)
	}
	if m.ScenarioRuns["fig12-spatial-reuse"] != 1 {
		t.Fatalf("scenario run counts %v", m.ScenarioRuns)
	}
	if m.Jobs[StateDone] != 2 {
		t.Fatalf("jobs by state %v, want 2 done", m.Jobs)
	}
}

// The cache is addressed by the *resolved* spec: restating a scenario
// default is the same computation; changing the seed is not.
func TestCacheKeyedOnResolvedSpec(t *testing.T) {
	run, calls := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	a, err := s.Submit(specFor(5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, a.ID)

	sc, _ := scenario.Find("fig12-spatial-reuse")
	withDefault := specFor(5)
	withDefault.Clients = sc.DefaultSpec().Clients
	b, err := s.Submit(withDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Fatalf("restating the default clients count missed the cache")
	}

	c, err := s.Submit(specFor(6))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, c.ID)
	if n := calls.Load(); n != 2 {
		t.Fatalf("engine ran %d times, want 2 (seed 5 once, seed 6 once)", n)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	run, calls := countingRun()
	s := New(Config{Workers: 1, CacheEntries: 2, Run: run})
	defer mustShutdown(t, s)

	submitAndWait := func(seed int64) {
		t.Helper()
		st, err := s.Submit(specFor(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, st.ID)
	}
	submitAndWait(1)
	submitAndWait(2)
	submitAndWait(3) // evicts seed 1 (LRU)
	if n := calls.Load(); n != 3 {
		t.Fatalf("setup ran engine %d times, want 3", n)
	}

	submitAndWait(1) // evicted: must re-run (and evict seed 2)
	if n := calls.Load(); n != 4 {
		t.Fatalf("evicted spec did not re-run (calls=%d)", n)
	}
	st, err := s.Submit(specFor(3)) // still resident
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatalf("recently used entry was evicted")
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("resident spec re-ran (calls=%d)", n)
	}
}

// resultCache unit behavior the integration tests do not pin: hit
// recency refresh, duplicate puts, and the disabled (max < 1) mode.
func TestResultCacheUnit(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", scenario.Spec{Scenario: "a"}, scenario.Result{Scenario: "a"})
	c.Put("b", scenario.Spec{Scenario: "b"}, scenario.Result{Scenario: "b"})
	if _, spec, ok := c.lookup("a"); !ok || spec.Scenario != "a" { // refreshes a's recency
		t.Fatal("a missing (or lost its spec)")
	}
	c.Put("c", scenario.Spec{Scenario: "c"}, scenario.Result{Scenario: "c"}) // must evict b, not a
	if _, _, ok := c.lookup("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, _, ok := c.lookup("a"); !ok {
		t.Fatal("a evicted despite recent hit")
	}
	c.Put("a", scenario.Spec{Scenario: "a"}, scenario.Result{Scenario: "a"}) // duplicate put: no growth
	if c.Len() != 2 {
		t.Fatalf("len %d after duplicate put, want 2", c.Len())
	}

	off := newResultCache(0)
	off.Put("x", scenario.Spec{}, scenario.Result{})
	if _, _, ok := off.lookup("x"); ok || off.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// Concurrent submissions are bounded by the worker pool: with 2
// workers, at most 2 jobs run at once no matter how many are queued.
func TestConcurrentSubmissionsBoundedByPool(t *testing.T) {
	const workers, jobs = 2, 6
	release := make(chan struct{})
	var current, peak atomic.Int64
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		cur := current.Add(1)
		defer current.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: workers, Run: run})
	defer mustShutdown(t, s)

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		st, err := s.Submit(specFor(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, s, ids[0], StateRunning)
	waitState(t, s, ids[1], StateRunning)
	if m := s.Metrics(); m.Jobs[StateRunning] != workers || m.Jobs[StateQueued] != jobs-workers {
		t.Fatalf("jobs by state %v, want %d running / %d queued", m.Jobs, workers, jobs-workers)
	}
	close(release)
	for _, id := range ids {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s ended %s", id, st.State)
		}
	}
	if p := peak.Load(); p != workers {
		t.Fatalf("peak concurrency %d, want exactly %d", p, workers)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	first, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning)
	second, err := s.Submit(specFor(2))
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if _, _, err := s.Result(second.ID); err == nil {
		t.Fatal("cancelled job served a result")
	}
	// Double-cancel is an explicit error.
	if _, err := s.Cancel(second.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("double cancel: %v", err)
	}

	close(release)
	if st := waitDone(t, s, first.ID); st.State != StateDone {
		t.Fatalf("first job ended %s", st.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, _ scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		close(started)
		<-ctx.Done() // the engine's context-cancellation path
		return scenario.Result{}, ctx.Err()
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	st, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("running job after cancel ended %s", final.State)
	}
}

func TestFailedJob(t *testing.T) {
	boom := errors.New("boom")
	run := func(context.Context, scenario.Scenario, scenario.Spec, scenario.RunOptions) (scenario.Result, error) {
		return scenario.Result{}, boom
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	st, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("failed job: %+v", final)
	}
	if _, _, err := s.Result(st.ID); err == nil || !errors.Is(err, boom) {
		t.Fatalf("Result of failed job: %v", err)
	}
}

func TestSubmitRejections(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, QueueDepth: 1, Run: run})
	defer mustShutdown(t, s)
	defer close(release) // LIFO: unblock the pool before the drain

	if _, err := s.Submit(scenario.Spec{}); err == nil {
		t.Fatal("submit with no scenario name accepted")
	}
	if _, err := s.Submit(scenario.Spec{Scenario: "no-such"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := s.Submit(scenario.Spec{Scenario: "fig12-spatial-reuse", Topologies: -1}); err == nil {
		t.Fatal("invalid spec accepted")
	}

	first, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning) // popped: the queue slot is free
	if _, err := s.Submit(specFor(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specFor(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v", err)
	}
	if _, err := s.Job("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job id: %v", err)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown job: %v", err)
	}
	if _, _, err := s.Result(first.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("result of running job: %v", err)
	}
}

// Graceful drain: Shutdown lets queued and running jobs complete, then
// returns; submissions during and after the drain are rejected.
func TestGracefulShutdownDrainsInFlightJobs(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, Run: run})

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, err := s.Submit(specFor(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, s, ids[0], StateRunning)

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// The drain must reject new work while waiting for old work.
	rejected := false
	deadline := time.Now().Add(5 * time.Second)
	for !rejected && time.Now().Before(deadline) {
		if _, err := s.Submit(specFor(99)); errors.Is(err, ErrDraining) {
			rejected = true
		}
		time.Sleep(time.Millisecond)
	}
	if !rejected {
		t.Fatal("submissions accepted during drain")
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s ended %s after graceful drain, want done", id, st.State)
		}
	}
}

// Forced drain: when the shutdown context expires, outstanding jobs
// are cancelled instead of completed, and Shutdown still returns only
// after the workers exit.
func TestShutdownDeadlineCancelsOutstandingJobs(t *testing.T) {
	run := func(ctx context.Context, _ scenario.Scenario, _ scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		<-ctx.Done()
		return scenario.Result{}, ctx.Err()
	}
	s := New(Config{Workers: 1, Run: run})

	running, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(specFor(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCancelled {
			t.Fatalf("job %s ended %s after forced shutdown, want cancelled", id, st.State)
		}
	}
	// Shutdown is idempotent once drained.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// Progress streams through from the engine callback, sized by the
// sweep × replicate expansion.
func TestProgressSurfacesExpandedRuns(t *testing.T) {
	step := make(chan struct{})
	run := func(_ context.Context, _ scenario.Scenario, spec scenario.Spec, opts scenario.RunOptions) (scenario.Result, error) {
		total := spec.ExpandedRuns()
		for i := 1; i <= total; i++ {
			<-step
			opts.OnProgress(i, total)
		}
		return fixedResult(spec), nil
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	spec := specFor(1)
	spec.Sweep = map[string][]float64{"seed": {3, 4, 5}}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.Total != 3 {
		t.Fatalf("submit-time progress total %d, want 3 (sweep points)", st.Progress.Total)
	}
	for i := 1; i <= 3; i++ {
		step <- struct{}{}
		deadline := time.Now().Add(5 * time.Second)
		for {
			cur, err := s.Job(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Progress.Completed >= i {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("progress stuck at %+v waiting for %d", cur.Progress, i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if st := waitDone(t, s, st.ID); st.Progress.Completed != 3 || st.Progress.Total != 3 {
		t.Fatalf("final progress %+v", st.Progress)
	}
}

// With the real engine (Config.Run nil) a small spec runs end to end,
// and a replicated sweep reports summaries exactly like the CLI path.
func TestRealEngineSmallSpec(t *testing.T) {
	s := New(Config{Workers: 2})
	defer mustShutdown(t, s)

	spec := scenario.Spec{Scenario: "fig3", Topologies: 2, Seed: 11,
		Sweep: map[string][]float64{"seed": {3, 4}}}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("real run ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.Total != 2 || final.Progress.Completed != 2 {
		t.Fatalf("progress %+v, want 2/2 sweep points", final.Progress)
	}
	res, _, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("real run produced no series")
	}
	// The served result must be exactly what the engine computes for
	// the same resolved spec — the serving layer adds no transformation.
	sc, err := scenario.Find("fig3")
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := scenario.Resolve(sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.RunResolved(context.Background(), sc, resolved, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.MarshalIndent()
	want, _ := direct.MarshalIndent()
	if string(got) != string(want) {
		t.Fatalf("served result diverges from direct engine run:\nserved: %s\ndirect: %s", got, want)
	}
}

// Jobs get distinct, stable ids.
func TestJobIDsAreUnique(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		st, err := s.Submit(specFor(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if seen[st.ID] {
			t.Fatalf("duplicate job id %s", st.ID)
		}
		seen[st.ID] = true
		waitDone(t, s, st.ID)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.workers() < 1 || c.queueDepth() != 64 || c.cacheEntries() != 128 {
		t.Fatalf("defaults: workers=%d queue=%d cache=%d", c.workers(), c.queueDepth(), c.cacheEntries())
	}
	c = Config{Workers: 3, QueueDepth: 7, CacheEntries: -1}
	if c.workers() != 3 || c.queueDepth() != 7 || c.cacheEntries() != 0 {
		t.Fatalf("explicit: workers=%d queue=%d cache=%d", c.workers(), c.queueDepth(), c.cacheEntries())
	}
}

func ExampleService() {
	run, _ := countingRun()
	s := New(Config{Workers: 1, Run: run})
	st, _ := s.Submit(scenario.Spec{Scenario: "fig12-spatial-reuse", Topologies: 2, Seed: 3})
	final, _ := s.Wait(context.Background(), st.ID)
	fmt.Println(final.State)
	s.Shutdown(context.Background())
	// Output: done
}

// The job table is bounded: terminal jobs beyond JobRetention are
// forgotten oldest-first, while in-flight jobs and newer terminal ones
// stay pollable. Forgotten specs are still answered by the result
// cache.
func TestJobRetentionBoundsTable(t *testing.T) {
	run, _ := countingRun()
	s := New(Config{Workers: 1, JobRetention: 3, Run: run})
	defer mustShutdown(t, s)

	var ids []string
	for seed := int64(1); seed <= 5; seed++ {
		st, err := s.Submit(specFor(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, st.ID)
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:2] {
		if _, err := s.Job(id); !errors.Is(err, ErrUnknownJob) {
			t.Errorf("job %s should have been forgotten, got %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := s.Job(id); err != nil {
			t.Errorf("job %s should be retained: %v", id, err)
		}
	}
	if m := s.Metrics(); m.Jobs[StateDone] != 3 {
		t.Fatalf("retained done jobs %d, want 3", m.Jobs[StateDone])
	}
	// Seed 1's job record is gone, but its result is still cached.
	st, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatal("forgotten job's spec missed the result cache")
	}
}

// Single-flight: identical specs submitted while the first is still in
// flight coalesce onto that run — one engine invocation serves them
// all, byte-identically.
func TestConcurrentIdenticalSpecsCoalesce(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		calls.Add(1)
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 2, QueueDepth: 1, Run: run})
	defer mustShutdown(t, s)
	defer close(release)

	leader, err := s.Submit(specFor(7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, leader.ID, StateRunning)

	var followers []JobStatus
	for i := 0; i < 3; i++ {
		st, err := s.Submit(specFor(7))
		if err != nil {
			t.Fatalf("coalesced submit %d: %v", i, err)
		}
		if !st.Coalesced || st.Cached {
			t.Fatalf("submission %d not coalesced: %+v", i, st)
		}
		if st.State != StateRunning {
			t.Fatalf("follower %d does not mirror the leader's state: %s", i, st.State)
		}
		if st.Started == "" {
			t.Fatalf("follower %d reports running with no started time", i)
		}
		followers = append(followers, st)
	}
	// Followers bypass the queue entirely (QueueDepth is 1 and they
	// are 3), and the engine has run once.
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times with followers attached, want 1", n)
	}

	release <- struct{}{} // let the leader finish (second worker idles)
	waitDone(t, s, leader.ID)
	want := renderJob(t, s, leader.ID)
	for _, f := range followers {
		st := waitDone(t, s, f.ID)
		if st.State != StateDone || !st.Coalesced {
			t.Fatalf("follower ended %+v", st)
		}
		if got := renderJob(t, s, f.ID); string(got) != string(want) {
			t.Fatalf("follower result differs from leader's")
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times total, want exactly 1", n)
	}
	if m := s.Metrics(); m.Coalesced != 3 {
		t.Fatalf("coalesced counter %d, want 3", m.Coalesced)
	}
}

// Cancelling a follower detaches only that job; the leader (and the
// other followers) still get their result. Cancelling the leader
// cancels the shared run, followers included.
func TestCancelCoalescedJobs(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		select {
		case <-release:
			return fixedResult(spec), nil
		case <-ctx.Done():
			return scenario.Result{}, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)
	defer close(release)

	leader, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, leader.ID, StateRunning)
	f1, _ := s.Submit(specFor(1))
	f2, _ := s.Submit(specFor(1))

	if st, err := s.Cancel(f1.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel follower: %v %+v", err, st)
	}
	release <- struct{}{}
	if st := waitDone(t, s, leader.ID); st.State != StateDone {
		t.Fatalf("leader ended %s after follower cancel", st.State)
	}
	if st := waitDone(t, s, f2.ID); st.State != StateDone {
		t.Fatalf("remaining follower ended %s", st.State)
	}

	// Round two: cancelling the leader takes its followers down.
	leader2, err := s.Submit(specFor(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, leader2.ID, StateRunning)
	f3, _ := s.Submit(specFor(2))
	if _, err := s.Cancel(leader2.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, leader2.ID); st.State != StateCancelled {
		t.Fatalf("leader ended %s after cancel", st.State)
	}
	if st := waitDone(t, s, f3.ID); st.State != StateCancelled {
		t.Fatalf("follower of cancelled leader ended %s", st.State)
	}
}

// A forced shutdown must not hang forever on a worker stuck inside a
// non-preemptible run: after the grace it abandons the worker with an
// explicit error instead of blocking the caller's exit path.
func TestShutdownAbandonsStuckWorkers(t *testing.T) {
	oldGrace := stuckWorkerGrace
	stuckWorkerGrace = 50 * time.Millisecond
	defer func() { stuckWorkerGrace = oldGrace }()

	release := make(chan struct{})
	defer close(release)
	run := func(context.Context, scenario.Scenario, scenario.Spec, scenario.RunOptions) (scenario.Result, error) {
		<-release // ignores ctx: a single-point sc.Run mid-flight
		return scenario.Result{}, context.Canceled
	}
	s := New(Config{Workers: 1, Run: run})
	st, err := s.Submit(specFor(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck shutdown returned %v", err)
	}
	if !strings.Contains(err.Error(), "non-preemptible") {
		t.Fatalf("stuck shutdown error does not name the cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown blocked %v on a stuck worker", elapsed)
	}
}

// A fresh submission must not coalesce onto a leader whose cancel is
// pending: it would inherit a "cancelled" outcome for a perfectly
// runnable spec. Cancel releases the single-flight slot immediately.
func TestSubmitAfterCancelStartsFreshRun(t *testing.T) {
	var calls atomic.Int64
	run := func(ctx context.Context, _ scenario.Scenario, spec scenario.Spec, _ scenario.RunOptions) (scenario.Result, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first run: waits for the cancel
			return scenario.Result{}, ctx.Err()
		}
		return fixedResult(spec), nil
	}
	s := New(Config{Workers: 2, Run: run})
	defer mustShutdown(t, s)

	doomed, err := s.Submit(specFor(7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, doomed.ID, StateRunning)
	if _, err := s.Cancel(doomed.ID); err != nil {
		t.Fatal(err)
	}

	fresh, err := s.Submit(specFor(7))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Coalesced {
		t.Fatal("fresh submission coalesced onto a cancel-pending leader")
	}
	if st := waitDone(t, s, fresh.ID); st.State != StateDone {
		t.Fatalf("fresh run ended %s (%s)", st.State, st.Error)
	}
	if st := waitDone(t, s, doomed.ID); st.State != StateCancelled {
		t.Fatalf("cancelled run ended %s", st.State)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("engine ran %d times, want 2 (cancelled + fresh)", n)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name            string
		mean            float64
		queued, workers int
		want            int
	}{
		{"no-observations", 0, 10, 4, 1},
		{"empty-queue", 2.0, 0, 4, 1},
		{"sub-second-drain", 0.05, 3, 8, 1},
		{"one-each", 5.0, 1, 1, 5},
		{"backlog-split-across-workers", 2.0, 8, 4, 4},
		{"rounds-up", 1.5, 1, 1, 2},
		{"capped-at-minute", 30.0, 100, 2, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterSeconds(tc.mean, tc.queued, tc.workers); got != tc.want {
				t.Errorf("retryAfterSeconds(%v, %d, %d) = %d, want %d",
					tc.mean, tc.queued, tc.workers, got, tc.want)
			}
		})
	}
}

func TestObserveRunTimeEWMA(t *testing.T) {
	s := New(Config{Workers: 1})
	defer mustShutdown(t, s)
	s.observeRunTime(10)
	if got := s.runMeanSeconds; got != 10 {
		t.Fatalf("first observation should anchor the mean, got %v", got)
	}
	s.observeRunTime(20)
	if got := s.runMeanSeconds; got != 0.3*20+0.7*10 {
		t.Fatalf("EWMA after 10,20 = %v, want 13", got)
	}
}

// TestResumeReadmitsResolvedSpec: Resume is Submit for a journal
// entry's already-resolved spec — it admits, runs and caches exactly
// like a client submission, so a sweep replayed at startup is
// indistinguishable from one a client asked for.
func TestResumeReadmitsResolvedSpec(t *testing.T) {
	run, calls := countingRun()
	s := New(Config{Workers: 1, Run: run})
	defer mustShutdown(t, s)

	sc, err := scenario.Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	overrides := scenario.Spec{
		Scenario: "fig12-spatial-reuse", Topologies: 2, Seed: 41, Replicates: 2,
		Sweep: map[string][]float64{"seed": {1, 2}},
	}
	resolved, err := scenario.Resolve(sc, overrides)
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Resume(resolved)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if st.Cached {
		t.Fatal("resumed job served from cache in a fresh service")
	}
	done := waitDone(t, s, st.ID)
	if done.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", done.State, done.Error)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("engine ran %d times for one resume, want 1", n)
	}

	// A client resubmitting the same sweep lands on the resumed job's
	// cache entry: same hash, born done.
	again, err := s.Submit(overrides)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.SpecHash != st.SpecHash {
		t.Fatalf("resubmission after resume not cached: %+v (resumed hash %s)", again, st.SpecHash)
	}
}
