// Package service is the scenario-serving layer: a job-oriented,
// long-running front end over the scenario registry and engine. Specs
// (the same JSON schema midas-sim -spec consumes) are submitted as
// asynchronous jobs, validated and resolved up front, executed on a
// bounded in-process worker pool, and observable through their whole
// lifecycle (queued → running → done/failed/cancelled) with per-job
// progress in completed expanded runs.
//
// Results are content-addressed: every resolved spec has a canonical
// hash (scenario.Spec.CanonicalHash), and completed results are kept
// in a bounded LRU cache keyed by it. Because the engine is
// deterministic in the resolved spec, re-submitting an identical spec
// is answered from the cache without touching the engine, and the
// rendered JSON is byte-identical to the cold run's. Identical specs
// submitted while the first is still in flight coalesce onto that run
// (single-flight): they become follower jobs that mirror its progress
// and finish with its result, so a burst of equal requests costs one
// engine run, not N.
//
// With Config.Store set, the cache is two-tier: the in-memory LRU in
// front of a crash-safe on-disk store (internal/store) under the same
// content addresses. Every completed result is persisted *before* its
// job becomes observably done, so a completed job's result survives
// any crash; a memory miss consults the disk tier and promotes its
// answer, so a restarted server serves previously computed specs
// byte-identically without re-running the engine.
//
// cmd/midas-serve wraps this package in an HTTP API (see http.go).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle: Submit parks a job in StateQueued (or, on a cache
// hit, completes it as StateDone immediately); a worker moves it to
// StateRunning; the run ends in exactly one of StateDone, StateFailed
// or StateCancelled. Cancelling a queued job is immediate; cancelling
// a running job cancels the engine's context, which stops dispatching
// further expanded runs (a single-run spec that is already executing
// finishes and completes as done — the engine has no mid-run
// preemption points).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a job in this state can never change state
// again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress counts expanded runs (sweep points × replicates) of a job.
type Progress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// Sentinel errors Submit and Cancel return; the HTTP layer maps them
// to status codes.
var (
	// ErrDraining rejects submissions after Shutdown has begun.
	ErrDraining = errors.New("service: shutting down, not accepting jobs")
	// ErrQueueFull rejects submissions when the job queue is at bound.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownJob reports a job id that was never issued.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a result request for a job still in flight.
	ErrNotFinished = errors.New("service: job not finished")
	// ErrFinished reports a cancel request for an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
	// ErrUnknownResult reports a hash-addressed result lookup that no
	// cache tier could answer.
	ErrUnknownResult = errors.New("service: no result stored under that hash")
)

// RunFunc executes one resolved spec — scenario.RunResolved in
// production; tests substitute it to count and steer engine
// invocations.
type RunFunc func(ctx context.Context, sc scenario.Scenario, spec scenario.Spec, opts scenario.RunOptions) (scenario.Result, error)

// Config sizes a Service.
type Config struct {
	// Workers bounds how many jobs execute concurrently; <= 0 selects
	// GOMAXPROCS. Each job additionally fans its expanded runs over the
	// engine's own pool at the spec's parallelism.
	Workers int
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// <= 0 selects 64. A full queue rejects submissions (ErrQueueFull)
	// instead of blocking the submitter.
	QueueDepth int
	// CacheEntries bounds the spec-hash result cache; 0 selects 128,
	// negative disables caching.
	CacheEntries int
	// Store, when non-nil, is the durable result tier under the memory
	// cache: completed results are persisted to it before their job
	// becomes observably done, and memory misses consult it before
	// enqueueing an engine run. The caller owns its lifecycle (open it
	// before New, close it after Shutdown returns).
	Store *store.Store
	// JobRetention bounds how many *terminal* (done/failed/cancelled)
	// jobs stay pollable; <= 0 selects 512. The oldest-finished jobs
	// beyond the bound are forgotten (their id returns ErrUnknownJob;
	// identical specs are still answered by the result cache), so the
	// job table cannot grow with traffic. Queued and running jobs are
	// never evicted.
	JobRetention int
	// JobParallelism, when > 0, is the engine parallelism handed to a
	// job whose spec leaves parallelism unset — how a multi-worker
	// server divides the machine (midas-serve passes
	// ceil(GOMAXPROCS/workers)) without the racy sim.Parallelism
	// process-global. A spec that sets its own parallelism keeps it; the
	// override travels in scenario.RunOptions, never in the spec, so
	// hashes, sink meta and cached bodies are unaffected.
	JobParallelism int
	// Telemetry is the registry the service registers its instruments
	// on (counters, queue-wait/run-duration histograms, job gauges);
	// nil creates a private one. Either way Service.Telemetry exposes
	// it for /metrics rendering.
	Telemetry *telemetry.Registry
	// Log receives structured per-job lifecycle lines (submitted /
	// running / finished), keyed by job id and spec hash; nil discards
	// them.
	Log *slog.Logger
	// Run substitutes the engine invocation; nil selects
	// scenario.RunResolved.
	Run RunFunc
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) jobRetention() int {
	if c.JobRetention > 0 {
		return c.JobRetention
	}
	return 512
}

func (c Config) cacheEntries() int {
	switch {
	case c.CacheEntries > 0:
		return c.CacheEntries
	case c.CacheEntries < 0:
		return 0
	default:
		return 128
	}
}

// job is the internal record; all fields past the immutable header are
// guarded by the Service mutex.
type job struct {
	id   string
	spec scenario.Spec // resolved
	sc   scenario.Scenario
	hash string

	// followers are jobs coalesced onto this one: identical specs
	// submitted while this job was still in flight. They never enqueue
	// or run; they mirror this job's state/progress and are finished
	// with its result. Only leaders (enqueued jobs) have followers.
	followers []*job
	// leader is the in-flight job this one coalesced onto (nil for
	// leaders and cache hits, cleared again when the follower detaches
	// or finishes).
	leader *job
	// wasCoalesced survives the leader pointer for status reporting.
	wasCoalesced bool

	state     State
	progress  Progress
	cached    bool   // answered from the result cache
	cacheTier string // which tier answered: "memory" or "store"
	result    scenario.Result
	err       error
	cancel    context.CancelFunc
	ctx       context.Context
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed on entering a terminal state
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Scenario string   `json:"scenario"`
	SpecHash string   `json:"spec_hash"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	// Cached marks a job answered from the spec-hash cache without an
	// engine run; CacheTier says from which tier ("memory" — the LRU —
	// or "store" — the on-disk tier, e.g. after a restart).
	Cached    bool   `json:"cached,omitempty"`
	CacheTier string `json:"cache_tier,omitempty"`
	// Coalesced marks a job attached to an identical in-flight
	// submission: it shares that run's progress and result instead of
	// occupying the pool with a duplicate computation.
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
}

// Metrics is the /metrics snapshot. Jobs counts the retained job
// table (all in-flight jobs plus the last JobRetention terminal ones);
// ScenarioRuns and the cache counters are cumulative for the process.
type Metrics struct {
	Jobs         map[State]int `json:"jobs"`
	QueueDepth   int           `json:"queue_depth"`
	Workers      int           `json:"workers"`
	CacheEntries int           `json:"cache_entries"`
	CacheHits    uint64        `json:"cache_hits"`
	CacheMisses  uint64        `json:"cache_misses"`
	CacheHitRate float64       `json:"cache_hit_rate"`
	// Coalesced counts submissions attached to an identical in-flight
	// run instead of executing their own (cumulative).
	Coalesced    uint64         `json:"coalesced"`
	ScenarioRuns map[string]int `json:"scenario_runs"`
	// Store snapshots the durable result tier; absent when none is
	// configured.
	Store    *store.Stats `json:"store,omitempty"`
	Draining bool         `json:"draining,omitempty"`
}

// Service owns the worker pool, the job table and the result cache.
// Create with New, stop with Shutdown.
type Service struct {
	cfg   Config
	run   RunFunc
	queue chan *job
	wg    sync.WaitGroup
	tel   *instruments
	log   *slog.Logger
	// store is the durable result tier (Config.Store; nil = memory
	// only). It is self-locking and consulted with s.mu released, so
	// disk I/O never stalls the job table.
	store *store.Store

	mu           sync.Mutex
	jobs         map[string]*job
	finished     []string        // terminal job ids, oldest first (retention FIFO)
	inflight     map[string]*job // spec hash -> leader job not yet terminal
	cache        *resultCache
	nextID       int
	closed       bool
	coalesced    uint64
	scenarioRuns map[string]int // engine invocations by scenario name
	// runMeanSeconds is an EWMA of engine-run wall time, feeding the
	// queue-full Retry-After hint; 0 until the first run completes.
	runMeanSeconds float64
}

// New builds a Service and starts its worker pool.
func New(cfg Config) *Service {
	s := &Service{
		cfg:          cfg,
		run:          cfg.Run,
		log:          cfg.Log,
		store:        cfg.Store,
		queue:        make(chan *job, cfg.queueDepth()),
		jobs:         make(map[string]*job),
		inflight:     make(map[string]*job),
		cache:        newResultCache(cfg.cacheEntries()),
		scenarioRuns: make(map[string]int),
	}
	if s.run == nil {
		s.run = scenario.RunResolved
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.tel = newInstruments(reg, s)
	for w := 0; w < cfg.workers(); w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Telemetry returns the registry holding the service's instruments —
// what GET /metrics renders.
func (s *Service) Telemetry() *telemetry.Registry { return s.tel.reg }

// Submit validates and resolves overrides (whose Scenario field names
// the registered scenario, exactly like a midas-sim spec file), then
// either answers it from the spec-hash cache — the job is born done,
// marked Cached — or enqueues it for the worker pool. The returned
// snapshot carries the job id to poll.
func (s *Service) Submit(overrides scenario.Spec) (JobStatus, error) {
	return s.submitLogged(overrides, "job submitted")
}

// Resume re-admits a half-finished sweep recovered from the dispatch
// journal at startup. It is Submit with provenance: the spec arrives
// already resolved (Resolve is idempotent on a resolved spec, so the
// shared core applies unchanged) and the admission log line says
// "resumed" so an operator can tell a replay from client traffic.
func (s *Service) Resume(spec scenario.Spec) (JobStatus, error) {
	return s.submitLogged(spec, "job resumed")
}

func (s *Service) submitLogged(overrides scenario.Spec, event string) (JobStatus, error) {
	start := time.Now()
	st, err := s.submit(overrides)
	lat := time.Since(start).Seconds()
	// Instrument and log outside the job-table lock: the histograms are
	// atomics, but the slog handler does real I/O.
	switch {
	case err != nil:
		s.tel.submissions.With("rejected").Inc()
		s.log.Warn("job rejected", "scenario", overrides.Scenario, "error", err.Error())
	case st.Cached:
		s.tel.cacheHits.Inc()
		s.tel.submissions.With("cached").Inc()
		s.tel.cacheHitLat.Observe(lat)
	case st.Coalesced:
		s.tel.cacheMisses.Inc()
		s.tel.coalesced.Inc()
		s.tel.submissions.With("coalesced").Inc()
		s.tel.coalesceLat.Observe(lat)
	default:
		s.tel.cacheMisses.Inc()
		s.tel.submissions.With("queued").Inc()
		s.tel.cacheMissLat.Observe(lat)
	}
	if err == nil {
		s.log.Info(event,
			"job", st.ID, "scenario", st.Scenario, "spec_hash", st.SpecHash,
			"state", string(st.State), "cached", st.Cached, "coalesced", st.Coalesced)
	}
	return st, err
}

// submit is Submit's locked core, free of telemetry and logging.
func (s *Service) submit(overrides scenario.Spec) (JobStatus, error) {
	if overrides.Scenario == "" {
		return JobStatus{}, fmt.Errorf("service: spec names no scenario (set the \"scenario\" field; GET /v1/scenarios lists all)")
	}
	sc, err := scenario.Find(overrides.Scenario)
	if err != nil {
		return JobStatus{}, err
	}
	spec, err := scenario.Resolve(sc, overrides)
	if err != nil {
		return JobStatus{}, err
	}
	hash := spec.CanonicalHash()

	// First admission pass: the memory tiers (LRU cache, single-flight
	// table) answer most submissions without any disk I/O. When they
	// don't and a store is configured, the lock is dropped for the disk
	// lookup and a second, final pass re-checks everything — another
	// submission may have raced the same result into memory or started
	// an identical run while we were reading.
	s.mu.Lock()
	st, admitted, err := s.admitLocked(sc, spec, hash, nil, s.store == nil)
	s.mu.Unlock()
	if admitted {
		return st, err
	}
	var promoted *scenario.Result
	if payload, ok := s.store.Get(hash); ok {
		_, res, derr := decodeResult(hash, payload)
		if derr != nil {
			// The entry verified at the byte level but does not decode
			// as a consistent envelope — persisted by a buggy, legacy or
			// future version. Quarantine it and recompute; never serve it.
			s.log.Warn("stored result undecodable, quarantined",
				"spec_hash", hash, "error", derr.Error())
			s.store.Quarantine(hash)
		} else {
			promoted = &res
		}
	}
	s.mu.Lock()
	st, _, err = s.admitLocked(sc, spec, hash, promoted, true)
	s.mu.Unlock()
	return st, err
}

// admitLocked is one admission pass over the in-memory tiers; called
// with s.mu held. stored, when non-nil, is a result the disk tier
// served between passes: it is promoted into the memory cache and
// answers the submission. final reports whether this pass must resolve
// the submission — a non-final pass that finds no in-memory answer
// returns admitted=false so the caller can consult the store and come
// back. The hit/miss counters are tallied here, exactly once per
// submission, on whichever pass resolves it.
func (s *Service) admitLocked(sc scenario.Scenario, spec scenario.Spec, hash string, stored *scenario.Result, final bool) (JobStatus, bool, error) {
	if s.closed {
		return JobStatus{}, true, ErrDraining
	}
	if res, _, ok := s.cache.lookup(hash); ok {
		s.cache.hits++
		return s.bornDoneLocked(sc, spec, hash, res, "memory"), true, nil
	}
	if stored != nil {
		s.cache.hits++
		s.cache.Put(hash, spec, *stored)
		return s.bornDoneLocked(sc, spec, hash, *stored, "store"), true, nil
	}
	// Single-flight coalescing: an identical spec already queued or
	// running is the same deterministic computation, so attach this
	// job to it instead of occupying the pool with a duplicate run. A
	// leader with a pending cancel is skipped (Cancel also clears the
	// slot): its outcome will be "cancelled", which a fresh submission
	// must not inherit.
	if leader := s.inflight[hash]; leader != nil && leader.ctx.Err() == nil {
		s.cache.misses++
		j := s.newJobLocked(sc, spec, hash)
		j.leader = leader
		j.wasCoalesced = true
		j.state = leader.state
		j.started = leader.started
		j.progress = leader.progress
		leader.followers = append(leader.followers, j)
		s.coalesced++
		return j.statusLocked(), true, nil
	}
	if !final {
		return JobStatus{}, false, nil
	}
	s.cache.misses++
	j := s.newJobLocked(sc, spec, hash)
	j.state = StateQueued
	j.progress = Progress{Total: spec.ExpandedRuns()}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	select {
	case s.queue <- j:
	default:
		j.cancel()
		delete(s.jobs, j.id)
		return JobStatus{}, true, ErrQueueFull
	}
	s.inflight[hash] = j
	return j.statusLocked(), true, nil
}

// newJobLocked allocates the next job id and enrols the job in the
// table. Called with s.mu held.
func (s *Service) newJobLocked(sc scenario.Scenario, spec scenario.Spec, hash string) *job {
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextID),
		spec:      spec,
		sc:        sc,
		hash:      hash,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// bornDoneLocked completes a submission as a terminal, cached job: no
// queueing, no engine run, result served from the named cache tier.
// Called with s.mu held.
func (s *Service) bornDoneLocked(sc scenario.Scenario, spec scenario.Spec, hash string, res scenario.Result, tier string) JobStatus {
	j := s.newJobLocked(sc, spec, hash)
	total := spec.ExpandedRuns()
	j.state = StateDone
	j.cached = true
	j.cacheTier = tier
	j.result = res
	j.progress = Progress{Completed: total, Total: total}
	j.finished = j.submitted
	close(j.done)
	s.retireLocked(j)
	return j.statusLocked()
}

// worker executes queued jobs until the queue is closed and drained.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob moves one dequeued job through running to a terminal state.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue; already terminal.
		s.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		// Cancelled between the Cancel call and this dispatch, or by a
		// forced shutdown: finish without running.
		s.finishLocked(j, scenario.Result{}, j.ctx.Err())
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	for _, f := range j.followers {
		f.state = StateRunning
		f.started = j.started
	}
	s.scenarioRuns[j.spec.Scenario]++
	s.mu.Unlock()

	s.tel.queueWait.Observe(queueWait.Seconds())
	s.log.Info("job running",
		"job", j.id, "scenario", j.spec.Scenario, "spec_hash", j.hash,
		"queue_wait", queueWait)

	// The per-job core budget travels in RunOptions, not in the spec
	// (which would change its sink meta) and not in a process global
	// (which concurrent jobs would race on): specs that set their own
	// parallelism keep it, unset ones get the server's per-worker share.
	par := j.spec.Parallelism
	if par <= 0 {
		par = s.cfg.JobParallelism
	}
	res, err := s.run(j.ctx, j.sc, j.spec, scenario.RunOptions{
		Parallelism: par,
		OnProgress: func(completed, total int) {
			s.mu.Lock()
			j.progress = Progress{Completed: completed, Total: total}
			for _, f := range j.followers {
				f.progress = j.progress
			}
			s.mu.Unlock()
		},
		OnRunDone: func(p runner.Progress) {
			s.tel.taskSeconds.Observe(p.Elapsed.Seconds())
		},
	})
	elapsed := time.Since(j.started)
	s.tel.runDuration.With(j.spec.Scenario).Observe(elapsed.Seconds())
	s.observeRunTime(elapsed.Seconds())

	// Persist to the durable tier BEFORE the job becomes observably
	// done, so "the job completed" implies "the result survives a
	// crash": a client that saw this job finish can always get the
	// result back, even from the next process. A store failure is
	// logged and absorbed — the job still completes from memory.
	if err == nil && s.store != nil {
		s.persistResult(j.hash, j.spec, res)
	}

	s.mu.Lock()
	s.finishLocked(j, res, err)
	st := j.statusLocked()
	s.mu.Unlock()
	logAttrs := []any{
		"job", st.ID, "scenario", st.Scenario, "spec_hash", st.SpecHash,
		"state", string(st.State), "run_seconds", elapsed.Seconds(),
	}
	if st.Error != "" {
		logAttrs = append(logAttrs, "error", st.Error)
	}
	s.log.Info("job finished", logAttrs...)
}

// persistResult encodes a completed result and writes it to the disk
// tier. Runs on the worker goroutine with no locks held; never
// propagates failure (the memory tiers still serve the result).
func (s *Service) persistResult(hash string, spec scenario.Spec, res scenario.Result) {
	payload, err := encodeResult(spec, res)
	if err == nil {
		err = s.store.Put(hash, payload)
	}
	if err != nil {
		s.log.Warn("result not persisted to store",
			"spec_hash", hash, "error", err.Error())
	}
}

// finishLocked records a job's terminal state, finishes any coalesced
// followers with the same outcome, and releases the in-flight slot for
// the job's spec hash. Called with s.mu held.
func (s *Service) finishLocked(j *job, res scenario.Result, err error) {
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.progress.Completed = j.progress.Total
		s.cache.Put(j.hash, j.spec, res)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	close(j.done)
	s.tel.finished.With(string(j.state)).Inc()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	s.retireLocked(j)
	followers := j.followers
	j.followers = nil
	for _, f := range followers {
		f.leader = nil
		f.progress = j.progress
		s.finishLocked(f, res, err)
	}
}

// retireLocked enrols a newly terminal job in the retention FIFO and
// forgets the oldest terminal jobs beyond the bound, so the job table
// is bounded by retention + in-flight count, not by total traffic.
// Called with s.mu held.
func (s *Service) retireLocked(j *job) {
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.jobRetention() {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Cancel stops a job: a queued job becomes cancelled immediately; a
// running job has its engine context cancelled, which stops
// dispatching further expanded runs and surfaces as cancelled when the
// in-flight ones drain. Cancelling a coalesced job only detaches that
// job — the leader keeps computing for its own client (and any other
// followers); cancelling a leader cancels the shared run, so its
// followers finish cancelled with it. Cancelling a terminal job is an
// error.
func (s *Service) Cancel(id string) (JobStatus, error) {
	st, err := s.cancel(id)
	if err == nil {
		s.log.Info("job cancel requested",
			"job", st.ID, "scenario", st.Scenario, "spec_hash", st.SpecHash, "state", string(st.State))
	}
	return st, err
}

// cancel is Cancel's locked core.
func (s *Service) cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	switch {
	case j.state.terminal():
		return j.statusLocked(), ErrFinished
	case j.leader != nil:
		for i, f := range j.leader.followers {
			if f == j {
				j.leader.followers = append(j.leader.followers[:i], j.leader.followers[i+1:]...)
				break
			}
		}
		j.leader = nil
		s.finishLocked(j, scenario.Result{}, context.Canceled)
	case j.state == StateQueued:
		j.cancel()
		s.finishLocked(j, scenario.Result{}, context.Canceled)
	default: // running
		j.cancel()
		// Release the single-flight slot immediately: the run may take
		// a long time to reach a cancellation point, and a fresh
		// submission of the same spec must start a fresh run, not
		// coalesce onto one that is already doomed.
		if s.inflight[j.hash] == j {
			delete(s.inflight, j.hash)
		}
	}
	return j.statusLocked(), nil
}

// Job returns a job's current snapshot.
func (s *Service) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.statusLocked(), nil
}

// Result returns a done job's result and the resolved spec that
// produced it. A job that is not done yet returns ErrNotFinished; a
// failed or cancelled job returns its terminal error.
func (s *Service) Result(id string) (scenario.Result, scenario.Spec, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return scenario.Result{}, scenario.Spec{}, ErrUnknownJob
	}
	switch j.state {
	case StateDone:
		return j.result, j.spec, nil
	case StateFailed, StateCancelled:
		return scenario.Result{}, scenario.Spec{}, fmt.Errorf("service: job %s %s: %w", id, j.state, j.err)
	default:
		return scenario.Result{}, scenario.Spec{}, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
	}
}

// ResultByHash returns the completed result stored under a spec's
// content address, with the resolved spec that produced it — the
// job-less lookup behind GET /v1/results/{hash}. The memory cache
// answers first; a miss consults the durable store (which on a shared
// backend reads through to blobs published by sibling processes) and
// promotes the envelope into memory. ErrUnknownResult when neither
// tier holds the hash.
func (s *Service) ResultByHash(hash string) (scenario.Result, scenario.Spec, error) {
	s.mu.Lock()
	if res, spec, ok := s.cache.lookup(hash); ok {
		s.mu.Unlock()
		// Canonicalize: the envelope codec zeroes Parallelism (the hash
		// excludes it), so a memory hit must render exactly what a store
		// hit — here or on any sibling process — would render.
		spec.Parallelism = 0
		return res, spec, nil
	}
	s.mu.Unlock()
	if s.store == nil {
		return scenario.Result{}, scenario.Spec{}, ErrUnknownResult
	}
	payload, ok := s.store.Get(hash)
	if !ok {
		return scenario.Result{}, scenario.Spec{}, ErrUnknownResult
	}
	spec, res, derr := decodeResult(hash, payload)
	if derr != nil {
		s.log.Warn("stored result undecodable, quarantined",
			"spec_hash", hash, "error", derr.Error())
		s.store.Quarantine(hash)
		return scenario.Result{}, scenario.Spec{}, ErrUnknownResult
	}
	s.mu.Lock()
	s.cache.Put(hash, spec, res)
	s.mu.Unlock()
	return res, spec, nil
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		// Snapshot through the held pointer, not a second id lookup:
		// retention may already have evicted the id from the table,
		// and this wait still deserves its final status.
		s.mu.Lock()
		defer s.mu.Unlock()
		return j.statusLocked(), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun (submissions are being
// rejected). Cheaper than Metrics for liveness probes.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Jobs:         map[State]int{},
		QueueDepth:   len(s.queue),
		Workers:      s.cfg.workers(),
		CacheEntries: s.cache.Len(),
		CacheHits:    s.cache.hits,
		CacheMisses:  s.cache.misses,
		Coalesced:    s.coalesced,
		ScenarioRuns: map[string]int{},
		Draining:     s.closed,
	}
	for _, j := range s.jobs {
		m.Jobs[j.state]++
	}
	if lookups := s.cache.hits + s.cache.misses; lookups > 0 {
		m.CacheHitRate = float64(s.cache.hits) / float64(lookups)
	}
	for name, n := range s.scenarioRuns {
		m.ScenarioRuns[name] = n
	}
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
	}
	return m
}

// QueueSaturated reports whether the job queue is at bound — the next
// uncoalesced, uncached submission would be rejected with ErrQueueFull.
// Channel length and capacity need no lock; the answer is advisory
// (for health probes), not a reservation.
func (s *Service) QueueSaturated() bool { return len(s.queue) >= cap(s.queue) }

// observeRunTime folds one engine run's wall time into the EWMA behind
// the queue-full Retry-After hint. Alpha 0.3: a few runs re-anchor the
// estimate after the workload shifts, while one outlier cannot swing
// the hint by itself.
func (s *Service) observeRunTime(seconds float64) {
	s.mu.Lock()
	if s.runMeanSeconds == 0 {
		s.runMeanSeconds = seconds
	} else {
		s.runMeanSeconds = 0.3*seconds + 0.7*s.runMeanSeconds
	}
	s.mu.Unlock()
}

// RetryAfterHint is the Retry-After value (whole seconds) a queue-full
// 503 should carry: roughly how long until a queue slot opens, from
// observed mean run time and the current backlog per worker.
func (s *Service) RetryAfterHint() int {
	s.mu.Lock()
	mean := s.runMeanSeconds
	queued := len(s.queue)
	s.mu.Unlock()
	return retryAfterSeconds(mean, queued, s.cfg.workers())
}

// retryAfterSeconds derives the hint: the queue's estimated drain time
// for one slot, ceil(mean × backlog-per-worker), clamped to [1, 60].
// No observed runs yet (mean 0) keeps the old constant of 1 — better
// an eager retry than a made-up wait. The 60s cap matters because
// clients cap their own patience (loadgen's -retry-max): an honest
// "come back in 20 minutes" would read as "never".
func retryAfterSeconds(meanRunSeconds float64, queued, workers int) int {
	if meanRunSeconds <= 0 || queued <= 0 || workers <= 0 {
		return 1
	}
	perWorker := float64(queued) / float64(workers)
	secs := int(math.Ceil(meanRunSeconds * perWorker))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// Shutdown drains the service: submissions are rejected immediately,
// queued and running jobs complete normally, and Shutdown returns once
// the workers have exited. If ctx expires first, every outstanding
// job's context is cancelled (queued ones finish as cancelled without
// running; running ones stop at their next dispatch boundary) and
// Shutdown still waits for the workers before returning ctx's error.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.state.terminal() && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		// Cancellation only takes effect at expanded-run boundaries; a
		// worker deep inside a single non-preemptible sc.Run cannot be
		// interrupted. Wait a bounded grace for the cancels to land,
		// then give up on stuck workers instead of hanging the caller's
		// shutdown path indefinitely (the process exit will reap them).
		select {
		case <-drained:
		case <-time.After(stuckWorkerGrace):
			return fmt.Errorf("service: workers still inside non-preemptible runs after cancellation: %w", ctx.Err())
		}
		return ctx.Err()
	}
}

// stuckWorkerGrace is how long a forced Shutdown waits, after
// cancelling every outstanding job, for workers to reach a
// cancellation point. Variable so tests can shrink it.
var stuckWorkerGrace = 5 * time.Second

// statusLocked snapshots a job. Called with s.mu held.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:        j.id,
		Scenario:  j.spec.Scenario,
		SpecHash:  j.hash,
		State:     j.state,
		Progress:  j.progress,
		Cached:    j.cached,
		CacheTier: j.cacheTier,
		Coalesced: j.leader != nil || j.wasCoalesced,
		Submitted: timeString(j.submitted),
		Started:   timeString(j.started),
		Finished:  timeString(j.finished),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func timeString(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
