package precoding

import (
	"errors"
	"math"
	"math/cmplx"

	"repro/internal/matrix"
)

// Single-user beamforming (§7 of the paper). At low client density an AP
// may serve one client with all antennas; the paper notes this trades the
// linear multiplexing gain for a logarithmic SNR gain and — worse in a
// DAS — silences distant antennas' neighbourhoods. Its recommendation is
// to beamform only from the antennas near the client. This file provides
// both pieces: equal-gain transmission (the optimal single-stream
// beamformer under a per-antenna power constraint) and the localized
// antenna-subset rule.

// EGT returns the equal-gain single-user beamforming vector for channel
// row h (length |T|): every antenna transmits at full per-antenna power
// with its phase conjugated so contributions add coherently at the
// client. Under the per-antenna constraint this maximises received
// power (each antenna's amplitude is capped, so only phase is free).
// The result is |T|×1.
func EGT(h []complex128, perAntennaPower float64) (*matrix.Mat, error) {
	if len(h) == 0 {
		return nil, errors.New("precoding: EGT with no antennas")
	}
	if perAntennaPower <= 0 {
		return nil, errors.New("precoding: non-positive power")
	}
	v := matrix.New(len(h), 1)
	amp := complex(math.Sqrt(perAntennaPower), 0)
	for k, hk := range h {
		if hk == 0 {
			// Antenna contributes nothing coherent; keep it silent so
			// its airtime does not pollute the neighbourhood.
			continue
		}
		phase := cmplx.Conj(hk) / complex(cmplx.Abs(hk), 0)
		v.Set(k, 0, amp*phase)
	}
	return v, nil
}

// BeamformSNR returns the client SNR (linear) delivered by beamformer v
// over channel row h.
func BeamformSNR(h []complex128, v *matrix.Mat, noise float64) float64 {
	var s complex128
	for k := range h {
		s += h[k] * v.At(k, 0)
	}
	return (real(s)*real(s) + imag(s)*imag(s)) / noise
}

// LocalizedAntennas implements §7's rule: keep only the antennas whose
// mean channel power is within windowDB of the strongest — the client's
// "neighbourhood" — so distant antennas stay quiet and available for
// other APs' spatial reuse. At least one antenna is always returned.
func LocalizedAntennas(h []complex128, windowDB float64) []int {
	best := 0.0
	for _, hk := range h {
		if p := real(hk)*real(hk) + imag(hk)*imag(hk); p > best {
			best = p
		}
	}
	if best == 0 {
		return []int{0}
	}
	floor := best * math.Pow(10, -windowDB/10)
	var idx []int
	for k, hk := range h {
		if p := real(hk)*real(hk) + imag(hk)*imag(hk); p >= floor {
			idx = append(idx, k)
		}
	}
	return idx
}

// LocalizedEGT beamforms from only the client's neighbourhood antennas:
// the returned vector is full length |T| with zeros on excluded antennas,
// alongside the included antenna set.
func LocalizedEGT(h []complex128, perAntennaPower, windowDB float64) (*matrix.Mat, []int, error) {
	idx := LocalizedAntennas(h, windowDB)
	v := matrix.New(len(h), 1)
	amp := complex(math.Sqrt(perAntennaPower), 0)
	for _, k := range idx {
		if h[k] == 0 {
			continue
		}
		phase := cmplx.Conj(h[k]) / complex(cmplx.Abs(h[k]), 0)
		v.Set(k, 0, amp*phase)
	}
	return v, idx, nil
}
