package precoding

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Solver computes precoders into storage it owns, so steady-state reuse —
// one precoder per TXOP for the lifetime of a station, or one per topology
// task on a runner worker — performs zero heap allocations. It bundles a
// matrix.Workspace (scratch for the pseudoinverse chain) with the float
// buffers of the reverse water-filling loop.
//
// Results returned by Solver methods (matrices and slices alike) are owned
// by the Solver and valid only until its next method call; callers that
// need to retain them must Clone/copy. Every method is bit-identical to
// the package-level function of the same name, which now wraps a Solver.
// A Solver is not safe for concurrent use; the zero value is ready to use.
type Solver struct {
	ws   matrix.Workspace
	v    matrix.Mat // precoder result buffer
	sinr matrix.Mat // SINR-matrix result buffer
	amp  matrix.Mat // H·V scratch for SINRMatrix

	rho, row, weights, sinrs []float64
	wf                       waterfill
}

// NewSolver returns an empty Solver. Buffers grow to the largest problem
// seen and are then reused.
func NewSolver() *Solver { return &Solver{} }

// ZFBF is the allocation-free equivalent of the package-level ZFBF. The
// returned matrix is owned by the Solver.
func (s *Solver) ZFBF(p Problem) (*matrix.Mat, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := s.zfbfInto(&s.v, p); err != nil {
		return nil, err
	}
	return &s.v, nil
}

// zfbfInto computes the equal-power ZFBF precoder into v. It replays the
// arithmetic of the original ZFBF exactly (pseudoinverse, column
// normalisation, equal power split) via the *Into kernels.
func (s *Solver) zfbfInto(v *matrix.Mat, p Problem) error {
	if err := matrix.PseudoInverseInto(v, p.H, &s.ws); err != nil {
		return fmt.Errorf("precoding: ZFBF: %w", err)
	}
	// Normalise each column and apply the equal power split in one sweep.
	// Every element still sees the same two multiplications in the same
	// order as NormalizeCols followed by ScaleCol, so results are
	// bit-identical to the original two-pass formulation.
	streamAmp := math.Sqrt(p.totalPower() / float64(v.Cols()))
	for j := 0; j < v.Cols(); j++ {
		if pw := v.ColPower(j); pw > 0 {
			v.ScaleCol2(j, 1/math.Sqrt(pw), streamAmp)
		} else {
			v.ScaleCol(j, streamAmp)
		}
	}
	return nil
}

// NaiveScaled is the allocation-free equivalent of the package-level
// NaiveScaled. The returned matrix is owned by the Solver.
func (s *Solver) NaiveScaled(p Problem) (*matrix.Mat, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v := &s.v
	if err := s.zfbfInto(v, p); err != nil {
		return nil, err
	}
	_, worst := v.MaxRowPower()
	if worst > p.PerAntennaPower {
		scale := math.Sqrt(p.PerAntennaPower / worst)
		for j := 0; j < v.Cols(); j++ {
			v.ScaleCol(j, scale)
		}
	}
	return v, nil
}

// PowerBalanced is the allocation-free equivalent of the package-level
// PowerBalanced: it returns the precoder (Solver-owned), the number of
// row-restoration rounds, and any convergence error. The cumulative
// per-stream weights of the run are available from Weights.
func (s *Solver) PowerBalanced(p Problem) (*matrix.Mat, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	v := &s.v
	if err := s.zfbfInto(v, p); err != nil {
		return nil, 0, err
	}
	nT, nC := v.Rows(), v.Cols()
	s.weights = resizeFloats(s.weights, nC)
	for j := range s.weights {
		s.weights[j] = 1
	}
	const tol = 1e-12
	iters := 0
	converged := false
	var lastWorst float64
	for ; iters < nT+1; iters++ {
		k, worst := v.MaxRowPower()
		lastWorst = worst
		if worst <= p.PerAntennaPower*(1+tol) {
			converged = true
			break
		}
		// Current post-ZF stream SNRs ρ_j (interference is nulled, so
		// SINR = SNR = |h_j·v_j|²/N0).
		s.rho = streamSNRsInto(s.rho, p.H, v, p.Noise)
		s.row = resizeFloats(s.row, nC)
		for j := 0; j < nC; j++ {
			e := v.At(k, j)
			s.row[j] = real(e)*real(e) + imag(e)*imag(e)
		}
		w, err := s.wf.weights(s.row, s.rho, p.PerAntennaPower)
		if err != nil {
			return nil, 0, fmt.Errorf("precoding: row %d: %w", k, err)
		}
		for j := 0; j < nC; j++ {
			if w[j] < 1 {
				v.ScaleCol(j, w[j])
				s.weights[j] *= w[j]
			}
		}
	}
	// The convergence check reuses the loop's last MaxRowPower: v has not
	// changed since (on break) — recompute only when the loop exhausted
	// its iteration budget after a final column scaling.
	worst := lastWorst
	if !converged {
		_, worst = v.MaxRowPower()
	}
	if worst > p.PerAntennaPower*(1+1e-6) {
		return nil, 0, fmt.Errorf("precoding: power balancing did not converge (row power %v > %v)",
			worst, p.PerAntennaPower)
	}
	return v, iters, nil
}

// Weights returns the cumulative per-stream scaling weights of the last
// PowerBalanced run. The slice is owned by the Solver.
func (s *Solver) Weights() []float64 { return s.weights }

// SINRMatrix is the allocation-free equivalent of the package-level
// SINRMatrix. The returned matrix is owned by the Solver.
func (s *Solver) SINRMatrix(h, v *matrix.Mat, noise float64) *matrix.Mat {
	a := matrix.MulInto(&s.amp, h, v) // MulInto reshapes and zeroes itself
	return sinrMatrixFrom(&s.sinr, a, noise)
}

// sinrMatrixFrom fills s from the received-amplitude matrix a = H·V,
// replaying SINRMatrix's arithmetic exactly.
func sinrMatrixFrom(s *matrix.Mat, a *matrix.Mat, noise float64) *matrix.Mat {
	n := a.Rows()
	s.Reuse(a.Cols(), n)
	for j := 0; j < n; j++ {
		for i := 0; i < a.Cols(); i++ {
			e := a.At(j, i)
			s.Set(i, j, complex((real(e)*real(e)+imag(e)*imag(e))/noise, 0))
		}
	}
	return s
}

// StreamSINRs is the allocation-free equivalent of the package-level
// StreamSINRs. The returned slice is owned by the Solver.
func (s *Solver) StreamSINRs(h, v *matrix.Mat, noise float64) []float64 {
	sm := s.SINRMatrix(h, v, noise)
	n := h.Rows()
	s.sinrs = resizeFloats(s.sinrs, n)
	for j := 0; j < n; j++ {
		interf := 0.0
		for i := 0; i < n; i++ {
			if i != j {
				interf += real(sm.At(i, j))
			}
		}
		s.sinrs[j] = real(sm.At(j, j)) / (1 + interf)
	}
	return s.sinrs
}

// SumRate returns Σ_j log2(1+ρ_j) without allocating.
func (s *Solver) SumRate(h, v *matrix.Mat, noise float64) float64 {
	sum := 0.0
	for _, r := range s.StreamSINRs(h, v, noise) {
		sum += math.Log2(1 + r)
	}
	return sum
}

// streamSNRsInto computes ρ_j = |(H·V)_{jj}|²/N0 into dst, evaluating only
// the diagonal of H·V — O(n²) instead of the O(n³) full product. The
// per-entry accumulation (ascending k, zero entries skipped) matches Mul's,
// so the result is bit-identical to reading the diagonal of h.Mul(v).
func streamSNRsInto(dst []float64, h, v *matrix.Mat, noise float64) []float64 {
	nc, vc := h.Cols(), v.Cols()
	dst = resizeFloats(dst, vc)
	ha, va := h.Raw(), v.Raw()
	if nc == 4 && vc == 4 && len(dst) == 4 {
		for j := 0; j < 4; j++ {
			hrow := ha[j*4 : j*4+4]
			var e complex128
			if hjk := hrow[0]; hjk != 0 {
				e += hjk * va[j]
			}
			if hjk := hrow[1]; hjk != 0 {
				e += hjk * va[4+j]
			}
			if hjk := hrow[2]; hjk != 0 {
				e += hjk * va[8+j]
			}
			if hjk := hrow[3]; hjk != 0 {
				e += hjk * va[12+j]
			}
			dst[j] = (real(e)*real(e) + imag(e)*imag(e)) / noise
		}
		return dst
	}
	for j := range dst {
		var e complex128
		hrow := ha[j*nc : j*nc+nc]
		kj := j
		for _, hjk := range hrow {
			if hjk != 0 {
				e += hjk * va[kj]
			}
			kj += vc
		}
		dst[j] = (real(e)*real(e) + imag(e)*imag(e)) / noise
	}
	return dst
}

// resizeFloats returns s resliced to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// waterfill holds the reusable buffers of the §3.1.2 reverse-water-filling
// subproblem, stream state in structure-of-arrays layout (t and caps are
// scanned ~50 times by the bisection — see totalAt). The weights method is
// the allocation-free core behind the package-level reverseWaterfill.
type waterfill struct {
	w, red []float64
	t, cap []float64 // thresholds (1+1/ρ)·row and caps (1−powerFloor)·row
	order  []int
}

// weights solves the one-row subproblem (see reverseWaterfill for the
// derivation) into buffers owned by the receiver. The returned slice is
// valid until the next call.
func (wf *waterfill) weights(row, rho []float64, budget float64) ([]float64, error) {
	n := len(row)
	if len(rho) != n {
		return nil, errWaterfillLen
	}
	have := 0.0
	for _, r := range row {
		have += r
	}
	need := have - budget
	wf.w = resizeFloats(wf.w, n)
	for j := range wf.w {
		wf.w[j] = 1
	}
	if need <= 0 {
		return wf.w, nil
	}
	// Thresholds t_j = (1+1/ρ_j)·row_j: stream j takes reduction
	// Pj = t_j − μ when μ < t_j. Caps c_j = (1−powerFloor)·row_j.
	wf.t = resizeFloats(wf.t, n)
	wf.cap = resizeFloats(wf.cap, n)
	maxRed := 0.0
	for j := 0; j < n; j++ {
		r := rho[j]
		if r <= 0 || math.IsNaN(r) {
			// A dead stream costs no rate: allow taking its power first
			// by giving it an effectively infinite threshold.
			wf.t[j] = math.Inf(1)
		} else {
			wf.t[j] = (1 + 1/r) * row[j]
		}
		wf.cap[j] = (1 - powerFloor) * row[j]
		maxRed += wf.cap[j]
	}
	if need > maxRed {
		return nil, fmt.Errorf("reverse waterfill: need %v exceeds reducible power %v", need, maxRed)
	}
	// Find μ by bisection on total reduction; Σ_j min(cap_j, (t_j−μ)⁺) is
	// non-increasing and piecewise-linear in μ.
	lo, hi := 0.0, 0.0
	for _, t := range wf.t {
		if !math.IsInf(t, 1) && t > hi {
			hi = t
		}
	}
	if hi == 0 {
		hi = 1
	}
	// totalAt(hi) may still exceed `need` if infinite-threshold (dead)
	// streams alone cover it; handle by checking the fixed part first.
	// The bisection evaluates the objective ~50 times, so the paper's
	// canonical 4-stream case gets an unrolled variant.
	if n == 4 {
		for iter := 0; iter < 200; iter++ {
			mid := (lo + hi) / 2
			if wf.totalAt4(mid) > need {
				lo = mid
			} else {
				hi = mid
			}
			if hi-lo <= 1e-15*(1+hi) {
				break
			}
		}
	} else {
		for iter := 0; iter < 200; iter++ {
			mid := (lo + hi) / 2
			if wf.totalAt(mid) > need {
				lo = mid
			} else {
				hi = mid
			}
			if hi-lo <= 1e-15*(1+hi) {
				break
			}
		}
	}
	mu := hi
	// Distribute: reductions at level mu may undershoot `need` slightly
	// (bisection tolerance); spread the residual over unsaturated streams
	// in threshold order.
	wf.red = resizeFloats(wf.red, n)
	got := 0.0
	for j, t := range wf.t {
		wf.red[j] = 0
		r := t - mu
		if r <= 0 {
			continue
		}
		if c := wf.cap[j]; r > c {
			r = c
		}
		wf.red[j] = r
		got += r
	}
	if residual := need - got; residual > 0 {
		order := wf.orderByThreshold()
		for _, j := range order {
			if residual <= 0 {
				break
			}
			room := wf.cap[j] - wf.red[j]
			take := math.Min(room, residual)
			wf.red[j] += take
			residual -= take
		}
		if residual > 1e-9*need {
			return nil, fmt.Errorf("reverse waterfill: could not place residual %v", residual)
		}
	}
	for j := range wf.w {
		if row[j] <= 0 {
			continue
		}
		frac := 1 - wf.red[j]/row[j]
		if frac < powerFloor {
			frac = powerFloor
		}
		if frac > 1 {
			frac = 1
		}
		wf.w[j] = math.Sqrt(frac)
	}
	return wf.w, nil
}

// totalAt is the bisection objective Σ_j min(cap_j, (t_j−μ)⁺). The
// summation order (ascending j) matches the original implementation's, so
// the bisection takes bit-identical branches.
func (wf *waterfill) totalAt(mu float64) float64 {
	s := 0.0
	for j, t := range wf.t {
		red := t - mu
		if red <= 0 {
			continue
		}
		if c := wf.cap[j]; red > c {
			red = c
		}
		s += red
	}
	return s
}

// totalAt4 is totalAt unrolled for four streams: the same four terms,
// tested and summed in the same order (the `!(red <= 0)` form mirrors the
// generic skip exactly, NaN semantics included).
func (wf *waterfill) totalAt4(mu float64) float64 {
	t := wf.t[:4]
	c := wf.cap[:4]
	s := 0.0
	if red := t[0] - mu; !(red <= 0) {
		if red > c[0] {
			red = c[0]
		}
		s += red
	}
	if red := t[1] - mu; !(red <= 0) {
		if red > c[1] {
			red = c[1]
		}
		s += red
	}
	if red := t[2] - mu; !(red <= 0) {
		if red > c[2] {
			red = c[2]
		}
		s += red
	}
	if red := t[3] - mu; !(red <= 0) {
		if red > c[3] {
			red = c[3]
		}
		s += red
	}
	return s
}

// orderByThreshold sorts stream indices by descending threshold into a
// reused buffer. Stable insertion sort: n ≤ |T| is tiny, and stability
// keeps tie order deterministic.
func (wf *waterfill) orderByThreshold() []int {
	n := len(wf.t)
	if cap(wf.order) < n {
		wf.order = make([]int, n)
	} else {
		wf.order = wf.order[:n]
	}
	for i := range wf.order {
		wf.order[i] = i
	}
	for i := 1; i < n; i++ {
		j := wf.order[i]
		k := i - 1
		for k >= 0 && wf.t[wf.order[k]] < wf.t[j] {
			wf.order[k+1] = wf.order[k]
			k--
		}
		wf.order[k+1] = j
	}
	return wf.order
}
