// Package precoding implements the MU-MIMO downlink precoders evaluated in
// the MIDAS paper (§3.1):
//
//   - ZFBF: classic zero-forcing beamforming via the channel pseudoinverse
//     with equal power per stream (optimal under a total power constraint,
//     but oblivious to 802.11ac's per-antenna constraint);
//   - NaiveScaled: the paper's baseline — ZFBF followed by one global
//     scaling factor so the worst antenna meets the per-antenna constraint
//     (Eq. 5), wasting power on the other antennas;
//   - PowerBalanced: the paper's contribution — iterative per-row reverse
//     water-filling (§3.1.2, Eq. 7–9) that scales whole columns to retain
//     the interference-free property while minimising rate loss;
//   - OptimalZF: a numerical reference, maximising the zero-forcing sum
//     rate under per-antenna power constraints by dual subgradient
//     optimisation (the role MATLAB's toolbox plays in Fig. 11).
//
// Conventions: the channel matrix H is |C|×|T| (rows clients, columns
// antennas) with entries h_jk as in Eq. 4. A precoder V is |T|×|C| (rows
// antennas, columns streams). Powers are linear (milliwatt); the received
// power from stream j at client i is |(H·V)_{ij}|².
package precoding

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/matrix"
)

// Problem is one MU-MIMO precoding instance.
type Problem struct {
	// H is the |C|×|T| downlink channel matrix.
	H *matrix.Mat
	// PerAntennaPower is the per-antenna power constraint P (linear mW),
	// Eq. 3 in the paper.
	PerAntennaPower float64
	// Noise is the receiver noise power N0 (linear mW).
	Noise float64
}

// Validate checks the problem is well-formed.
func (p Problem) Validate() error {
	if p.H == nil {
		return errors.New("precoding: nil channel matrix")
	}
	if p.H.Rows() > p.H.Cols() {
		return fmt.Errorf("precoding: %d clients exceed %d antennas", p.H.Rows(), p.H.Cols())
	}
	if p.PerAntennaPower <= 0 {
		return errors.New("precoding: non-positive per-antenna power")
	}
	if p.Noise <= 0 {
		return errors.New("precoding: non-positive noise power")
	}
	return nil
}

// totalPower is the aggregate budget |T|·P used for the equal-split step.
func (p Problem) totalPower() float64 {
	return float64(p.H.Cols()) * p.PerAntennaPower
}

// ZFBF computes the zero-forcing precoder with equal power per stream
// under the *total* power constraint Σ_k Σ_j |v_kj|² = |T|·P (Eq. 1–2).
// The result nulls all inter-stream interference but may violate the
// per-antenna constraint (Eq. 3) on some antennas — the starting point of
// both the naive baseline and MIDAS's power balancing.
//
// This is a convenience wrapper over Solver.ZFBF; callers in hot loops
// should hold a Solver to avoid the per-call allocations.
func ZFBF(p Problem) (*matrix.Mat, error) {
	var s Solver
	v, err := s.ZFBF(p)
	if err != nil {
		return nil, err
	}
	return v.Clone(), nil
}

// NaiveScaled computes the baseline precoder of §5.1: ZFBF with equal
// power, then one global scale factor chosen so the most-loaded antenna
// (Eq. 5) exactly meets the per-antenna constraint. The interference-free
// property is preserved, but antennas other than the worst one are left
// underutilised — severely so in DAS, whose topology imbalance spreads
// row powers widely (Fig. 3).
func NaiveScaled(p Problem) (*matrix.Mat, error) {
	var s Solver
	v, err := s.NaiveScaled(p)
	if err != nil {
		return nil, err
	}
	return v.Clone(), nil
}

// Result carries a computed precoder together with diagnostics.
type Result struct {
	V *matrix.Mat
	// Iterations is the number of row-restoration rounds performed
	// (PowerBalanced) or optimisation iterations (OptimalZF).
	Iterations int
	// Weights are the cumulative per-stream scaling weights applied to
	// the equal-power ZFBF solution (PowerBalanced only).
	Weights []float64
}

// powerFloor is the smallest fraction of a stream's power that reverse
// water-filling may leave, implementing the paper's "zero power allocation
// is not allowed" rule (§3.1.2 requirement (i)).
const powerFloor = 1e-4

// PowerBalanced computes MIDAS's power-balanced precoder (§3.1.2):
//
//  1. start from the equal-power ZFBF solution;
//  2. pick the row (antenna) k* violating the per-antenna constraint by
//     the most;
//  3. compute per-stream power reductions for that row by reverse
//     water-filling (Eq. 9), which takes larger reductions from larger
//     precoding entries because the rate cost of a weight w is log2(w²)
//     regardless of the entry it scales;
//  4. apply each weight to the entire column so the SINR matrix stays
//     diagonal (Fig. 4), and repeat until every row satisfies Eq. 3.
//
// Because reductions are non-negative, restored rows never re-violate and
// the loop terminates after at most |T| rounds.
//
// This is a convenience wrapper over Solver.PowerBalanced; callers in hot
// loops should hold a Solver to avoid the per-call allocations.
func PowerBalanced(p Problem) (*Result, error) {
	var s Solver
	v, iters, err := s.PowerBalanced(p)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(s.Weights()))
	copy(weights, s.Weights())
	return &Result{V: v.Clone(), Iterations: iters, Weights: weights}, nil
}

// reverseWaterfill solves the §3.1.2 subproblem for one violating row:
// choose per-stream power reductions Pj ≥ 0 with Σ_j (row_j − Pj) ≤ budget
// maximising Σ_j log2(1 + w_j²ρ_j), w_j² = 1 − Pj/row_j. The KKT solution
// is Pj = [(1+1/ρ_j)·row_j − μ]⁺ with the water level μ = 1/λ chosen to
// meet the budget. Reductions are capped so no stream drops below
// powerFloor of its current power ("zero power not allowed").
//
// It returns the per-stream amplitude weights w_j ∈ (0, 1].
func reverseWaterfill(row, rho []float64, budget float64) ([]float64, error) {
	var wf waterfill
	w, err := wf.weights(row, rho, budget)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), w...), nil
}

// errWaterfillLen is the length-mismatch error of the water-filling core.
var errWaterfillLen = errors.New("reverse waterfill: length mismatch")

// SINRMatrix returns the |C|×|C| matrix S of Eq. 4: s_ij is the noise-
// normalised power of stream i received at client j. For an exact ZF
// precoder S is diagonal.
func SINRMatrix(h, v *matrix.Mat, noise float64) *matrix.Mat {
	a := h.Mul(v) // a_{ji} = amplitude of stream i at client j
	return sinrMatrixFrom(matrix.New(a.Cols(), a.Rows()), a, noise)
}

// StreamSINRs returns ρ_j for each client j per Eq. 4, including residual
// inter-stream interference: ρ_j = s_jj / (1 + Σ_{i≠j} s_ij).
func StreamSINRs(h, v *matrix.Mat, noise float64) []float64 {
	var s Solver
	return append([]float64(nil), s.StreamSINRs(h, v, noise)...)
}

// SumRate returns Σ_j log2(1+ρ_j) in bit/s/Hz — the paper's capacity
// metric (§5.1).
func SumRate(h, v *matrix.Mat, noise float64) float64 {
	sum := 0.0
	for _, r := range StreamSINRs(h, v, noise) {
		sum += math.Log2(1 + r)
	}
	return sum
}

// RatePerStream returns log2(1+ρ_j) for each stream.
func RatePerStream(h, v *matrix.Mat, noise float64) []float64 {
	rs := StreamSINRs(h, v, noise)
	out := make([]float64, len(rs))
	for j, r := range rs {
		out[j] = math.Log2(1 + r)
	}
	return out
}

// MaxRowPowerViolation returns by how much the precoder's most-loaded
// antenna exceeds the per-antenna budget (0 when compliant).
func MaxRowPowerViolation(v *matrix.Mat, perAntenna float64) float64 {
	_, worst := v.MaxRowPower()
	if worst <= perAntenna {
		return 0
	}
	return worst - perAntenna
}

// OptimalOptions tunes the OptimalZF solver.
type OptimalOptions struct {
	MaxIters int
	Step     float64 // dual subgradient step size
	Tol      float64 // relative duality-residual tolerance
}

// DefaultOptimalOptions returns solver settings adequate for ≤8 antennas.
func DefaultOptimalOptions() OptimalOptions {
	return OptimalOptions{MaxIters: 6000, Step: 0.05, Tol: 1e-8}
}

// OptimalZF numerically maximises the zero-forcing sum rate under the
// per-antenna power constraint: the beam directions are fixed to the ZF
// directions u_j (for square systems the null-space is one-dimensional,
// so this is the full optimum of Eq. 1–3), and the per-stream powers p_j
// solve
//
//	max Σ_j log2(1 + p_j·g_j)   s.t.  Σ_j p_j·|u_kj|² ≤ P ∀k, p_j ≥ 0
//
// by dual subgradient iteration on the antenna multipliers λ_k, with the
// primal waterfilling solution p_j = [1/(ln2·Σ_k λ_k|u_kj|²) − 1/g_j]⁺.
// This is the reproduction's stand-in for the MATLAB numerical toolbox
// the paper compares against in Fig. 11.
func OptimalZF(p Problem, opts OptimalOptions) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	u, err := p.H.PseudoInverse()
	if err != nil {
		return nil, fmt.Errorf("precoding: OptimalZF: %w", err)
	}
	u.NormalizeCols()
	nT, nC := u.Rows(), u.Cols()
	// Effective gains g_j = |h_j · u_j|² / N0.
	g := make([]float64, nC)
	a := p.H.Mul(u)
	for j := 0; j < nC; j++ {
		e := a.At(j, j)
		g[j] = (real(e)*real(e) + imag(e)*imag(e)) / p.Noise
	}
	// |u_kj|².
	u2 := make([][]float64, nT)
	for k := 0; k < nT; k++ {
		u2[k] = make([]float64, nC)
		for j := 0; j < nC; j++ {
			e := u.At(k, j)
			u2[k][j] = real(e)*real(e) + imag(e)*imag(e)
		}
	}
	lambda := make([]float64, nT)
	for k := range lambda {
		lambda[k] = 1 / (math.Ln2 * p.PerAntennaPower * float64(nC))
	}
	pj := make([]float64, nC)
	best := make([]float64, nC)
	bestRate := math.Inf(-1)
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// Primal from duals.
		for j := 0; j < nC; j++ {
			c := 0.0
			for k := 0; k < nT; k++ {
				c += lambda[k] * u2[k][j]
			}
			if c <= 0 {
				pj[j] = p.PerAntennaPower * float64(nT) // cap explosion
				continue
			}
			v := 1/(math.Ln2*c) - 1/g[j]
			if v < 0 {
				v = 0
			}
			pj[j] = v
		}
		// Feasible projection: scale down so every antenna meets P, then
		// score; keep the best feasible solution seen.
		worst := 0.0
		for k := 0; k < nT; k++ {
			s := 0.0
			for j := 0; j < nC; j++ {
				s += pj[j] * u2[k][j]
			}
			if s > worst {
				worst = s
			}
		}
		scale := 1.0
		if worst > p.PerAntennaPower {
			scale = p.PerAntennaPower / worst
		}
		rate := 0.0
		for j := 0; j < nC; j++ {
			rate += math.Log2(1 + scale*pj[j]*g[j])
		}
		if rate > bestRate {
			bestRate = rate
			for j := range best {
				best[j] = scale * pj[j]
			}
		}
		// Dual subgradient step.
		maxResidual := 0.0
		for k := 0; k < nT; k++ {
			s := 0.0
			for j := 0; j < nC; j++ {
				s += pj[j] * u2[k][j]
			}
			grad := s - p.PerAntennaPower
			if r := math.Abs(grad) / p.PerAntennaPower; lambda[k] > 1e-12 && r > maxResidual {
				maxResidual = r
			}
			lambda[k] += opts.Step / math.Sqrt(float64(iters+1)) * grad / p.PerAntennaPower
			if lambda[k] < 0 {
				lambda[k] = 0
			}
		}
		if maxResidual < opts.Tol && iters > 50 {
			break
		}
	}
	v := u.Clone()
	for j := 0; j < nC; j++ {
		v.ScaleCol(j, math.Sqrt(best[j]))
	}
	return &Result{V: v, Iterations: iters}, nil
}

// ZFResidual returns the largest off-diagonal amplitude of H·V relative to
// the largest diagonal amplitude — a dimensionless measure of how well a
// precoder preserves the zero-interference property.
func ZFResidual(h, v *matrix.Mat) float64 {
	a := h.Mul(v)
	maxDiag := 0.0
	for i := 0; i < a.Rows() && i < a.Cols(); i++ {
		if m := cmplx.Abs(a.At(i, i)); m > maxDiag {
			maxDiag = m
		}
	}
	if maxDiag == 0 {
		return math.Inf(1)
	}
	return a.OffDiagMax() / maxDiag
}
