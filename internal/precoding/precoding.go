// Package precoding implements the MU-MIMO downlink precoders evaluated in
// the MIDAS paper (§3.1):
//
//   - ZFBF: classic zero-forcing beamforming via the channel pseudoinverse
//     with equal power per stream (optimal under a total power constraint,
//     but oblivious to 802.11ac's per-antenna constraint);
//   - NaiveScaled: the paper's baseline — ZFBF followed by one global
//     scaling factor so the worst antenna meets the per-antenna constraint
//     (Eq. 5), wasting power on the other antennas;
//   - PowerBalanced: the paper's contribution — iterative per-row reverse
//     water-filling (§3.1.2, Eq. 7–9) that scales whole columns to retain
//     the interference-free property while minimising rate loss;
//   - OptimalZF: a numerical reference, maximising the zero-forcing sum
//     rate under per-antenna power constraints by dual subgradient
//     optimisation (the role MATLAB's toolbox plays in Fig. 11).
//
// Conventions: the channel matrix H is |C|×|T| (rows clients, columns
// antennas) with entries h_jk as in Eq. 4. A precoder V is |T|×|C| (rows
// antennas, columns streams). Powers are linear (milliwatt); the received
// power from stream j at client i is |(H·V)_{ij}|².
package precoding

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/matrix"
)

// Problem is one MU-MIMO precoding instance.
type Problem struct {
	// H is the |C|×|T| downlink channel matrix.
	H *matrix.Mat
	// PerAntennaPower is the per-antenna power constraint P (linear mW),
	// Eq. 3 in the paper.
	PerAntennaPower float64
	// Noise is the receiver noise power N0 (linear mW).
	Noise float64
}

// Validate checks the problem is well-formed.
func (p Problem) Validate() error {
	if p.H == nil {
		return errors.New("precoding: nil channel matrix")
	}
	if p.H.Rows() > p.H.Cols() {
		return fmt.Errorf("precoding: %d clients exceed %d antennas", p.H.Rows(), p.H.Cols())
	}
	if p.PerAntennaPower <= 0 {
		return errors.New("precoding: non-positive per-antenna power")
	}
	if p.Noise <= 0 {
		return errors.New("precoding: non-positive noise power")
	}
	return nil
}

// totalPower is the aggregate budget |T|·P used for the equal-split step.
func (p Problem) totalPower() float64 {
	return float64(p.H.Cols()) * p.PerAntennaPower
}

// ZFBF computes the zero-forcing precoder with equal power per stream
// under the *total* power constraint Σ_k Σ_j |v_kj|² = |T|·P (Eq. 1–2).
// The result nulls all inter-stream interference but may violate the
// per-antenna constraint (Eq. 3) on some antennas — the starting point of
// both the naive baseline and MIDAS's power balancing.
func ZFBF(p Problem) (*matrix.Mat, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v, err := p.H.PseudoInverse() // |T|×|C|
	if err != nil {
		return nil, fmt.Errorf("precoding: ZFBF: %w", err)
	}
	v.NormalizeCols()
	streamPower := p.totalPower() / float64(v.Cols())
	for j := 0; j < v.Cols(); j++ {
		v.ScaleCol(j, math.Sqrt(streamPower))
	}
	return v, nil
}

// NaiveScaled computes the baseline precoder of §5.1: ZFBF with equal
// power, then one global scale factor chosen so the most-loaded antenna
// (Eq. 5) exactly meets the per-antenna constraint. The interference-free
// property is preserved, but antennas other than the worst one are left
// underutilised — severely so in DAS, whose topology imbalance spreads
// row powers widely (Fig. 3).
func NaiveScaled(p Problem) (*matrix.Mat, error) {
	v, err := ZFBF(p)
	if err != nil {
		return nil, err
	}
	_, worst := v.MaxRowPower()
	if worst > p.PerAntennaPower {
		scale := math.Sqrt(p.PerAntennaPower / worst)
		for j := 0; j < v.Cols(); j++ {
			v.ScaleCol(j, scale)
		}
	}
	return v, nil
}

// Result carries a computed precoder together with diagnostics.
type Result struct {
	V *matrix.Mat
	// Iterations is the number of row-restoration rounds performed
	// (PowerBalanced) or optimisation iterations (OptimalZF).
	Iterations int
	// Weights are the cumulative per-stream scaling weights applied to
	// the equal-power ZFBF solution (PowerBalanced only).
	Weights []float64
}

// powerFloor is the smallest fraction of a stream's power that reverse
// water-filling may leave, implementing the paper's "zero power allocation
// is not allowed" rule (§3.1.2 requirement (i)).
const powerFloor = 1e-4

// PowerBalanced computes MIDAS's power-balanced precoder (§3.1.2):
//
//  1. start from the equal-power ZFBF solution;
//  2. pick the row (antenna) k* violating the per-antenna constraint by
//     the most;
//  3. compute per-stream power reductions for that row by reverse
//     water-filling (Eq. 9), which takes larger reductions from larger
//     precoding entries because the rate cost of a weight w is log2(w²)
//     regardless of the entry it scales;
//  4. apply each weight to the entire column so the SINR matrix stays
//     diagonal (Fig. 4), and repeat until every row satisfies Eq. 3.
//
// Because reductions are non-negative, restored rows never re-violate and
// the loop terminates after at most |T| rounds.
func PowerBalanced(p Problem) (*Result, error) {
	v, err := ZFBF(p)
	if err != nil {
		return nil, err
	}
	nT, nC := v.Rows(), v.Cols()
	weights := make([]float64, nC)
	for j := range weights {
		weights[j] = 1
	}
	const tol = 1e-12
	iters := 0
	for ; iters < nT+1; iters++ {
		k, worst := v.MaxRowPower()
		if worst <= p.PerAntennaPower*(1+tol) {
			break
		}
		// Current post-ZF stream SNRs ρ_j (interference is nulled, so
		// SINR = SNR = |h_j·v_j|²/N0).
		rho := streamSNRs(p.H, v, p.Noise)
		row := make([]float64, nC)
		for j := 0; j < nC; j++ {
			e := v.At(k, j)
			row[j] = real(e)*real(e) + imag(e)*imag(e)
		}
		w, err := reverseWaterfill(row, rho, p.PerAntennaPower)
		if err != nil {
			return nil, fmt.Errorf("precoding: row %d: %w", k, err)
		}
		for j := 0; j < nC; j++ {
			if w[j] < 1 {
				v.ScaleCol(j, w[j])
				weights[j] *= w[j]
			}
		}
	}
	if _, worst := v.MaxRowPower(); worst > p.PerAntennaPower*(1+1e-6) {
		return nil, fmt.Errorf("precoding: power balancing did not converge (row power %v > %v)",
			worst, p.PerAntennaPower)
	}
	return &Result{V: v, Iterations: iters, Weights: weights}, nil
}

// reverseWaterfill solves the §3.1.2 subproblem for one violating row:
// choose per-stream power reductions Pj ≥ 0 with Σ_j (row_j − Pj) ≤ budget
// maximising Σ_j log2(1 + w_j²ρ_j), w_j² = 1 − Pj/row_j. The KKT solution
// is Pj = [(1+1/ρ_j)·row_j − μ]⁺ with the water level μ = 1/λ chosen to
// meet the budget. Reductions are capped so no stream drops below
// powerFloor of its current power ("zero power not allowed").
//
// It returns the per-stream amplitude weights w_j ∈ (0, 1].
func reverseWaterfill(row, rho []float64, budget float64) ([]float64, error) {
	n := len(row)
	if len(rho) != n {
		return nil, errors.New("reverse waterfill: length mismatch")
	}
	have := 0.0
	for _, r := range row {
		have += r
	}
	need := have - budget
	w := make([]float64, n)
	for j := range w {
		w[j] = 1
	}
	if need <= 0 {
		return w, nil
	}
	// Thresholds t_j = (1+1/ρ_j)·row_j: stream j takes reduction
	// Pj = t_j − μ when μ < t_j. Caps c_j = (1−powerFloor)·row_j.
	type stream struct {
		t, cap float64
		idx    int
	}
	ss := make([]stream, n)
	maxRed := 0.0
	for j := range ss {
		r := rho[j]
		if r <= 0 || math.IsNaN(r) {
			// A dead stream costs no rate: allow taking its power first
			// by giving it an effectively infinite threshold.
			ss[j] = stream{t: math.Inf(1), cap: (1 - powerFloor) * row[j], idx: j}
		} else {
			ss[j] = stream{t: (1 + 1/r) * row[j], cap: (1 - powerFloor) * row[j], idx: j}
		}
		maxRed += ss[j].cap
	}
	if need > maxRed {
		return nil, fmt.Errorf("reverse waterfill: need %v exceeds reducible power %v", need, maxRed)
	}
	// Find μ by bisection on total reduction; Σ_j min(cap_j, (t_j−μ)⁺) is
	// non-increasing and piecewise-linear in μ.
	total := func(mu float64) float64 {
		s := 0.0
		for _, st := range ss {
			red := st.t - mu
			if red <= 0 {
				continue
			}
			if red > st.cap {
				red = st.cap
			}
			s += red
		}
		return s
	}
	lo, hi := 0.0, 0.0
	for _, st := range ss {
		if !math.IsInf(st.t, 1) && st.t > hi {
			hi = st.t
		}
	}
	if hi == 0 {
		hi = 1
	}
	// total(hi) may still exceed `need` if infinite-threshold (dead)
	// streams alone cover it; handle by checking the fixed part first.
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if total(mid) > need {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-15*(1+hi) {
			break
		}
	}
	mu := hi
	// Distribute: reductions at level mu may undershoot `need` slightly
	// (bisection tolerance); spread the residual over unsaturated streams
	// in threshold order.
	red := make([]float64, n)
	got := 0.0
	for _, st := range ss {
		r := st.t - mu
		if r <= 0 {
			continue
		}
		if r > st.cap {
			r = st.cap
		}
		red[st.idx] = r
		got += r
	}
	if residual := need - got; residual > 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return ss[order[a]].t > ss[order[b]].t })
		for _, j := range order {
			if residual <= 0 {
				break
			}
			room := ss[j].cap - red[ss[j].idx]
			take := math.Min(room, residual)
			red[ss[j].idx] += take
			residual -= take
		}
		if residual > 1e-9*need {
			return nil, fmt.Errorf("reverse waterfill: could not place residual %v", residual)
		}
	}
	for j := range w {
		if row[j] <= 0 {
			continue
		}
		frac := 1 - red[j]/row[j]
		if frac < powerFloor {
			frac = powerFloor
		}
		if frac > 1 {
			frac = 1
		}
		w[j] = math.Sqrt(frac)
	}
	return w, nil
}

// streamSNRs returns ρ_j = |(H·V)_{jj}|²/N0 for each stream, the post-ZF
// SNR of the desired stream at its client.
func streamSNRs(h, v *matrix.Mat, noise float64) []float64 {
	a := h.Mul(v)
	out := make([]float64, a.Cols())
	for j := range out {
		e := a.At(j, j)
		out[j] = (real(e)*real(e) + imag(e)*imag(e)) / noise
	}
	return out
}

// SINRMatrix returns the |C|×|C| matrix S of Eq. 4: s_ij is the noise-
// normalised power of stream i received at client j. For an exact ZF
// precoder S is diagonal.
func SINRMatrix(h, v *matrix.Mat, noise float64) *matrix.Mat {
	a := h.Mul(v) // a_{ji} = amplitude of stream i at client j
	n := a.Rows()
	s := matrix.New(a.Cols(), n)
	for j := 0; j < n; j++ {
		for i := 0; i < a.Cols(); i++ {
			e := a.At(j, i)
			s.Set(i, j, complex((real(e)*real(e)+imag(e)*imag(e))/noise, 0))
		}
	}
	return s
}

// StreamSINRs returns ρ_j for each client j per Eq. 4, including residual
// inter-stream interference: ρ_j = s_jj / (1 + Σ_{i≠j} s_ij).
func StreamSINRs(h, v *matrix.Mat, noise float64) []float64 {
	s := SINRMatrix(h, v, noise)
	n := h.Rows()
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		interf := 0.0
		for i := 0; i < n; i++ {
			if i != j {
				interf += real(s.At(i, j))
			}
		}
		out[j] = real(s.At(j, j)) / (1 + interf)
	}
	return out
}

// SumRate returns Σ_j log2(1+ρ_j) in bit/s/Hz — the paper's capacity
// metric (§5.1).
func SumRate(h, v *matrix.Mat, noise float64) float64 {
	sum := 0.0
	for _, r := range StreamSINRs(h, v, noise) {
		sum += math.Log2(1 + r)
	}
	return sum
}

// RatePerStream returns log2(1+ρ_j) for each stream.
func RatePerStream(h, v *matrix.Mat, noise float64) []float64 {
	rs := StreamSINRs(h, v, noise)
	out := make([]float64, len(rs))
	for j, r := range rs {
		out[j] = math.Log2(1 + r)
	}
	return out
}

// MaxRowPowerViolation returns by how much the precoder's most-loaded
// antenna exceeds the per-antenna budget (0 when compliant).
func MaxRowPowerViolation(v *matrix.Mat, perAntenna float64) float64 {
	_, worst := v.MaxRowPower()
	if worst <= perAntenna {
		return 0
	}
	return worst - perAntenna
}

// OptimalOptions tunes the OptimalZF solver.
type OptimalOptions struct {
	MaxIters int
	Step     float64 // dual subgradient step size
	Tol      float64 // relative duality-residual tolerance
}

// DefaultOptimalOptions returns solver settings adequate for ≤8 antennas.
func DefaultOptimalOptions() OptimalOptions {
	return OptimalOptions{MaxIters: 6000, Step: 0.05, Tol: 1e-8}
}

// OptimalZF numerically maximises the zero-forcing sum rate under the
// per-antenna power constraint: the beam directions are fixed to the ZF
// directions u_j (for square systems the null-space is one-dimensional,
// so this is the full optimum of Eq. 1–3), and the per-stream powers p_j
// solve
//
//	max Σ_j log2(1 + p_j·g_j)   s.t.  Σ_j p_j·|u_kj|² ≤ P ∀k, p_j ≥ 0
//
// by dual subgradient iteration on the antenna multipliers λ_k, with the
// primal waterfilling solution p_j = [1/(ln2·Σ_k λ_k|u_kj|²) − 1/g_j]⁺.
// This is the reproduction's stand-in for the MATLAB numerical toolbox
// the paper compares against in Fig. 11.
func OptimalZF(p Problem, opts OptimalOptions) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	u, err := p.H.PseudoInverse()
	if err != nil {
		return nil, fmt.Errorf("precoding: OptimalZF: %w", err)
	}
	u.NormalizeCols()
	nT, nC := u.Rows(), u.Cols()
	// Effective gains g_j = |h_j · u_j|² / N0.
	g := make([]float64, nC)
	a := p.H.Mul(u)
	for j := 0; j < nC; j++ {
		e := a.At(j, j)
		g[j] = (real(e)*real(e) + imag(e)*imag(e)) / p.Noise
	}
	// |u_kj|².
	u2 := make([][]float64, nT)
	for k := 0; k < nT; k++ {
		u2[k] = make([]float64, nC)
		for j := 0; j < nC; j++ {
			e := u.At(k, j)
			u2[k][j] = real(e)*real(e) + imag(e)*imag(e)
		}
	}
	lambda := make([]float64, nT)
	for k := range lambda {
		lambda[k] = 1 / (math.Ln2 * p.PerAntennaPower * float64(nC))
	}
	pj := make([]float64, nC)
	best := make([]float64, nC)
	bestRate := math.Inf(-1)
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// Primal from duals.
		for j := 0; j < nC; j++ {
			c := 0.0
			for k := 0; k < nT; k++ {
				c += lambda[k] * u2[k][j]
			}
			if c <= 0 {
				pj[j] = p.PerAntennaPower * float64(nT) // cap explosion
				continue
			}
			v := 1/(math.Ln2*c) - 1/g[j]
			if v < 0 {
				v = 0
			}
			pj[j] = v
		}
		// Feasible projection: scale down so every antenna meets P, then
		// score; keep the best feasible solution seen.
		worst := 0.0
		for k := 0; k < nT; k++ {
			s := 0.0
			for j := 0; j < nC; j++ {
				s += pj[j] * u2[k][j]
			}
			if s > worst {
				worst = s
			}
		}
		scale := 1.0
		if worst > p.PerAntennaPower {
			scale = p.PerAntennaPower / worst
		}
		rate := 0.0
		for j := 0; j < nC; j++ {
			rate += math.Log2(1 + scale*pj[j]*g[j])
		}
		if rate > bestRate {
			bestRate = rate
			for j := range best {
				best[j] = scale * pj[j]
			}
		}
		// Dual subgradient step.
		maxResidual := 0.0
		for k := 0; k < nT; k++ {
			s := 0.0
			for j := 0; j < nC; j++ {
				s += pj[j] * u2[k][j]
			}
			grad := s - p.PerAntennaPower
			if r := math.Abs(grad) / p.PerAntennaPower; lambda[k] > 1e-12 && r > maxResidual {
				maxResidual = r
			}
			lambda[k] += opts.Step / math.Sqrt(float64(iters+1)) * grad / p.PerAntennaPower
			if lambda[k] < 0 {
				lambda[k] = 0
			}
		}
		if maxResidual < opts.Tol && iters > 50 {
			break
		}
	}
	v := u.Clone()
	for j := 0; j < nC; j++ {
		v.ScaleCol(j, math.Sqrt(best[j]))
	}
	return &Result{V: v, Iterations: iters}, nil
}

// ZFResidual returns the largest off-diagonal amplitude of H·V relative to
// the largest diagonal amplitude — a dimensionless measure of how well a
// precoder preserves the zero-interference property.
func ZFResidual(h, v *matrix.Mat) float64 {
	a := h.Mul(v)
	maxDiag := 0.0
	for i := 0; i < a.Rows() && i < a.Cols(); i++ {
		if m := cmplx.Abs(a.At(i, i)); m > maxDiag {
			maxDiag = m
		}
	}
	if maxDiag == 0 {
		return math.Inf(1)
	}
	return a.OffDiagMax() / maxDiag
}
