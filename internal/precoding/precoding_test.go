package precoding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/topology"
)

// randomProblem builds a well-conditioned random MU-MIMO instance with
// unit-scale channel entries.
func randomProblem(s *rng.Source, clients, antennas int) Problem {
	h := matrix.New(clients, antennas)
	for i := 0; i < clients; i++ {
		for j := 0; j < antennas; j++ {
			h.Set(i, j, s.ComplexCircular(1))
		}
	}
	return Problem{H: h, PerAntennaPower: 1, Noise: 0.01}
}

// dasProblem builds a problem from an actual DAS deployment, exercising
// the realistic (tiny) gain scales and topology imbalance.
func dasProblem(seed int64, mode topology.Mode) Problem {
	d := topology.SingleAP(topology.DefaultConfig(mode), rng.New(seed))
	m := d.Model(channel.Default(), rng.New(seed+1000))
	return Problem{
		H:               m.Matrix(nil, nil),
		PerAntennaPower: channel.Default().TxPowerLinear(),
		Noise:           channel.Default().NoiseLinear(),
	}
}

func TestValidate(t *testing.T) {
	s := rng.New(1)
	good := randomProblem(s, 3, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.H = nil
	if bad.Validate() == nil {
		t.Error("nil H should fail")
	}
	bad = good
	bad.PerAntennaPower = 0
	if bad.Validate() == nil {
		t.Error("zero power should fail")
	}
	bad = good
	bad.Noise = -1
	if bad.Validate() == nil {
		t.Error("negative noise should fail")
	}
	tall := randomProblem(s, 5, 3)
	if tall.Validate() == nil {
		t.Error("more clients than antennas should fail")
	}
}

func TestZFBFNullsInterference(t *testing.T) {
	s := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(s, 2+s.Intn(3), 4)
		v, err := ZFBF(p)
		if err != nil {
			t.Fatal(err)
		}
		if r := ZFResidual(p.H, v); r > 1e-8 {
			t.Fatalf("ZF residual = %v", r)
		}
	}
}

func TestZFBFTotalPower(t *testing.T) {
	s := rng.New(3)
	p := randomProblem(s, 4, 4)
	v, err := ZFBF(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for k := 0; k < v.Rows(); k++ {
		total += v.RowPower(k)
	}
	want := p.totalPower()
	if math.Abs(total-want) > 1e-9*want {
		t.Errorf("total power = %v, want %v", total, want)
	}
	// Equal power per stream.
	for j := 0; j < v.Cols(); j++ {
		if got := v.ColPower(j); math.Abs(got-want/4) > 1e-9*want {
			t.Errorf("stream %d power = %v, want %v", j, got, want/4)
		}
	}
}

func TestNaiveScaledMeetsConstraint(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := dasProblem(seed, topology.DAS)
		v, err := NaiveScaled(p)
		if err != nil {
			t.Fatal(err)
		}
		if viol := MaxRowPowerViolation(v, p.PerAntennaPower*(1+1e-9)); viol > 0 {
			t.Errorf("seed %d: naive violates constraint by %v", seed, viol)
		}
		if r := ZFResidual(p.H, v); r > 1e-8 {
			t.Errorf("seed %d: naive broke ZF property: %v", seed, r)
		}
	}
}

func TestNaiveScaledWorstAntennaTight(t *testing.T) {
	// When ZFBF violates the constraint, the naive scaling leaves the
	// worst antenna exactly at P.
	for seed := int64(0); seed < 20; seed++ {
		p := dasProblem(seed, topology.DAS)
		raw, _ := ZFBF(p)
		_, rawWorst := raw.MaxRowPower()
		if rawWorst <= p.PerAntennaPower {
			continue
		}
		v, _ := NaiveScaled(p)
		_, worst := v.MaxRowPower()
		if math.Abs(worst-p.PerAntennaPower) > 1e-6*p.PerAntennaPower {
			t.Errorf("seed %d: worst row power %v, want %v", seed, worst, p.PerAntennaPower)
		}
	}
}

func TestPowerBalancedInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, mode := range []topology.Mode{topology.CAS, topology.DAS} {
			p := dasProblem(seed, mode)
			res, err := PowerBalanced(p)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			v := res.V
			// (1) Per-antenna constraint satisfied.
			if viol := MaxRowPowerViolation(v, p.PerAntennaPower*(1+1e-6)); viol > 0 {
				t.Errorf("seed %d %v: violates per-antenna power by %v", seed, mode, viol)
			}
			// (2) Interference-free property retained.
			if r := ZFResidual(p.H, v); r > 1e-7 {
				t.Errorf("seed %d %v: ZF residual %v", seed, mode, r)
			}
			// (3) Converged within |T| rounds.
			if res.Iterations > p.H.Cols() {
				t.Errorf("seed %d %v: %d iterations > |T|", seed, mode, res.Iterations)
			}
			// (4) Weights in (0, 1].
			for j, w := range res.Weights {
				if w <= 0 || w > 1+1e-12 {
					t.Errorf("seed %d %v: weight[%d] = %v", seed, mode, j, w)
				}
			}
			// (5) No stream fully silenced.
			for j := 0; j < v.Cols(); j++ {
				if v.ColPower(j) == 0 {
					t.Errorf("seed %d %v: stream %d has zero power", seed, mode, j)
				}
			}
		}
	}
}

func TestPowerBalancedBeatsNaive(t *testing.T) {
	// The contribution claim: on DAS topologies, power-balanced precoding
	// should (almost always) achieve a higher sum rate than the naive
	// global scaling, markedly so in the median.
	wins, total := 0, 0
	var gainSum float64
	for seed := int64(0); seed < 60; seed++ {
		p := dasProblem(seed, topology.DAS)
		naive, err1 := NaiveScaled(p)
		bal, err2 := PowerBalanced(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v %v", seed, err1, err2)
		}
		rn := SumRate(p.H, naive, p.Noise)
		rb := SumRate(p.H, bal.V, p.Noise)
		if rb >= rn-1e-9 {
			wins++
		}
		gainSum += rb - rn
		total++
	}
	if wins < total*95/100 {
		t.Errorf("power-balanced beats naive in only %d/%d topologies", wins, total)
	}
	if gainSum <= 0 {
		t.Errorf("mean gain %v should be positive", gainSum/float64(total))
	}
}

func TestPowerBalancedNoopWhenFeasible(t *testing.T) {
	// If equal-power ZFBF already satisfies the per-antenna constraint,
	// PowerBalanced must not change anything. With an orthonormal channel
	// (H = I) the ZFBF precoder is diagonal and every antenna carries
	// exactly P, so the instance is feasible with zero slack.
	p := Problem{H: matrix.Identity(4), PerAntennaPower: 1, Noise: 0.01}
	res, err := PowerBalanced(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("iterations = %d, want 0", res.Iterations)
	}
	for _, w := range res.Weights {
		if w != 1 {
			t.Errorf("weights should all be 1, got %v", res.Weights)
		}
	}
}

func TestReverseWaterfillBudgetMet(t *testing.T) {
	row := []float64{4, 1, 0.5, 0.1}
	rho := []float64{100, 50, 20, 10}
	budget := 2.0
	w, err := reverseWaterfill(row, rho, budget)
	if err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for j := range row {
		after += w[j] * w[j] * row[j]
	}
	if after > budget*(1+1e-9) {
		t.Errorf("row power after reduction = %v > budget %v", after, budget)
	}
	for j, wj := range w {
		if wj <= 0 || wj > 1 {
			t.Errorf("w[%d] = %v out of (0,1]", j, wj)
		}
	}
}

func TestReverseWaterfillTakesFromLargeEntries(t *testing.T) {
	// With equal SNRs, the KKT solution reduces large precoding entries
	// more (absolute reduction grows with entry size).
	row := []float64{4, 0.2}
	rho := []float64{50, 50}
	w, err := reverseWaterfill(row, rho, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	red0 := (1 - w[0]*w[0]) * row[0]
	red1 := (1 - w[1]*w[1]) * row[1]
	if red0 <= red1 {
		t.Errorf("large entry reduced by %v, small by %v — want large > small", red0, red1)
	}
}

func TestReverseWaterfillNoReductionNeeded(t *testing.T) {
	w, err := reverseWaterfill([]float64{0.1, 0.2}, []float64{10, 10}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, wj := range w {
		if wj != 1 {
			t.Errorf("no reduction needed but w = %v", w)
		}
	}
}

func TestReverseWaterfillImpossibleBudget(t *testing.T) {
	// Budget smaller than the power floor allows.
	_, err := reverseWaterfill([]float64{1, 1}, []float64{10, 10}, 1e-9)
	if err == nil {
		t.Error("expected error for unreachable budget")
	}
}

func TestReverseWaterfillDeadStream(t *testing.T) {
	// A zero-SNR stream should absorb reductions first.
	row := []float64{1, 1}
	rho := []float64{0, 100}
	w, err := reverseWaterfill(row, rho, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] > w[1] {
		t.Errorf("dead stream kept more power: w = %v", w)
	}
}

func TestSINRMatrixDiagonalForZF(t *testing.T) {
	s := rng.New(7)
	p := randomProblem(s, 4, 4)
	v, _ := ZFBF(p)
	sm := SINRMatrix(p.H, v, p.Noise)
	diagMin := math.Inf(1)
	for j := 0; j < 4; j++ {
		if d := real(sm.At(j, j)); d < diagMin {
			diagMin = d
		}
	}
	if off := sm.OffDiagMax(); off > 1e-12*diagMin {
		t.Errorf("SINR matrix not diagonal: offmax %v vs diagmin %v", off, diagMin)
	}
}

func TestStreamSINRsWithInterference(t *testing.T) {
	// Hand-crafted: identity channel, non-ZF precoder with known leakage.
	h := matrix.Identity(2)
	v := matrix.FromRows([][]complex128{{1, 0.5}, {0, 1}})
	// Client 0 receives stream0 power 1, stream1 power 0.25;
	// client 1 receives stream1 power 1, stream0 power 0.
	noise := 1.0
	sinrs := StreamSINRs(h, v, noise)
	want0 := 1.0 / (1 + 0.25)
	if math.Abs(sinrs[0]-want0) > 1e-12 {
		t.Errorf("sinr0 = %v, want %v", sinrs[0], want0)
	}
	if math.Abs(sinrs[1]-1) > 1e-12 {
		t.Errorf("sinr1 = %v, want 1", sinrs[1])
	}
}

func TestSumRateMatchesManual(t *testing.T) {
	h := matrix.Identity(2)
	v := matrix.Identity(2).Scale(2) // each stream power 4, SNR 4
	got := SumRate(h, v, 1)
	want := 2 * math.Log2(5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SumRate = %v, want %v", got, want)
	}
	rates := RatePerStream(h, v, 1)
	if len(rates) != 2 || math.Abs(rates[0]-math.Log2(5)) > 1e-12 {
		t.Errorf("RatePerStream = %v", rates)
	}
}

func TestOptimalZFFeasibleAndBeatsNaive(t *testing.T) {
	opts := DefaultOptimalOptions()
	for seed := int64(0); seed < 15; seed++ {
		p := dasProblem(seed, topology.DAS)
		res, err := OptimalZF(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if viol := MaxRowPowerViolation(res.V, p.PerAntennaPower*(1+1e-6)); viol > 0 {
			t.Errorf("seed %d: optimal violates constraint by %v", seed, viol)
		}
		if r := ZFResidual(p.H, res.V); r > 1e-7 {
			t.Errorf("seed %d: optimal broke ZF: %v", seed, r)
		}
		naive, _ := NaiveScaled(p)
		rOpt := SumRate(p.H, res.V, p.Noise)
		rNaive := SumRate(p.H, naive, p.Noise)
		if rOpt < rNaive-1e-6 {
			t.Errorf("seed %d: optimal %v below naive %v", seed, rOpt, rNaive)
		}
	}
}

func TestPowerBalancedNearOptimal(t *testing.T) {
	// Fig 11 claim: MIDAS precoding within ≈99% of the numerical optimum
	// (trace-based). Allow a small tolerance band in the aggregate.
	var balSum, optSum float64
	opts := DefaultOptimalOptions()
	for seed := int64(100); seed < 120; seed++ {
		p := dasProblem(seed, topology.DAS)
		bal, err := PowerBalanced(p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalZF(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		balSum += SumRate(p.H, bal.V, p.Noise)
		optSum += SumRate(p.H, opt.V, p.Noise)
	}
	if ratio := balSum / optSum; ratio < 0.93 {
		t.Errorf("power-balanced/optimal aggregate rate ratio = %v, want ≥0.93", ratio)
	}
}

// Property test: on random instances, PowerBalanced always produces a
// feasible, interference-free precoder with monotone weights.
func TestPowerBalancedProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(3)
		p := randomProblem(s, n, n)
		res, err := PowerBalanced(p)
		if err != nil {
			return false
		}
		if MaxRowPowerViolation(res.V, p.PerAntennaPower*(1+1e-6)) > 0 {
			return false
		}
		return ZFResidual(p.H, res.V) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The headline Fig 3 shape: the naive baseline loses far more capacity
// (vs unconstrained ZFBF) on DAS than on CAS topologies.
func TestNaiveLossLargerOnDAS(t *testing.T) {
	loss := func(mode topology.Mode) float64 {
		sum := 0.0
		for seed := int64(0); seed < 40; seed++ {
			p := dasProblem(seed, mode)
			ideal, _ := ZFBF(p)
			naive, _ := NaiveScaled(p)
			sum += SumRate(p.H, ideal, p.Noise) - SumRate(p.H, naive, p.Noise)
		}
		return sum / 40
	}
	casLoss, dasLoss := loss(topology.CAS), loss(topology.DAS)
	if dasLoss <= casLoss {
		t.Errorf("naive scaling loss: DAS %v should exceed CAS %v", dasLoss, casLoss)
	}
}

// BenchmarkPowerBalanced4x4 measures the steady-state hot path — a
// long-lived Solver, as every sim.Station and runner worker holds one.
// Seed 8 matches internal/bench.BenchProblem4x4 (the committed "before"
// column in BENCH_PR2.json measures the frozen pre-workspace
// implementation on this exact problem); it runs two reverse-water-filling
// rounds.
func BenchmarkPowerBalanced4x4(b *testing.B) {
	p := dasProblem(8, topology.DAS)
	s := NewSolver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PowerBalanced(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerBalancedAlloc4x4 measures the allocating convenience
// wrapper (fresh Solver + cloned result per call).
func BenchmarkPowerBalancedAlloc4x4(b *testing.B) {
	p := dasProblem(8, topology.DAS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PowerBalanced(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerBalanced8x8 covers the large-scale (8-antenna) shape.
func BenchmarkPowerBalanced8x8(b *testing.B) {
	s8 := rng.New(99)
	p := randomProblem(s8, 8, 8)
	p.PerAntennaPower = channel.Default().TxPowerLinear()
	p.Noise = channel.Default().NoiseLinear()
	s := NewSolver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PowerBalanced(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSINRMatrix4x4 measures the per-TXOP rate-accounting kernel.
func BenchmarkSINRMatrix4x4(b *testing.B) {
	p := dasProblem(8, topology.DAS)
	s := NewSolver()
	v, _, err := s.PowerBalanced(p)
	if err != nil {
		b.Fatal(err)
	}
	v = v.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SINRMatrix(p.H, v, p.Noise)
	}
}

func BenchmarkOptimalZF4x4(b *testing.B) {
	p := dasProblem(1, topology.DAS)
	opts := DefaultOptimalOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalZF(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}
