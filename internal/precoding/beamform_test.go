package precoding

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/matrix"
	"repro/internal/rng"
)

func TestEGTCoherentCombining(t *testing.T) {
	// Random channel: EGT must beat any single antenna and achieve the
	// analytic EGT power (Σ|h_k|)²·P.
	s := rng.New(1)
	h := make([]complex128, 4)
	for k := range h {
		h[k] = s.ComplexCircular(1)
	}
	const p = 2.0
	v, err := EGT(h, p)
	if err != nil {
		t.Fatal(err)
	}
	got := BeamformSNR(h, v, 1)
	sumAbs := 0.0
	best := 0.0
	for _, hk := range h {
		a := cmplx.Abs(hk)
		sumAbs += a
		if a*a*p > best {
			best = a * a * p
		}
	}
	want := sumAbs * sumAbs * p
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("EGT SNR = %v, want %v", got, want)
	}
	if got <= best {
		t.Errorf("EGT %v should beat best single antenna %v", got, best)
	}
}

func TestEGTRespectsPerAntennaPower(t *testing.T) {
	s := rng.New(2)
	h := make([]complex128, 4)
	for k := range h {
		h[k] = s.ComplexCircular(1)
	}
	v, err := EGT(h, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if pw := v.RowPower(k); pw > 3.0*(1+1e-12) {
			t.Errorf("antenna %d power %v exceeds 3.0", k, pw)
		}
	}
}

func TestEGTZeroEntryStaysSilent(t *testing.T) {
	h := []complex128{1, 0, 2i}
	v, err := EGT(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.At(1, 0) != 0 {
		t.Error("zero-channel antenna should stay silent")
	}
}

func TestEGTErrors(t *testing.T) {
	if _, err := EGT(nil, 1); err == nil {
		t.Error("empty channel should error")
	}
	if _, err := EGT([]complex128{1}, 0); err == nil {
		t.Error("zero power should error")
	}
}

func TestLocalizedAntennasWindow(t *testing.T) {
	// Powers: 1, 0.5 (-3dB), 0.01 (-20dB).
	h := []complex128{1, complex(math.Sqrt(0.5), 0), 0.1}
	idx := LocalizedAntennas(h, 6)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("6 dB window = %v, want [0 1]", idx)
	}
	idx = LocalizedAntennas(h, 30)
	if len(idx) != 3 {
		t.Errorf("30 dB window = %v, want all", idx)
	}
	if got := LocalizedAntennas([]complex128{0, 0}, 6); len(got) != 1 {
		t.Errorf("dead channel should still return one antenna: %v", got)
	}
}

func TestLocalizedEGTSilencesFarAntennas(t *testing.T) {
	h := []complex128{1, 1e-4} // second antenna 80 dB down
	v, idx, err := LocalizedEGT(h, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("neighbourhood = %v", idx)
	}
	if v.At(1, 0) != 0 {
		t.Error("far antenna should be silent")
	}
	if v.At(0, 0) == 0 {
		t.Error("near antenna should transmit")
	}
}

// §7's tradeoff, quantified: localized beamforming loses little SNR when
// the excluded antennas are weak.
func TestLocalizedEGTSNRLossSmall(t *testing.T) {
	s := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		h := make([]complex128, 4)
		h[0] = s.ComplexCircular(1)
		h[1] = s.ComplexCircular(1)
		h[2] = s.ComplexCircular(1e-4) // two far antennas
		h[3] = s.ComplexCircular(1e-4)
		full, err := EGT(h, 1)
		if err != nil {
			t.Fatal(err)
		}
		local, _, err := LocalizedEGT(h, 1, 12)
		if err != nil {
			t.Fatal(err)
		}
		fullSNR := BeamformSNR(h, full, 1e-3)
		localSNR := BeamformSNR(h, local, 1e-3)
		// An excluded antenna sits ≥12 dB below the best (amplitude
		// ratio ≤ 1/4), so even excluding one right at the window edge
		// keeps localized/full ≥ (1/(1+1/4))² ≈ 0.64 per exclusion; the
		// far antennas at -80 dB cost nothing measurable.
		if localSNR < 0.55*fullSNR {
			t.Errorf("trial %d: localized SNR %v lost too much of full %v", trial, localSNR, fullSNR)
		}
	}
}

func TestBeamformSNRHandMade(t *testing.T) {
	h := []complex128{2}
	v := matrix.New(1, 1)
	v.Set(0, 0, 3)
	if got := BeamformSNR(h, v, 4); got != 9 {
		t.Errorf("SNR = %v, want 9 (|2·3|²/4)", got)
	}
}
