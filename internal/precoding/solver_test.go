package precoding

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// bitIdenticalMats fails unless got and want match bitwise — the Solver
// promises results identical to the allocating API, not merely close.
func bitIdenticalMats(t *testing.T, name string, got, want interface {
	Rows() int
	Cols() int
	At(int, int) complex128
}) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %d×%d, want %d×%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v (bitwise)", name, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestSolverBitExact pins the Solver's results to the package-level
// functions' across a spread of problems: random i.i.d. channels at the
// shapes the DES exercises, and realistic CAS/DAS deployments where the
// power-balancing loop actually iterates.
func TestSolverBitExact(t *testing.T) {
	s := rng.New(42)
	var probs []Problem
	for _, sh := range []struct{ c, a int }{{2, 2}, {4, 4}, {4, 8}, {8, 8}, {3, 4}} {
		for rep := 0; rep < 10; rep++ {
			probs = append(probs, randomProblem(s, sh.c, sh.a))
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		probs = append(probs, dasProblem(seed, topology.DAS), dasProblem(seed, topology.CAS))
	}

	solver := NewSolver() // one solver across all problems: buffers must not leak state
	balanced := 0
	for pi, p := range probs {
		wantZF, err := ZFBF(p)
		if err != nil {
			t.Fatalf("prob %d: ZFBF: %v", pi, err)
		}
		gotZF, err := solver.ZFBF(p)
		if err != nil {
			t.Fatalf("prob %d: Solver.ZFBF: %v", pi, err)
		}
		bitIdenticalMats(t, "ZFBF", gotZF, wantZF)

		wantNaive, err := NaiveScaled(p)
		if err != nil {
			t.Fatalf("prob %d: NaiveScaled: %v", pi, err)
		}
		gotNaive, err := solver.NaiveScaled(p)
		if err != nil {
			t.Fatalf("prob %d: Solver.NaiveScaled: %v", pi, err)
		}
		bitIdenticalMats(t, "NaiveScaled", gotNaive, wantNaive)

		wantBal, errW := PowerBalanced(p)
		gotBal, gotIters, errG := solver.PowerBalanced(p)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("prob %d: PowerBalanced err %v vs Solver err %v", pi, errW, errG)
		}
		if errW == nil {
			bitIdenticalMats(t, "PowerBalanced", gotBal, wantBal.V)
			if gotIters != wantBal.Iterations {
				t.Fatalf("prob %d: iterations %d vs %d", pi, gotIters, wantBal.Iterations)
			}
			if gotIters > 0 {
				balanced++
			}
			w := solver.Weights()
			if len(w) != len(wantBal.Weights) {
				t.Fatalf("prob %d: weights len %d vs %d", pi, len(w), len(wantBal.Weights))
			}
			for j := range w {
				if w[j] != wantBal.Weights[j] {
					t.Fatalf("prob %d: weight[%d] = %v, want %v", pi, j, w[j], wantBal.Weights[j])
				}
			}

			wantS := SINRMatrix(p.H, wantBal.V, p.Noise)
			gotS := solver.SINRMatrix(p.H, gotBal, p.Noise)
			// gotBal aliases solver.v; SINRMatrix writes a separate buffer.
			bitIdenticalMats(t, "SINRMatrix", gotS, wantS)

			wantRho := StreamSINRs(p.H, wantBal.V, p.Noise)
			gotRho := solver.StreamSINRs(p.H, gotBal, p.Noise)
			for j := range wantRho {
				if gotRho[j] != wantRho[j] {
					t.Fatalf("prob %d: StreamSINRs[%d] = %v, want %v", pi, j, gotRho[j], wantRho[j])
				}
			}
			if got, want := solver.SumRate(p.H, gotBal, p.Noise), SumRate(p.H, wantBal.V, p.Noise); got != want {
				t.Fatalf("prob %d: SumRate %v, want %v", pi, got, want)
			}
		}
	}
	if balanced == 0 {
		t.Fatal("no problem exercised the water-filling loop; test set too easy")
	}
}

// zeroAllocProblems are the shapes Station.precode sees: |C|×|T| with
// clients ≤ antennas, at the paper's 4- and 8-antenna scales.
func zeroAllocProblems() map[string]Problem {
	s := rng.New(7)
	return map[string]Problem{
		"4x4": randomProblem(s, 4, 4),
		"8x8": randomProblem(s, 8, 8),
		"4x8": randomProblem(s, 4, 8),
		"das": dasProblem(3, topology.DAS),
	}
}

// TestSolverZeroAlloc is the PR's headline allocation guard: after one
// warm-up call sizes the buffers, steady-state precoding through a Solver
// must not touch the heap.
func TestSolverZeroAlloc(t *testing.T) {
	for name, p := range zeroAllocProblems() {
		p := p
		t.Run("PowerBalanced/"+name, func(t *testing.T) {
			s := NewSolver()
			if _, _, err := s.PowerBalanced(p); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, _, err := s.PowerBalanced(p); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("Solver.PowerBalanced allocates %v/op, want 0", allocs)
			}
		})
		t.Run("NaiveScaled/"+name, func(t *testing.T) {
			s := NewSolver()
			if _, err := s.NaiveScaled(p); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := s.NaiveScaled(p); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("Solver.NaiveScaled allocates %v/op, want 0", allocs)
			}
		})
	}
	// The full per-TXOP pipeline: precode then rate the streams.
	p := zeroAllocProblems()["4x4"]
	s := NewSolver()
	v, _, err := s.PowerBalanced(p)
	if err != nil {
		t.Fatal(err)
	}
	s.SumRate(p.H, v, p.Noise)
	allocs := testing.AllocsPerRun(200, func() {
		v, _, err := s.PowerBalanced(p)
		if err != nil {
			t.Fatal(err)
		}
		s.SumRate(p.H, v, p.Noise)
	})
	if allocs != 0 {
		t.Errorf("precode+rate pipeline allocates %v/op, want 0", allocs)
	}
}
