// Package bench provides the performance-tracking machinery behind
// `make bench-snapshot`: a frozen copy of the pre-workspace linear-algebra
// hot path (the "before" column of BENCH_PR2.json) and a snapshot writer
// that measures before/after pairs with testing.Benchmark.
//
// The baseline implementations in this file are verbatim transcriptions of
// the allocation-heavy code that shipped before the in-place kernels — the
// same operations in the same order, via the matrix package's public
// accessors. They are deliberately NOT maintained for speed: they freeze
// the cost model that future optimisation PRs are measured against, so a
// committed snapshot stays comparable even as the live kernels evolve.
package bench

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/matrix"
	"repro/internal/precoding"
)

// baseMul is the pre-PR matrix.Mul: allocate, then accumulate rows.
func baseMul(m, n *matrix.Mat) *matrix.Mat {
	if m.Cols() != n.Rows() {
		panic(matrix.ErrShape)
	}
	out := matrix.New(m.Rows(), n.Cols())
	ma, na, oa := m.Raw(), n.Raw(), out.Raw()
	mc, nc := m.Cols(), n.Cols()
	for i := 0; i < m.Rows(); i++ {
		for k := 0; k < mc; k++ {
			mik := ma[i*mc+k]
			if mik == 0 {
				continue
			}
			base := k * nc
			outBase := i * nc
			for j := 0; j < nc; j++ {
				oa[outBase+j] += mik * na[base+j]
			}
		}
	}
	return out
}

// baseHermitian is the pre-PR matrix.Hermitian.
func baseHermitian(m *matrix.Mat) *matrix.Mat {
	out := matrix.New(m.Cols(), m.Rows())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

func baseSwapRows(m *matrix.Mat, i, j int) {
	if i == j {
		return
	}
	c := m.Cols()
	a := m.Raw()
	ri := a[i*c : (i+1)*c]
	rj := a[j*c : (j+1)*c]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// baseInverse is the pre-PR matrix.Inverse: Gauss–Jordan on a fresh clone
// against a fresh identity, pivot comparisons through cmplx.Abs.
func baseInverse(m *matrix.Mat) (*matrix.Mat, error) {
	if m.Rows() != m.Cols() {
		return nil, matrix.ErrShape
	}
	n := m.Rows()
	a := m.Clone()
	inv := matrix.Identity(n)
	const tol = 1e-13
	scale := a.FrobeniusNorm()
	if scale == 0 {
		return nil, matrix.ErrSingular
	}
	for col := 0; col < n; col++ {
		p := col
		best := cmplx.Abs(a.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := cmplx.Abs(a.At(row, col)); v > best {
				p, best = row, v
			}
		}
		if best <= tol*scale {
			return nil, matrix.ErrSingular
		}
		if p != col {
			baseSwapRows(a, p, col)
			baseSwapRows(inv, p, col)
		}
		piv := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/piv)
			inv.Set(col, j, inv.At(col, j)/piv)
		}
		for row := 0; row < n; row++ {
			if row == col {
				continue
			}
			f := a.At(row, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(row, j, a.At(row, j)-f*a.At(col, j))
				inv.Set(row, j, inv.At(row, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// basePseudoInverse is the pre-PR matrix.PseudoInverse: materialised
// Hermitian, allocating product, Gauss–Jordan inverse, allocating product.
func basePseudoInverse(m *matrix.Mat) (*matrix.Mat, error) {
	h := baseHermitian(m)
	if m.Rows() <= m.Cols() {
		g, err := baseInverse(baseMul(m, h))
		if err != nil {
			return nil, fmt.Errorf("pseudoinverse: %w", err)
		}
		return baseMul(h, g), nil
	}
	g, err := baseInverse(baseMul(h, m))
	if err != nil {
		return nil, fmt.Errorf("pseudoinverse: %w", err)
	}
	return baseMul(g, h), nil
}

func baseColPower(m *matrix.Mat, j int) float64 {
	s := 0.0
	for i := 0; i < m.Rows(); i++ {
		v := m.At(i, j)
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

func baseScaleCol(m *matrix.Mat, j int, w float64) {
	for i := 0; i < m.Rows(); i++ {
		m.Set(i, j, m.At(i, j)*complex(w, 0))
	}
}

func baseNormalizeCols(m *matrix.Mat) {
	for j := 0; j < m.Cols(); j++ {
		p := baseColPower(m, j)
		if p > 0 {
			baseScaleCol(m, j, 1/math.Sqrt(p))
		}
	}
}

func baseRowPower(m *matrix.Mat, i int) float64 {
	s := 0.0
	for j := 0; j < m.Cols(); j++ {
		v := m.At(i, j)
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

func baseMaxRowPower(m *matrix.Mat) (row int, power float64) {
	power = math.Inf(-1)
	for i := 0; i < m.Rows(); i++ {
		if p := baseRowPower(m, i); p > power {
			row, power = i, p
		}
	}
	return row, power
}

// BaselineZFBF is the pre-PR precoding.ZFBF.
func BaselineZFBF(p precoding.Problem) (*matrix.Mat, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v, err := basePseudoInverse(p.H)
	if err != nil {
		return nil, fmt.Errorf("precoding: ZFBF: %w", err)
	}
	baseNormalizeCols(v)
	streamPower := float64(p.H.Cols()) * p.PerAntennaPower / float64(v.Cols())
	for j := 0; j < v.Cols(); j++ {
		baseScaleCol(v, j, math.Sqrt(streamPower))
	}
	return v, nil
}

// BaselineNaiveScaled is the pre-PR precoding.NaiveScaled.
func BaselineNaiveScaled(p precoding.Problem) (*matrix.Mat, error) {
	v, err := BaselineZFBF(p)
	if err != nil {
		return nil, err
	}
	_, worst := baseMaxRowPower(v)
	if worst > p.PerAntennaPower {
		scale := math.Sqrt(p.PerAntennaPower / worst)
		for j := 0; j < v.Cols(); j++ {
			baseScaleCol(v, j, scale)
		}
	}
	return v, nil
}

const basePowerFloor = 1e-4

// BaselinePowerBalanced is the pre-PR precoding.PowerBalanced: fresh
// slices per round, stream SNRs through a full allocating matrix product,
// reverse water-filling with per-call slices, a closure-based bisection
// objective and sort.Slice.
func BaselinePowerBalanced(p precoding.Problem) (*matrix.Mat, int, error) {
	v, err := BaselineZFBF(p)
	if err != nil {
		return nil, 0, err
	}
	nT, nC := v.Rows(), v.Cols()
	weights := make([]float64, nC)
	for j := range weights {
		weights[j] = 1
	}
	const tol = 1e-12
	iters := 0
	for ; iters < nT+1; iters++ {
		k, worst := baseMaxRowPower(v)
		if worst <= p.PerAntennaPower*(1+tol) {
			break
		}
		rho := baseStreamSNRs(p.H, v, p.Noise)
		row := make([]float64, nC)
		for j := 0; j < nC; j++ {
			e := v.At(k, j)
			row[j] = real(e)*real(e) + imag(e)*imag(e)
		}
		w, err := baseReverseWaterfill(row, rho, p.PerAntennaPower)
		if err != nil {
			return nil, 0, fmt.Errorf("precoding: row %d: %w", k, err)
		}
		for j := 0; j < nC; j++ {
			if w[j] < 1 {
				baseScaleCol(v, j, w[j])
				weights[j] *= w[j]
			}
		}
	}
	if _, worst := baseMaxRowPower(v); worst > p.PerAntennaPower*(1+1e-6) {
		return nil, 0, fmt.Errorf("precoding: power balancing did not converge (row power %v > %v)",
			worst, p.PerAntennaPower)
	}
	return v, iters, nil
}

func baseStreamSNRs(h, v *matrix.Mat, noise float64) []float64 {
	a := baseMul(h, v)
	out := make([]float64, a.Cols())
	for j := range out {
		e := a.At(j, j)
		out[j] = (real(e)*real(e) + imag(e)*imag(e)) / noise
	}
	return out
}

func baseReverseWaterfill(row, rho []float64, budget float64) ([]float64, error) {
	n := len(row)
	if len(rho) != n {
		return nil, errors.New("reverse waterfill: length mismatch")
	}
	have := 0.0
	for _, r := range row {
		have += r
	}
	need := have - budget
	w := make([]float64, n)
	for j := range w {
		w[j] = 1
	}
	if need <= 0 {
		return w, nil
	}
	type stream struct {
		t, cap float64
		idx    int
	}
	ss := make([]stream, n)
	maxRed := 0.0
	for j := range ss {
		r := rho[j]
		if r <= 0 || math.IsNaN(r) {
			ss[j] = stream{t: math.Inf(1), cap: (1 - basePowerFloor) * row[j], idx: j}
		} else {
			ss[j] = stream{t: (1 + 1/r) * row[j], cap: (1 - basePowerFloor) * row[j], idx: j}
		}
		maxRed += ss[j].cap
	}
	if need > maxRed {
		return nil, fmt.Errorf("reverse waterfill: need %v exceeds reducible power %v", need, maxRed)
	}
	total := func(mu float64) float64 {
		s := 0.0
		for _, st := range ss {
			red := st.t - mu
			if red <= 0 {
				continue
			}
			if red > st.cap {
				red = st.cap
			}
			s += red
		}
		return s
	}
	lo, hi := 0.0, 0.0
	for _, st := range ss {
		if !math.IsInf(st.t, 1) && st.t > hi {
			hi = st.t
		}
	}
	if hi == 0 {
		hi = 1
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if total(mid) > need {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-15*(1+hi) {
			break
		}
	}
	mu := hi
	red := make([]float64, n)
	got := 0.0
	for _, st := range ss {
		r := st.t - mu
		if r <= 0 {
			continue
		}
		if r > st.cap {
			r = st.cap
		}
		red[st.idx] = r
		got += r
	}
	if residual := need - got; residual > 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return ss[order[a]].t > ss[order[b]].t })
		for _, j := range order {
			if residual <= 0 {
				break
			}
			room := ss[j].cap - red[ss[j].idx]
			take := math.Min(room, residual)
			red[ss[j].idx] += take
			residual -= take
		}
		if residual > 1e-9*need {
			return nil, fmt.Errorf("reverse waterfill: could not place residual %v", residual)
		}
	}
	for j := range w {
		if row[j] <= 0 {
			continue
		}
		frac := 1 - red[j]/row[j]
		if frac < basePowerFloor {
			frac = basePowerFloor
		}
		if frac > 1 {
			frac = 1
		}
		w[j] = math.Sqrt(frac)
	}
	return w, nil
}

// BaselineSINRMatrix is the pre-PR precoding.SINRMatrix.
func BaselineSINRMatrix(h, v *matrix.Mat, noise float64) *matrix.Mat {
	a := baseMul(h, v)
	n := a.Rows()
	s := matrix.New(a.Cols(), n)
	for j := 0; j < n; j++ {
		for i := 0; i < a.Cols(); i++ {
			e := a.At(j, i)
			s.Set(i, j, complex((real(e)*real(e)+imag(e)*imag(e))/noise, 0))
		}
	}
	return s
}

// BaselineSumRate is the pre-PR precoding.SumRate (via the allocating
// SINR-matrix path).
func BaselineSumRate(h, v *matrix.Mat, noise float64) float64 {
	s := BaselineSINRMatrix(h, v, noise)
	n := h.Rows()
	sum := 0.0
	for j := 0; j < n; j++ {
		interf := 0.0
		for i := 0; i < n; i++ {
			if i != j {
				interf += real(s.At(i, j))
			}
		}
		sum += math.Log2(1 + real(s.At(j, j))/(1+interf))
	}
	return sum
}
