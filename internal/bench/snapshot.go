package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/matrix"
	"repro/internal/precoding"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Metric is one benchmark measurement.
type Metric struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
}

// Pair compares the frozen pre-workspace implementation ("before") with
// the live kernels ("after") on identical inputs.
type Pair struct {
	Name    string  `json:"name"`
	Before  Metric  `json:"before"`
	After   Metric  `json:"after"`
	Speedup float64 `json:"speedup"`
}

// Figure is one reduced-scale figure-reproduction benchmark.
type Figure struct {
	Name string `json:"name"`
	Metric
}

// Snapshot is the committed performance baseline (BENCH_PR2.json).
type Snapshot struct {
	Schema    string   `json:"schema"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Rounds    int      `json:"rounds"`
	Note      string   `json:"note"`
	Kernels   []Pair   `json:"kernels"`
	Figures   []Figure `json:"figures"`
	WrittenBy string   `json:"written_by"`
}

func metricOf(r testing.BenchmarkResult) Metric {
	return Metric{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

// measure runs fn under testing.Benchmark with allocation reporting.
func measure(fn func(b *testing.B)) Metric {
	return metricOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	}))
}

// better keeps the faster (min ns/op) of two measurements; allocation
// counts are deterministic so either sample serves.
func better(a, b Metric) Metric {
	if b.NsOp < a.NsOp {
		return b
	}
	return a
}

// kernelCase is one before/after micro-benchmark over shared inputs.
type kernelCase struct {
	name   string
	before func(b *testing.B)
	after  func(b *testing.B)
}

func randMat(src *rng.Source, r, c int) *matrix.Mat {
	m := matrix.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, src.ComplexCircular(1))
		}
	}
	return m
}

// BenchProblemSeed seeds the 4×4 DAS problem measured by both the
// committed baseline and the root BenchmarkPowerBalanced4x4 — keep the two
// in sync or the before/after comparison breaks. Seed 8 runs two reverse-
// water-filling rounds, exercising the full balancing loop.
const BenchProblemSeed = 8

// BenchProblem4x4 returns that problem.
func BenchProblem4x4() precoding.Problem {
	return DASProblem(BenchProblemSeed)
}

// DASProblem builds a realistic single-AP DAS precoding problem (the same
// construction as the precoding package's benchmark helper).
func DASProblem(seed int64) precoding.Problem {
	d := topology.SingleAP(topology.DefaultConfig(topology.DAS), rng.New(seed))
	m := d.Model(channel.Default(), rng.New(seed+1000))
	return precoding.Problem{
		H:               m.Matrix(nil, nil),
		PerAntennaPower: channel.Default().TxPowerLinear(),
		Noise:           channel.Default().NoiseLinear(),
	}
}

// kernelCases builds the micro-benchmark suite: the multiply/Gram/
// pseudoinverse shapes the DES exercises (4×4 clients×antennas, the 8×8
// large-scale variant, rectangular 4×8 when MIDAS masks antennas), the
// SINR-matrix evaluation, and the two precoders.
func kernelCases() []kernelCase {
	src := rng.New(99)
	a4, b4 := randMat(src, 4, 4), randMat(src, 4, 4)
	a8, b8 := randMat(src, 8, 8), randMat(src, 8, 8)
	a48, b84 := randMat(src, 4, 8), randMat(src, 8, 4)
	x8 := make([]complex128, 8)
	for i := range x8 {
		x8[i] = src.ComplexCircular(1)
	}
	p4 := BenchProblem4x4()
	p8 := precoding.Problem{
		H:               randMat(src, 8, 8),
		PerAntennaPower: channel.Default().TxPowerLinear(),
		Noise:           channel.Default().NoiseLinear(),
	}
	var ws matrix.Workspace
	var dst matrix.Mat
	y8 := make([]complex128, 8)
	solver := precoding.NewSolver()
	solver8 := precoding.NewSolver()
	vs, _, err := solver.PowerBalanced(p4)
	if err != nil {
		panic(err)
	}
	v4 := vs.Clone()

	return []kernelCase{
		{"Mul4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a4, b4)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.MulInto(&dst, a4, b4)
				}
			}},
		{"Mul8x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a8, b8)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.MulInto(&dst, a8, b8)
				}
			}},
		{"Mul4x8x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a48, b84)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.MulInto(&dst, a48, b84)
				}
			}},
		{"MulVec8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a8.MulVec(x8)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.MulVecInto(y8, a8, x8)
				}
			}},
		{"Gram4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a4, baseHermitian(a4))
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.GramInto(&dst, a4)
				}
			}},
		{"Gram8x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a8, baseHermitian(a8))
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.GramInto(&dst, a8)
				}
			}},
		{"Gram4x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseMul(a48, baseHermitian(a48))
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					matrix.GramInto(&dst, a48)
				}
			}},
		{"PseudoInverse4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := basePseudoInverse(a4); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := matrix.PseudoInverseInto(&dst, a4, &ws); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{"PseudoInverse8x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := basePseudoInverse(a8); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := matrix.PseudoInverseInto(&dst, a8, &ws); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{"PseudoInverse4x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := basePseudoInverse(a48); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := matrix.PseudoInverseInto(&dst, a48, &ws); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{"SINRMatrix4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					BaselineSINRMatrix(p4.H, v4, p4.Noise)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solver.SINRMatrix(p4.H, v4, p4.Noise)
				}
			}},
		{"NaiveScaled4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := BaselineNaiveScaled(p4); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := solver.NaiveScaled(p4); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{"PowerBalanced4x4",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := BaselinePowerBalanced(p4); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := solver.PowerBalanced(p4); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{"PowerBalanced8x8",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := BaselinePowerBalanced(p8); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := solver8.PowerBalanced(p8); err != nil {
						b.Fatal(err)
					}
				}
			}},
	}
}

// figureCases are reduced-scale reproductions of root figure benchmarks,
// tracking the end-to-end effect of kernel changes.
func figureCases(topos int, seed int64) []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Fig03NaiveScalingDrop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sim.Fig3NaiveScalingDrop(topos, seed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fig10SmartPrecoding", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Fig10SmartPrecoding(topos, seed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fig12SpatialReuse", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.Fig12SpatialReuse(topos, seed)
			}
		}},
		{"Fig15EndToEnd", func(b *testing.B) {
			e2eTopos := topos / 2
			if e2eTopos < 1 {
				e2eTopos = 1
			}
			o := sim.E2EOpts{Topologies: e2eTopos, SimTime: 50 * time.Millisecond, Seed: seed}
			for i := 0; i < b.N; i++ {
				sim.Fig15EndToEnd(o)
			}
		}},
	}
}

// KernelSnapshot measures every before/after kernel pair (and, when
// figTopos > 0, the reduced-scale figure benchmarks) over the given number
// of alternating rounds, keeping each side's fastest round — alternation
// cancels machine-load drift that would bias a one-sided run.
func KernelSnapshot(rounds, figTopos int, seed int64) *Snapshot {
	if rounds < 1 {
		rounds = 1
	}
	snap := &Snapshot{
		Schema:    "midas-bench-kernels/v1",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rounds:    rounds,
		Note:      "before = frozen pre-workspace implementations (internal/bench); after = live in-place kernels; min ns/op over alternating rounds",
		WrittenBy: "midas-bench -kernels",
	}
	for _, kc := range kernelCases() {
		p := Pair{Name: kc.name}
		for r := 0; r < rounds; r++ {
			mb := measure(kc.before)
			ma := measure(kc.after)
			if r == 0 {
				p.Before, p.After = mb, ma
			} else {
				p.Before = better(p.Before, mb)
				p.After = better(p.After, ma)
			}
		}
		if p.After.NsOp > 0 {
			p.Speedup = p.Before.NsOp / p.After.NsOp
		}
		snap.Kernels = append(snap.Kernels, p)
	}
	if figTopos > 0 {
		for _, fc := range figureCases(figTopos, seed) {
			f := Figure{Name: fc.name}
			for r := 0; r < rounds; r++ {
				m := measure(fc.fn)
				if r == 0 {
					f.Metric = m
				} else {
					f.Metric = better(f.Metric, m)
				}
			}
			snap.Figures = append(snap.Figures, f)
		}
	}
	return snap
}

// WriteJSON emits the snapshot with stable indentation (diff-friendly for
// a committed baseline).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
