package bench

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/precoding"
	"repro/internal/rng"
)

func dasProblem(seed int64) precoding.Problem { return DASProblem(seed) }

// nonSquareProblems covers the shapes that bypass the 4×4 unrolled fast
// paths (generic streamSNRsInto, totalAt, gram/inverse loops), so the
// frozen baseline pins those code paths too — TestSolverBitExact alone
// cannot, because both of its sides now share the Solver implementation.
func shapedProblems() []precoding.Problem {
	src := rng.New(77)
	var out []precoding.Problem
	for _, sh := range []struct{ c, a int }{{8, 8}, {4, 8}, {3, 5}, {6, 6}, {2, 2}} {
		for rep := 0; rep < 6; rep++ {
			h := matrix.New(sh.c, sh.a)
			for i := 0; i < sh.c; i++ {
				for j := 0; j < sh.a; j++ {
					h.Set(i, j, src.ComplexCircular(1))
				}
			}
			out = append(out, precoding.Problem{H: h, PerAntennaPower: 1, Noise: 0.01})
		}
	}
	return out
}

// TestBaselineMatchesLive pins the frozen baseline to the live Solver: the
// "before" implementation must stay bit-identical to the shipping path, or
// the before/after comparison in BENCH_PR2.json stops being apples-to-
// apples.
func TestBaselineMatchesLive(t *testing.T) {
	probs := make([]precoding.Problem, 0, 60)
	for seed := int64(1); seed <= 30; seed++ {
		probs = append(probs, dasProblem(seed))
	}
	probs = append(probs, shapedProblems()...)
	for pi, p := range probs {
		seed := int64(pi)
		want, err := precoding.PowerBalanced(p)
		base, baseIters, baseErr := BaselinePowerBalanced(p)
		if (err == nil) != (baseErr == nil) {
			t.Fatalf("seed %d: live err %v, baseline err %v", seed, err, baseErr)
		}
		if err != nil {
			continue
		}
		if baseIters != want.Iterations {
			t.Fatalf("seed %d: baseline iters %d, live %d", seed, baseIters, want.Iterations)
		}
		if base.Rows() != want.V.Rows() || base.Cols() != want.V.Cols() {
			t.Fatalf("seed %d: shape mismatch", seed)
		}
		for i := 0; i < base.Rows(); i++ {
			for j := 0; j < base.Cols(); j++ {
				if base.At(i, j) != want.V.At(i, j) {
					t.Fatalf("seed %d: (%d,%d) baseline %v, live %v", seed, i, j, base.At(i, j), want.V.At(i, j))
				}
			}
		}
		if br, lr := BaselineSumRate(p.H, base, p.Noise), precoding.SumRate(p.H, want.V, p.Noise); br != lr {
			t.Fatalf("seed %d: baseline SumRate %v, live %v", seed, br, lr)
		}
		nv, err := precoding.NaiveScaled(p)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := BaselineNaiveScaled(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bn.Equalish(nv, 0) {
			t.Fatalf("seed %d: NaiveScaled differs", seed)
		}
	}
}
