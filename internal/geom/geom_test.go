package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if n := Pt(-3, 4).Norm(); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestAngleTo(t *testing.T) {
	cases := []struct {
		from, to Point
		want     float64
	}{
		{Pt(0, 0), Pt(1, 0), 0},
		{Pt(0, 0), Pt(0, 1), math.Pi / 2},
		{Pt(0, 0), Pt(-1, 0), math.Pi},
		{Pt(1, 1), Pt(2, 2), math.Pi / 4},
	}
	for _, tc := range cases {
		if got := tc.from.AngleTo(tc.to); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("AngleTo(%v,%v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestAngularSeparation(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi / 2, math.Pi / 2},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2}, // wraps around
		{0, 2 * math.Pi, 0},
		{0.1, 2*math.Pi - 0.1, 0.2},
	}
	for _, tc := range cases {
		if got := AngularSeparation(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("AngularSeparation(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWithinSector(t *testing.T) {
	o := Pt(0, 0)
	sixty := math.Pi / 3
	if !WithinSector(o, Pt(1, 0), Pt(1, 0.5), sixty) {
		t.Error("close bearings should be within 60° sector")
	}
	if WithinSector(o, Pt(1, 0), Pt(0, 1), sixty) {
		t.Error("90°-apart bearings should not be within 60° sector")
	}
}

func TestRect(t *testing.T) {
	r := NewRect(4, 3, 0, 0) // reversed corners normalise
	if r != (Rect{0, 0, 4, 3}) {
		t.Fatalf("NewRect = %+v", r)
	}
	if !r.Contains(Pt(2, 1.5)) || r.Contains(Pt(5, 1)) {
		t.Error("Contains wrong")
	}
	if r.Center() != Pt(2, 1.5) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Area() != 12 || r.Width() != 4 || r.Height() != 3 {
		t.Errorf("dims wrong: %v %v %v", r.Area(), r.Width(), r.Height())
	}
	if got := r.Clamp(Pt(-1, 10)); got != Pt(0, 3) {
		t.Errorf("Clamp = %v", got)
	}
	if s := Square(60); s.Area() != 3600 {
		t.Errorf("Square area = %v", s.Area())
	}
}

func TestGrid(t *testing.T) {
	r := Square(1)
	n := Grid(r, 0.5, func(Point) {})
	if n != 9 { // 3x3 lattice: 0, .5, 1
		t.Errorf("grid count = %d, want 9", n)
	}
	pts := GridPoints(r, 0.5)
	if len(pts) != 9 {
		t.Errorf("GridPoints len = %d", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("grid point %v outside rect", p)
		}
	}
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero spacing")
		}
	}()
	Grid(Square(1), 0, func(Point) {})
}

func TestMinDist(t *testing.T) {
	if d := MinDist([]Point{Pt(0, 0)}); !math.IsInf(d, 1) {
		t.Errorf("single-point MinDist = %v", d)
	}
	pts := []Point{Pt(0, 0), Pt(0, 3), Pt(10, 0)}
	if d := MinDist(pts); d != 3 {
		t.Errorf("MinDist = %v, want 3", d)
	}
}

func TestNearest(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 5), Pt(2, 2)}
	i, d := Nearest(Pt(2.1, 2), pts)
	if i != 2 {
		t.Errorf("Nearest idx = %d", i)
	}
	if math.Abs(d-0.1) > 1e-12 {
		t.Errorf("Nearest dist = %v", d)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(0, 2), Pt(2, 2)})
	if c != Pt(1, 1) {
		t.Errorf("Centroid = %v", c)
	}
}

// Property: distance is a metric — symmetric, zero on identity,
// triangle inequality.
func TestDistMetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound magnitudes to avoid overflow-induced weirdness.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		if a.Dist(a) != 0 {
			return false
		}
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AngularSeparation is always in [0, π] and symmetric.
func TestAngularSeparationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := r.Float64()*40 - 20
		b := r.Float64()*40 - 20
		s := AngularSeparation(a, b)
		if s < 0 || s > math.Pi+1e-12 {
			t.Fatalf("separation out of range: %v", s)
		}
		if math.Abs(s-AngularSeparation(b, a)) > 1e-9 {
			t.Fatalf("not symmetric at %v,%v", a, b)
		}
	}
}
