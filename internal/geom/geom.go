// Package geom provides the 2-D geometry primitives used by the MIDAS
// topology generators and coverage-map experiments: points, distances,
// angular sectors and measurement grids.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in metres on the deployment plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Norm returns the distance from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// AngleTo returns the bearing from p to q in radians in (-π, π].
func (p Point) AngleTo(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// AngularSeparation returns the absolute angular separation of bearings
// a and b (radians), folded into [0, π].
func AngularSeparation(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// WithinSector reports whether, viewed from origin, points a and b fall
// within an angular sector narrower than width radians. The MIDAS antenna
// deployment rule (§5.3.1) forbids two antennas of one AP within a
// 60-degree sector of the AP.
func WithinSector(origin, a, b Point, width float64) bool {
	return AngularSeparation(origin.AngleTo(a), origin.AngleTo(b)) < width
}

// Rect is an axis-aligned rectangle [X0,X1] × [Y0,Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// NewRect returns the rectangle with the given corners, normalising order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Square returns the square [0,side] × [0,side].
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Center returns the rectangle's centre point.
func (r Rect) Center() Point {
	return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Clamp returns p constrained to lie within r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.X0, math.Min(r.X1, p.X)),
		Y: math.Max(r.Y0, math.Min(r.Y1, p.Y)),
	}
}

// Grid enumerates measurement spots over rect with the given spacing in
// metres, calling f for each spot. The paper's deadzone maps use 0.5 m
// spacing; the hidden-terminal study uses 1 m (§5.3.3–5.3.4).
func Grid(rect Rect, spacing float64, f func(Point)) int {
	if spacing <= 0 {
		panic("geom: non-positive grid spacing")
	}
	n := 0
	for y := rect.Y0; y <= rect.Y1+1e-9; y += spacing {
		for x := rect.X0; x <= rect.X1+1e-9; x += spacing {
			f(Point{x, y})
			n++
		}
	}
	return n
}

// GridPoints materialises the grid as a slice.
func GridPoints(rect Rect, spacing float64) []Point {
	var pts []Point
	Grid(rect, spacing, func(p Point) { pts = append(pts, p) })
	return pts
}

// MinDist returns the smallest pairwise distance among pts, or +Inf for
// fewer than two points. Used to enforce the ≥5 m antenna-separation rule
// in the 8-AP deployment (§5.5).
func MinDist(pts []Point) float64 {
	min := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < min {
				min = d
			}
		}
	}
	return min
}

// Nearest returns the index of the point in pts closest to p, and the
// distance. It panics on an empty slice.
func Nearest(p Point, pts []Point) (int, float64) {
	if len(pts) == 0 {
		panic("geom: Nearest on empty slice")
	}
	best, bestD := 0, pts[0].Dist(p)
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Centroid returns the mean of pts. It panics on an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty slice")
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
