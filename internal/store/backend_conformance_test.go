package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The conformance suite: one set of behavioral assertions run against
// every Backend implementation. A new backend (an object store, say)
// passes by adding one entry to backendImpls — the suite IS the
// contract documented on the Backend interface.

type backendImpl struct {
	name   string
	shared bool
	open   func(root string, faults *FaultFS) (Backend, error)
}

var backendImpls = []backendImpl{
	{"DirBackend", false, func(root string, faults *FaultFS) (Backend, error) {
		return OpenDir(root, faults)
	}},
	{"SharedDirBackend", true, func(root string, faults *FaultFS) (Backend, error) {
		return OpenSharedDir(root, faults)
	}},
}

func TestBackendConformance(t *testing.T) {
	for _, impl := range backendImpls {
		t.Run(impl.name, func(t *testing.T) {
			t.Run("WriteReadStat", func(t *testing.T) { conformWriteReadStat(t, impl) })
			t.Run("ReadHeader", func(t *testing.T) { conformReadHeader(t, impl) })
			t.Run("ListSkipsTempsAndSorts", func(t *testing.T) { conformList(t, impl) })
			t.Run("Remove", func(t *testing.T) { conformRemove(t, impl) })
			t.Run("InvalidNamesRejected", func(t *testing.T) { conformInvalidNames(t, impl) })
			t.Run("WriteFaultIsClean", func(t *testing.T) { conformWriteFault(t, impl) })
			t.Run("RenameFaultTempSweptAtReopen", func(t *testing.T) { conformRenameFault(t, impl) })
			t.Run("TwoWritersSameNameRace", func(t *testing.T) { conformSameNameRace(t, impl) })
			t.Run("OverwriteIsAtomic", func(t *testing.T) { conformOverwrite(t, impl) })
		})
	}
}

func mustBackend(t *testing.T, impl backendImpl, root string, faults *FaultFS) Backend {
	t.Helper()
	be, err := impl.open(root, faults)
	if err != nil {
		t.Fatal(err)
	}
	if be.Shared() != impl.shared {
		t.Fatalf("Shared() = %v, want %v", be.Shared(), impl.shared)
	}
	return be
}

func conformWriteReadStat(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	data := []byte("payload bytes")
	if err := be.Write("ab/cd/abcd.json", data); err != nil {
		t.Fatal(err)
	}
	got, err := be.Read("ab/cd/abcd.json")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	info, err := be.Stat("ab/cd/abcd.json")
	if err != nil || info.Size != int64(len(data)) || info.Name != "ab/cd/abcd.json" {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if _, err := be.Read("ab/cd/missing.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Read(missing) = %v, want fs.ErrNotExist", err)
	}
	if _, err := be.Stat("ab/cd/missing.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat(missing) = %v, want fs.ErrNotExist", err)
	}
}

func conformReadHeader(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	if err := be.Write("h.json", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := be.ReadHeader("h.json", 4)
	if err != nil || string(got) != "0123" {
		t.Fatalf("ReadHeader(4) = %q, %v", got, err)
	}
	// max beyond the blob size returns the whole blob, no error.
	got, err = be.ReadHeader("h.json", 100)
	if err != nil || string(got) != "0123456789" {
		t.Fatalf("ReadHeader(100) = %q, %v", got, err)
	}
	if _, err := be.ReadHeader("missing.json", 4); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadHeader(missing) = %v, want fs.ErrNotExist", err)
	}
}

func conformList(t *testing.T, impl backendImpl) {
	root := t.TempDir()
	be := mustBackend(t, impl, root, nil)
	names := []string{"zz/top.json", "aa/bb/deep.json", "root.json"}
	for _, n := range names {
		if err := be.Write(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	// A live temp must never be listed.
	if err := os.WriteFile(filepath.Join(root, tmpDirName, "inflight.json.123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aa/bb/deep.json", "root.json", "zz/top.json"}
	if len(infos) != len(want) {
		t.Fatalf("List = %+v, want names %v", infos, want)
	}
	for i, n := range want {
		if infos[i].Name != n || infos[i].Size != int64(len(n)) {
			t.Fatalf("List[%d] = %+v, want name %q size %d", i, infos[i], n, len(n))
		}
	}
}

func conformRemove(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	if err := be.Write("a/b.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := be.Remove("a/b.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Read("a/b.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Read after Remove = %v, want fs.ErrNotExist", err)
	}
	if err := be.Remove("a/b.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove(missing) = %v, want fs.ErrNotExist", err)
	}
}

func conformInvalidNames(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	for _, name := range []string{"", "/abs.json", "../escape.json", "a/../b.json", "a//b.json", "./x.json"} {
		if err := be.Write(name, []byte("x")); err == nil {
			t.Fatalf("Write(%q) accepted an invalid name", name)
		}
		if _, err := be.Read(name); err == nil {
			t.Fatalf("Read(%q) accepted an invalid name", name)
		}
		if err := be.Remove(name); err == nil {
			t.Fatalf("Remove(%q) accepted an invalid name", name)
		}
	}
}

// conformWriteFault: a failed temp write is a CLEAN failure — the blob
// is absent and no temp file is left behind.
func conformWriteFault(t *testing.T, impl backendImpl) {
	root := t.TempDir()
	boom := errors.New("disk full")
	be := mustBackend(t, impl, root, &FaultFS{
		WriteFile: func(string) error { return boom },
	})
	if err := be.Write("aa/x.json", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Write under fault = %v, want %v", err, boom)
	}
	if _, err := be.Read("aa/x.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("blob exists after failed write: %v", err)
	}
	des, err := os.ReadDir(filepath.Join(root, tmpDirName))
	if err != nil || len(des) != 0 {
		t.Fatalf("tmp/ not clean after write fault: %v entries, err %v", des, err)
	}
}

// conformRenameFault: a crash in the torn-write window (temp written,
// rename never happened) leaves the temp behind, the blob absent, and
// the next open sweeps the temp.
func conformRenameFault(t *testing.T, impl backendImpl) {
	root := t.TempDir()
	boom := errors.New("crash before rename")
	be := mustBackend(t, impl, root, &FaultFS{
		Rename: func(string, string) error { return boom },
	})
	if err := be.Write("aa/x.json", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Write under rename fault = %v, want %v", err, boom)
	}
	if _, err := be.Read("aa/x.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("blob visible after failed rename: %v", err)
	}
	tmp := filepath.Join(root, tmpDirName)
	des, err := os.ReadDir(tmp)
	if err != nil || len(des) != 1 {
		t.Fatalf("want exactly the torn temp in tmp/, got %d entries (err %v)", len(des), err)
	}
	if impl.shared {
		// A shared sweep only collects temps past sharedTmpMaxAge — age
		// this one artificially, as a crash leftover would be by the time
		// another process opens the dir.
		old := time.Now().Add(-2 * sharedTmpMaxAge)
		if err := os.Chtimes(filepath.Join(tmp, des[0].Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}
	mustBackend(t, impl, root, nil)
	if des, _ := os.ReadDir(tmp); len(des) != 0 {
		t.Fatalf("reopen did not sweep the torn temp: %d entries remain", len(des))
	}
}

// conformSameNameRace: many concurrent writers of one name (identical
// bytes, the content-addressed case) — the final blob must be intact
// and every write must succeed. Run under -race this also proves the
// write path shares no unsynchronized state.
func conformSameNameRace(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	data := bytes.Repeat([]byte("same-bytes-"), 100)
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = be.Write("ab/ra/ce.json", data)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := be.Read("ab/ra/ce.json")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-race blob corrupt: %d bytes, err %v", len(got), err)
	}
}

// conformOverwrite: rewriting a name swaps complete-old for
// complete-new; concurrent readers see one or the other, never a mix.
func conformOverwrite(t *testing.T, impl backendImpl) {
	be := mustBackend(t, impl, t.TempDir(), nil)
	old := bytes.Repeat([]byte("old"), 1000)
	new_ := bytes.Repeat([]byte("new"), 1000)
	if err := be.Write("o.json", old); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			got, err := be.Read("o.json")
			if err != nil {
				continue // raced the rename window on some filesystems; retry
			}
			if !bytes.Equal(got, old) && !bytes.Equal(got, new_) {
				t.Errorf("torn read: %d bytes", len(got))
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := be.Write("o.json", new_); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if got, err := be.Read("o.json"); err != nil || !bytes.Equal(got, new_) {
		t.Fatalf("final read = %d bytes, %v", len(got), err)
	}
}

// --- Shared-backend-specific behavior -------------------------------

// TestSharedSweepSparesFreshForeignTemps: a fresh temp in tmp/ may be a
// live sibling's in-flight write — a shared open must not collect it.
func TestSharedSweepSparesFreshForeignTemps(t *testing.T) {
	root := t.TempDir()
	if _, err := OpenSharedDir(root, nil); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(root, tmpDirName, "ab.json.999-deadbeef-1")
	if err := os.WriteFile(foreign, []byte("sibling in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharedDir(root, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("shared open swept a fresh sibling temp: %v", err)
	}
	// Once aged past sharedTmpMaxAge it IS a crash leftover.
	old := time.Now().Add(-2 * sharedTmpMaxAge)
	if err := os.Chtimes(foreign, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharedDir(root, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign); !os.IsNotExist(err) {
		t.Fatal("shared open did not collect an aged crash leftover")
	}
}

// TestDirSweepCollectsAllTemps: the single-process backend owns its
// tmp/ outright — every temp at open is a torn write, age regardless.
func TestDirSweepCollectsAllTemps(t *testing.T) {
	root := t.TempDir()
	if _, err := OpenDir(root, nil); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(root, tmpDirName, "fresh-torn.json.123")
	if err := os.WriteFile(torn, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(root, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("dir open left a torn temp behind")
	}
}

// TestSharedStoreReadThrough: the cross-process story end to end — two
// Stores over one shared directory; what one Puts after the other
// opened is still served by the other, via the index-miss read-through.
func TestSharedStoreReadThrough(t *testing.T) {
	root := t.TempDir()
	openShared := func() *Store {
		be, err := OpenSharedDir(root, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := openShared(), openShared()
	defer a.Close()
	defer b.Close()

	h := hashOf("cross-process")
	payload := []byte("computed by A")
	if err := a.Put(h, payload); err != nil {
		t.Fatal(err)
	}
	// B opened before A's Put: an index miss that must fall through.
	got, ok := b.Get(h)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("B.Get via read-through = %q, %v", got, ok)
	}
	st := b.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("read-through did not index the entry: %+v", st)
	}
	// Second Get is a plain index hit.
	if _, ok := b.Get(h); !ok {
		t.Fatal("indexed entry lost")
	}

	// A miss on BOTH tiers is still a miss.
	if _, ok := b.Get(hashOf("never-written")); ok {
		t.Fatal("phantom hit")
	}
	if st := b.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
}

// TestSharedStoreConcurrentSamePut: two processes computing the same
// spec race their Puts of one hash — both must succeed (identical
// bytes, last rename wins) and the entry must verify after.
func TestSharedStoreConcurrentSamePut(t *testing.T) {
	root := t.TempDir()
	h := hashOf("raced")
	payload := bytes.Repeat([]byte("r"), 2048)
	var wg sync.WaitGroup
	stores := make([]*Store, 4)
	for i := range stores {
		be, err := OpenSharedDir(root, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	errs := make([]error, len(stores))
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			errs[i] = s.Put(h, payload)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("store %d Put: %v", i, err)
		}
	}
	for i, s := range stores {
		got, ok := s.Get(h)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("store %d post-race Get failed", i)
		}
	}
}

// TestSharedManifestsMerge: each process flushes its own manifest blob;
// a fresh opener merges all of them, newest hint per entry.
func TestSharedManifestsMerge(t *testing.T) {
	root := t.TempDir()
	open := func() *Store {
		be, err := OpenSharedDir(root, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ha, hb := hashOf("ma"), hashOf("mb")
	payload := []byte(fmt.Sprintf("%200s", "x"))
	entrySize := int64(len(frame(payload)))

	a, b := open(), open()
	if err := a.Put(ha, payload); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(hb, payload); err != nil {
		t.Fatal(err)
	}
	// b's entry is the more recently used one; both processes flush
	// their own manifests at Close without clobbering each other.
	a.Close()
	if _, ok := b.Get(hb); !ok {
		t.Fatal("Get")
	}
	b.Close()

	// A budget for one entry must evict ha (older hint), not hb.
	be, err := OpenSharedDir(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(Config{Backend: be, MaxBytes: entrySize})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get(ha); ok {
		t.Fatal("merged manifests did not order eviction: stale entry kept")
	}
	if _, ok := c.Get(hb); !ok {
		t.Fatal("merged manifests did not order eviction: fresh entry lost")
	}
}
