// Package store is the durable tier of the result cache: a crash-safe,
// content-addressed on-disk store mapping a resolved spec's canonical
// hash (scenario.Spec.CanonicalHash) to the result JSON it produced.
// The engine is deterministic in the resolved spec, so a result is
// exactly as content-addressable as the spec that named it — which
// means it can outlive the process that computed it. midas-serve opens
// a Store under its in-memory LRU so a restart, crash, or deploy loses
// nothing: any previously completed spec is served from disk without
// re-running the engine.
//
// Layout under the root directory:
//
//	<root>/<hh>/<hh>/<hash>.json   entries, two-level fan-out by hash prefix
//	<root>/tmp/                    in-flight writes (swept at Open)
//	<root>/quarantine/             entries that failed verification
//	<root>/manifest.json           access-time hints for LRU eviction
//
// An entry file is a one-line header followed by the payload:
//
//	midas-store/v1 <sha256-hex-of-payload> <payload-length>\n<payload>
//
// The header makes every entry self-verifying: the spec hash in the
// file name says which computation the bytes claim to be, the header
// says what the bytes must look like. Truncation, torn tails and bit
// flips all fail verification, and a failed entry is quarantined and
// recomputed — never served.
//
// Crash safety is the sinks' write-temp-then-fsync-then-rename
// discipline: a crash before the rename leaves only a file in tmp/
// (swept at the next Open); a crash after it leaves a fully fsynced
// entry. There is no state in which a partially written entry is
// reachable under its final name on a correctly ordered filesystem,
// and the header verification catches the incorrectly ordered ones.
//
// Eviction is LRU by access time under a byte budget. Access times
// live in memory and are persisted as hints to manifest.json (at Close
// and every few dozen writes, atomically but without fsync): losing
// the manifest — a kill -9 skips Close — only degrades the next
// process's eviction order to file mtimes, never correctness.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	headerMagic       = "midas-store/v1"
	hashHexLen        = 64
	tmpDirName        = "tmp"
	quarantineDirName = "quarantine"
	manifestName      = "manifest.json"
	manifestVersion   = 1
	// manifestFlushEvery bounds how stale the persisted atime hints can
	// get while the process runs: the manifest is rewritten after this
	// many touches — Puts and Gets both move atimes, so both count —
	// and always at Close. Counting only Puts was a real bug: a long
	// read-heavy run that died by kill -9 lost every eviction hint
	// accumulated since its last write.
	manifestFlushEvery = 64
)

// FaultFS injects filesystem failures into a Store's write path, so
// tests can prove the crash-recovery behavior without an actual crash.
// A nil hook (or a nil FaultFS) means the real operation runs
// unconditionally; a hook returning an error fails the operation
// before it touches the disk.
type FaultFS struct {
	// WriteFile is consulted before a temp file is written — an
	// entry's, or the manifest's on a periodic flush. Failing it models
	// a full disk or I/O error: Put returns the error and removes the
	// temp file; a manifest flush is skipped (the hints stay in memory
	// until the next cadence point or Close).
	WriteFile func(path string) error
	// Rename is consulted before the temp file is renamed into place.
	// Failing it models a crash between the temp write and the rename
	// (the torn-write window): Put returns the error and the temp file
	// is deliberately left behind, exactly as a real crash would leave
	// it, for the next Open's sweep to collect.
	Rename func(oldPath, newPath string) error
}

// Config configures Open.
type Config struct {
	// Dir is the store root; created if absent. Required.
	Dir string
	// MaxBytes is the byte budget across all entry files (headers
	// included); exceeding it evicts least-recently-used entries.
	// <= 0 means unbounded.
	MaxBytes int64
	// Faults, when non-nil, injects write-path failures (tests only).
	Faults *FaultFS
	// Log receives warm-scan and quarantine warnings; nil discards.
	Log *slog.Logger
}

// Stats is a snapshot of the store's state and cumulative counters
// (per process; counters reset at Open).
type Stats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
}

// entry is one indexed on-disk result.
type entry struct {
	hash  string
	size  int64 // whole file (header + payload): what the byte budget charges
	atime int64 // unix nanos of last touch, the LRU eviction key
}

// Store is a crash-safe on-disk result store. All methods are safe for
// concurrent use; file reads happen outside the index lock, so a Get
// racing an eviction of the same entry degrades to a miss.
type Store struct {
	dir      string
	maxBytes int64
	faults   *FaultFS
	log      *slog.Logger

	mu      sync.Mutex
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element holding *entry
	bytes   int64
	stats   Stats // counter fields only; Entries/Bytes derived in Stats()
	// touchesSinceFlush counts atime movements (Puts and Gets) since
	// the manifest was last persisted; at manifestFlushEvery it flushes.
	touchesSinceFlush int
	manifestDirty     bool
}

// Open opens (creating if necessary) the store rooted at cfg.Dir,
// sweeps torn writes left in tmp/, rebuilds the index by scanning the
// fan-out directories — quarantining any entry that fails the header
// check — and enforces the byte budget on what survives.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Store{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		faults:   cfg.Faults,
		log:      log,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
	for _, d := range []string{cfg.Dir, s.tmpDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.sweepTmp(); err != nil {
		return nil, err
	}
	if err := s.warmScan(s.loadManifest()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Store) tmpDir() string        { return filepath.Join(s.dir, tmpDirName) }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, quarantineDirName) }
func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, EntryRel(hash))
}

// sweepTmp deletes everything in tmp/: a file there is a write that
// never reached its rename — a crash mid-Put — and was never visible
// under its final name, so deleting it IS the recovery.
func (s *Store) sweepTmp() error {
	des, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range des {
		if err := os.RemoveAll(filepath.Join(s.tmpDir(), de.Name())); err != nil {
			return fmt.Errorf("store: sweeping torn write: %w", err)
		}
	}
	return nil
}

// warmScan walks the two-level fan-out directories rebuilding the
// index. Entries that fail the cheap header-vs-size check (truncation)
// or sit under a name that is not a well-formed content address are
// quarantined. atimes supplies last-access hints from the manifest;
// entries it does not cover fall back to file mtime.
func (s *Store) warmScan(atimes map[string]int64) error {
	var found []*entry
	level1, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, d1 := range level1 {
		if !d1.IsDir() || !isFanoutName(d1.Name()) {
			continue // tmp/, quarantine/, manifest.json, strays
		}
		level2, err := os.ReadDir(filepath.Join(s.dir, d1.Name()))
		if err != nil {
			continue
		}
		for _, d2 := range level2 {
			if !d2.IsDir() || !isFanoutName(d2.Name()) {
				continue
			}
			files, err := os.ReadDir(filepath.Join(s.dir, d1.Name(), d2.Name()))
			if err != nil {
				continue
			}
			for _, f := range files {
				if f.IsDir() {
					continue
				}
				path := filepath.Join(s.dir, d1.Name(), d2.Name(), f.Name())
				hash, ok := HashFromEntryName(f.Name())
				if !ok || hash[:2] != d1.Name() || hash[2:4] != d2.Name() {
					s.quarantineFile(path, "name is not a content address")
					continue
				}
				info, err := f.Info()
				if err != nil {
					continue
				}
				if !quickVerify(path, info.Size()) {
					s.quarantineFile(path, "truncated or malformed entry")
					continue
				}
				at := atimes[hash]
				if at == 0 {
					at = info.ModTime().UnixNano()
				}
				found = append(found, &entry{hash: hash, size: info.Size(), atime: at})
			}
		}
	}
	// Oldest-accessed first, so pushing front leaves the most recently
	// used entry at the front — the same invariant live Puts maintain.
	sort.Slice(found, func(i, j int) bool { return found[i].atime < found[j].atime })
	for _, e := range found {
		s.entries[e.hash] = s.ll.PushFront(e)
		s.bytes += e.size
	}
	return nil
}

// Get returns the payload stored under hash. A verification failure
// quarantines the entry and reports a miss, so a corrupted result is
// recomputed rather than served.
func (s *Store) Get(hash string) ([]byte, bool) {
	if !ValidHash(hash) {
		return nil, false
	}
	s.mu.Lock()
	el, ok := s.entries[hash]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*entry)
	e.atime = time.Now().UnixNano()
	s.ll.MoveToFront(el)
	s.manifestDirty = true
	s.touchLocked()
	s.mu.Unlock()

	data, err := os.ReadFile(s.objectPath(hash))
	if err != nil {
		// A concurrent eviction can remove the file between the index
		// lookup and the read: that is a miss, not corruption. Drop the
		// index entry if it is somehow still present.
		s.mu.Lock()
		s.dropLocked(hash)
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, err := parseEntry(data)
	if err != nil {
		s.log.Warn("store entry failed verification, quarantined",
			"hash", hash, "error", err.Error())
		s.Quarantine(hash)
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// Put durably stores payload under hash: temp write, fsync, rename
// into the fan-out tree, best-effort directory sync. The entry is
// indexed (and the budget enforced) only after the rename, so a crash
// at any point leaves either no entry or a complete one.
func (s *Store) Put(hash string, payload []byte) error {
	if !ValidHash(hash) {
		return fmt.Errorf("store: invalid hash %q", hash)
	}
	framed := frame(payload)
	size := int64(len(framed))
	if s.maxBytes > 0 && size > s.maxBytes {
		s.countWriteError()
		return fmt.Errorf("store: entry %s is %d bytes, over the whole-store budget of %d", hash, size, s.maxBytes)
	}
	final := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		s.countWriteError()
		return fmt.Errorf("store: %w", err)
	}
	tmpf, err := os.CreateTemp(s.tmpDir(), hash+".*")
	if err != nil {
		s.countWriteError()
		return fmt.Errorf("store: %w", err)
	}
	tmpPath := tmpf.Name()
	if err := s.writeTemp(tmpf, tmpPath, framed); err != nil {
		os.Remove(tmpPath)
		s.countWriteError()
		return fmt.Errorf("store: writing %s: %w", hash, err)
	}
	if err := s.rename(tmpPath, final); err != nil {
		// Leave the temp file behind, exactly as the crash this path
		// models would; the next Open sweeps it.
		s.countWriteError()
		return fmt.Errorf("store: publishing %s: %w", hash, err)
	}
	syncDir(filepath.Dir(final)) // best-effort: the entry is already self-verifying

	now := time.Now().UnixNano()
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.size = size
		e.atime = now
		s.ll.MoveToFront(el)
	} else {
		s.entries[hash] = s.ll.PushFront(&entry{hash: hash, size: size, atime: now})
		s.bytes += size
	}
	s.stats.Writes++
	s.manifestDirty = true
	s.evictLocked()
	s.touchLocked()
	s.mu.Unlock()
	return nil
}

// touchLocked counts one atime movement toward the periodic manifest
// flush and flushes when the cadence is reached. Called with s.mu held
// by every path that reorders the LRU (Put and Get alike — eviction
// hints age just as fast under reads as under writes).
func (s *Store) touchLocked() {
	s.touchesSinceFlush++
	if s.touchesSinceFlush >= manifestFlushEvery {
		s.flushManifestLocked()
	}
}

// writeTemp writes and fsyncs the framed entry into the temp file,
// consulting the write fault hook first. The file is closed either way.
func (s *Store) writeTemp(f *os.File, path string, data []byte) error {
	if s.faults != nil && s.faults.WriteFile != nil {
		if err := s.faults.WriteFile(path); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rename publishes a temp file under its final name, consulting the
// rename fault hook first.
func (s *Store) rename(oldPath, newPath string) error {
	if s.faults != nil && s.faults.Rename != nil {
		if err := s.faults.Rename(oldPath, newPath); err != nil {
			return err
		}
	}
	return os.Rename(oldPath, newPath)
}

// syncDir fsyncs a directory so the rename that just happened in it is
// durable. Best-effort: some filesystems reject directory fsync, and
// the entry's own header verification covers the failure modes.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func (s *Store) countWriteError() {
	s.mu.Lock()
	s.stats.WriteErrors++
	s.mu.Unlock()
}

// evictLocked deletes least-recently-used entries until the byte
// budget holds. Called with s.mu held; the file removals happen under
// the lock too, so an eviction and a Put of the same hash cannot
// interleave destructively (a reader that already captured the path
// simply misses).
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.entries, e.hash)
		s.bytes -= e.size
		os.Remove(s.objectPath(e.hash))
		s.stats.Evictions++
		s.manifestDirty = true
	}
}

// dropLocked removes hash from the index without touching its file.
func (s *Store) dropLocked(hash string) {
	if el, ok := s.entries[hash]; ok {
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.entries, hash)
		s.bytes -= e.size
		s.manifestDirty = true
	}
}

// Quarantine removes hash from the store and moves its file into
// quarantine/ — for entries that verified at the byte level but turned
// out to be garbage at a higher one (an undecodable result). The entry
// must never be served again; the bytes are kept for post-mortem
// rather than silently deleted.
func (s *Store) Quarantine(hash string) {
	if !ValidHash(hash) {
		return
	}
	s.mu.Lock()
	s.dropLocked(hash)
	s.stats.Quarantined++
	src := s.objectPath(hash)
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", hash, time.Now().UnixNano()))
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
	}
	s.mu.Unlock()
}

// quarantineFile moves an unindexed file aside during the warm scan.
func (s *Store) quarantineFile(path, why string) {
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.mu.Lock()
	s.stats.Quarantined++
	s.mu.Unlock()
	s.log.Warn("store quarantined entry on warm scan", "path", path, "reason", why)
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	st.Bytes = s.bytes
	return st
}

// Close persists the access-time manifest. The entries themselves are
// already durable (every Put fsyncs before renaming); skipping Close —
// a crash — only costs the recency hints.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushManifestLocked()
	return nil
}

// manifest is the persisted access-time hint file.
type manifest struct {
	Version int              `json:"version"`
	ATimes  map[string]int64 `json:"atimes"`
}

// loadManifest reads the atime hints; any failure (absent file, torn
// write, version skew) degrades to an empty map — the hints are not
// load-bearing.
func (s *Store) loadManifest() map[string]int64 {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return nil
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Version != manifestVersion {
		s.log.Warn("store manifest unreadable, falling back to file mtimes")
		return nil
	}
	return m.ATimes
}

// flushManifestLocked atomically rewrites manifest.json from the live
// index. No fsync: the manifest is hints, and an occasionally stale
// one only reorders eviction. Called with s.mu held.
func (s *Store) flushManifestLocked() {
	s.touchesSinceFlush = 0
	if !s.manifestDirty {
		return
	}
	m := manifest{Version: manifestVersion, ATimes: make(map[string]int64, s.ll.Len())}
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		m.ATimes[e.hash] = e.atime
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	tmp := filepath.Join(s.tmpDir(), manifestName)
	if s.faults != nil && s.faults.WriteFile != nil {
		if err := s.faults.WriteFile(tmp); err != nil {
			s.log.Warn("store manifest write failed", "error", err.Error())
			return
		}
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.log.Warn("store manifest write failed", "error", err.Error())
		return
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		s.log.Warn("store manifest publish failed", "error", err.Error())
		return
	}
	s.manifestDirty = false
}

// ---------------------------------------------------------------------
// Content-address and entry-framing helpers. Exported where the fuzz
// tests and the service layer need them.

// ValidHash reports whether h is a well-formed content address:
// exactly 64 lowercase hex characters (a sha256). Everything the store
// derives a path from goes through this check, so path traversal via a
// hostile "hash" is structurally impossible.
func ValidHash(h string) bool {
	if len(h) != hashHexLen {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EntryRel returns the store-relative path of a hash's entry file:
// two levels of fan-out by hash prefix, so a million entries spread
// over 65536 directories instead of one. The caller must have
// validated the hash.
func EntryRel(hash string) string {
	return filepath.Join(hash[:2], hash[2:4], hash+".json")
}

// HashFromEntryName inverts EntryRel's file name: "<hash>.json" with a
// valid content address, or ok=false.
func HashFromEntryName(name string) (string, bool) {
	h, found := strings.CutSuffix(name, ".json")
	if !found || !ValidHash(h) {
		return "", false
	}
	return h, true
}

// isFanoutName reports whether a directory name is one fan-out level:
// exactly two lowercase hex characters.
func isFanoutName(name string) bool {
	return len(name) == 2 && ValidHash(strings.Repeat(name, hashHexLen/2))
}

// frame wraps a payload in the self-verifying entry format.
func frame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", headerMagic, hex.EncodeToString(sum[:]), len(payload))
	return append([]byte(header), payload...)
}

// parseEntry verifies a framed entry and returns its payload: the
// declared length and checksum must both match, so truncation, torn
// tails and bit flips all surface as errors rather than as data. The
// header parse is strict — exactly the bytes frame would emit — so an
// entry either IS frame(payload) or it does not parse.
func parseEntry(data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("no header line")
	}
	header := string(data[:nl])
	rest, ok := strings.CutPrefix(header, headerMagic+" ")
	if !ok {
		return nil, fmt.Errorf("bad header %q", header)
	}
	sumHex, lenStr, ok := strings.Cut(rest, " ")
	if !ok || !ValidHash(sumHex) {
		return nil, fmt.Errorf("bad header %q", header)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || lenStr != strconv.Itoa(n) {
		return nil, fmt.Errorf("bad declared length %q", lenStr)
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("truncated: header declares %d payload bytes, file has %d", n, len(payload))
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// quickVerify is the warm-scan integrity check: the header must parse
// and header + declared payload length must equal the file size. One
// small read per entry, catches truncation (filesystem-level loss of a
// data tail, out-of-space artifacts, manual tampering); bit flips that
// preserve length are caught by the full checksum at Get.
func quickVerify(path string, size int64) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	// The header is ~95 bytes; 200 covers any legal one.
	buf := make([]byte, 200)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return false
	}
	nl := bytes.IndexByte(buf[:n], '\n')
	if nl < 0 {
		return false
	}
	fields := strings.Fields(string(buf[:nl]))
	if len(fields) != 3 || fields[0] != headerMagic {
		return false
	}
	declared, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || declared < 0 {
		return false
	}
	return int64(nl)+1+declared == size
}
