// Package store is the durable tier of the result cache: a crash-safe,
// content-addressed store mapping a resolved spec's canonical hash
// (scenario.Spec.CanonicalHash) to the result payload it produced.
// The engine is deterministic in the resolved spec, so a result is
// exactly as content-addressable as the spec that named it — which
// means it can outlive the process that computed it. midas-serve opens
// a Store under its in-memory LRU so a restart, crash, or deploy loses
// nothing: any previously completed spec is served from disk without
// re-running the engine.
//
// The Store owns indexing, verification, quarantine and LRU eviction;
// the bytes live behind the Backend seam (backend.go) — a local
// directory (DirBackend), a shared filesystem several coordinators and
// workers mount at once (SharedDirBackend), or a future object store.
// Blob namespace, regardless of backend:
//
//	<hh>/<hh>/<hash>.json   entries, two-level fan-out by hash prefix
//	tmp/                    in-flight writes (dir backends; swept at open)
//	quarantine/             entries that failed verification
//	manifest.json           access-time hints for LRU eviction
//	manifest-<nonce>.json   per-process hints on a shared backend
//
// An entry blob is a one-line header followed by the payload:
//
//	midas-store/v1 <sha256-hex-of-payload> <payload-length>\n<payload>
//
// The header makes every entry self-verifying: the spec hash in the
// blob name says which computation the bytes claim to be, the header
// says what the bytes must look like. Truncation, torn tails and bit
// flips all fail verification, and a failed entry is quarantined and
// recomputed — never served.
//
// Crash safety is the Backend.Write contract (write-temp → fsync →
// rename on dir backends): there is no state in which a partially
// written entry is reachable under its final name on a correctly
// ordered filesystem, and the header verification catches the
// incorrectly ordered ones.
//
// Eviction is LRU by access time under a byte budget. Access times
// live in memory and are persisted as hints (at Close and every few
// dozen touches): losing the manifest — a kill -9 skips Close — only
// degrades the next process's eviction order to blob mod-times, never
// correctness. On a shared backend each process writes its own
// manifest-<nonce>.json and every opener merges all of them, newest
// hint per entry, so siblings never clobber each other's hints.
//
// On a shared backend the index is a snapshot: entries published by
// sibling processes after our open are not in it. Get therefore falls
// through to the backend on an index miss (read-through), verifies,
// and indexes what it finds — which is how two coordinators on one
// shared store serve each other's results with zero re-runs.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	headerMagic       = "midas-store/v1"
	hashHexLen        = 64
	tmpDirName        = "tmp"
	quarantineDirName = "quarantine"
	manifestName      = "manifest.json"
	manifestVersion   = 1
	// manifestFlushEvery bounds how stale the persisted atime hints can
	// get while the process runs: the manifest is rewritten after this
	// many touches — Puts and Gets both move atimes, so both count —
	// and always at Close. Counting only Puts was a real bug: a long
	// read-heavy run that died by kill -9 lost every eviction hint
	// accumulated since its last write.
	manifestFlushEvery = 64
)

// sharedManifestMaxAge is how stale a sibling's manifest blob must be
// before an opener on a shared backend garbage-collects it: well past
// any live process's flush cadence, so only manifests of processes
// long dead are removed. A var so tests can shrink it.
var sharedManifestMaxAge = 24 * time.Hour

// FaultFS injects filesystem failures into a dir backend's write path,
// so tests can prove the crash-recovery behavior without an actual
// crash. A nil hook (or a nil FaultFS) means the real operation runs
// unconditionally; a hook returning an error fails the operation
// before it touches the disk.
type FaultFS struct {
	// WriteFile is consulted before a temp file is written — an
	// entry's, or the manifest's on a periodic flush. Failing it models
	// a full disk or I/O error: Put returns the error and removes the
	// temp file; a manifest flush is skipped (the hints stay in memory
	// until the next cadence point or Close).
	WriteFile func(path string) error
	// Rename is consulted before the temp file is renamed into place.
	// Failing it models a crash between the temp write and the rename
	// (the torn-write window): Put returns the error and the temp file
	// is deliberately left behind, exactly as a real crash would leave
	// it, for the next open's sweep to collect.
	Rename func(oldPath, newPath string) error
}

// Config configures Open.
type Config struct {
	// Backend is the blob tier the store indexes; nil derives a
	// DirBackend from Dir.
	Backend Backend
	// Dir is the store root when Backend is nil; created if absent.
	Dir string
	// MaxBytes is the byte budget across all entry blobs (headers
	// included); exceeding it evicts least-recently-used entries.
	// <= 0 means unbounded.
	MaxBytes int64
	// Faults, when non-nil and Backend is nil, injects write-path
	// failures into the derived DirBackend (tests only).
	Faults *FaultFS
	// Log receives warm-scan and quarantine warnings; nil discards.
	Log *slog.Logger
}

// Stats is a snapshot of the store's state and cumulative counters
// (per process; counters reset at Open).
type Stats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
}

// entry is one indexed entry blob.
type entry struct {
	hash  string
	size  int64 // whole blob (header + payload): what the byte budget charges
	atime int64 // unix nanos of last touch, the LRU eviction key
}

// Store is a crash-safe content-addressed result store. All methods
// are safe for concurrent use; blob reads happen outside the index
// lock, so a Get racing an eviction of the same entry degrades to a
// miss.
type Store struct {
	be       Backend
	shared   bool
	maxBytes int64
	log      *slog.Logger
	// nonce names this process's manifest blob on a shared backend.
	nonce string

	mu      sync.Mutex
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element holding *entry
	bytes   int64
	stats   Stats // counter fields only; Entries/Bytes derived in Stats()
	// touchesSinceFlush counts atime movements (Puts and Gets) since
	// the manifest was last persisted; at manifestFlushEvery it flushes.
	touchesSinceFlush int
	manifestDirty     bool
}

// Open opens the store over cfg.Backend (or a DirBackend rooted at
// cfg.Dir), rebuilds the index from a backend listing — quarantining
// any entry that fails the header check — and enforces the byte budget
// on what survives. Dir backends sweep torn writes from tmp/ as part
// of their own open.
func Open(cfg Config) (*Store, error) {
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	be := cfg.Backend
	if be == nil {
		if cfg.Dir == "" {
			return nil, errors.New("store: Config.Backend or Config.Dir is required")
		}
		db, err := OpenDir(cfg.Dir, cfg.Faults)
		if err != nil {
			return nil, err
		}
		be = db
	}
	s := &Store{
		be:       be,
		shared:   be.Shared(),
		maxBytes: cfg.MaxBytes,
		log:      log,
		nonce:    fmt.Sprintf("%d-%x", os.Getpid(), time.Now().UnixNano()),
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
	infos, err := be.List()
	if err != nil {
		return nil, err
	}
	s.warmScan(infos, s.loadManifests(infos))
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// warmScan rebuilds the index from a backend listing. Blobs under a
// well-formed two-level fan-out path whose name is not a matching
// content address, or that fail the cheap header-vs-size check
// (truncation), are quarantined. Everything outside the fan-out tree —
// manifests, quarantine/, a journal sharing the backend — is ignored.
// atimes supplies last-access hints from the manifests; entries they
// do not cover fall back to blob mod-time.
func (s *Store) warmScan(infos []BlobInfo, atimes map[string]int64) {
	var found []*entry
	for _, in := range infos {
		segs := strings.Split(in.Name, "/")
		if len(segs) != 3 || !isFanoutName(segs[0]) || !isFanoutName(segs[1]) {
			continue // manifests, quarantine/, journal/, strays
		}
		hash, ok := HashFromEntryName(segs[2])
		if !ok || hash[:2] != segs[0] || hash[2:4] != segs[1] {
			s.quarantineBlob(in.Name, "name is not a content address")
			continue
		}
		if !s.quickVerify(in.Name, in.Size) {
			s.quarantineBlob(in.Name, "truncated or malformed entry")
			continue
		}
		at := atimes[hash]
		if at == 0 {
			at = in.ModTime.UnixNano()
		}
		found = append(found, &entry{hash: hash, size: in.Size, atime: at})
	}
	// Oldest-accessed first, so pushing front leaves the most recently
	// used entry at the front — the same invariant live Puts maintain.
	sort.Slice(found, func(i, j int) bool { return found[i].atime < found[j].atime })
	for _, e := range found {
		s.entries[e.hash] = s.ll.PushFront(e)
		s.bytes += e.size
	}
}

// Get returns the payload stored under hash. A verification failure
// quarantines the entry and reports a miss, so a corrupted result is
// recomputed rather than served. On a shared backend an index miss
// falls through to the backend itself — a sibling process may have
// published the entry after we opened — and a verified find is indexed
// as if we had written it.
func (s *Store) Get(hash string) ([]byte, bool) {
	if !ValidHash(hash) {
		return nil, false
	}
	s.mu.Lock()
	el, ok := s.entries[hash]
	if !ok {
		s.mu.Unlock()
		if s.shared {
			return s.readThrough(hash)
		}
		s.countMiss()
		return nil, false
	}
	e := el.Value.(*entry)
	e.atime = time.Now().UnixNano()
	s.ll.MoveToFront(el)
	s.manifestDirty = true
	s.touchLocked()
	s.mu.Unlock()

	data, err := s.be.Read(EntryRel(hash))
	if err != nil {
		// A concurrent eviction can remove the blob between the index
		// lookup and the read: that is a miss, not corruption. Drop the
		// index entry if it is somehow still present.
		s.mu.Lock()
		s.dropLocked(hash)
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, err := parseEntry(data)
	if err != nil {
		s.log.Warn("store entry failed verification, quarantined",
			"hash", hash, "error", err.Error())
		s.Quarantine(hash)
		s.countMiss()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// readThrough answers an index miss from the backend directly — the
// shared-backend path where a sibling's publish post-dates our open.
// A verified find is indexed (and charged to the byte budget) so later
// Gets hit memory-index-first like any other entry.
func (s *Store) readThrough(hash string) ([]byte, bool) {
	data, err := s.be.Read(EntryRel(hash))
	if err != nil {
		s.countMiss()
		return nil, false
	}
	payload, perr := parseEntry(data)
	if perr != nil {
		s.log.Warn("store entry failed verification, quarantined",
			"hash", hash, "error", perr.Error())
		s.Quarantine(hash)
		s.countMiss()
		return nil, false
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	if _, ok := s.entries[hash]; !ok {
		s.entries[hash] = s.ll.PushFront(&entry{hash: hash, size: int64(len(data)), atime: now})
		s.bytes += int64(len(data))
		s.manifestDirty = true
		s.evictLocked()
		s.touchLocked()
	}
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

func (s *Store) countMiss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put durably stores payload under hash via the backend's atomic
// write. The entry is indexed (and the budget enforced) only after the
// write returns, so a crash at any point leaves either no entry or a
// complete one. On a shared backend a concurrent Put of the same hash
// by a sibling is harmless: content-addressing means both writers
// carry identical bytes, so last-rename-wins publishes the same entry
// either way.
func (s *Store) Put(hash string, payload []byte) error {
	if !ValidHash(hash) {
		return fmt.Errorf("store: invalid hash %q", hash)
	}
	framed := frame(payload)
	size := int64(len(framed))
	if s.maxBytes > 0 && size > s.maxBytes {
		s.countWriteError()
		return fmt.Errorf("store: entry %s is %d bytes, over the whole-store budget of %d", hash, size, s.maxBytes)
	}
	if err := s.be.Write(EntryRel(hash), framed); err != nil {
		s.countWriteError()
		return fmt.Errorf("store: writing %s: %w", hash, err)
	}

	now := time.Now().UnixNano()
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.size = size
		e.atime = now
		s.ll.MoveToFront(el)
	} else {
		s.entries[hash] = s.ll.PushFront(&entry{hash: hash, size: size, atime: now})
		s.bytes += size
	}
	s.stats.Writes++
	s.manifestDirty = true
	s.evictLocked()
	s.touchLocked()
	s.mu.Unlock()
	return nil
}

// touchLocked counts one atime movement toward the periodic manifest
// flush and flushes when the cadence is reached. Called with s.mu held
// by every path that reorders the LRU (Put and Get alike — eviction
// hints age just as fast under reads as under writes).
func (s *Store) touchLocked() {
	s.touchesSinceFlush++
	if s.touchesSinceFlush >= manifestFlushEvery {
		s.flushManifestLocked()
	}
}

func (s *Store) countWriteError() {
	s.mu.Lock()
	s.stats.WriteErrors++
	s.mu.Unlock()
}

// evictLocked deletes least-recently-used entries until the byte
// budget holds. Called with s.mu held; the blob removals happen under
// the lock too, so an eviction and a Put of the same hash cannot
// interleave destructively (a reader that already captured the name
// simply misses).
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.entries, e.hash)
		s.bytes -= e.size
		_ = s.be.Remove(EntryRel(e.hash))
		s.stats.Evictions++
		s.manifestDirty = true
	}
}

// dropLocked removes hash from the index without touching its blob.
func (s *Store) dropLocked(hash string) {
	if el, ok := s.entries[hash]; ok {
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.entries, hash)
		s.bytes -= e.size
		s.manifestDirty = true
	}
}

// Quarantine removes hash from the store and moves its blob into
// quarantine/ — for entries that verified at the byte level but turned
// out to be garbage at a higher one (an undecodable result). The entry
// must never be served again; the bytes are kept for post-mortem
// rather than silently deleted.
func (s *Store) Quarantine(hash string) {
	if !ValidHash(hash) {
		return
	}
	s.mu.Lock()
	s.dropLocked(hash)
	s.stats.Quarantined++
	s.mu.Unlock()
	s.moveAside(EntryRel(hash))
}

// quarantineBlob moves an unindexed blob aside during the warm scan.
func (s *Store) quarantineBlob(name, why string) {
	s.mu.Lock()
	s.stats.Quarantined++
	s.mu.Unlock()
	s.moveAside(name)
	s.log.Warn("store quarantined entry on warm scan", "name", name, "reason", why)
}

// moveAside copies a blob's bytes under quarantine/ (best-effort —
// post-mortem evidence, not data) and removes the original, which is
// the part that must happen: a quarantined entry is never served again.
func (s *Store) moveAside(name string) {
	dst := fmt.Sprintf("%s/%s.%d", quarantineDirName, path.Base(name), time.Now().UnixNano())
	if data, err := s.be.Read(name); err == nil {
		_ = s.be.Write(dst, data)
	}
	_ = s.be.Remove(name)
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	st.Bytes = s.bytes
	return st
}

// Close persists the access-time manifest. The entries themselves are
// already durable (every Put goes through the backend's atomic write);
// skipping Close — a crash — only costs the recency hints.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushManifestLocked()
	return nil
}

// manifest is the persisted access-time hint blob.
type manifest struct {
	Version int              `json:"version"`
	ATimes  map[string]int64 `json:"atimes"`
}

// manifestBlobName is where THIS process flushes its hints: the plain
// manifest.json on a private backend, a per-process manifest-<nonce>
// on a shared one — siblings flushing concurrently must not clobber
// each other's hints.
func (s *Store) manifestBlobName() string {
	if s.shared {
		return fmt.Sprintf("manifest-%s.json", s.nonce)
	}
	return manifestName
}

// isManifestName matches any manifest blob at the namespace root —
// ours, or a sibling's on a shared backend.
func isManifestName(name string) bool {
	if strings.Contains(name, "/") {
		return false
	}
	return name == manifestName ||
		(strings.HasPrefix(name, "manifest-") && strings.HasSuffix(name, ".json"))
}

// loadManifests merges the atime hints of every manifest blob in the
// listing, newest hint per entry — on a shared backend each sibling
// writes its own, and the truth is their union. Any unreadable blob
// degrades to no hints (the hints are not load-bearing). Manifests of
// processes long dead are garbage-collected in passing.
func (s *Store) loadManifests(infos []BlobInfo) map[string]int64 {
	at := make(map[string]int64)
	for _, in := range infos {
		if !isManifestName(in.Name) {
			continue
		}
		if s.shared && time.Since(in.ModTime) > sharedManifestMaxAge {
			_ = s.be.Remove(in.Name)
			continue
		}
		data, err := s.be.Read(in.Name)
		if err != nil {
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Version != manifestVersion {
			s.log.Warn("store manifest unreadable, falling back to blob mtimes", "name", in.Name)
			continue
		}
		for h, t := range m.ATimes {
			if t > at[h] {
				at[h] = t
			}
		}
	}
	if len(at) == 0 {
		return nil
	}
	return at
}

// flushManifestLocked rewrites this process's manifest blob from the
// live index. An occasionally stale manifest only reorders eviction.
// Called with s.mu held.
func (s *Store) flushManifestLocked() {
	s.touchesSinceFlush = 0
	if !s.manifestDirty {
		return
	}
	m := manifest{Version: manifestVersion, ATimes: make(map[string]int64, s.ll.Len())}
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		m.ATimes[e.hash] = e.atime
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	if err := s.be.Write(s.manifestBlobName(), data); err != nil {
		s.log.Warn("store manifest write failed", "error", err.Error())
		return
	}
	s.manifestDirty = false
}

// ---------------------------------------------------------------------
// Content-address and entry-framing helpers. Exported where the fuzz
// tests and the service layer need them.

// ValidHash reports whether h is a well-formed content address:
// exactly 64 lowercase hex characters (a sha256). Everything the store
// derives a blob name from goes through this check, so path traversal
// via a hostile "hash" is structurally impossible.
func ValidHash(h string) bool {
	if len(h) != hashHexLen {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EntryRel returns the backend-relative blob name of a hash's entry:
// two levels of fan-out by hash prefix, so a million entries spread
// over 65536 directories instead of one. The caller must have
// validated the hash.
func EntryRel(hash string) string {
	return hash[:2] + "/" + hash[2:4] + "/" + hash + ".json"
}

// HashFromEntryName inverts EntryRel's file name: "<hash>.json" with a
// valid content address, or ok=false.
func HashFromEntryName(name string) (string, bool) {
	h, found := strings.CutSuffix(name, ".json")
	if !found || !ValidHash(h) {
		return "", false
	}
	return h, true
}

// isFanoutName reports whether a directory name is one fan-out level:
// exactly two lowercase hex characters.
func isFanoutName(name string) bool {
	return len(name) == 2 && ValidHash(strings.Repeat(name, hashHexLen/2))
}

// frame wraps a payload in the self-verifying entry format.
func frame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", headerMagic, hex.EncodeToString(sum[:]), len(payload))
	return append([]byte(header), payload...)
}

// parseEntry verifies a framed entry and returns its payload: the
// declared length and checksum must both match, so truncation, torn
// tails and bit flips all surface as errors rather than as data. The
// header parse is strict — exactly the bytes frame would emit — so an
// entry either IS frame(payload) or it does not parse.
func parseEntry(data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("no header line")
	}
	header := string(data[:nl])
	rest, ok := strings.CutPrefix(header, headerMagic+" ")
	if !ok {
		return nil, fmt.Errorf("bad header %q", header)
	}
	sumHex, lenStr, ok := strings.Cut(rest, " ")
	if !ok || !ValidHash(sumHex) {
		return nil, fmt.Errorf("bad header %q", header)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || lenStr != strconv.Itoa(n) {
		return nil, fmt.Errorf("bad declared length %q", lenStr)
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("truncated: header declares %d payload bytes, file has %d", n, len(payload))
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// quickVerify is the warm-scan integrity check: the header must parse
// and header + declared payload length must equal the blob size. One
// small ranged read per entry, catches truncation (filesystem-level
// loss of a data tail, out-of-space artifacts, manual tampering); bit
// flips that preserve length are caught by the full checksum at Get.
func (s *Store) quickVerify(name string, size int64) bool {
	// The header is ~95 bytes; 200 covers any legal one.
	buf, err := s.be.ReadHeader(name, 200)
	if err != nil {
		return false
	}
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return false
	}
	fields := strings.Fields(string(buf[:nl]))
	if len(fields) != 3 || fields[0] != headerMagic {
		return false
	}
	declared, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || declared < 0 {
		return false
	}
	return int64(nl)+1+declared == size
}
