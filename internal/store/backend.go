package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Backend is the blob seam under the store (and the journal): a flat
// namespace of named blobs with atomic whole-blob writes. Names are
// slash-separated relative paths ("ab/cd/<hash>.json", "journal-ish
// names", "manifest.json"); the store's verification, quarantine and
// eviction logic all live ABOVE this interface, so a backend only has
// to get durability and atomicity right.
//
// The atomicity contract, per method:
//
//   - Write is all-or-nothing AND durable: after Write returns nil, a
//     reader (any process) sees the complete new bytes, and they
//     survive a crash. A crash mid-Write leaves either the previous
//     blob or none — never a torn blob reachable under its name. Dir
//     backends implement this as write-temp → fsync → rename →
//     best-effort directory sync; concurrent Writes of one name are
//     last-rename-wins with each candidate intact, which
//     content-addressing makes correct (every writer of a given name
//     writes identical bytes).
//   - Read returns the complete bytes of some completed Write of that
//     name (fs.ErrNotExist if none). It never observes a torn write.
//   - ReadHeader returns up to max leading bytes — the warm scan's
//     cheap integrity probe; a backend with ranged reads (a local file
//     seek, an S3 ranged GET) should avoid fetching the whole blob.
//   - List enumerates completed blobs only: in-flight temp files are
//     never listed. Ordering is by name; sizes/mod-times are those of
//     the completed writes.
//   - Remove unlinks a completed blob (fs.ErrNotExist if absent) and
//     makes the removal durable best-effort. A remove that a crash
//     resurrects is acceptable to every caller (content-addressed
//     entries re-verify; journal entries replay as no-ops).
//   - Stat reports a completed blob without reading it.
//
// Shared reports whether OTHER processes may be writing the same
// namespace concurrently (SharedDirBackend on an NFS-style mount). The
// store uses it to decide whether an index miss should fall through to
// the backend — a sibling may have published the blob after we opened.
//
// Design note — a future S3/object-store backend: the contract above
// maps cleanly onto conditional object storage. Write = PutObject
// (single-request puts are already atomic and last-writer-wins; no
// temp/rename dance needed), Read = GetObject, ReadHeader = ranged
// GetObject ("bytes=0-N"), List = paginated ListObjectsV2 under the
// prefix, Remove = DeleteObject, Shared = true. The store's framing
// header stays load-bearing (it turns eventual-consistency artifacts
// and truncated uploads into verification failures → quarantine), the
// manifest becomes one hint object per process exactly like the shared
// dir case, and the per-process temp nonce is simply unused. The only
// behavioral difference worth documenting is that List is eventually
// consistent, which the warm scan already tolerates: an unlisted entry
// is re-discovered by the read-through path on first Get.
type Backend interface {
	Read(name string) ([]byte, error)
	ReadHeader(name string, max int) ([]byte, error)
	Write(name string, data []byte) error
	Stat(name string) (BlobInfo, error)
	List() ([]BlobInfo, error)
	Remove(name string) error
	Shared() bool
}

// BlobInfo describes one completed blob.
type BlobInfo struct {
	Name    string // slash-separated, backend-relative
	Size    int64
	ModTime time.Time
}

// sharedTmpMaxAge is how old a temp file must be before a
// SharedDirBackend's open sweep collects it. A shared mount has live
// sibling processes mid-Write at any instant; their in-flight temps
// must survive our sweep, while temps this stale are crash leftovers
// by any reasonable lease/request timescale. A var so tests can shrink
// it.
var sharedTmpMaxAge = time.Hour

// dirCore is the shared implementation behind DirBackend and
// SharedDirBackend: a local directory with a tmp/ staging area and
// write-temp → fsync → rename publication.
type dirCore struct {
	root   string
	faults *FaultFS
	shared bool
	// nonce makes this process's temp names collision-free against
	// sibling processes on a shared mount (O_EXCL enforces it).
	nonce string
	seq   atomic.Uint64
}

// DirBackend is the single-process local-directory backend — the
// original store layout, byte-for-byte. Its tmp/ sweep at open removes
// every temp file, because only one process ever writes the directory.
type DirBackend struct{ *dirCore }

// SharedDirBackend is the multi-process variant for NFS-style shared
// filesystems: several coordinators and workers mount one directory.
// Temp names carry a per-process nonce and are created O_EXCL (so two
// processes can never interleave writes into one temp file), the open
// sweep only collects temps older than sharedTmpMaxAge (never a live
// sibling's in-flight write), and concurrent publishes of one name are
// last-rename-wins with either candidate complete — which
// content-addressing makes correct, since every writer of a given hash
// writes identical bytes.
type SharedDirBackend struct{ *dirCore }

// OpenDir opens (creating if necessary) a single-process directory
// backend rooted at root. faults injects write-path failures (tests
// only); nil means none.
func OpenDir(root string, faults *FaultFS) (*DirBackend, error) {
	c, err := openDirCore(root, faults, false)
	if err != nil {
		return nil, err
	}
	return &DirBackend{c}, nil
}

// OpenSharedDir opens (creating if necessary) a shared-filesystem
// backend rooted at root. See SharedDirBackend for the concurrency
// contract.
func OpenSharedDir(root string, faults *FaultFS) (*SharedDirBackend, error) {
	c, err := openDirCore(root, faults, true)
	if err != nil {
		return nil, err
	}
	return &SharedDirBackend{c}, nil
}

func openDirCore(root string, faults *FaultFS, shared bool) (*dirCore, error) {
	if root == "" {
		return nil, errors.New("store: backend root is required")
	}
	c := &dirCore{
		root:   root,
		faults: faults,
		shared: shared,
		nonce:  fmt.Sprintf("%d-%x", os.Getpid(), time.Now().UnixNano()),
	}
	if err := os.MkdirAll(c.tmpDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := c.sweepTmp(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *dirCore) tmpDir() string { return filepath.Join(c.root, tmpDirName) }

// sweepTmp collects torn writes left in tmp/: a file there is a write
// that never reached its rename — a crash mid-Write — and was never
// visible under its final name, so deleting it IS the recovery. On a
// shared mount, only temps old enough to be crash leftovers are
// collected; a fresh temp may be a live sibling's write in flight.
func (c *dirCore) sweepTmp() error {
	des, err := os.ReadDir(c.tmpDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	now := time.Now()
	for _, de := range des {
		p := filepath.Join(c.tmpDir(), de.Name())
		if c.shared {
			info, ierr := de.Info()
			if ierr != nil {
				continue // vanished under us: a sibling's rename or sweep
			}
			if now.Sub(info.ModTime()) < sharedTmpMaxAge {
				continue
			}
		}
		if err := os.RemoveAll(p); err != nil {
			return fmt.Errorf("store: sweeping torn write: %w", err)
		}
	}
	return nil
}

func (c *dirCore) Shared() bool { return c.shared }

// validName rejects names that would escape the root. Callers only
// pass names the store itself derived from validated hashes, so this
// is defense in depth, not an API.
func validName(name string) error {
	if name == "" || path.IsAbs(name) {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("store: invalid blob name %q", name)
		}
	}
	return nil
}

func (c *dirCore) blobPath(name string) string {
	return filepath.Join(c.root, filepath.FromSlash(name))
}

func (c *dirCore) Read(name string) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(c.blobPath(name))
}

func (c *dirCore) ReadHeader(name string, max int) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(c.blobPath(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, max)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:n], nil
}

func (c *dirCore) Stat(name string) (BlobInfo, error) {
	if err := validName(name); err != nil {
		return BlobInfo{}, err
	}
	info, err := os.Stat(c.blobPath(name))
	if err != nil {
		return BlobInfo{}, err
	}
	if info.IsDir() {
		return BlobInfo{}, fmt.Errorf("store: %q is a directory, not a blob", name)
	}
	return BlobInfo{Name: name, Size: info.Size(), ModTime: info.ModTime()}, nil
}

// Write publishes data under name with the crash-safe discipline the
// Backend contract documents: temp in tmp/, fsync, rename, best-effort
// directory sync. A write fault removes the temp (a clean failure); a
// rename fault deliberately leaves it — exactly the state a real crash
// in the torn-write window leaves — for a later open's sweep.
func (c *dirCore) Write(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	final := c.blobPath(name)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, tmpPath, err := c.createTemp(path.Base(name))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if c.faults != nil && c.faults.WriteFile != nil {
		if err := c.faults.WriteFile(tmpPath); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if c.faults != nil && c.faults.Rename != nil {
		if err := c.faults.Rename(tmpPath, final); err != nil {
			return err // temp left behind on purpose: the crash model
		}
	}
	if err := os.Rename(tmpPath, final); err != nil {
		return err
	}
	syncDir(filepath.Dir(final)) // best-effort: entries are self-verifying
	return nil
}

// createTemp stages a temp file for one write. The single-process
// backend uses CreateTemp's random suffix; the shared backend names
// temps <base>.<process-nonce>-<seq> and creates them O_EXCL, so a
// name collision with any other process — or a replayed sequence after
// a restart, since the nonce includes the start time — is impossible
// rather than merely unlikely.
func (c *dirCore) createTemp(base string) (*os.File, string, error) {
	if !c.shared {
		f, err := os.CreateTemp(c.tmpDir(), base+".*")
		if err != nil {
			return nil, "", err
		}
		return f, f.Name(), nil
	}
	for {
		p := filepath.Join(c.tmpDir(), fmt.Sprintf("%s.%s-%d", base, c.nonce, c.seq.Add(1)))
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			return f, p, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, "", err
		}
		// O_EXCL collision: only possible against our own leftover from a
		// previous crash with an astronomically unlucky nonce; take the
		// next sequence number.
	}
}

func (c *dirCore) List() ([]BlobInfo, error) {
	var out []BlobInfo
	tmpAbs := c.tmpDir()
	err := filepath.WalkDir(c.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			// A directory pruned by a concurrent eviction/sweep on a shared
			// mount: skip it, the walk is a snapshot not a transaction.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			if p == tmpAbs {
				return filepath.SkipDir
			}
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil // vanished mid-walk
		}
		rel, rerr := filepath.Rel(c.root, p)
		if rerr != nil {
			return rerr
		}
		out = append(out, BlobInfo{
			Name:    filepath.ToSlash(rel),
			Size:    info.Size(),
			ModTime: info.ModTime(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// syncDir fsyncs a directory so a rename or unlink inside it is
// durable. Best-effort: entries are self-verifying and removals may
// legally resurrect, so a failed directory sync costs nothing either
// caller cannot absorb.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Remove unlinks a blob and syncs its directory best-effort, so the
// removal usually survives a crash; a resurrected blob is harmless to
// every caller (see the Backend contract).
func (c *dirCore) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	p := c.blobPath(name)
	if err := os.Remove(p); err != nil {
		return err
	}
	syncDir(filepath.Dir(p))
	return nil
}
