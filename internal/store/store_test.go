package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// hashOf returns a deterministic valid content address for a label.
func hashOf(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	h := hashOf("a")
	payload := []byte(`{"answer": 42}` + "\n")

	s := mustOpen(t, Config{Dir: dir})
	if _, ok := s.Get(h); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(h, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(h)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("Bytes = %d, want > payload length %d (header charged)", st.Bytes, len(payload))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the warm scan must rebuild the index from disk alone.
	s2 := mustOpen(t, Config{Dir: dir})
	got2, ok := s2.Get(h)
	if !ok || string(got2) != string(payload) {
		t.Fatalf("entry did not survive reopen: ok=%v payload=%q", ok, got2)
	}
}

func TestReopenWithoutCloseStillServes(t *testing.T) {
	// Skipping Close models a crash: entries are fsynced at Put, so
	// only the manifest's atime hints may be lost — never data.
	dir := t.TempDir()
	h := hashOf("crash")
	payload := []byte("survives kill -9")
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(h, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// No Close.
	s2 := mustOpen(t, Config{Dir: dir})
	got, ok := s2.Get(h)
	if !ok || string(got) != string(payload) {
		t.Fatalf("entry lost without Close: ok=%v payload=%q", ok, got)
	}
}

func TestTornWriteLeavesNoEntryAndSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	h := hashOf("torn")
	boom := errors.New("injected crash before rename")
	s := mustOpen(t, Config{
		Dir:    dir,
		Faults: &FaultFS{Rename: func(_, _ string) error { return boom }},
	})
	if err := s.Put(h, []byte("never published")); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected %v", err, boom)
	}
	if _, ok := s.Get(h); ok {
		t.Fatal("torn write became visible")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("unexpected stats after torn write: %+v", st)
	}
	// The fault deliberately leaves the temp file, like a real crash.
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDirName))
	if err != nil || len(tmps) != 1 {
		t.Fatalf("want exactly the torn temp file left behind, got %d (err %v)", len(tmps), err)
	}

	// Recovery: the next Open sweeps it and sees an empty store.
	s2 := mustOpen(t, Config{Dir: dir})
	if st := s2.Stats(); st.Entries != 0 {
		t.Fatalf("store not empty after recovery: %+v", st)
	}
	tmps, _ = os.ReadDir(filepath.Join(dir, tmpDirName))
	if len(tmps) != 0 {
		t.Fatalf("tmp/ not swept at Open: %d files remain", len(tmps))
	}
}

func TestWriteFaultCleansTemp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected write failure")
	s := mustOpen(t, Config{
		Dir:    dir,
		Faults: &FaultFS{WriteFile: func(string) error { return boom }},
	})
	if err := s.Put(hashOf("w"), []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected %v", err, boom)
	}
	tmps, _ := os.ReadDir(filepath.Join(dir, tmpDirName))
	if len(tmps) != 0 {
		t.Fatalf("temp file not removed after write fault: %d files", len(tmps))
	}
}

func TestTruncatedEntryQuarantinedOnWarmScan(t *testing.T) {
	dir := t.TempDir()
	h := hashOf("truncme")
	payload := []byte("a payload long enough to truncate meaningfully")
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(h, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	// Tear off the tail, as a filesystem losing a data extent would.
	path := filepath.Join(dir, EntryRel(h))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()-10); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if _, ok := s2.Get(h); ok {
		t.Fatal("truncated entry was served")
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("unexpected stats after truncated warm scan: %+v", st)
	}
	qs, _ := os.ReadDir(filepath.Join(dir, quarantineDirName))
	if len(qs) != 1 {
		t.Fatalf("truncated entry not moved to quarantine: %d files there", len(qs))
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated entry still at %s", path)
	}
}

func TestCorruptPayloadQuarantinedOnGet(t *testing.T) {
	// A length-preserving bit flip passes the warm scan's quick check
	// and must be caught by the full checksum at Get.
	dir := t.TempDir()
	h := hashOf("flip")
	payload := []byte("bytes that will be flipped in place")
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(h, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	path := filepath.Join(dir, EntryRel(h))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("length-preserving flip should pass warm scan, stats %+v", st)
	}
	if _, ok := s2.Get(h); ok {
		t.Fatal("corrupt entry was served")
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("unexpected stats after corrupt Get: %+v", st)
	}
	if _, ok := s2.Get(h); ok {
		t.Fatal("quarantined entry came back")
	}
}

func TestForeignFileQuarantinedOnWarmScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	s.Close()
	// A stray file under a fan-out path whose name is no content address.
	strayDir := filepath.Join(dir, "ab", "cd")
	if err := os.MkdirAll(strayDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(strayDir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	if st := s2.Stats(); st.Entries != 0 || st.Quarantined != 1 {
		t.Fatalf("stray file not quarantined: %+v", st)
	}
}

func TestByteBudgetEvictionHonorsRecency(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 1000))
	entrySize := int64(len(frame(payload)))
	// Budget for exactly two entries.
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 2 * entrySize})

	ha, hb, hc := hashOf("a"), hashOf("b"), hashOf("c")
	for _, h := range []string{ha, hb} {
		if err := s.Put(h, payload); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Touch a so b becomes the LRU victim.
	if _, ok := s.Get(ha); !ok {
		t.Fatal("Get(a)")
	}
	if err := s.Put(hc, payload); err != nil {
		t.Fatalf("Put(c): %v", err)
	}
	if _, ok := s.Get(hb); ok {
		t.Fatal("LRU victim b still present")
	}
	if _, ok := s.Get(ha); !ok {
		t.Fatal("recently-touched a was evicted")
	}
	if _, ok := s.Get(hc); !ok {
		t.Fatal("just-written c was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 2*entrySize {
		t.Fatalf("unexpected stats after eviction: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, EntryRel(hb))); !os.IsNotExist(err) {
		t.Fatal("evicted entry's file not deleted")
	}
}

func TestManifestATimesDriveReopenEviction(t *testing.T) {
	// Recency recorded by Get must survive Close/Open and steer the
	// budget enforcement of the next process.
	dir := t.TempDir()
	payload := []byte(strings.Repeat("y", 500))
	entrySize := int64(len(frame(payload)))
	ha, hb := hashOf("a"), hashOf("b")

	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(ha, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(hb, payload); err != nil {
		t.Fatal(err)
	}
	// a was written first but touched last.
	if _, ok := s.Get(ha); !ok {
		t.Fatal("Get(a)")
	}
	s.Close()

	// Reopen with room for only one entry: b (older atime) must go.
	s2 := mustOpen(t, Config{Dir: dir, MaxBytes: entrySize})
	if _, ok := s2.Get(hb); ok {
		t.Fatal("open-time eviction kept the stale entry")
	}
	if _, ok := s2.Get(ha); !ok {
		t.Fatal("open-time eviction dropped the recently-touched entry")
	}
}

func TestOversizeAndInvalidPutRejected(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxBytes: 64})
	if err := s.Put(hashOf("big"), []byte(strings.Repeat("z", 1000))); err == nil {
		t.Fatal("oversize Put accepted")
	}
	if err := s.Put("not-a-hash", []byte("x")); err == nil {
		t.Fatal("invalid hash accepted")
	}
	if err := s.Put(strings.ToUpper(hashOf("case")), []byte("x")); err == nil {
		t.Fatal("uppercase hash accepted")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Entries != 0 {
		// Only the oversize one counts as a write error; invalid
		// hashes are caller bugs rejected before any I/O.
		t.Fatalf("unexpected stats: %+v", st)
	}
	if _, ok := s.Get("also-not-a-hash"); ok {
		t.Fatal("invalid hash Get hit")
	}
}

func TestEvictionRacingConcurrentReads(t *testing.T) {
	// Hammer a budget-constrained store with concurrent reads and
	// writes: every Get must return either the correct payload or a
	// clean miss, never an error, a torn payload, or a race-detector
	// report.
	dir := t.TempDir()
	payload := []byte(strings.Repeat("r", 2000))
	entrySize := int64(len(frame(payload)))
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 3 * entrySize})

	const keys = 8
	hashes := make([]string, keys)
	for i := range hashes {
		hashes[i] = hashOf(fmt.Sprintf("race-%d", i))
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := hashes[(w+i)%keys]
				if err := s.Put(h, payload); err != nil {
					t.Errorf("Put(%s): %v", h[:8], err)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				h := hashes[(w*3+i)%keys]
				if got, ok := s.Get(h); ok && string(got) != string(payload) {
					t.Errorf("Get(%s) returned corrupt payload", h[:8])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Bytes > 3*entrySize {
		t.Fatalf("budget not enforced after race: %+v", st)
	}
	if st.Quarantined != 0 {
		t.Fatalf("race produced quarantines: %+v", st)
	}
	// Whatever survived must still verify.
	for _, h := range hashes {
		if got, ok := s.Get(h); ok && string(got) != string(payload) {
			t.Fatalf("surviving entry %s corrupt", h[:8])
		}
	}
}

func TestManifestFlushEvery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	for i := 0; i < manifestFlushEvery; i++ {
		if err := s.Put(hashOf(fmt.Sprintf("m-%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// The periodic flush must have produced a manifest without Close.
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("manifest not flushed after %d puts: %v", manifestFlushEvery, err)
	}
	if !strings.Contains(string(data), hashOf("m-0")) {
		t.Fatal("manifest missing entries")
	}
}

func TestGetTouchesFlushManifest(t *testing.T) {
	// The read-heavy kill -9 scenario: Gets move atimes just like Puts,
	// so a run that only reads must still flush the manifest on the
	// same cadence — otherwise a crash loses every eviction hint since
	// the last write, and the next open evicts by stale file mtimes.
	dir := t.TempDir()
	payload := []byte(strings.Repeat("h", 500))
	entrySize := int64(len(frame(payload)))
	ha, hb := hashOf("a"), hashOf("b")

	var manifestWrites int
	s, err := Open(Config{Dir: dir, Faults: &FaultFS{
		WriteFile: func(path string) error {
			// Manifest writes stage through tmp/ as manifest.json.<rand>.
			if strings.HasPrefix(filepath.Base(path), manifestName) {
				manifestWrites++
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ha, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(hb, payload); err != nil {
		t.Fatal(err)
	}
	if manifestWrites != 0 {
		t.Fatalf("manifest flushed after only 2 puts (%d writes)", manifestWrites)
	}
	// b was written last, but a is what this workload actually uses.
	for i := 0; i < manifestFlushEvery; i++ {
		if _, ok := s.Get(ha); !ok {
			t.Fatal("Get(a)")
		}
	}
	if manifestWrites == 0 {
		t.Fatalf("%d Gets flushed no manifest: read touches not counted toward the cadence", manifestFlushEvery)
	}
	// kill -9: the store is abandoned, never Closed.

	// The next process has room for one entry; the manifest the Gets
	// flushed must steer eviction to b, not to the recently-read a.
	s2 := mustOpen(t, Config{Dir: dir, MaxBytes: entrySize})
	if _, ok := s2.Get(hb); ok {
		t.Fatal("reopen kept the cold entry: Get atimes were lost in the crash")
	}
	if _, ok := s2.Get(ha); !ok {
		t.Fatal("reopen evicted the read-hot entry")
	}
}

func TestManifestWriteFaultSkipsFlush(t *testing.T) {
	// A failing manifest write is absorbed: the flush is skipped, the
	// store keeps serving, and the hints land on the next healthy
	// cadence point (here: Close).
	dir := t.TempDir()
	h := hashOf("f")
	boom := errors.New("manifest disk full")
	failing := true
	s := mustOpen(t, Config{Dir: dir, Faults: &FaultFS{
		WriteFile: func(path string) error {
			if failing && strings.HasPrefix(filepath.Base(path), manifestName) {
				return boom
			}
			return nil
		},
	}})
	if err := s.Put(h, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*manifestFlushEvery; i++ {
		if _, ok := s.Get(h); !ok {
			t.Fatal("Get")
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatal("manifest appeared despite write faults")
	}
	failing = false
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("Close did not flush the manifest once writes recovered: %v", err)
	}
}

func TestGarbageManifestIgnored(t *testing.T) {
	dir := t.TempDir()
	h := hashOf("g")
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Put(h, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	if _, ok := s2.Get(h); !ok {
		t.Fatal("garbage manifest lost an entry")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}

func TestParseEntryErrors(t *testing.T) {
	good := frame([]byte("payload"))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no newline", []byte("midas-store/v1 abc 3")},
		{"wrong magic", []byte("other/v1 abc 3\nxyz")},
		{"bad length", []byte("midas-store/v1 abc notanum\nxyz")},
		{"negative length", []byte("midas-store/v1 abc -1\nxyz")},
		{"truncated", good[:len(good)-2]},
		{"extra bytes", append(append([]byte{}, good...), 'x')},
	}
	for _, c := range cases {
		if _, err := parseEntry(c.data); err == nil {
			t.Errorf("parseEntry(%s) accepted", c.name)
		}
	}
	if payload, err := parseEntry(good); err != nil || string(payload) != "payload" {
		t.Fatalf("parseEntry(good) = %q, %v", payload, err)
	}
	// Empty payloads are legal.
	if payload, err := parseEntry(frame(nil)); err != nil || len(payload) != 0 {
		t.Fatalf("parseEntry(frame(nil)) = %q, %v", payload, err)
	}
}
