package store

import (
	"path/filepath"
	"strings"
	"testing"
)

// FuzzHashEntryPathRoundTrip checks the content-address plumbing that
// everything else leans on: any string ValidHash accepts must survive
// the hash → entry path → file name → hash round trip exactly, the
// derived path must stay inside the store root (no traversal, no
// absolute paths), and anything ValidHash rejects must also be
// rejected when it reappears as a file name.
func FuzzHashEntryPathRoundTrip(f *testing.F) {
	f.Add("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	f.Add(strings.Repeat("a", 64))
	f.Add(strings.Repeat("A", 64))
	f.Add("../../../../etc/passwd")
	f.Add("..%2f..%2fescape")
	f.Add("")
	f.Add(strings.Repeat("0", 63))
	f.Add(strings.Repeat("0", 65))
	f.Add(strings.Repeat("g", 64))
	f.Add("0123456789abcdef/123456789abcdef0123456789abcdef0123456789abcdef")

	f.Fuzz(func(t *testing.T, h string) {
		if !ValidHash(h) {
			// A rejected hash must also be rejected as an entry name.
			if got, ok := HashFromEntryName(h + ".json"); ok {
				t.Fatalf("HashFromEntryName accepted %q (-> %q) that ValidHash rejects", h, got)
			}
			return
		}
		// Structural consequences of validity.
		if len(h) != 64 || strings.ToLower(h) != h {
			t.Fatalf("ValidHash accepted non-canonical %q", h)
		}
		rel := EntryRel(h)
		if filepath.IsAbs(rel) {
			t.Fatalf("EntryRel(%q) is absolute: %q", h, rel)
		}
		clean := filepath.Clean(rel)
		if clean != rel || strings.HasPrefix(clean, "..") {
			t.Fatalf("EntryRel(%q) escapes the root: %q", h, rel)
		}
		parts := strings.Split(rel, string(filepath.Separator))
		if len(parts) != 3 || parts[0] != h[:2] || parts[1] != h[2:4] {
			t.Fatalf("EntryRel(%q) fan-out wrong: %q", h, rel)
		}
		got, ok := HashFromEntryName(filepath.Base(rel))
		if !ok || got != h {
			t.Fatalf("round trip %q -> %q -> (%q, %v)", h, rel, got, ok)
		}
	})
}

// FuzzParseEntryFrameRoundTrip checks the entry framing: any payload
// round-trips through frame/parseEntry, and parseEntry never panics or
// mis-verifies arbitrary file contents.
func FuzzParseEntryFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte("midas-store/v1 deadbeef 4\nhuh?"))
	f.Add(frame([]byte("seeded")))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes: must not panic; on success the payload must
		// re-frame to the same bytes (i.e. only genuinely well-formed
		// entries parse).
		if payload, err := parseEntry(data); err == nil {
			if string(frame(payload)) != string(data) {
				t.Fatalf("parseEntry accepted non-canonical frame %q", data)
			}
		}
		// And every payload round-trips.
		framed := frame(data)
		payload, err := parseEntry(framed)
		if err != nil {
			t.Fatalf("parseEntry(frame(%d bytes)): %v", len(data), err)
		}
		if string(payload) != string(data) {
			t.Fatalf("frame round trip corrupted payload")
		}
	})
}
