package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden figure files from the current code")

// goldenFile is the committed format: the fully resolved spec the run
// replays, plus the result it must reproduce byte-for-byte.
type goldenFile struct {
	Spec   Spec   `json:"spec"`
	Result Result `json:"result"`
}

// goldenOverrides returns the reduced-scale spec for a scenario's
// golden run: small enough that the whole suite replays in CI, large
// enough that every code path (both experiment arms, sweeps, maps)
// executes. Scales are per scenario because the experiments' costs
// span three orders of magnitude.
func goldenOverrides(name string) Spec {
	short := Duration(20 * time.Millisecond)
	switch name {
	case "fig11-optimal-gap": // numerical optimum: seconds per topology
		return Spec{Topologies: 2}
	case "fig13-deadzones", "ht-hidden-terminals": // dense grids per deployment
		return Spec{Topologies: 2}
	case "fig15-end-to-end", "decomp-gain-breakdown", "client-churn",
		"ablation-tagwidth", "ablation-waitwindow", "ablation-scheduler":
		return Spec{Topologies: 2, SimTime: short}
	case "fig15-replicated": // 3 replicates of a short e2e run, so the
		// golden pins the {mean, stddev, ci95, n} summary schema
		return Spec{Topologies: 2, SimTime: short, Replicates: 3}
	case "fig16-large-scale":
		return Spec{Topologies: 2, SimTime: short}
	case "dense-venue": // 16-AP DES × the clients sweep
		return Spec{Topologies: 1, SimTime: short}
	case "ablation-correlation":
		return Spec{Topologies: 4}
	case "ext-placement":
		return Spec{Topologies: 2}
	default: // PHY/MAC topology sweeps are cheap
		return Spec{Topologies: 3}
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenFigures replays every registered scenario's committed spec
// at parallelism 1 and 8 and requires the serialized result to match
// the golden file byte-for-byte. Run with -update to regenerate the
// goldens after an intentional change:
//
//	go test ./internal/scenario -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay runs every scenario; skipped in -short")
	}
	ctx := context.Background()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			path := goldenPath(name)

			if *update {
				spec, err := Resolve(sc, goldenOverrides(name))
				if err != nil {
					t.Fatal(err)
				}
				spec.Parallelism = 0 // the replay chooses; keep the file neutral
				res, err := Run(ctx, sc, spec)
				if err != nil {
					t.Fatal(err)
				}
				b, err := marshalGolden(goldenFile{Spec: spec, Result: res})
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			var gf goldenFile
			if err := json.Unmarshal(raw, &gf); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}

			for _, par := range []int{1, 8} {
				spec := gf.Spec.clone()
				spec.Parallelism = par
				old := sim.Parallelism
				sim.Parallelism = par
				res, err := Run(ctx, sc, spec)
				sim.Parallelism = old
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				got, err := marshalGolden(goldenFile{Spec: gf.Spec, Result: res})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, raw) {
					t.Errorf("parallelism %d: result diverged from golden %s\n(run with -update only if the change is intentional)\n%s",
						par, path, diffHint(raw, got))
				}
			}
		})
	}
}

func marshalGolden(gf goldenFile) ([]byte, error) {
	b, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// diffHint returns the first line where the two serializations differ,
// so a golden failure points at the drifted value instead of dumping
// two multi-kilobyte blobs.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return "line " + strconv.Itoa(i+1) + ":\n golden: " + string(wl[i]) + "\n    got: " + string(gl[i])
		}
	}
	return "one file is a prefix of the other (lengths " + strconv.Itoa(len(want)) + " vs " + strconv.Itoa(len(got)) + ")"
}
