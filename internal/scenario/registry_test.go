package scenario

import (
	"strings"
	"testing"
)

// The fig15 stem regressed into an ambiguous prefix when
// fig15-replicated was registered next to fig15-end-to-end; the alias
// mechanism restores it. Exact names and exact aliases must always win
// before prefix matching.
func TestFindExactBeatsPrefix(t *testing.T) {
	cases := []struct {
		query, want string
	}{
		{"fig15", "fig15-end-to-end"},            // alias, not an ambiguity error
		{"fig15-end-to-end", "fig15-end-to-end"}, /* exact */
		{"fig15-replicated", "fig15-replicated"}, // exact, despite sharing the stem
		{"fig15-r", "fig15-replicated"},          // unique prefix still works
		{"fig12", "fig12-spatial-reuse"},         // unique prefix unaffected
	}
	for _, c := range cases {
		sc, err := Find(c.query)
		if err != nil {
			t.Errorf("Find(%q): %v", c.query, err)
			continue
		}
		if sc.Name() != c.want {
			t.Errorf("Find(%q) = %s, want %s", c.query, sc.Name(), c.want)
		}
	}
}

func TestFindAmbiguousAndUnknown(t *testing.T) {
	if _, err := Find("fig1"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Find(fig1) should be ambiguous, got %v", err)
	}
	if _, err := Find("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("Find(no-such-scenario) should be unknown, got %v", err)
	}
}

// An alias is a full citizen of the CLI namespace: Resolve and the
// engine accept it wherever a name is accepted.
func TestRunByNameAcceptsAlias(t *testing.T) {
	sc, err := Find("fig15")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(sc, Spec{Topologies: 1}); err != nil {
		t.Fatalf("resolve via alias: %v", err)
	}
}

func TestRegisterRejectsAliasCollisions(t *testing.T) {
	mustPanic := func(name string, sc Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(sc)
	}
	mustPanic("alias collides with name", &scenarioFunc{
		name:    "collide-name-test",
		aliases: []string{"fig12-spatial-reuse"},
	})
	mustPanic("alias collides with alias", &scenarioFunc{
		name:    "collide-alias-test",
		aliases: []string{"fig15"},
	})
	mustPanic("name collides with alias", &scenarioFunc{name: "fig15"})
	mustPanic("empty alias", &scenarioFunc{name: "empty-alias-test", aliases: []string{""}})
}
