package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rng"
)

// Scenario is one registered experiment: a name, the spec that
// reproduces its paper (or default) configuration, and a Run that
// evaluates one concrete spec. Run receives a validated, merged spec
// with no sweep and exactly one replicate — the engine handles
// expansion — and must derive all randomness from src, so runs are
// deterministic in (spec, seed) and safe to dispatch concurrently.
type Scenario interface {
	Name() string
	DefaultSpec() Spec
	Run(spec Spec, src *rng.Source) (Result, error)
}

// About is optionally implemented by scenarios that carry a one-line
// description (shown by midas-sim -list).
type About interface {
	About() string
}

var (
	regMu      sync.RWMutex
	registry   = map[string]Scenario{}
	regOrder   []string
	regAliases = map[string]string{}
)

// Aliaser is optionally implemented by scenarios that answer to extra
// exact names ("fig15" for "fig15-end-to-end"). An alias resolves in
// Find after exact registered names and before prefix matching, so a
// figure stem that later becomes an ambiguous prefix (when a variant
// scenario is registered next to the paper's own) keeps selecting the
// paper figure.
type Aliaser interface {
	Aliases() []string
}

// Register adds a scenario to the global registry. Registering a
// duplicate name or alias panics: names are the CLI and golden-file
// namespace.
func Register(sc Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	name := sc.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	if owner, dup := regAliases[name]; dup {
		panic(fmt.Sprintf("scenario: name %q already registered as an alias of %q", name, owner))
	}
	if al, ok := sc.(Aliaser); ok {
		for _, a := range al.Aliases() {
			if a == "" {
				panic(fmt.Sprintf("scenario: %q registers an empty alias", name))
			}
			if _, dup := registry[a]; dup {
				panic(fmt.Sprintf("scenario: alias %q of %q collides with a registered name", a, name))
			}
			if owner, dup := regAliases[a]; dup {
				panic(fmt.Sprintf("scenario: alias %q of %q already aliases %q", a, name, owner))
			}
			regAliases[a] = name
		}
	}
	registry[name] = sc
	regOrder = append(regOrder, name)
}

// Names returns all registered scenario names in registration (paper)
// order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// Get returns the scenario registered under exactly name.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// Find resolves a user-supplied name: an exact registered name first,
// then an exact alias, then a unique prefix ("fig12" resolves to
// "fig12-spatial-reuse"). Exact matches always win before prefix
// matching, so "fig15-replicated" selects itself even though it is
// also a prefix namespace, and the "fig15" alias selects the paper's
// fig15-end-to-end rather than erroring as an ambiguous prefix.
// Ambiguous or unknown names return an error listing the candidates.
func Find(name string) (Scenario, error) {
	if sc, ok := Get(name); ok {
		return sc, nil
	}
	regMu.RLock()
	canonical, isAlias := regAliases[name]
	regMu.RUnlock()
	if isAlias {
		sc, _ := Get(canonical)
		return sc, nil
	}
	var matches []string
	for _, n := range Names() {
		if strings.HasPrefix(n, name) {
			matches = append(matches, n)
		}
	}
	switch len(matches) {
	case 1:
		sc, _ := Get(matches[0])
		return sc, nil
	case 0:
		return nil, fmt.Errorf("scenario: unknown scenario %q (midas-sim -list shows all %d)", name, len(Names()))
	default:
		sort.Strings(matches)
		return nil, fmt.Errorf("scenario: ambiguous scenario %q: matches %s", name, strings.Join(matches, ", "))
	}
}

// Ignorer is optionally implemented by scenarios that do not use some
// spec knobs; Resolve rejects overrides that set an ignored knob, so a
// user can never believe they measured a configuration the experiment
// silently dropped.
type Ignorer interface {
	IgnoredKnobs() []string
}

// scenarioFunc is the concrete Scenario the built-in registrations use.
type scenarioFunc struct {
	name     string
	about    string
	defaults Spec
	// aliases lists extra exact names this scenario answers to in Find
	// (resolved before prefix matching).
	aliases []string
	// ignores lists the spec knobs this experiment does not consume
	// (Knob* constants). Overriding one is a Resolve error.
	ignores []string
	run     func(spec Spec, src *rng.Source, r *Result) error
}

func (s *scenarioFunc) Name() string           { return s.name }
func (s *scenarioFunc) About() string          { return s.about }
func (s *scenarioFunc) DefaultSpec() Spec      { return s.defaults.clone() }
func (s *scenarioFunc) Aliases() []string      { return s.aliases }
func (s *scenarioFunc) IgnoredKnobs() []string { return s.ignores }

func (s *scenarioFunc) Run(spec Spec, src *rng.Source) (Result, error) {
	r := Result{Scenario: s.name}
	if err := s.run(spec, src, &r); err != nil {
		return Result{}, err
	}
	return r, nil
}
