package scenario

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
)

// This file is the replicate-aggregation layer: Spec.Replicates fans
// every sweep point into N independent runs over split seeds, and the
// N results are merged online into {mean, stddev, ci95, n} summaries.
// Aggregation is streaming end to end — Welford accumulators for the
// summaries, a P² sketch for pooled distribution quantiles — so the
// merged result's size is bounded by the result schema, never by
// replicates × samples.

// replicateSpecs expands one sweep point into its concrete
// single-replicate specs. Replicate 0 runs the point's own seed, so the
// first replicate of a replicated run is bit-identical to the
// unreplicated run of the same spec; replicate r >= 1 derives its seed
// from rng.New(seed).SplitN("replicate", r) — decorrelated from the
// base stream and from the seed+1, seed+2, … seeds users pick by hand,
// so raising Replicates never silently re-runs a seed already reported
// elsewhere.
func (s Spec) replicateSpecs() []Spec {
	n := s.Replicates
	if n < 1 {
		n = 1
	}
	root := rng.New(s.Seed)
	out := make([]Spec, n)
	for r := 0; r < n; r++ {
		q := s.clone()
		q.Sweep = nil
		q.Replicates = 1
		if r > 0 {
			q.Seed = root.SplitN("replicate", r).Seed()
		}
		out[r] = q
	}
	return out
}

// pooledQuantiles are the distribution points the replicate merge
// reports for every series, sketched over the replicates' pooled
// samples.
var pooledQuantiles = []struct {
	name string
	q    float64
}{
	{"p10", 0.10},
	{"p50", 0.50},
	{"p90", 0.90},
}

// aggregateReplicates merges the ordered results of one sweep point's
// replicates into a single Result:
//
//   - every metric becomes a Summary of its value across replicates;
//   - every series becomes a Summary of its per-replicate medians (the
//     replicate-level statistic the paper's CDF figures headline) plus
//     pooled p10/p50/p90 metrics estimated by a P² sketch fed all
//     replicates' samples in order;
//   - raw per-replicate series and free-form text are dropped — they
//     are per-run presentation, and carrying N copies would defeat the
//     bounded-memory contract.
//
// Results arrive ordered by replicate index (runner.Map's contract), so
// the aggregation — and therefore the merged output — is independent of
// the parallelism the replicates executed at.
func aggregateReplicates(scName string, reps []Result) Result {
	out := Result{Scenario: scName}
	if len(reps) == 0 {
		return out
	}
	for si, s := range reps[0].Series {
		var medians stats.Summary
		sketches := make([]*stats.P2Quantile, len(pooledQuantiles))
		for i, pq := range pooledQuantiles {
			sketches[i] = stats.NewP2Quantile(pq.q)
		}
		for _, rep := range reps {
			vals, ok := seriesValues(rep, si, s.Label)
			if !ok {
				continue
			}
			if m, err := stats.NewSample(vals...).Median(); err == nil {
				medians.Add(m)
			}
			for _, v := range vals {
				for _, sk := range sketches {
					sk.Add(v)
				}
			}
		}
		// A series that was empty (or all-NaN) in every replicate has no
		// statistics: a fabricated "0 ± 0 (n=0)" line would report a
		// mean nobody measured, and the sketch's NaN would poison the
		// whole run's JSON encoding at Close.
		if medians.N() > 0 {
			out.AddSummary("median "+s.Label, s.Unit, &medians)
		}
		if pooled := sketches[0].N(); pooled > 0 {
			note := fmt.Sprintf("P² sketch over %d pooled values", pooled)
			for i, pq := range pooledQuantiles {
				out.AddMetric(fmt.Sprintf("pooled %s %s", pq.name, s.Label), sketches[i].Value(), s.Unit, note)
			}
		}
	}
	for mi, m := range reps[0].Metrics {
		var w stats.Summary
		for _, rep := range reps {
			if v, ok := metricValue(rep, mi, m.Name); ok {
				w.Add(v)
			}
		}
		// Same rule as series: a metric that was non-finite in every
		// replicate has nothing to summarize.
		if w.N() > 0 {
			out.AddSummary(m.Name, m.Unit, &w)
		}
	}
	return out
}

// seriesValues finds a series by position (with a label check, since a
// deterministic scenario emits the same schema every replicate) and
// falls back to a scan if the schema ever drifts.
func seriesValues(r Result, i int, label string) ([]float64, bool) {
	if i < len(r.Series) && r.Series[i].Label == label {
		return r.Series[i].Values, true
	}
	for _, s := range r.Series {
		if s.Label == label {
			return s.Values, true
		}
	}
	return nil, false
}

func metricValue(r Result, i int, name string) (float64, bool) {
	if i < len(r.Metrics) && r.Metrics[i].Name == name {
		return r.Metrics[i].Value, true
	}
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// AddSummary appends a replicate-aggregated statistic.
func (r *Result) AddSummary(name, unit string, s *stats.Summary) {
	r.Summaries = append(r.Summaries, runner.SummaryOf(name, unit, s))
}
