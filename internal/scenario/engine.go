package scenario

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/runner"
)

// Resolve merges overrides onto the scenario's defaults and validates
// the result — the spec every Run ultimately executes. Overriding a
// knob the scenario declares it ignores is an error: the run would
// otherwise proceed and silently measure the default configuration.
func Resolve(sc Scenario, overrides Spec) (Spec, error) {
	if ig, ok := sc.(Ignorer); ok {
		defaults := sc.DefaultSpec()
		for _, knob := range ig.IgnoredKnobs() {
			if overrides.changesKnob(defaults, knob) {
				return Spec{}, fmt.Errorf("scenario: %s does not use the %s knob (it ignores: %s)",
					sc.Name(), knob, strings.Join(ig.IgnoredKnobs(), ", "))
			}
		}
	}
	spec := sc.DefaultSpec().Merge(overrides)
	// An explicit scalar beats an inherited default sweep over the same
	// field: `clients=8` against dense-venue's default clients sweep
	// runs 8, rather than the sweep silently overwriting the override.
	// A sweep the override itself supplies always stands.
	if overrides.Sweep == nil {
		for key := range spec.Sweep {
			if overrides.scalarOverrides(key) {
				delete(spec.Sweep, key)
			}
		}
	}
	spec.Scenario = sc.Name()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Run resolves the spec, expands its sweep × replicates and dispatches
// the expanded runs through the internal/runner worker pool at the
// spec's parallelism. A single-run spec returns the scenario's result
// untouched; multi-run specs merge per-run results with a "[label]"
// prefix on every series, metric and text line, in expansion order.
// Expanded-run errors cancel outstanding runs and surface the
// lowest-index failure, exactly like any other runner sweep.
func Run(ctx context.Context, sc Scenario, overrides Spec) (Result, error) {
	spec, err := Resolve(sc, overrides)
	if err != nil {
		return Result{}, err
	}
	runs := spec.expand()
	// Only a truly unswept spec skips labelling: a sweep that expands to
	// one point keeps its "[clients=8]" prefix, so output schema does
	// not depend on sweep cardinality.
	if len(runs) == 1 && runs[0].Label == "" {
		return sc.Run(runs[0].Spec, rng.New(runs[0].Spec.Seed))
	}

	opts := runner.Options{Parallelism: spec.Parallelism}
	results, err := runner.Map(ctx, len(runs), opts, func(_ context.Context, i int) (Result, error) {
		return sc.Run(runs[i].Spec, rng.New(runs[i].Spec.Seed))
	})
	if err != nil {
		return Result{}, err
	}

	merged := Result{Scenario: sc.Name()}
	for i, res := range results {
		prefix := "[" + runs[i].Label + "] "
		for _, s := range res.Series {
			s.Label = prefix + s.Label
			merged.Series = append(merged.Series, s)
		}
		for _, m := range res.Metrics {
			m.Name = prefix + m.Name
			merged.Metrics = append(merged.Metrics, m)
		}
		for _, line := range res.Text {
			merged.Text = append(merged.Text, prefix+line)
		}
	}
	return merged, nil
}

// RunByName resolves name through the registry (exact, then unique
// prefix) and runs it.
func RunByName(ctx context.Context, name string, overrides Spec) (Result, error) {
	sc, err := Find(name)
	if err != nil {
		return Result{}, err
	}
	return Run(ctx, sc, overrides)
}
