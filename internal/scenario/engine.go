package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/runner"
)

// Resolve merges overrides onto the scenario's defaults and validates
// the result — the spec every Run ultimately executes. Overriding a
// knob the scenario declares it ignores is an error: the run would
// otherwise proceed and silently measure the default configuration.
func Resolve(sc Scenario, overrides Spec) (Spec, error) {
	if ig, ok := sc.(Ignorer); ok {
		defaults := sc.DefaultSpec()
		for _, knob := range ig.IgnoredKnobs() {
			if overrides.changesKnob(defaults, knob) {
				return Spec{}, fmt.Errorf("scenario: %s does not use the %s knob (it ignores: %s)",
					sc.Name(), knob, strings.Join(ig.IgnoredKnobs(), ", "))
			}
		}
	}
	spec := sc.DefaultSpec().Merge(overrides)
	// An explicit scalar beats an inherited default sweep over the same
	// field: `clients=8` against dense-venue's default clients sweep
	// runs 8, rather than the sweep silently overwriting the override.
	// A sweep the override itself supplies always stands.
	if overrides.Sweep == nil {
		for key := range spec.Sweep {
			if overrides.scalarOverrides(key) {
				delete(spec.Sweep, key)
			}
		}
	}
	spec.Scenario = sc.Name()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// RunOptions tune one engine invocation without being part of the spec
// (they never affect the computed numbers, only how the run reports
// itself while in flight).
type RunOptions struct {
	// OnProgress, when non-nil, observes every completed expanded run
	// (sweep point × replicate) with the count finished so far and the
	// total the spec expands to. Invocations are serialized and strictly
	// monotonic in completed; a spec that expands to a single run
	// reports (1, 1) once, on completion.
	OnProgress func(completed, total int)
	// OnRunDone, when non-nil, observes every completed expanded run
	// with the runner's per-task timing (index, wall time, progress) —
	// the telemetry feed. Like OnProgress, invocations are serialized;
	// a single-run spec reports one synthesized Progress on completion.
	OnRunDone func(runner.Progress)
	// Parallelism, when > 0, overrides the spec's parallelism for this
	// invocation only. This is how a multi-job process (midas-serve)
	// budgets cores per job: the spec stays untouched (hash, sink meta
	// and cached results are parallelism-independent), while the
	// engine's run pool and each run's inner topology sweep share this
	// width instead of a process-global.
	Parallelism int
}

// Run resolves the spec, expands its sweep into points, fans every
// point into Replicates runs over split seeds, and dispatches the whole
// flattened task list through the internal/runner worker pool at the
// spec's parallelism. A single-point, single-replicate spec returns the
// scenario's result untouched. Replicated points are merged into
// {mean, stddev, ci95, n} summaries (see aggregateReplicates); multiple
// sweep points merge with a "[label]" prefix on every series, metric,
// summary and text line, in expansion order. Task errors cancel
// outstanding runs and surface the lowest-index failure, exactly like
// any other runner sweep.
func Run(ctx context.Context, sc Scenario, overrides Spec) (Result, error) {
	spec, err := Resolve(sc, overrides)
	if err != nil {
		return Result{}, err
	}
	return RunResolved(ctx, sc, spec, RunOptions{})
}

// RunResolved is Run for callers that already hold a resolved spec
// (Resolve output) — the serving layer resolves once up front to
// compute the spec's cache address, then executes the same value here.
// The spec must come from Resolve for this scenario; a raw override
// spec would run without its scenario defaults.
func RunResolved(ctx context.Context, sc Scenario, spec Spec, opts RunOptions) (Result, error) {
	// The invocation-level override replaces the spec's own parallelism
	// before anything is derived from it, so the expanded task specs —
	// whose Parallelism field is what the sim drivers' inner sweeps
	// read — inherit the effective budget. spec is a value; the
	// caller's copy (and its hash/meta) is untouched.
	if opts.Parallelism > 0 {
		spec.Parallelism = opts.Parallelism
	}
	points := spec.expand()
	reps := spec.Replicates
	if reps < 1 {
		reps = 1
	}
	// Only a truly unswept spec skips labelling: a sweep that expands to
	// one point keeps its "[clients=8]" prefix, so output schema does
	// not depend on sweep cardinality.
	if len(points) == 1 && points[0].Label == "" && reps == 1 {
		start := time.Now()
		res, err := sc.Run(points[0].Spec, rng.New(points[0].Spec.Seed))
		if err == nil {
			if opts.OnProgress != nil {
				opts.OnProgress(1, 1)
			}
			if opts.OnRunDone != nil {
				opts.OnRunDone(runner.Progress{Index: 0, Completed: 1, Total: 1, Elapsed: time.Since(start)})
			}
		}
		return res, err
	}

	// The shard list carries the split parallelism budget: the pool
	// runs up to spec.Parallelism tasks at once, so every task gets an
	// even share for its inner topology sweep instead of a full-width
	// pool per run (which would oversubscribe the scheduler pool ×
	// sweep wide). Shards() is the same decomposition internal/dispatch
	// leases to remote workers — sharing it (and Assemble below) is
	// what makes a distributed run byte-identical to this one.
	tasks := spec.Shards()
	ropts := runner.Options{Parallelism: spec.Parallelism}
	if opts.OnProgress != nil || opts.OnRunDone != nil {
		ropts.OnDone = func(p runner.Progress) {
			if opts.OnProgress != nil {
				opts.OnProgress(p.Completed, p.Total)
			}
			if opts.OnRunDone != nil {
				opts.OnRunDone(p)
			}
		}
	}
	results, err := runner.Map(ctx, len(tasks), ropts, func(_ context.Context, i int) (Result, error) {
		return sc.Run(tasks[i], rng.New(tasks[i].Seed))
	})
	if err != nil {
		return Result{}, err
	}
	return Assemble(sc.Name(), spec, results)
}

// RunByName resolves name through the registry (exact, then unique
// prefix) and runs it.
func RunByName(ctx context.Context, name string, overrides Spec) (Result, error) {
	sc, err := Find(name)
	if err != nil {
		return Result{}, err
	}
	return Run(ctx, sc, overrides)
}
