package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ResultEnvelope is the store-tier wire format for a completed result:
// the resolved spec that produced it plus the result itself. Storing
// the spec next to the result is what makes a content-addressed entry
// self-contained — a process that never saw the original submission
// (a restarted server, a sibling coordinator on a shared backend, the
// GET /v1/results/{hash} endpoint) can render the full response body,
// meta block included, from the entry alone.
type ResultEnvelope struct {
	Spec   Spec   `json:"spec"`
	Result Result `json:"result"`
}

// Encode renders the canonical envelope bytes for one (spec, result)
// pair. The encoding is deterministic AND parallelism-independent:
// Spec.Parallelism is canonicalized to 0 before marshalling, because
// CanonicalHash deliberately excludes it (results never depend on it) —
// so every writer of a given content address produces identical bytes,
// no matter what pool width it ran at. That is what makes concurrent
// same-hash publishes on a shared backend idempotent byte-for-byte,
// and what lets the coordinator verify a worker's direct publish by
// digest.
func EncodeResultEnvelope(spec Spec, res Result) ([]byte, error) {
	spec.Parallelism = 0
	b, err := json.MarshalIndent(ResultEnvelope{Spec: spec, Result: res}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeResultEnvelope inverts EncodeResultEnvelope, rejecting
// payloads that are not a consistent envelope — including pre-envelope
// entries that held a bare Result (the caller quarantines those and
// recomputes; store entries are a cache, so the migration costs one
// re-run per legacy entry, never correctness).
func DecodeResultEnvelope(payload []byte) (ResultEnvelope, error) {
	var env ResultEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return ResultEnvelope{}, err
	}
	if env.Spec.Scenario == "" || env.Result.Scenario == "" {
		return ResultEnvelope{}, errors.New("scenario: payload is not a result envelope (missing spec or result)")
	}
	if env.Spec.Scenario != env.Result.Scenario {
		return ResultEnvelope{}, fmt.Errorf("scenario: envelope spec is %q but result is %q",
			env.Spec.Scenario, env.Result.Scenario)
	}
	return env, nil
}
