// Package scenario makes the MIDAS evaluation declarative: every
// experiment of the paper (Figures 3–16, the hidden-terminal study, the
// ablations) plus the beyond-paper workloads is registered behind one
// interface and driven by a JSON Spec instead of hard-coded Go. Specs
// carry venue dimensions, antenna/client counts, shadowing parameters,
// seeds, replicate counts and parallelism; sweeps expand to a
// cross-product of runs dispatched through internal/runner. The
// committed golden suite (testdata/golden) pins every registered
// scenario's output byte-for-byte at parallelism 1 and 8.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Duration marshals as a Go duration string ("300ms"), so spec files
// stay human-readable. time.Duration.String round-trips losslessly
// through time.ParseDuration.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("scenario: simtime must be a duration string like \"300ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Venue overrides the physical deployment geometry. Zero fields keep
// the scenario's defaults.
type Venue struct {
	// Width and Height set the large-scale deployment region in metres
	// (paper: 52×52). Both must be set together.
	Width  float64 `json:"width,omitempty"`
	Height float64 `json:"height,omitempty"`
	// APs overrides the large-scale AP count (paper: 8).
	APs int `json:"aps,omitempty"`
	// CoverageRadius overrides the per-AP coverage radius in metres.
	CoverageRadius float64 `json:"coverage_radius,omitempty"`
}

// Shadowing overrides the channel's obstruction and fading parameters.
// Nil fields keep the scenario's environment defaults; explicit zeros
// are honoured (a sigma of 0 disables shadowing).
type Shadowing struct {
	SigmaDB        *float64 `json:"sigma_db,omitempty"`
	CASCorrelation *float64 `json:"cas_correlation,omitempty"`
	WallDB         *float64 `json:"wall_db,omitempty"`
	MaxWallDB      *float64 `json:"max_wall_db,omitempty"`
	RoomW          *float64 `json:"room_w,omitempty"`
	RoomH          *float64 `json:"room_h,omitempty"`
}

// Spec is the declarative description of one scenario run. Zero fields
// inherit the scenario's DefaultSpec via Merge, so a spec file only
// states what it changes.
type Spec struct {
	// Scenario optionally names the registered scenario this spec
	// targets, making spec files self-describing (midas-sim -spec
	// file.json needs no -scenario flag then).
	Scenario string `json:"scenario,omitempty"`
	// Topologies is the number of independent random topologies (or
	// deployments) the experiment averages over.
	Topologies int `json:"topologies,omitempty"`
	// Seed is the root random seed. Replicate 0 runs it directly;
	// replicate r >= 1 derives a decorrelated seed from it via
	// rng.Source.Split (see replicateSpecs).
	Seed int64 `json:"seed,omitempty"`
	// SimTime is the simulated airtime of each end-to-end run.
	SimTime Duration `json:"simtime,omitempty"`
	// Antennas and Clients are per-AP counts.
	Antennas int `json:"antennas,omitempty"`
	Clients  int `json:"clients,omitempty"`
	// Replicates repeats every sweep point over split seeds; the engine
	// merges the N results into per-metric {mean, stddev, ci95, n}
	// summaries instead of reporting each replicate individually.
	// Replicates 1 (the default) is byte-identical to an unreplicated
	// run.
	Replicates int `json:"replicates,omitempty"`
	// Parallelism bounds how many expanded runs (sweep points ×
	// replicates) execute concurrently; 0 selects GOMAXPROCS. Results
	// never depend on it.
	Parallelism int        `json:"parallelism,omitempty"`
	Venue       *Venue     `json:"venue,omitempty"`
	Shadowing   *Shadowing `json:"shadowing,omitempty"`
	// Sweep expands the spec into the cross-product of the listed
	// values, e.g. {"clients": [2,4,8]}. Keys: clients, antennas, size
	// (sets antennas and clients together), topologies, seed, aps.
	Sweep map[string][]float64 `json:"sweep,omitempty"`
}

// sweepKeys are the spec fields a sweep may vary, with their setters.
var sweepKeys = map[string]func(*Spec, float64){
	"clients":    func(s *Spec, v float64) { s.Clients = int(v) },
	"antennas":   func(s *Spec, v float64) { s.Antennas = int(v) },
	"size":       func(s *Spec, v float64) { s.Antennas = int(v); s.Clients = int(v) },
	"topologies": func(s *Spec, v float64) { s.Topologies = int(v) },
	"seed":       func(s *Spec, v float64) { s.Seed = int64(v) },
	"aps":        func(s *Spec, v float64) { ensureVenue(s).APs = int(v) },
}

// maxExpandedRuns bounds a sweep × replicate expansion; anything larger
// is almost certainly a typo'd spec.
const maxExpandedRuns = 256

func ensureVenue(s *Spec) *Venue {
	if s.Venue == nil {
		s.Venue = &Venue{}
	}
	return s.Venue
}

// DecodeSpec parses a spec from JSON, rejecting unknown fields so a
// misspelled knob fails loudly instead of silently running defaults.
func DecodeSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	// A spec file is one object; trailing junk is an error.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec object")
	}
	return s, nil
}

// LoadSpec reads and decodes a spec file.
func LoadSpec(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := DecodeSpec(bytes.NewReader(b))
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Merge overlays o on s: every zero/nil field of o inherits s's value.
// A non-nil o.Sweep replaces s's sweep wholesale (set to an empty map
// to cancel a default sweep); Venue and Shadowing merge field-wise.
func (s Spec) Merge(o Spec) Spec {
	out := s.clone()
	if o.Scenario != "" {
		out.Scenario = o.Scenario
	}
	if o.Topologies != 0 {
		out.Topologies = o.Topologies
	}
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	if o.SimTime != 0 {
		out.SimTime = o.SimTime
	}
	if o.Antennas != 0 {
		out.Antennas = o.Antennas
	}
	if o.Clients != 0 {
		out.Clients = o.Clients
	}
	if o.Replicates != 0 {
		out.Replicates = o.Replicates
	}
	if o.Parallelism != 0 {
		out.Parallelism = o.Parallelism
	}
	if o.Venue != nil {
		v := *o.Venue
		if out.Venue != nil {
			base := *out.Venue
			if v.Width == 0 {
				v.Width = base.Width
			}
			if v.Height == 0 {
				v.Height = base.Height
			}
			if v.APs == 0 {
				v.APs = base.APs
			}
			if v.CoverageRadius == 0 {
				v.CoverageRadius = base.CoverageRadius
			}
		}
		out.Venue = &v
	}
	if o.Shadowing != nil {
		sh := *o.Shadowing
		if out.Shadowing != nil {
			base := *out.Shadowing
			if sh.SigmaDB == nil {
				sh.SigmaDB = base.SigmaDB
			}
			if sh.CASCorrelation == nil {
				sh.CASCorrelation = base.CASCorrelation
			}
			if sh.WallDB == nil {
				sh.WallDB = base.WallDB
			}
			if sh.MaxWallDB == nil {
				sh.MaxWallDB = base.MaxWallDB
			}
			if sh.RoomW == nil {
				sh.RoomW = base.RoomW
			}
			if sh.RoomH == nil {
				sh.RoomH = base.RoomH
			}
		}
		out.Shadowing = sh.clone()
	}
	if o.Sweep != nil {
		out.Sweep = cloneSweep(o.Sweep)
	}
	return out
}

// clone returns a deep copy (the pointer-valued members are copied, not
// shared), so callers can mutate the result freely.
func (s Spec) clone() Spec {
	out := s
	if s.Venue != nil {
		v := *s.Venue
		out.Venue = &v
	}
	if s.Shadowing != nil {
		out.Shadowing = s.Shadowing.clone()
	}
	out.Sweep = cloneSweep(s.Sweep)
	return out
}

// clone deep-copies the override set, including the pointed-to values.
func (sh Shadowing) clone() *Shadowing {
	out := sh
	out.SigmaDB = copyFloat(sh.SigmaDB)
	out.CASCorrelation = copyFloat(sh.CASCorrelation)
	out.WallDB = copyFloat(sh.WallDB)
	out.MaxWallDB = copyFloat(sh.MaxWallDB)
	out.RoomW = copyFloat(sh.RoomW)
	out.RoomH = copyFloat(sh.RoomH)
	return &out
}

func copyFloat(p *float64) *float64 {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

func cloneSweep(m map[string][]float64) map[string][]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// Validate rejects specs that would panic or silently misbehave
// downstream. It is called on the merged spec, after scenario defaults
// are applied.
func (s Spec) Validate() error {
	if s.Topologies < 1 {
		return fmt.Errorf("scenario: topologies must be >= 1 (got %d)", s.Topologies)
	}
	if s.Antennas < 1 {
		return fmt.Errorf("scenario: antennas must be >= 1 per AP (got %d)", s.Antennas)
	}
	if s.Clients < 1 {
		return fmt.Errorf("scenario: clients must be >= 1 per AP (got %d)", s.Clients)
	}
	if s.Replicates < 1 {
		return fmt.Errorf("scenario: replicates must be >= 1 (got %d)", s.Replicates)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("scenario: parallelism must be >= 0 (got %d)", s.Parallelism)
	}
	if s.SimTime < 0 {
		return fmt.Errorf("scenario: simtime must be positive (got %v)", time.Duration(s.SimTime))
	}
	if v := s.Venue; v != nil {
		if v.Width < 0 || v.Height < 0 {
			return fmt.Errorf("scenario: venue dimensions must be positive (got %g×%g m)", v.Width, v.Height)
		}
		if (v.Width == 0) != (v.Height == 0) {
			return fmt.Errorf("scenario: venue width and height must be set together (got %g×%g m)", v.Width, v.Height)
		}
		if v.APs < 0 {
			return fmt.Errorf("scenario: venue aps must be >= 1 (got %d)", v.APs)
		}
		if v.CoverageRadius < 0 {
			return fmt.Errorf("scenario: coverage_radius must be positive (got %g m)", v.CoverageRadius)
		}
	}
	if sh := s.Shadowing; sh != nil {
		if sh.SigmaDB != nil && (*sh.SigmaDB < 0 || !isFinite(*sh.SigmaDB)) {
			return fmt.Errorf("scenario: shadowing sigma_db must be >= 0 (got %g)", *sh.SigmaDB)
		}
		if sh.CASCorrelation != nil && (*sh.CASCorrelation < 0 || *sh.CASCorrelation >= 1 || !isFinite(*sh.CASCorrelation)) {
			return fmt.Errorf("scenario: cas_correlation must be in [0,1) (got %g)", *sh.CASCorrelation)
		}
		if sh.WallDB != nil && (*sh.WallDB < 0 || !isFinite(*sh.WallDB)) {
			return fmt.Errorf("scenario: wall_db must be >= 0 (got %g)", *sh.WallDB)
		}
		if sh.MaxWallDB != nil && (*sh.MaxWallDB < 0 || !isFinite(*sh.MaxWallDB)) {
			return fmt.Errorf("scenario: max_wall_db must be >= 0 (got %g)", *sh.MaxWallDB)
		}
		if sh.RoomW != nil && (*sh.RoomW <= 0 || !isFinite(*sh.RoomW)) {
			return fmt.Errorf("scenario: room_w must be > 0 (got %g)", *sh.RoomW)
		}
		if sh.RoomH != nil && (*sh.RoomH <= 0 || !isFinite(*sh.RoomH)) {
			return fmt.Errorf("scenario: room_h must be > 0 (got %g)", *sh.RoomH)
		}
	}
	total := 1
	for key, vals := range s.Sweep {
		if _, ok := sweepKeys[key]; !ok {
			return fmt.Errorf("scenario: unknown sweep key %q (want one of %s)", key, strings.Join(sweepKeyNames(), ", "))
		}
		if len(vals) == 0 {
			return fmt.Errorf("scenario: sweep %q has no values", key)
		}
		seen := make(map[float64]bool, len(vals))
		for _, v := range vals {
			if !isFinite(v) {
				return fmt.Errorf("scenario: sweep %q value %g is not finite", key, v)
			}
			if v != math.Trunc(v) {
				return fmt.Errorf("scenario: sweep %q value %g must be an integer", key, v)
			}
			if key != "seed" && v < 1 {
				return fmt.Errorf("scenario: sweep %q value %g must be >= 1", key, v)
			}
			if seen[v] {
				// Duplicates would expand to indistinguishable points with
				// identical labels; the sweep cross-product contract says
				// every point is unique.
				return fmt.Errorf("scenario: sweep %q lists value %g twice", key, v)
			}
			seen[v] = true
		}
		total *= len(vals)
		// Bail as soon as the running product exceeds the cap: the
		// full cross-product of many long value lists overflows int
		// (wrapping past the cap check), and specs arrive from the
		// network now (midas-serve), not just hand-written files.
		if total > maxExpandedRuns {
			return fmt.Errorf("scenario: sweep expands past the max of %d points", maxExpandedRuns)
		}
	}
	// Division instead of total*s.Replicates: the product can overflow.
	if s.Replicates > maxExpandedRuns/total {
		return fmt.Errorf("scenario: sweep × replicates (%d points × %d) expands past the max of %d runs", total, s.Replicates, maxExpandedRuns)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Knob names a group of spec fields a scenario may declare it does not
// use (see scenarioFunc.ignores): overriding an ignored knob is an
// error, not a silent no-op.
const (
	KnobClients   = "clients"
	KnobAntennas  = "antennas"
	KnobShadowing = "shadowing"
	KnobCoverage  = "coverage_radius"
	KnobRegion    = "venue region" // venue width/height/aps
)

func (s Spec) sweepHas(key string) bool {
	_, ok := s.Sweep[key]
	return ok
}

// scalarOverrides reports whether this override spec sets, as a plain
// scalar, the field(s) the named sweep key controls — the case where an
// inherited default sweep must yield to the explicit value.
func (s Spec) scalarOverrides(key string) bool {
	switch key {
	case "clients":
		return s.Clients != 0
	case "antennas":
		return s.Antennas != 0
	case "size":
		return s.Antennas != 0 || s.Clients != 0
	case "topologies":
		return s.Topologies != 0
	case "seed":
		return s.Seed != 0
	case "aps":
		return s.Venue != nil && s.Venue.APs != 0
	}
	return false
}

// changesKnob reports whether this override spec would move the named
// knob away from the scenario defaults d, directly or through a sweep.
// Re-submitting a default value is not a change, so a fully resolved
// spec (as the golden suite replays) always passes.
func (o Spec) changesKnob(d Spec, knob string) bool {
	coverage := func(v *Venue) float64 {
		if v == nil {
			return 0
		}
		return v.CoverageRadius
	}
	switch knob {
	case KnobClients:
		return (o.Clients != 0 && o.Clients != d.Clients) || o.sweepHas("clients") || o.sweepHas("size")
	case KnobAntennas:
		return (o.Antennas != 0 && o.Antennas != d.Antennas) || o.sweepHas("antennas") || o.sweepHas("size")
	case KnobShadowing:
		return o.Shadowing != nil && !reflect.DeepEqual(o.Shadowing, d.Shadowing)
	case KnobCoverage:
		oc := coverage(o.Venue)
		return oc != 0 && oc != coverage(d.Venue)
	case KnobRegion:
		if o.sweepHas("aps") {
			return true
		}
		if o.Venue == nil {
			return false
		}
		var dv Venue
		if d.Venue != nil {
			dv = *d.Venue
		}
		return (o.Venue.Width != 0 && o.Venue.Width != dv.Width) ||
			(o.Venue.Height != 0 && o.Venue.Height != dv.Height) ||
			(o.Venue.APs != 0 && o.Venue.APs != dv.APs)
	}
	return false
}

func sweepKeyNames() []string {
	names := make([]string, 0, len(sweepKeys))
	for k := range sweepKeys {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// run is one expanded point of a spec: a concrete Spec (no sweep, one
// replicate) plus the label the engine prefixes its results with.
type run struct {
	Label string
	Spec  Spec
}

// ExpandedRuns returns how many concrete runs this spec expands to
// (sweep cross-product × replicates) — what the engine dispatches
// through the worker pool.
func (s Spec) ExpandedRuns() int {
	n := 1
	for _, vals := range s.Sweep {
		n *= len(vals)
	}
	if s.Replicates > 1 {
		n *= s.Replicates
	}
	return n
}

// SplitParallelism returns the worker budget each expanded run should
// hand its *inner* topology sweep (sim.Parallelism): when the engine's
// run pool already fans out over several expanded runs, giving every
// run a full-width inner pool would square the requested bound, so the
// budget is divided across the concurrent runs instead. For a
// single-run spec it returns Parallelism unchanged (0 = GOMAXPROCS).
func (s Spec) SplitParallelism() int {
	n := s.ExpandedRuns()
	if n <= 1 {
		return s.Parallelism
	}
	budget := s.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	return (budget + n - 1) / n
}

// expand unrolls the sweep cross-product (keys in sorted order, values
// in listed order) into concrete sweep points. Contract (pinned by
// TestSweepExpansionProperties): the point count equals the
// cross-product of the value-list lengths, labels are unique, and the
// expansion order is deterministic. Replicates are NOT unrolled here —
// the engine fans each point into Replicates runs with split-derived
// seeds (replicateSpecs) and merges them back into one summarized
// result, so a sweep point is the unit of reporting. A spec with no
// sweep expands to a single unlabelled point.
func (s Spec) expand() []run {
	keys := make([]string, 0, len(s.Sweep))
	for k := range s.Sweep {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	points := []run{{Spec: s.clone()}}
	for _, key := range keys {
		set := sweepKeys[key]
		next := make([]run, 0, len(points)*len(s.Sweep[key]))
		for _, p := range points {
			for _, v := range s.Sweep[key] {
				q := p.Spec.clone()
				set(&q, v)
				label := fmt.Sprintf("%s=%g", key, v)
				if p.Label != "" {
					label = p.Label + "," + label
				}
				next = append(next, run{Label: label, Spec: q})
			}
		}
		points = next
	}

	for i := range points {
		points[i].Spec.Sweep = nil
	}
	return points
}
