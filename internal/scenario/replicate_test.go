package scenario

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestReplicateAggregationMatchesDirectRuns verifies the merged
// summaries are exactly the statistics of the per-replicate direct
// runs: same seeds (base + split-derived), same Welford arithmetic,
// same ordering — so the aggregation layer adds no numerical drift of
// its own.
func TestReplicateAggregationMatchesDirectRuns(t *testing.T) {
	const reps = 3
	ctx := context.Background()
	res, err := RunByName(ctx, "fig12", Spec{Topologies: 2, Replicates: reps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce each replicate directly at its derived seed.
	root := rng.New(5)
	var medians, metric stats.Summary
	for r := 0; r < reps; r++ {
		seed := int64(5)
		if r > 0 {
			seed = root.SplitN("replicate", r).Seed()
		}
		direct := sim.Fig12SpatialReuse(2, seed)
		ratios := stats.NewSample()
		for _, p := range direct {
			ratios.Add(p.Ratio)
		}
		medians.Add(ratios.MustMedian())
		metric.Add(ratios.MustMedian()) // fig12's "median ratio" metric
	}

	if len(res.Series) != 0 {
		t.Errorf("replicated result must not carry raw per-replicate series, got %d", len(res.Series))
	}
	wantSummary := func(name string, w *stats.Summary) {
		t.Helper()
		for _, s := range res.Summaries {
			if s.Name != name {
				continue
			}
			if s.Mean != w.Mean() || s.Stddev != w.Std() || s.CI95 != w.CI95() || s.N != w.N() {
				t.Errorf("summary %q = %+v, want mean %v std %v ci95 %v n %d",
					name, s, w.Mean(), w.Std(), w.CI95(), w.N())
			}
			return
		}
		t.Errorf("result has no summary %q (have %+v)", name, res.Summaries)
	}
	wantSummary("median simultaneous-stream ratio MIDAS/CAS", &medians)
	wantSummary("median ratio", &metric)

	// Pooled quantile metrics exist and are ordered sensibly.
	var p10, p90 float64
	for _, m := range res.Metrics {
		switch m.Name {
		case "pooled p10 simultaneous-stream ratio MIDAS/CAS":
			p10 = m.Value
		case "pooled p90 simultaneous-stream ratio MIDAS/CAS":
			p90 = m.Value
		}
	}
	if math.IsNaN(p10) || math.IsNaN(p90) || p10 > p90 {
		t.Errorf("pooled quantiles broken: p10 %v p90 %v", p10, p90)
	}
}

// TestReplicateAggregationParallelInvariance extends the PR 1
// determinism pins to the replication layer: N replicates aggregated at
// parallelism 8 produce summaries bit-identical to parallelism 1. The
// scenario package runs under -race in `make test-race`, so this also
// guards the aggregation path against data races.
func TestReplicateAggregationParallelInvariance(t *testing.T) {
	ctx := context.Background()
	results := map[int]Result{}
	for _, par := range []int{1, 8} {
		old := sim.Parallelism
		sim.Parallelism = par
		res, err := RunByName(ctx, "fig12", Spec{Topologies: 2, Replicates: 4, Seed: 9, Parallelism: par})
		sim.Parallelism = old
		if err != nil {
			t.Fatal(err)
		}
		results[par] = res
	}
	if !reflect.DeepEqual(results[1], results[8]) {
		t.Errorf("replicated summaries differ across parallelism:\np=1 %+v\np=8 %+v", results[1], results[8])
	}
}

// TestSweepTimesReplicates verifies the point × replicate indexing: a
// swept, replicated spec reports one summary block per sweep point,
// prefixed with the point's label, each aggregating that point's own
// replicates.
func TestSweepTimesReplicates(t *testing.T) {
	ctx := context.Background()
	res, err := RunByName(ctx, "fig12", Spec{
		Topologies: 1, Replicates: 2, Seed: 7,
		Sweep: map[string][]float64{"topologies": {1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"[topologies=1] ", "[topologies=2] "} {
		found := false
		for _, s := range res.Summaries {
			if s.Name == label+"median ratio" {
				found = true
				if s.N != 2 {
					t.Errorf("%smedian ratio aggregated %d replicates, want 2", label, s.N)
				}
			}
		}
		if !found {
			t.Errorf("no %q summary block (have %+v)", label+"median ratio", res.Summaries)
		}
	}

	// The [topologies=2] point at seed 7 must equal an unswept
	// replicated run of the same spec, modulo the label prefix.
	direct, err := RunByName(ctx, "fig12", Spec{Topologies: 2, Replicates: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range direct.Summaries {
		found := false
		for _, got := range res.Summaries {
			if got.Name == "[topologies=2] "+want.Name {
				found = true
				if got.Mean != want.Mean || got.Stddev != want.Stddev || got.CI95 != want.CI95 || got.N != want.N {
					t.Errorf("swept point summary %+v != direct %+v", got, want)
				}
			}
		}
		if !found {
			t.Errorf("swept result missing summary %q", want.Name)
		}
	}
}

// TestAggregateReplicatesNaNRobustness verifies a NaN metric value in
// one replicate is dropped from the aggregation (n reflects it) instead
// of poisoning the whole summary.
func TestAggregateReplicatesNaNRobustness(t *testing.T) {
	mk := func(v float64) Result {
		r := Result{Scenario: "x"}
		r.AddMetric("m", v, "", "")
		return r
	}
	out := aggregateReplicates("x", []Result{mk(1), mk(math.NaN()), mk(3)})
	if len(out.Summaries) != 1 {
		t.Fatalf("got %d summaries", len(out.Summaries))
	}
	s := out.Summaries[0]
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("NaN replicate not dropped: %+v", s)
	}

	// A series empty in every replicate must not emit NaN pooled
	// quantiles (a single NaN metric would fail the whole run's JSON
	// encoding) nor a fabricated "0 ± 0 (n=0)" summary; an all-NaN
	// metric likewise summarizes to nothing.
	withEmpty := Result{Scenario: "x"}
	withEmpty.AddSeries("empty", "", stats.NewSample())
	withEmpty.AddMetric("broken", math.NaN(), "", "")
	out = aggregateReplicates("x", []Result{withEmpty, withEmpty})
	if len(out.Metrics) != 0 {
		t.Errorf("empty series produced pooled metrics: %+v", out.Metrics)
	}
	if len(out.Summaries) != 0 {
		t.Errorf("no-data inputs produced summaries: %+v", out.Summaries)
	}
	if _, err := out.MarshalIndent(); err != nil {
		t.Errorf("aggregated result of empty series must stay marshalable: %v", err)
	}
}
