package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file registers every experiment of the paper's evaluation (§5)
// plus the beyond-paper workloads behind the Scenario interface. Each
// run function reproduces exactly the series and metrics midas-bench
// has always emitted for that figure; called with its DefaultSpec, a
// scenario is bit-identical to the direct sim.FigX call path (pinned by
// TestRegistryMatchesDirectCalls and the golden suite).

// defaultSeed is the evaluation's root seed (midas-bench's historical
// default).
const defaultSeed = 2014

// baseSpec is the spec shared by every paper scenario: the §5.1
// testbed's 4×4 arrays, one replicate.
func baseSpec(topologies int) Spec {
	return Spec{
		Topologies: topologies,
		Seed:       defaultSeed,
		Antennas:   4,
		Clients:    4,
		Replicates: 1,
	}
}

func e2eSpec(topologies int) Spec {
	s := baseSpec(topologies)
	s.SimTime = Duration(300 * time.Millisecond)
	return s
}

// envOverrides maps the spec's shadowing and coverage knobs onto the
// sim layer's override struct.
func (s Spec) envOverrides() sim.EnvOverrides {
	var e sim.EnvOverrides
	if sh := s.Shadowing; sh != nil {
		e.ShadowSigmaDB = sh.SigmaDB
		e.CASCorrelation = sh.CASCorrelation
		e.WallDB = sh.WallDB
		e.MaxWallDB = sh.MaxWallDB
		e.RoomW = sh.RoomW
		e.RoomH = sh.RoomH
	}
	if s.Venue != nil && s.Venue.CoverageRadius > 0 {
		r := s.Venue.CoverageRadius
		e.CoverageRadius = &r
	}
	return e
}

func (s Spec) phyOpts() sim.PhyOpts {
	return sim.PhyOpts{
		Topologies:  s.Topologies,
		Seed:        s.Seed,
		Antennas:    s.Antennas,
		Clients:     s.Clients,
		Env:         s.envOverrides(),
		Parallelism: s.Parallelism,
	}
}

func (s Spec) e2eOpts() sim.E2EOpts {
	o := sim.E2EOpts{
		Topologies:    s.Topologies,
		SimTime:       time.Duration(s.SimTime),
		Seed:          s.Seed,
		ClientsPerAP:  s.Clients,
		AntennasPerAP: s.Antennas,
		Env:           s.envOverrides(),
		Parallelism:   s.Parallelism,
	}
	if v := s.Venue; v != nil {
		o.VenueWidth, o.VenueHeight, o.VenueAPs = v.Width, v.Height, v.APs
	}
	return o
}

func init() {
	Register(&scenarioFunc{
		name:     "fig3-naive-scaling-drop",
		ignores:  []string{KnobRegion},
		about:    "Figure 3: capacity lost to global power scaling under the per-antenna constraint",
		defaults: baseSpec(60),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			cas, das, err := sim.Fig3NaiveScalingDropOpts(spec.phyOpts())
			if err != nil {
				return err
			}
			r.AddSeries("CAS capacity drop", "bit/s/Hz", cas)
			r.AddSeries("DAS capacity drop", "bit/s/Hz", das)
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "fig7-link-snr",
		ignores:  []string{KnobRegion},
		about:    "Figure 7: SISO link SNR of CAS vs DAS with greedy client→antenna mapping",
		defaults: baseSpec(60),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			cas, das := sim.Fig7LinkSNROpts(spec.phyOpts())
			r.AddSeries("CAS link SNR", "dB", cas)
			r.AddSeries("DAS link SNR", "dB", das)
			r.AddMetric("median DAS link gain", das.MustMedian()-cas.MustMedian(), "dB", "paper: ≈5 dB")
			return nil
		},
	})

	for _, oc := range []struct {
		name  string
		about string
		off   sim.Office
	}{
		{"fig8-office-a", "Figure 8: MU-MIMO capacity CDFs in the enterprise office", sim.OfficeA},
		{"fig9-office-b", "Figure 9: MU-MIMO capacity CDFs in the crowded lab", sim.OfficeB},
	} {
		office := oc.off
		defaults := baseSpec(60)
		// The paper plots 2×2 and 4×4 together; the default spec sweeps
		// the array size, exercising the same cross-product machinery
		// any user sweep goes through.
		defaults.Sweep = map[string][]float64{"size": {2, 4}}
		Register(&scenarioFunc{
			name:     oc.name,
			about:    oc.about,
			defaults: defaults,
			ignores:  []string{KnobRegion},
			run: func(spec Spec, _ *rng.Source, r *Result) error {
				cas, midas, err := sim.FigCapacityCDFOpts(office, spec.phyOpts())
				if err != nil {
					return err
				}
				r.AddSeries("CAS capacity", "bit/s/Hz", cas)
				r.AddSeries("MIDAS capacity", "bit/s/Hz", midas)
				_, _, gain := sim.SummarizeGain(cas, midas)
				r.AddMetric("median gain", gain*100, "%", "")
				return nil
			},
		})
	}

	Register(&scenarioFunc{
		name:     "fig10-smart-precoding",
		ignores:  []string{KnobRegion},
		about:    "Figure 10: the power-balanced precoder's gain on CAS and DAS separately",
		defaults: baseSpec(60),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			c, err := sim.Fig10SmartPrecodingOpts(spec.phyOpts())
			if err != nil {
				return err
			}
			r.AddSeries("CAS w/o MIDAS precoding", "bit/s/Hz", c.CASNaive)
			r.AddSeries("CAS w/ MIDAS precoding", "bit/s/Hz", c.CASBalanced)
			r.AddSeries("DAS w/o MIDAS precoding", "bit/s/Hz", c.DASNaive)
			r.AddSeries("DAS w/ MIDAS precoding", "bit/s/Hz", c.DASBalanced)
			cg, _ := stats.MedianGain(c.CASBalanced, c.CASNaive)
			dg, _ := stats.MedianGain(c.DASBalanced, c.DASNaive)
			r.AddMetric("CAS median precoding gain", cg*100, "%", "paper: 12%")
			r.AddMetric("DAS median precoding gain", dg*100, "%", "paper: 30%")
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "fig11-optimal-gap",
		ignores:  []string{KnobRegion},
		about:    "Figure 11: power-balanced precoding vs the numerical optimum, per topology",
		defaults: baseSpec(20),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			for _, testbed := range []bool{false, true} {
				label := "simulation"
				if testbed {
					label = "testbed (stale optimum)"
				}
				pts, err := sim.Fig11OptimalGapOpts(spec.phyOpts(), testbed)
				if err != nil {
					return err
				}
				midas := runner.Series{Label: label + " MIDAS", Unit: "bit/s/Hz"}
				optimal := runner.Series{Label: label + " optimal", Unit: "bit/s/Hz"}
				// The figure's content is the per-topology gap, so keep
				// the paired table in the text output; the series carry
				// the same pairing by index for JSON/CSV.
				r.AddText("-- %s: topology\tMIDAS\toptimal", label)
				var sm, so float64
				for _, p := range pts {
					midas.Values = append(midas.Values, p.MIDAS)
					optimal.Values = append(optimal.Values, p.Optimal)
					r.AddText("%d\t%.2f\t%.2f", p.Topology, p.MIDAS, p.Optimal)
					sm += p.MIDAS
					so += p.Optimal
				}
				r.Series = append(r.Series, midas, optimal)
				if so != 0 {
					r.AddMetric(label+" aggregate MIDAS/optimal", sm/so, "", "")
				}
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "fig12-spatial-reuse",
		ignores:  []string{KnobClients, KnobAntennas, KnobRegion},
		about:    "Figure 12: simultaneous streams enabled by per-antenna carrier sensing",
		defaults: baseSpec(30),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			res := sim.Fig12SpatialReuseOpts(spec.Topologies, spec.Seed, spec.envOverrides(), spec.Parallelism)
			ratios := stats.NewSample()
			for _, p := range res {
				ratios.Add(p.Ratio)
			}
			r.AddSeries("simultaneous-stream ratio MIDAS/CAS", "", ratios)
			r.AddMetric("median ratio", ratios.MustMedian(), "", "paper: ≈1.5")
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "fig13-deadzones",
		ignores:  []string{KnobClients, KnobAntennas, KnobRegion},
		about:    "Figure 13: deadzone maps of CAS vs DAS coverage on a 0.5 m grid",
		defaults: baseSpec(10),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			res := sim.Fig13DeadzonesOpts(spec.Topologies, spec.Seed, spec.envOverrides(), spec.Parallelism)
			r.AddMetric("spots measured", float64(res.Spots), "", "")
			r.AddMetric("CAS deadspots", float64(res.CASDeadspots), "", "")
			r.AddMetric("DAS deadspots", float64(res.DASDeadspots), "", "")
			if res.CASDeadspots > 0 {
				r.AddMetric("reduction", 100*(1-float64(res.DASDeadspots)/float64(res.CASDeadspots)), "%", "paper: 91%")
			}
			r.AddText("-- example map (CAS left, DAS right; '#' = deadspot)")
			addDeadzoneMaps(r, res)
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ht-hidden-terminals",
		ignores:  []string{KnobClients, KnobAntennas, KnobRegion},
		about:    "§5.3.4: hidden-terminal spots between two non-overhearing APs",
		defaults: baseSpec(10),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			res := sim.HiddenTerminalsOpts(spec.Topologies, spec.Seed, spec.envOverrides(), spec.Parallelism)
			r.AddMetric("spots measured", float64(res.Spots), "", "")
			r.AddMetric("CAS hidden-terminal spots", float64(res.CASSpots), "", "")
			r.AddMetric("DAS hidden-terminal spots", float64(res.DASSpots), "", "")
			if res.CASSpots > 0 {
				r.AddMetric("reduction", 100*(1-float64(res.DASSpots)/float64(res.CASSpots)), "%", "paper: 94%")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "fig14-packet-tagging",
		ignores:  []string{KnobRegion},
		about:    "Figure 14: virtual packet tagging vs a random client pair on 2 of 4 antennas",
		defaults: baseSpec(60),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			random, tagged, err := sim.Fig14PacketTaggingOpts(spec.phyOpts())
			if err != nil {
				return err
			}
			r.AddSeries("random client pair", "bit/s/Hz", random)
			r.AddSeries("tag-driven client pair", "bit/s/Hz", tagged)
			_, _, gain := sim.SummarizeGain(random, tagged)
			r.AddMetric("median tagging gain", gain*100, "%", "paper: ≈50%")
			return nil
		},
	})

	runFig15 := func(spec Spec, _ *rng.Source, r *Result) error {
		cas, midas := sim.Fig15EndToEnd(spec.e2eOpts())
		r.AddSeries("CAS network capacity", "bit/s/Hz", cas)
		r.AddSeries("MIDAS network capacity", "bit/s/Hz", midas)
		_, _, gain := sim.SummarizeGain(cas, midas)
		r.AddMetric("median end-to-end gain", gain*100, "%", "paper: ≈200%")
		return nil
	}
	// The "fig15" alias keeps the bare figure stem selecting the paper's
	// own figure: registering fig15-replicated below made "fig15" an
	// ambiguous prefix, and an exact (alias) match wins before prefix
	// matching in Find.
	Register(&scenarioFunc{
		name:     "fig15-end-to-end",
		aliases:  []string{"fig15"},
		ignores:  []string{KnobRegion},
		about:    "Figure 15: 3-AP testbed network capacity, CAS vs full MIDAS",
		defaults: e2eSpec(60),
		run:      runFig15,
	})

	// The replicated variant runs the same experiment body; the engine's
	// replication layer fans it over split seeds and reports every
	// metric and series median as mean ± 95% CI instead of a single-seed
	// point estimate.
	replDefaults := e2eSpec(20)
	replDefaults.Replicates = 5
	Register(&scenarioFunc{
		name:     "fig15-replicated",
		ignores:  []string{KnobRegion},
		about:    "Beyond-paper: Figure 15's testbed replicated over split seeds, reported as mean ± 95% CI per metric",
		defaults: replDefaults,
		run:      runFig15,
	})

	Register(&scenarioFunc{
		name:     "fig16-large-scale",
		about:    "Figure 16: the 8-AP large-scale deployment, CAS vs full MIDAS",
		defaults: e2eSpec(20),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			cas, midas, err := sim.Fig16LargeScale(spec.e2eOpts())
			if err != nil {
				return err
			}
			r.AddSeries("CAS 8-AP capacity", "bit/s/Hz", cas)
			r.AddSeries("MIDAS 8-AP capacity", "bit/s/Hz", midas)
			_, _, gain := sim.SummarizeGain(cas, midas)
			r.AddMetric("median large-scale gain", gain*100, "%", "paper: >150%")
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "decomp-gain-breakdown",
		ignores:  []string{KnobRegion},
		about:    "Ablation: where MIDAS's end-to-end gain comes from, one mechanism at a time",
		defaults: e2eSpec(20),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			res := sim.Decomposition(spec.e2eOpts())
			r.AddMetric("CAS baseline median", res.CAS.MustMedian(), "bit/s/Hz", "")
			r.AddMetric("+ smart precoding median", res.CASPlusPrecoding.MustMedian(), "bit/s/Hz", "")
			r.AddMetric("+ DAS deployment median", res.DASPlusPrecoding.MustMedian(), "bit/s/Hz", "")
			r.AddMetric("+ DAS-aware MAC median (full MIDAS)", res.FullMIDAS.MustMedian(), "bit/s/Hz", "")
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ablation-tagwidth",
		ignores:  []string{KnobRegion},
		about:    "Ablation: antennas tagged per packet (§3.2.4 discusses 1, 2 and all)",
		defaults: e2eSpec(12),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			o := spec.e2eOpts()
			for _, w := range []int{1, 2, 3, 4} {
				res := sim.AblationTagWidth([]int{w}, o)
				r.AddMetric(fmt.Sprintf("tag width %d median", w), res[w].MustMedian(), "bit/s/Hz", "")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ablation-waitwindow",
		ignores:  []string{KnobRegion},
		about:    "Ablation: the opportunistic-selection wait window (§3.2.3 argues one DIFS)",
		defaults: e2eSpec(12),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			o := spec.e2eOpts()
			for _, w := range []time.Duration{0, 34 * time.Microsecond, 68 * time.Microsecond} {
				res := sim.AblationWaitWindow([]time.Duration{w}, o)
				r.AddMetric(fmt.Sprintf("wait window %v median", w), res[w].MustMedian(), "bit/s/Hz", "")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ablation-scheduler",
		ignores:  []string{KnobRegion},
		about:    "Ablation: client-selection policy (DRR vs round-robin vs random)",
		defaults: e2eSpec(12),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			sched := sim.AblationScheduler(spec.e2eOpts())
			for _, name := range []string{"drr", "rr", "random"} {
				r.AddMetric("scheduler "+name+" median", sched[name].MustMedian(), "bit/s/Hz", "")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ablation-correlation",
		ignores:  []string{KnobClients, KnobAntennas, KnobShadowing, KnobCoverage, KnobRegion},
		about:    "Ablation: CAS antenna-correlation coefficient vs baseline capacity",
		defaults: baseSpec(40),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			rhos := []float64{0, 0.3, 0.6, 0.9}
			corr := sim.AblationCorrelationOpts(rhos, spec.Topologies, spec.Seed, spec.Parallelism)
			for _, rho := range rhos {
				r.AddMetric(fmt.Sprintf("CAS correlation rho %.1f median", rho), corr[rho].MustMedian(), "bit/s/Hz", "")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ext-beamforming",
		ignores:  []string{KnobClients, KnobAntennas, KnobShadowing, KnobCoverage, KnobRegion},
		about:    "§7 extension: localized single-user beamforming vs the full array",
		defaults: baseSpec(60),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			for _, win := range []float64{6, 12, 30} {
				res := sim.BeamformingStudyOpts(spec.Topologies, win, spec.Seed, spec.Parallelism)
				r.AddMetric(fmt.Sprintf("window %.0f dB SNR full", win), res.SNRFull.MustMedian(), "dB", "")
				r.AddMetric(fmt.Sprintf("window %.0f dB SNR local", win), res.SNRLocal.MustMedian(), "dB", "")
				r.AddMetric(fmt.Sprintf("window %.0f dB silenced area full", win), res.SilencedFull.MustMedian()*100, "%", "")
				r.AddMetric(fmt.Sprintf("window %.0f dB silenced area local", win), res.SilencedLocal.MustMedian()*100, "%", "")
			}
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "ext-placement",
		ignores:  []string{KnobClients, KnobAntennas, KnobShadowing, KnobCoverage, KnobRegion},
		about:    "§7 extension: optimized vs random DAS antenna placement",
		defaults: baseSpec(30),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			res, err := sim.PlacementStudyOpts(spec.Topologies, 30, spec.Seed, spec.Parallelism)
			if err != nil {
				return err
			}
			r.AddSeries("random placement coverage objective", "dB", res.RandomCoverage)
			r.AddSeries("optimized placement coverage objective", "dB", res.OptimizedCoverage)
			r.AddSeries("random placement capacity", "bit/s/Hz", res.RandomCapacity)
			r.AddSeries("optimized placement capacity", "bit/s/Hz", res.OptimizedCapacity)
			r.AddMetric("median coverage gain",
				res.OptimizedCoverage.MustMedian()-res.RandomCoverage.MustMedian(), "dB", "")
			r.AddMetric("capacity ratio",
				res.OptimizedCapacity.MustMedian()/res.RandomCapacity.MustMedian(), "", "")
			return nil
		},
	})

	denseDefaults := e2eSpec(6)
	denseDefaults.SimTime = Duration(150 * time.Millisecond)
	denseDefaults.Venue = &Venue{Width: 104, Height: 104, APs: 16}
	denseDefaults.Sweep = map[string][]float64{"clients": {2, 4}}
	Register(&scenarioFunc{
		name:     "dense-venue",
		about:    "Beyond-paper: 16 APs in a 104×104 m venue (4× the paper's floor area, up to 64 clients), swept over client density",
		defaults: denseDefaults,
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			cas, midas, err := sim.Fig16LargeScale(spec.e2eOpts())
			if err != nil {
				return err
			}
			r.AddSeries("CAS dense-venue capacity", "bit/s/Hz", cas)
			r.AddSeries("MIDAS dense-venue capacity", "bit/s/Hz", midas)
			_, _, gain := sim.SummarizeGain(cas, midas)
			r.AddMetric("median dense-venue gain", gain*100, "%", "")
			return nil
		},
	})

	Register(&scenarioFunc{
		name:     "client-churn",
		ignores:  []string{KnobRegion},
		about:    "Beyond-paper: Figure 15's testbed with the client population re-drawn every quarter of the run",
		defaults: e2eSpec(20),
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			const epochs = 4
			cas, midas := sim.ClientChurn(spec.e2eOpts(), epochs)
			r.AddSeries("CAS capacity under churn", "bit/s/Hz", cas)
			r.AddSeries("MIDAS capacity under churn", "bit/s/Hz", midas)
			_, _, gain := sim.SummarizeGain(cas, midas)
			r.AddMetric("median churn gain", gain*100, "%", "")
			r.AddMetric("churn epochs", float64(epochs), "", "clients re-drawn per epoch")
			return nil
		},
	})
}

// addDeadzoneMaps renders the Fig 13 deadzone maps side by side,
// downsampled (moved verbatim from cmd/midas-bench).
func addDeadzoneMaps(r *Result, res sim.DeadzoneResult) {
	if res.MapCols == 0 {
		return
	}
	rows := len(res.CASMap) / res.MapCols
	const step = 3
	for row := 0; row < rows; row += step {
		var left, right strings.Builder
		for c := 0; c < res.MapCols; c += step {
			i := row*res.MapCols + c
			if i >= len(res.CASMap) {
				break
			}
			left.WriteByte(deadCell(res.CASMap[i]))
			right.WriteByte(deadCell(res.DASMap[i]))
		}
		r.AddText("%s   %s", left.String(), right.String())
	}
}

func deadCell(dead bool) byte {
	if dead {
		return '#'
	}
	return '.'
}
