package scenario

import "fmt"

// This file is the decomposition seam distributed execution shares
// with the in-process engine. A resolved spec expands to an ordered
// list of shards — concrete single-run specs, the exact task list
// RunResolved dispatches through the worker pool — and Assemble folds
// the ordered per-shard results back into the one merged Result a
// single-process run returns. RunResolved itself is written on top of
// both, so a coordinator that runs Shards() anywhere (any process, any
// machine, any parallelism) and feeds their results to Assemble in
// shard order produces byte-identical output to the local run. That
// identity is what makes distributed sweep results cacheable under the
// same content address as local ones.

// Shards returns the ordered concrete runs a *resolved* spec expands
// to: the sweep cross-product × replicates, in expansion order (sweep
// keys sorted, values in listed order, replicates innermost). Each
// shard is self-contained — scenario name, derived seed, no sweep, one
// replicate — so its result is fully determined by the shard spec
// alone and it can execute in any process. The shard's Parallelism
// only budgets its inner topology sweep and never affects the numbers;
// a remote worker is free to override it with its own core count.
func (s Spec) Shards() []Spec {
	points := s.expand()
	reps := s.Replicates
	if reps < 1 {
		reps = 1
	}
	if len(points) == 1 && points[0].Label == "" && reps == 1 {
		return []Spec{points[0].Spec}
	}
	inner := s.SplitParallelism()
	tasks := make([]Spec, 0, len(points)*reps)
	for _, p := range points {
		for _, t := range p.Spec.replicateSpecs() {
			t.Parallelism = inner
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// ShardHashes returns the content address (CanonicalHash) of every
// shard of a resolved spec, in shard order — the keys a dispatch
// coordinator publishes shard results under in the durable store and
// consults before enqueueing. Because Parallelism never enters a hash
// and a shard spec is fully resolved (no sweep, one replicate, its own
// derived seed), two jobs whose sweeps share a point address the same
// shard result regardless of pool widths or which process computed it;
// a single-run spec's one shard even shares its address with the
// spec's own job-level entry.
func (s Spec) ShardHashes() []string {
	shards := s.Shards()
	hashes := make([]string, len(shards))
	for i, ts := range shards {
		hashes[i] = ts.CanonicalHash()
	}
	return hashes
}

// Assemble inverts Shards: the ordered per-shard results of a resolved
// spec fold into the exact Result a single-process RunResolved returns
// — replicate groups merged into {mean, stddev, ci95, n} summaries and
// pooled quantiles, multiple sweep points merged with their "[label]"
// prefixes in expansion order. results must be in shard order and
// complete; a distributed run that lost a shard has nothing valid to
// assemble.
func Assemble(scName string, spec Spec, results []Result) (Result, error) {
	points := spec.expand()
	reps := spec.Replicates
	if reps < 1 {
		reps = 1
	}
	if len(results) != len(points)*reps {
		return Result{}, fmt.Errorf("scenario: assemble needs %d shard results (%d points × %d replicates), got %d",
			len(points)*reps, len(points), reps, len(results))
	}
	if len(points) == 1 && points[0].Label == "" && reps == 1 {
		return results[0], nil
	}

	// Fold each point's replicate group; results are in shard order, so
	// group pi occupies results[pi*reps : (pi+1)*reps].
	folded := make([]Result, len(points))
	for pi := range points {
		if reps == 1 {
			folded[pi] = results[pi]
		} else {
			folded[pi] = aggregateReplicates(scName, results[pi*reps:(pi+1)*reps])
		}
	}
	if len(points) == 1 && points[0].Label == "" {
		return folded[0], nil
	}

	merged := Result{Scenario: scName}
	for i, res := range folded {
		prefix := "[" + points[i].Label + "] "
		for _, s := range res.Series {
			s.Label = prefix + s.Label
			merged.Series = append(merged.Series, s)
		}
		for _, m := range res.Metrics {
			m.Name = prefix + m.Name
			merged.Metrics = append(merged.Metrics, m)
		}
		for _, s := range res.Summaries {
			s.Name = prefix + s.Name
			merged.Summaries = append(merged.Summaries, s)
		}
		for _, line := range res.Text {
			merged.Text = append(merged.Text, prefix+line)
		}
	}
	return merged, nil
}
