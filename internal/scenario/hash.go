package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/runner"
)

// CanonicalHash returns the content address of a resolved spec: a
// sha256 over a canonical encoding with a fixed field order, sweep keys
// sorted, nil pointer-sections distinguished from present-but-zero
// ones, and the seed and replicate count included. Two specs that
// would execute the same simulation hash identically; any field that
// changes the numbers (scenario, counts, seed, simtime, venue,
// shadowing, sweep, replicates) changes the hash.
//
// Parallelism is deliberately excluded: the engine's determinism
// contract (pinned by the golden suite at parallelism 1 and 8)
// guarantees results never depend on it, so a result computed at one
// pool width is a valid cache hit for the same spec at another.
//
// Hash the *resolved* spec (Resolve output). Hashing raw overrides
// would make "inherit the default" and "explicitly the default value"
// distinct addresses for one identical computation.
func (s Spec) CanonicalHash() string {
	h := sha256.New()
	writeCanonical(h, s)
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanonical streams the canonical encoding of s into w. The
// format is versioned ("spec/v1") so a future field addition can bump
// it instead of silently colliding with old addresses; every field is
// emitted (even zeros) under a fixed label, so field reordering in the
// struct cannot change the hash.
func writeCanonical(w io.Writer, s Spec) {
	fmt.Fprintf(w, "spec/v1\n")
	fmt.Fprintf(w, "scenario=%q\n", s.Scenario)
	fmt.Fprintf(w, "topologies=%d\n", s.Topologies)
	fmt.Fprintf(w, "seed=%d\n", s.Seed)
	fmt.Fprintf(w, "simtime=%d\n", int64(s.SimTime))
	fmt.Fprintf(w, "antennas=%d\n", s.Antennas)
	fmt.Fprintf(w, "clients=%d\n", s.Clients)
	fmt.Fprintf(w, "replicates=%d\n", s.Replicates)
	if v := s.Venue; v == nil {
		fmt.Fprintf(w, "venue=nil\n")
	} else {
		fmt.Fprintf(w, "venue={width=%v height=%v aps=%d coverage=%v}\n",
			v.Width, v.Height, v.APs, v.CoverageRadius)
	}
	if sh := s.Shadowing; sh == nil {
		fmt.Fprintf(w, "shadowing=nil\n")
	} else {
		fmt.Fprintf(w, "shadowing={")
		writeOptFloat(w, "sigma_db", sh.SigmaDB)
		writeOptFloat(w, "cas_correlation", sh.CASCorrelation)
		writeOptFloat(w, "wall_db", sh.WallDB)
		writeOptFloat(w, "max_wall_db", sh.MaxWallDB)
		writeOptFloat(w, "room_w", sh.RoomW)
		writeOptFloat(w, "room_h", sh.RoomH)
		fmt.Fprintf(w, "}\n")
	}
	keys := make([]string, 0, len(s.Sweep))
	for k := range s.Sweep {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "sweep[%s]=%v\n", k, s.Sweep[k])
	}
}

func writeOptFloat(w io.Writer, name string, p *float64) {
	if p == nil {
		fmt.Fprintf(w, " %s=nil", name)
	} else {
		fmt.Fprintf(w, " %s=%v", name, *p)
	}
}

// SinkMeta builds the runner.Meta block a sink records for a run of
// this (resolved) spec — the one place the meta conventions live, so
// midas-sim and midas-serve cannot drift apart and their snapshots for
// the same spec differ only in the tool name:
//
//   - Parallelism records the effective pool width (GOMAXPROCS when the
//     spec leaves it 0);
//   - SimTime is recorded only when the spec sets it;
//   - Replicates is recorded only when the run actually replicates, so
//     an unreplicated snapshot keeps the historical meta block.
func (s Spec) SinkMeta(tool string) runner.Meta {
	eff := s.Parallelism
	if eff <= 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	meta := runner.Meta{
		Tool:        tool,
		Seed:        s.Seed,
		Topologies:  s.Topologies,
		Parallelism: eff,
	}
	if s.SimTime > 0 {
		meta.SimTime = time.Duration(s.SimTime).String()
	}
	if s.Replicates > 1 {
		meta.Replicates = s.Replicates
	}
	return meta
}
