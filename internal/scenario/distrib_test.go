package scenario

import (
	"context"
	"testing"

	"repro/internal/rng"
)

// TestShardsAssembleMatchesRunResolved pins the distribution contract:
// executing a resolved spec's Shards() one by one — in any process, at
// any parallelism — and feeding the ordered results to Assemble yields
// byte-identical output to the single-process RunResolved of the same
// spec. internal/dispatch is built on exactly this property.
func TestShardsAssembleMatchesRunResolved(t *testing.T) {
	cases := []struct {
		name      string
		overrides Spec
	}{
		{"unswept", Spec{Topologies: 3, Seed: 11}},
		{"swept", Spec{Topologies: 2, Seed: 11, Sweep: map[string][]float64{"seed": {21, 22, 23}}}},
		{"replicated", Spec{Topologies: 2, Seed: 11, Replicates: 3}},
		{"swept-replicated", Spec{Topologies: 2, Seed: 11, Replicates: 2,
			Sweep: map[string][]float64{"seed": {31, 32}}}},
		{"single-labelled-point", Spec{Topologies: 2, Seed: 11, Sweep: map[string][]float64{"seed": {41}}}},
	}
	sc, err := Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Resolve(sc, tc.overrides)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunResolved(context.Background(), sc, spec, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			shards := spec.Shards()
			if want := spec.ExpandedRuns(); len(shards) != want {
				t.Fatalf("Shards() returned %d shards, ExpandedRuns says %d", len(shards), want)
			}
			results := make([]Result, len(shards))
			for i, sh := range shards {
				if sh.Sweep != nil {
					t.Fatalf("shard %d still carries a sweep", i)
				}
				// A remote worker runs the shard with its own parallelism;
				// results must not depend on it.
				sh.Parallelism = 1
				res, err := sc.Run(sh, rng.New(sh.Seed))
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				results[i] = res
			}
			got, err := Assemble(sc.Name(), spec, results)
			if err != nil {
				t.Fatal(err)
			}

			wantJSON, err := want.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := got.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Errorf("assembled shard results differ from RunResolved:\nwant: %s\ngot:  %s", wantJSON, gotJSON)
			}
		})
	}
}

// TestShardHashesAddressSharedSweepPoints pins the properties the
// dispatch layer's shard-level store caching rests on: shard addresses
// are pairwise distinct within a job, identical across jobs at shared
// sweep points, independent of the job's parallelism, and — for a
// single sweep point — identical to the address of submitting that
// point directly as its own spec.
func TestShardHashesAddressSharedSweepPoints(t *testing.T) {
	sc, err := Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(o Spec) Spec {
		t.Helper()
		spec, err := Resolve(sc, o)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	a := resolve(Spec{Topologies: 2, Seed: 9, Replicates: 2, Sweep: map[string][]float64{"seed": {51, 52}}})
	hashesA := a.ShardHashes()
	if want := a.ExpandedRuns(); len(hashesA) != want {
		t.Fatalf("ShardHashes returned %d hashes, ExpandedRuns says %d", len(hashesA), want)
	}
	seen := map[string]bool{}
	for i, h := range hashesA {
		if seen[h] {
			t.Fatalf("shard %d repeats address %s", i, h)
		}
		seen[h] = true
	}

	// A job at another parallelism addresses the same shards.
	wide := a
	wide.Parallelism = 7
	for i, h := range wide.ShardHashes() {
		if h != hashesA[i] {
			t.Fatalf("parallelism changed shard %d address: %s vs %s", i, h, hashesA[i])
		}
	}

	// A different sweep sharing the seed-52 point shares exactly that
	// point's replicate shards (shard order: sweep values in listed
	// order, replicates innermost).
	b := resolve(Spec{Topologies: 2, Seed: 9, Replicates: 2, Sweep: map[string][]float64{"seed": {52, 53}}})
	hashesB := b.ShardHashes()
	if hashesB[0] != hashesA[2] || hashesB[1] != hashesA[3] {
		t.Fatalf("shared sweep point not shared: B[0:2]=%v, A[2:4]=%v", hashesB[:2], hashesA[2:4])
	}
	if seen[hashesB[2]] || seen[hashesB[3]] {
		t.Fatal("unshared sweep point collided with job A's shards")
	}

	// A single-run spec is its own one shard: publishing that shard is
	// publishing the job-level result.
	single := resolve(Spec{Topologies: 2, Seed: 9})
	if hs := single.ShardHashes(); len(hs) != 1 || hs[0] != single.CanonicalHash() {
		t.Fatalf("single-run spec shard hashes %v, want exactly its own hash %s", hs, single.CanonicalHash())
	}

	// And the sweep point submitted directly addresses the same result
	// as the swept job's replicate-0 shard for that point.
	direct := resolve(Spec{Topologies: 2, Seed: 51})
	shardSpecs := a.Shards()
	if shardSpecs[0].Seed != direct.Seed {
		t.Fatalf("shard 0 seed %d, direct spec seed %d", shardSpecs[0].Seed, direct.Seed)
	}
	if hashesA[0] != direct.CanonicalHash() {
		t.Fatalf("replicate-0 shard address %s differs from the direct spec's %s", hashesA[0], direct.CanonicalHash())
	}
}

// TestAssembleRejectsWrongShardCount: a distributed run that lost (or
// duplicated) a shard must fail loudly, never assemble a partial
// result.
func TestAssembleRejectsWrongShardCount(t *testing.T) {
	sc, err := Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Resolve(sc, Spec{Topologies: 2, Seed: 5, Replicates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(sc.Name(), spec, make([]Result, 1)); err == nil {
		t.Fatal("Assemble accepted 1 result for a 2-shard spec")
	}
}
