package scenario

import (
	"context"
	"testing"

	"repro/internal/rng"
)

// TestShardsAssembleMatchesRunResolved pins the distribution contract:
// executing a resolved spec's Shards() one by one — in any process, at
// any parallelism — and feeding the ordered results to Assemble yields
// byte-identical output to the single-process RunResolved of the same
// spec. internal/dispatch is built on exactly this property.
func TestShardsAssembleMatchesRunResolved(t *testing.T) {
	cases := []struct {
		name      string
		overrides Spec
	}{
		{"unswept", Spec{Topologies: 3, Seed: 11}},
		{"swept", Spec{Topologies: 2, Seed: 11, Sweep: map[string][]float64{"seed": {21, 22, 23}}}},
		{"replicated", Spec{Topologies: 2, Seed: 11, Replicates: 3}},
		{"swept-replicated", Spec{Topologies: 2, Seed: 11, Replicates: 2,
			Sweep: map[string][]float64{"seed": {31, 32}}}},
		{"single-labelled-point", Spec{Topologies: 2, Seed: 11, Sweep: map[string][]float64{"seed": {41}}}},
	}
	sc, err := Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Resolve(sc, tc.overrides)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunResolved(context.Background(), sc, spec, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			shards := spec.Shards()
			if want := spec.ExpandedRuns(); len(shards) != want {
				t.Fatalf("Shards() returned %d shards, ExpandedRuns says %d", len(shards), want)
			}
			results := make([]Result, len(shards))
			for i, sh := range shards {
				if sh.Sweep != nil {
					t.Fatalf("shard %d still carries a sweep", i)
				}
				// A remote worker runs the shard with its own parallelism;
				// results must not depend on it.
				sh.Parallelism = 1
				res, err := sc.Run(sh, rng.New(sh.Seed))
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				results[i] = res
			}
			got, err := Assemble(sc.Name(), spec, results)
			if err != nil {
				t.Fatal(err)
			}

			wantJSON, err := want.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := got.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Errorf("assembled shard results differ from RunResolved:\nwant: %s\ngot:  %s", wantJSON, gotJSON)
			}
		})
	}
}

// TestAssembleRejectsWrongShardCount: a distributed run that lost (or
// duplicated) a shard must fail loudly, never assemble a partial
// result.
func TestAssembleRejectsWrongShardCount(t *testing.T) {
	sc, err := Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Resolve(sc, Spec{Topologies: 2, Seed: 5, Replicates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(sc.Name(), spec, make([]Result, 1)); err == nil {
		t.Fatal("Assemble accepted 1 result for a 2-shard spec")
	}
}
