package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func f64(v float64) *float64 { return &v }

// fullSpec exercises every field of the schema.
func fullSpec() Spec {
	return Spec{
		Scenario:    "fig15-end-to-end",
		Topologies:  12,
		Seed:        7,
		SimTime:     Duration(250 * time.Millisecond),
		Antennas:    4,
		Clients:     8,
		Replicates:  3,
		Parallelism: 2,
		Venue:       &Venue{Width: 104, Height: 80, APs: 16, CoverageRadius: 15},
		Shadowing: &Shadowing{
			SigmaDB:        f64(5),
			CASCorrelation: f64(0.7),
			WallDB:         f64(7),
			MaxWallDB:      f64(42),
			RoomW:          f64(5),
			RoomH:          f64(6),
		},
		Sweep: map[string][]float64{"clients": {2, 4, 8}},
	}
}

// TestSpecRoundTrip verifies marshal→unmarshal is lossless for every
// field, including the duration string form and pointer-valued
// shadowing overrides.
func TestSpecRoundTrip(t *testing.T) {
	for name, spec := range map[string]Spec{
		"full":     fullSpec(),
		"minimal":  {Scenario: "fig3-naive-scaling-drop", Topologies: 1, Seed: 1, Antennas: 1, Clients: 1, Replicates: 1},
		"zeroes":   {Shadowing: &Shadowing{SigmaDB: f64(0)}},
		"odd-time": {SimTime: Duration(34*time.Microsecond + 7*time.Nanosecond)},
	} {
		t.Run(name, func(t *testing.T) {
			b, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSpec(strings.NewReader(string(b)))
			if err != nil {
				t.Fatalf("decode of own marshal failed: %v\n%s", err, b)
			}
			if !reflect.DeepEqual(got, spec) {
				t.Errorf("round trip lost data:\n got %+v\nwant %+v\njson %s", got, spec, b)
			}
		})
	}
}

// TestDecodeSpecRejectsUnknownFields verifies a misspelled knob fails
// loudly instead of silently running defaults.
func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	for _, bad := range []string{
		`{"topologys": 5}`,
		`{"venue": {"widht": 10, "height": 10}}`,
		`{"shadowing": {"sigma": 4}}`,
		`{"clients": 4} {"clients": 5}`,
	} {
		if _, err := DecodeSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeSpec(%s) accepted invalid input", bad)
		}
	}
}

// TestValidateRejectsInvalidSpecs checks that broken specs produce
// descriptive errors rather than panicking downstream. Each case
// starts from a valid base so exactly one field is at fault.
func TestValidateRejectsInvalidSpecs(t *testing.T) {
	base := func() Spec {
		return Spec{Topologies: 4, Seed: 1, Antennas: 4, Clients: 4, Replicates: 1}
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"zero clients", func(s *Spec) { s.Clients = 0 }, "clients"},
		{"negative clients", func(s *Spec) { s.Clients = -3 }, "clients"},
		{"zero antennas", func(s *Spec) { s.Antennas = 0 }, "antennas"},
		{"zero topologies", func(s *Spec) { s.Topologies = 0 }, "topologies"},
		{"zero replicates", func(s *Spec) { s.Replicates = 0 }, "replicates"},
		{"negative parallelism", func(s *Spec) { s.Parallelism = -1 }, "parallelism"},
		{"negative simtime", func(s *Spec) { s.SimTime = Duration(-time.Second) }, "simtime"},
		{"negative venue", func(s *Spec) { s.Venue = &Venue{Width: -10, Height: 10} }, "venue dimensions"},
		{"half venue", func(s *Spec) { s.Venue = &Venue{Width: 10} }, "width and height"},
		{"negative coverage", func(s *Spec) { s.Venue = &Venue{CoverageRadius: -1} }, "coverage_radius"},
		{"negative sigma", func(s *Spec) { s.Shadowing = &Shadowing{SigmaDB: f64(-1)} }, "sigma_db"},
		{"correlation too big", func(s *Spec) { s.Shadowing = &Shadowing{CASCorrelation: f64(1.0)} }, "cas_correlation"},
		{"zero room", func(s *Spec) { s.Shadowing = &Shadowing{RoomW: f64(0)} }, "room_w"},
		{"empty sweep", func(s *Spec) { s.Sweep = map[string][]float64{"clients": {}} }, "no values"},
		{"unknown sweep key", func(s *Spec) { s.Sweep = map[string][]float64{"gremlins": {1}} }, "unknown sweep key"},
		{"fractional sweep value", func(s *Spec) { s.Sweep = map[string][]float64{"clients": {2.5}} }, "integer"},
		{"zero sweep value", func(s *Spec) { s.Sweep = map[string][]float64{"clients": {0}} }, ">= 1"},
		{"explosive sweep", func(s *Spec) {
			s.Sweep = map[string][]float64{"clients": manyVals(20), "antennas": manyVals(20)}
		}, "max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base spec must validate, got %v", err)
	}
}

func manyVals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestMerge verifies zero fields inherit and set fields override, and
// that the merge never aliases pointer state between specs.
func TestMerge(t *testing.T) {
	base := fullSpec()
	merged := base.Merge(Spec{})
	if !reflect.DeepEqual(merged, base) {
		t.Errorf("empty overlay changed the spec:\n got %+v\nwant %+v", merged, base)
	}

	over := Spec{Clients: 16, Seed: 99, Shadowing: &Shadowing{SigmaDB: f64(9)}}
	merged = base.Merge(over)
	if merged.Clients != 16 || merged.Seed != 99 {
		t.Errorf("overlay fields lost: %+v", merged)
	}
	if merged.Topologies != base.Topologies || merged.Venue.Width != 104 {
		t.Errorf("inherited fields lost: %+v", merged)
	}
	if *merged.Shadowing.SigmaDB != 9 {
		t.Errorf("shadowing overlay lost: %+v", merged.Shadowing)
	}
	if *merged.Shadowing.WallDB != 7 {
		t.Errorf("shadowing base fields must survive a partial overlay: %+v", merged.Shadowing)
	}
	// Mutating the merge result must not touch either input.
	*merged.Shadowing.WallDB = 123
	merged.Sweep["clients"][0] = 42
	if *base.Shadowing.WallDB != 7 || base.Sweep["clients"][0] != 2 {
		t.Error("Merge aliases pointer state with its inputs")
	}
}

// TestExpand verifies the sweep cross-product: sorted key order,
// value order preserved, replicates left to the engine's replication
// layer, and stable labels.
func TestExpand(t *testing.T) {
	s := Spec{
		Topologies: 2, Seed: 10, Antennas: 4, Clients: 4, Replicates: 1,
		Sweep: map[string][]float64{"clients": {2, 8}, "antennas": {4}},
	}
	runs := s.expand()
	var labels []string
	for _, r := range runs {
		labels = append(labels, r.Label)
		if r.Spec.Sweep != nil || r.Spec.Replicates != 1 {
			t.Errorf("expanded run %q must be concrete: %+v", r.Label, r.Spec)
		}
	}
	want := []string{"antennas=4,clients=2", "antennas=4,clients=8"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("labels = %v, want %v", labels, want)
	}
	if runs[1].Spec.Clients != 8 || runs[1].Spec.Antennas != 4 {
		t.Errorf("sweep values not applied: %+v", runs[1].Spec)
	}

	// Replicates are not unrolled by expand: the engine fans each sweep
	// point through replicateSpecs and merges the results, so a
	// replicated unswept spec is still a single (unlabelled) point.
	s = Spec{Topologies: 1, Seed: 10, Antennas: 1, Clients: 1, Replicates: 3}
	runs = s.expand()
	if len(runs) != 1 || runs[0].Label != "" {
		t.Fatalf("3 replicates must stay one sweep point, got %d runs (label %q)", len(runs), runs[0].Label)
	}
	if runs[0].Spec.Replicates != 3 {
		t.Errorf("sweep point must keep its replicate count, got %+v", runs[0].Spec)
	}

	s = Spec{Topologies: 1, Seed: 10, Antennas: 1, Clients: 1, Replicates: 1}
	runs = s.expand()
	if len(runs) != 1 || runs[0].Label != "" {
		t.Errorf("plain spec must expand to one unlabelled run, got %+v", runs)
	}

	// A single-value sweep still expands to one *labelled* run, so its
	// output schema matches the multi-value case.
	s = Spec{Topologies: 1, Seed: 10, Antennas: 4, Clients: 4, Replicates: 1,
		Sweep: map[string][]float64{"clients": {8}}}
	runs = s.expand()
	if len(runs) != 1 || runs[0].Label != "clients=8" {
		t.Errorf("single-value sweep must keep its label, got %+v", runs)
	}

	// The "size" key sets antennas and clients together.
	s = Spec{Topologies: 1, Seed: 10, Antennas: 4, Clients: 4, Replicates: 1,
		Sweep: map[string][]float64{"size": {2}}}
	runs = s.expand()
	if runs[0].Spec.Antennas != 2 || runs[0].Spec.Clients != 2 {
		t.Errorf("size sweep must set antennas and clients, got %+v", runs[0].Spec)
	}
}

// FuzzSpecRoundTrip feeds arbitrary JSON at the decoder: anything it
// accepts must survive a marshal→decode cycle unchanged.
func FuzzSpecRoundTrip(f *testing.F) {
	seedSpecs := []Spec{fullSpec(), {}, {Topologies: 3, Sweep: map[string][]float64{"seed": {1, 2}}}}
	for _, s := range seedSpecs {
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Add(`{"simtime": "1h3s"}`)
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := DecodeSpec(strings.NewReader(raw))
		if err != nil {
			t.Skip()
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v (%+v)", err, s)
		}
		again, err := DecodeSpec(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("own marshal failed to decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip not stable:\nfirst  %+v\nsecond %+v\njson %s", s, again, b)
		}
	})
}

// A sweep whose cross-product overflows int must still be rejected:
// the running-product guard has to bail before wrapping, because specs
// now arrive over the network (midas-serve), not just from trusted
// files.
func TestValidateRejectsOverflowingSweepProduct(t *testing.T) {
	vals := func(n int, offset float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = offset + float64(i) + 1
		}
		return out
	}
	s := Spec{
		Topologies: 1, Antennas: 1, Clients: 1, Replicates: 1,
		Sweep: map[string][]float64{
			// 1500^6 ≈ 1.1e19 > MaxInt64: a naive product wraps.
			"clients":    vals(1500, 0),
			"antennas":   vals(1500, 0),
			"size":       vals(1500, 0),
			"topologies": vals(1500, 0),
			"seed":       vals(1500, 0),
			"aps":        vals(1500, 0),
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("overflowing sweep cross-product validated")
	}
	// Replicates overflow through the same product.
	r := Spec{Topologies: 1, Antennas: 1, Clients: 1,
		Replicates: 1 << 60,
		Sweep:      map[string][]float64{"seed": vals(8, 0)}}
	if err := r.Validate(); err == nil {
		t.Fatal("overflowing replicate product validated")
	}
}
