package scenario

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSweepExpansionProperties pins, with randomized sweep maps, the
// contract PR 3 left implicit and the replication layer now leans on:
// for any valid sweep,
//
//  1. the number of expanded points equals the cross-product of the
//     value-list lengths,
//  2. point labels are unique (Validate rejects duplicate values, and
//     the key=value labelling keeps distinct points distinct), and
//  3. expansion order is deterministic — expanding the same spec twice
//     yields deeply equal runs, regardless of map iteration order.
func TestSweepExpansionProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(20140812))
	keys := make([]string, 0, len(sweepKeys))
	for k := range sweepKeys {
		keys = append(keys, k)
	}

	for iter := 0; iter < 300; iter++ {
		s := Spec{
			Topologies: 1 + rnd.Intn(4),
			Seed:       int64(1 + rnd.Intn(1000)),
			Antennas:   1 + rnd.Intn(4),
			Clients:    1 + rnd.Intn(4),
			Replicates: 1 + rnd.Intn(3),
		}
		// Pick a random subset of sweep keys with random distinct
		// ascending values (Validate requires integers >= 1, no dups).
		perm := rnd.Perm(len(keys))
		nkeys := rnd.Intn(4) // 0..3 keys
		wantPoints := 1
		sweep := map[string][]float64{}
		for _, ki := range perm[:nkeys] {
			n := 1 + rnd.Intn(3)
			vals := make([]float64, 0, n)
			v := 0
			for len(vals) < n {
				v += 1 + rnd.Intn(3)
				vals = append(vals, float64(v))
			}
			// Shuffle so listed order (preserved by expand) is exercised.
			rnd.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
			sweep[keys[ki]] = vals
			wantPoints *= n
		}
		if len(sweep) > 0 {
			s.Sweep = sweep
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("iter %d: generator produced an invalid spec (%v): %+v", iter, err, s)
		}

		points := s.expand()
		if len(points) != wantPoints {
			t.Fatalf("iter %d: %d points, want cross-product %d (sweep %v)", iter, len(points), wantPoints, sweep)
		}
		seen := make(map[string]bool, len(points))
		for _, p := range points {
			if seen[p.Label] {
				t.Fatalf("iter %d: duplicate label %q (sweep %v)", iter, p.Label, sweep)
			}
			seen[p.Label] = true
			if p.Spec.Sweep != nil {
				t.Fatalf("iter %d: point %q kept its sweep", iter, p.Label)
			}
			if p.Spec.Replicates != s.Replicates {
				t.Fatalf("iter %d: point %q replicates = %d, want %d", iter, p.Label, p.Spec.Replicates, s.Replicates)
			}
		}
		if again := s.expand(); !reflect.DeepEqual(points, again) {
			t.Fatalf("iter %d: expansion is not deterministic (sweep %v)", iter, sweep)
		}
	}
}
