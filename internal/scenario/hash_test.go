package scenario

import (
	"reflect"
	"testing"
	"time"
)

// Pin the Spec field count: writeCanonical (and the mutation table in
// TestCanonicalHashFieldSensitivity) enumerate fields by hand, so a
// new Spec field that is not taught to them would silently alias
// distinct specs onto one cache address — wrong results served with
// "cached: true". Touch hash.go's writeCanonical and the mutation
// table, then update the count here.
func TestCanonicalHashCoversEverySpecField(t *testing.T) {
	const known = 11 // fields writeCanonical encodes (Parallelism deliberately excluded but counted)
	if n := reflect.TypeOf(Spec{}).NumField(); n != known {
		t.Fatalf("Spec has %d fields but CanonicalHash was written for %d: "+
			"teach writeCanonical (and TestCanonicalHashFieldSensitivity) the new field, then bump this pin", n, known)
	}
}

func hashSpec() Spec {
	sigma := 4.0
	return Spec{
		Scenario:   "fig12-spatial-reuse",
		Topologies: 8,
		Seed:       2014,
		SimTime:    Duration(300 * time.Millisecond),
		Antennas:   4,
		Clients:    4,
		Replicates: 3,
		Venue:      &Venue{Width: 52, Height: 52, APs: 8},
		Shadowing:  &Shadowing{SigmaDB: &sigma},
		Sweep:      map[string][]float64{"clients": {2, 4, 8}, "seed": {1, 2}},
	}
}

func TestCanonicalHashDeterministic(t *testing.T) {
	a, b := hashSpec(), hashSpec()
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.CanonicalHash(), b.CanonicalHash())
	}
	// A deep clone (fresh pointers, fresh maps) is the same content.
	if c := a.clone(); c.CanonicalHash() != a.CanonicalHash() {
		t.Fatalf("clone hashes differently")
	}
	if got := a.CanonicalHash(); len(got) != 64 {
		t.Fatalf("want a hex sha256 (64 chars), got %d: %q", len(got), got)
	}
}

// Every simulation-relevant field must move the hash; parallelism must
// not (results are pinned independent of pool width, so a cached result
// is valid at any parallelism).
func TestCanonicalHashFieldSensitivity(t *testing.T) {
	base := hashSpec().CanonicalHash()
	mutations := map[string]func(*Spec){
		"scenario":   func(s *Spec) { s.Scenario = "fig13-deadzones" },
		"topologies": func(s *Spec) { s.Topologies = 9 },
		"seed":       func(s *Spec) { s.Seed = 7 },
		"simtime":    func(s *Spec) { s.SimTime = Duration(20 * time.Millisecond) },
		"antennas":   func(s *Spec) { s.Antennas = 8 },
		"clients":    func(s *Spec) { s.Clients = 2 },
		"replicates": func(s *Spec) { s.Replicates = 5 },
		"venue":      func(s *Spec) { s.Venue.APs = 16 },
		"venue-nil":  func(s *Spec) { s.Venue = nil },
		"shadowing":  func(s *Spec) { *s.Shadowing.SigmaDB = 8 },
		"shadow-nil": func(s *Spec) { s.Shadowing.SigmaDB = nil },
		"sweep-vals": func(s *Spec) { s.Sweep["clients"] = []float64{2, 4} },
		"sweep-key":  func(s *Spec) { delete(s.Sweep, "seed") },
	}
	for name, mutate := range mutations {
		s := hashSpec()
		mutate(&s)
		if s.CanonicalHash() == base {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	s := hashSpec()
	s.Parallelism = 8
	if s.CanonicalHash() != base {
		t.Errorf("parallelism changed the hash; it must not (results are parallelism-independent)")
	}
}

// A present-but-empty venue is a different spec value than a nil one
// (Merge treats them differently), so they must not collide.
func TestCanonicalHashNilVsZeroSections(t *testing.T) {
	var a, b Spec
	b.Venue = &Venue{}
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Fatalf("nil venue and empty venue collide")
	}
	var c, d Spec
	d.Shadowing = &Shadowing{}
	if c.CanonicalHash() == d.CanonicalHash() {
		t.Fatalf("nil shadowing and empty shadowing collide")
	}
}

// Resolving the same overrides twice must produce one address — the
// property the serving layer's result cache keys on.
func TestCanonicalHashStableThroughResolve(t *testing.T) {
	sc, err := Find("fig12")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Resolve(sc, Spec{Topologies: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(sc, Spec{Topologies: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatalf("same overrides resolve to different hashes")
	}
	// Explicitly restating a default is the same computation as
	// inheriting it, and must land on the same cache address.
	defaults := sc.DefaultSpec()
	c, err := Resolve(sc, Spec{Topologies: 4, Seed: 9, Clients: defaults.Clients})
	if err != nil {
		t.Fatal(err)
	}
	if c.CanonicalHash() != a.CanonicalHash() {
		t.Fatalf("restating the default clients count changed the hash")
	}
}

func TestSinkMeta(t *testing.T) {
	s := Spec{Seed: 7, Topologies: 4, Parallelism: 2,
		SimTime: Duration(20 * time.Millisecond), Replicates: 3}
	m := s.SinkMeta("midas-serve")
	if m.Tool != "midas-serve" || m.Seed != 7 || m.Topologies != 4 ||
		m.Parallelism != 2 || m.SimTime != "20ms" || m.Replicates != 3 {
		t.Fatalf("unexpected meta: %+v", m)
	}
	// Parallelism 0 records the effective pool width; replicates 1 and
	// simtime 0 stay omitted, preserving the historical meta block.
	m = Spec{Seed: 7, Topologies: 4, Replicates: 1}.SinkMeta("midas-sim")
	if m.Parallelism < 1 {
		t.Fatalf("effective parallelism not recorded: %+v", m)
	}
	if m.SimTime != "" || m.Replicates != 0 {
		t.Fatalf("zero fields must stay omitted: %+v", m)
	}
}
