package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
)

// TestRegistryMatchesDirectCalls pins the acceptance criterion of the
// scenario layer: resolving an experiment from the registry produces
// bit-identical numbers to the pre-registry direct sim.FigX call path,
// for one representative of each experiment family (PHY sweep, MAC
// geometry, end-to-end DES).
func TestRegistryMatchesDirectCalls(t *testing.T) {
	ctx := context.Background()

	t.Run("fig3-phy", func(t *testing.T) {
		res, err := RunByName(ctx, "fig3-naive-scaling-drop", Spec{Topologies: 4})
		if err != nil {
			t.Fatal(err)
		}
		cas, das, err := sim.Fig3NaiveScalingDrop(4, defaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		wantSeries(t, res, "CAS capacity drop", cas.Values())
		wantSeries(t, res, "DAS capacity drop", das.Values())
	})

	t.Run("fig12-mac", func(t *testing.T) {
		res, err := RunByName(ctx, "fig12", Spec{Topologies: 4})
		if err != nil {
			t.Fatal(err)
		}
		direct := sim.Fig12SpatialReuse(4, defaultSeed)
		var ratios []float64
		for _, p := range direct {
			ratios = append(ratios, p.Ratio)
		}
		// The series is sorted (CDF order); sort the direct ratios the
		// same way via a sample.
		wantSeriesUnsorted(t, res, "simultaneous-stream ratio MIDAS/CAS", ratios)
	})

	t.Run("fig15-e2e", func(t *testing.T) {
		res, err := RunByName(ctx, "fig15-end", Spec{Topologies: 2, SimTime: Duration(30 * time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		cas, midas := sim.Fig15EndToEnd(sim.E2EOpts{Topologies: 2, SimTime: 30 * time.Millisecond, Seed: defaultSeed})
		wantSeries(t, res, "CAS network capacity", cas.Values())
		wantSeries(t, res, "MIDAS network capacity", midas.Values())
	})
}

func findSeries(t *testing.T, res Result, label string) []float64 {
	t.Helper()
	for _, s := range res.Series {
		if s.Label == label {
			return s.Values
		}
	}
	t.Fatalf("result has no series %q (have %d series)", label, len(res.Series))
	return nil
}

func wantSeries(t *testing.T, res Result, label string, want []float64) {
	t.Helper()
	got := findSeries(t, res, label)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("series %q differs from the direct call:\n got %v\nwant %v", label, got, want)
	}
}

func wantSeriesUnsorted(t *testing.T, res Result, label string, want []float64) {
	t.Helper()
	got := findSeries(t, res, label)
	sorted := append([]float64(nil), want...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if !reflect.DeepEqual(got, sorted) {
		t.Errorf("series %q differs from the direct call:\n got %v\nwant %v", label, got, sorted)
	}
}

// TestSweepExpansionThroughEngine verifies a swept spec produces one
// labelled result block per point, each bit-identical to running that
// point alone.
func TestSweepExpansionThroughEngine(t *testing.T) {
	ctx := context.Background()
	swept, err := RunByName(ctx, "fig8-office-a", Spec{Topologies: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The default spec sweeps size over {2,4}; check the size=2 block
	// against a direct single-point run.
	direct, _, err := sim.FigCapacityCDF(sim.OfficeA, 2, 3, defaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries(t, swept, "[size=2] CAS capacity", direct.Values())
	if len(swept.Series) != 4 {
		t.Errorf("2-point sweep with 2 series per point should merge to 4 series, got %d", len(swept.Series))
	}
}

// TestEngineParallelismInvariance runs a swept scenario at parallelism
// 1 and 8 (outer engine pool and inner experiment pool both) and
// requires identical results — the determinism contract the golden
// suite leans on.
func TestEngineParallelismInvariance(t *testing.T) {
	ctx := context.Background()
	results := map[int]Result{}
	for _, par := range []int{1, 8} {
		old := sim.Parallelism
		sim.Parallelism = par
		res, err := RunByName(ctx, "fig9-office-b", Spec{Topologies: 3, Parallelism: par})
		sim.Parallelism = old
		if err != nil {
			t.Fatal(err)
		}
		results[par] = res
	}
	if !reflect.DeepEqual(results[1], results[8]) {
		t.Errorf("results differ across parallelism:\np=1 %+v\np=8 %+v", results[1], results[8])
	}
}

// TestReplicateSeedDerivation verifies the per-replicate seed contract:
// replicate 0 runs the base seed unchanged (so a replicated run's first
// replicate is bit-identical to the unreplicated run) and replicate
// r >= 1 derives its seed from rng.New(seed).SplitN("replicate", r).
func TestReplicateSeedDerivation(t *testing.T) {
	s := Spec{Topologies: 1, Seed: 5, Antennas: 1, Clients: 1, Replicates: 3}
	specs := s.replicateSpecs()
	if len(specs) != 3 {
		t.Fatalf("3 replicates expanded to %d specs", len(specs))
	}
	if specs[0].Seed != 5 {
		t.Errorf("replicate 0 seed = %d, want the base seed 5", specs[0].Seed)
	}
	root := rng.New(5)
	for r := 1; r < 3; r++ {
		want := root.SplitN("replicate", r).Seed()
		if specs[r].Seed != want {
			t.Errorf("replicate %d seed = %d, want the split-derived %d", r, specs[r].Seed, want)
		}
		if specs[r].Seed == 5+int64(r) {
			t.Errorf("replicate %d landed on the consecutive seed %d — split derivation must decorrelate from user-picked seed+r streams", r, specs[r].Seed)
		}
	}
	for r, q := range specs {
		if q.Replicates != 1 || q.Sweep != nil {
			t.Errorf("replicate %d spec must be concrete: %+v", r, q)
		}
	}
}

// TestScalarOverrideCancelsDefaultSweep verifies that an explicit
// scalar override of a field the scenario's *default* sweep controls
// wins: the inherited sweep key is dropped rather than silently
// overwriting the override. A sweep supplied by the override itself
// still stands.
func TestScalarOverrideCancelsDefaultSweep(t *testing.T) {
	sc, _ := Get("fig8-office-a") // default sweep: size over {2,4}
	spec, err := Resolve(sc, Spec{Topologies: 2, Antennas: 8})
	if err != nil {
		t.Fatal(err)
	}
	if spec.sweepHas("size") {
		t.Errorf("explicit antennas=8 must cancel the default size sweep, got sweep %v", spec.Sweep)
	}
	if spec.Antennas != 8 {
		t.Errorf("antennas = %d, want the explicit 8", spec.Antennas)
	}

	// Untouched fields keep the default sweep.
	spec, err = Resolve(sc, Spec{Topologies: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.sweepHas("size") {
		t.Error("default sweep must survive when its field is not overridden")
	}

	// An override-supplied sweep is never dropped.
	spec, err = Resolve(sc, Spec{Topologies: 2, Sweep: map[string][]float64{"size": {2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.sweepHas("size") {
		t.Error("override-supplied sweep must stand")
	}
}

// TestIgnoredKnobsAreRejected verifies that overriding a knob a
// scenario declares it does not consume is a Resolve error — never a
// silent no-op run — while re-submitting default values (as the golden
// replay does with fully resolved specs) stays legal.
func TestIgnoredKnobsAreRejected(t *testing.T) {
	ctx := context.Background()
	reject := []struct {
		name      string
		overrides Spec
		wantKnob  string
	}{
		{"fig13-deadzones", Spec{Topologies: 1, Clients: 8}, "clients"},
		{"fig12-spatial-reuse", Spec{Topologies: 1, Antennas: 8}, "antennas"},
		{"fig12-spatial-reuse", Spec{Topologies: 1, Sweep: map[string][]float64{"size": {2, 4}}}, "clients"},
		{"fig3-naive-scaling-drop", Spec{Topologies: 1, Venue: &Venue{Width: 80, Height: 80}}, "venue region"},
		{"ext-placement", Spec{Topologies: 1, Shadowing: &Shadowing{SigmaDB: f64(9)}}, "shadowing"},
		{"ablation-correlation", Spec{Topologies: 1, Venue: &Venue{CoverageRadius: 20}}, "coverage_radius"},
	}
	for _, tc := range reject {
		_, err := RunByName(ctx, tc.name, tc.overrides)
		if err == nil {
			t.Errorf("%s accepted an override of its ignored %s knob", tc.name, tc.wantKnob)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantKnob) {
			t.Errorf("%s: error %q does not name the ignored knob %q", tc.name, err, tc.wantKnob)
		}
	}

	// A fully resolved spec re-submitted as overrides must pass the
	// knob check (its counts equal the defaults).
	sc, _ := Get("fig13-deadzones")
	spec, err := Resolve(sc, Spec{Topologies: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(sc, spec); err != nil {
		t.Errorf("re-resolving a resolved spec must succeed, got %v", err)
	}
}

// TestScenarioErrorCancelsSweep is the engine-level cancellation
// contract: when one expanded run of a sweep fails, outstanding runs
// are cancelled (far fewer than all runs start) and the lowest-index
// failure surfaces.
func TestScenarioErrorCancelsSweep(t *testing.T) {
	const failFrom = 3 // sweep seeds 1,2 succeed; 3.. fail
	seeds := make([]float64, 64)
	for i := range seeds {
		seeds[i] = float64(i + 1)
	}
	var started atomic.Int32
	sc := &scenarioFunc{
		name: "test-failing-scenario",
		defaults: Spec{
			Topologies: 1, Seed: 1, Antennas: 1, Clients: 1,
			Replicates: 1, Parallelism: 2,
			Sweep: map[string][]float64{"seed": seeds},
		},
		run: func(spec Spec, _ *rng.Source, r *Result) error {
			started.Add(1)
			if spec.Seed >= failFrom {
				return fmt.Errorf("shard with seed %d exploded", spec.Seed)
			}
			r.AddMetric("ok", float64(spec.Seed), "", "")
			return nil
		},
	}
	_, err := Run(context.Background(), sc, Spec{})
	if err == nil {
		t.Fatal("engine must surface the run error")
	}
	var te *runner.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %v (%T) is not a runner.TaskError", err, err)
	}
	if te.Index != failFrom-1 {
		t.Errorf("surfaced error index %d, want the lowest failing run %d", te.Index, failFrom-1)
	}
	if n := started.Load(); n >= 64 {
		t.Errorf("all %d runs started despite the early failure — cancellation is not propagating", n)
	}
}
