package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Result is everything one scenario run produced. Unlike runner.Result
// it carries no wall-clock timing, so marshalling it is deterministic —
// the property the golden-figure suite pins byte-for-byte.
type Result struct {
	Scenario string          `json:"scenario"`
	Series   []runner.Series `json:"series,omitempty"`
	Metrics  []runner.Metric `json:"metrics,omitempty"`
	// Summaries carries the replicate-aggregated statistics of a
	// Replicates > 1 run; single-replicate results omit it, keeping
	// their serialization byte-identical to the pre-replication format.
	Summaries []runner.Summary `json:"summaries,omitempty"`
	Text      []string         `json:"text,omitempty"`
}

// AddSeries appends a curve built from a sample.
func (r *Result) AddSeries(label, unit string, s *stats.Sample) {
	r.Series = append(r.Series, runner.SampleSeries(label, unit, s))
}

// AddMetric appends a scalar result.
func (r *Result) AddMetric(name string, value float64, unit, note string) {
	r.Metrics = append(r.Metrics, runner.Metric{Name: name, Value: value, Unit: unit, Note: note})
}

// AddText appends a free-form output line.
func (r *Result) AddText(format string, args ...any) {
	r.Text = append(r.Text, fmt.Sprintf(format, args...))
}

// RunnerResult adapts the scenario result to the runner sink model
// (TextSink/JSONSink/CSVSink); the caller stamps timing if it wants it.
func (r Result) RunnerResult() runner.Result {
	return runner.Result{
		Name:      r.Scenario,
		Series:    r.Series,
		Metrics:   r.Metrics,
		Summaries: r.Summaries,
		Text:      r.Text,
	}
}

// MarshalIndent renders the canonical golden-file JSON for the result.
func (r Result) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
