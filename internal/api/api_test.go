package api

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteAndParseRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 404, "unknown_job", "service: unknown job")
	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	e := Parse(rec.Body.Bytes())
	if e.Message != "service: unknown job" || e.Code != "unknown_job" || e.RetryAfterSeconds != 0 {
		t.Fatalf("Parse = %+v", e)
	}
	if got := e.Error(); got != "service: unknown job (unknown_job)" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestWriteRetrySetsHeaderAndBody(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteRetry(rec, 503, "queue_full", "service: job queue full", 7)
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	e := Parse(rec.Body.Bytes())
	if e.RetryAfterSeconds != 7 || e.Code != "queue_full" {
		t.Fatalf("Parse = %+v", e)
	}
	// The envelope must be the documented shape, key for key.
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	for _, key := range []string{"error", "code", "retry_after_seconds"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("envelope missing %q: %v", key, raw)
		}
	}
}

func TestWriteRetryZeroOmitsHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteRetry(rec, 503, "draining", "service: shutting down", 0)
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("Retry-After = %q, want unset", got)
	}
}

func TestParsePlainTextFallback(t *testing.T) {
	e := Parse([]byte("  something broke\n"))
	if e.Message != "something broke" || e.Code != "" {
		t.Fatalf("Parse plain text = %+v", e)
	}
	if got := e.Error(); got != "something broke" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestParseEmptyBody(t *testing.T) {
	e := Parse(nil)
	if e == nil || e.Message == "" {
		t.Fatalf("Parse(nil) = %+v, want non-empty message", e)
	}
}

func TestParseNonEnvelopeJSON(t *testing.T) {
	// JSON that is not the envelope (no "error" key) falls back to the
	// raw body as message, so nothing is silently swallowed.
	body := `{"status": "broken"}`
	e := Parse([]byte(body))
	if e.Code != "" || !strings.Contains(e.Message, "broken") {
		t.Fatalf("Parse = %+v", e)
	}
}
