// Package api is the one error shape every HTTP surface of the system
// speaks: the job API (internal/service), the dispatch lease protocol
// (internal/dispatch) and any future listener all emit the same JSON
// envelope for non-2xx responses, and every client (midas-loadgen,
// midas-worker) parses it instead of sniffing status text.
//
// The envelope:
//
//	{"error": "human message", "code": "machine_code", "retry_after_seconds": N}
//
// "error" is always present. "code" is a stable machine-readable
// discriminator (snake_case; clients branch on it, never on the
// message). "retry_after_seconds" appears only on backpressure
// responses and mirrors the Retry-After header — clients behind
// header-stripping proxies still get the hint.
//
// Compatibility: plain-text error bodies from pre-envelope servers are
// still accepted by Parse for one release; they surface with an empty
// Code.
package api

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Error is the unified v1 error envelope. It implements error, so
// clients can return a parsed envelope directly up their call stack.
type Error struct {
	// Message is the human-readable description (the "error" key).
	Message string `json:"error"`
	// Code is the stable machine-readable discriminator; empty when the
	// server predates the envelope (plain-text body).
	Code string `json:"code,omitempty"`
	// RetryAfterSeconds, when > 0, is how long the server suggests
	// waiting before retrying — the JSON mirror of the Retry-After
	// header, carried in-band for header-stripping proxies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Message + " (" + e.Code + ")"
}

// Write emits the envelope with the given HTTP status.
func Write(w http.ResponseWriter, status int, code, message string) {
	writeEnvelope(w, status, Error{Message: message, Code: code})
}

// WriteRetry emits the envelope with a retry hint, and sets the
// Retry-After header to match — the header for RFC 9110 clients, the
// body field for everyone else.
func WriteRetry(w http.ResponseWriter, status int, code, message string, retryAfterSeconds int) {
	if retryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeEnvelope(w, status, Error{Message: message, Code: code, RetryAfterSeconds: retryAfterSeconds})
}

func writeEnvelope(w http.ResponseWriter, status int, e Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e) // nothing to do about a broken client connection
}

// Parse reads an error response body into an Error. A JSON envelope is
// decoded as such; anything else (a plain-text body from a pre-envelope
// server, an empty body) degrades to a message-only Error with no Code,
// so callers can branch on Code == "" to detect a legacy peer. Parse
// never returns nil.
func Parse(body []byte) *Error {
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Message != "" {
		return &e
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = "(empty error body)"
	}
	return &Error{Message: msg}
}
