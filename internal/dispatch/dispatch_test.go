package dispatch

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// testSpec resolves a small swept+replicated spec: 2 sweep points × 2
// replicates = 4 shards of real engine work, each fast.
func testSpec(t *testing.T) (scenario.Scenario, scenario.Spec) {
	t.Helper()
	sc, err := scenario.Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Resolve(sc, scenario.Spec{
		Topologies: 2, Seed: 17, Replicates: 2,
		Sweep: map[string][]float64{"seed": {101, 102}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc, spec
}

// startCoordinator builds a Coordinator on a test HTTP server, with a
// fast sweeper so lease-expiry tests run in milliseconds.
func startCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 5 * time.Millisecond
	}
	c := New(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// runJob dispatches spec on c in the background, returning a channel
// with the outcome.
type jobOutcome struct {
	res scenario.Result
	err error
}

func dispatchAsync(ctx context.Context, c *Coordinator, sc scenario.Scenario, spec scenario.Spec) <-chan jobOutcome {
	out := make(chan jobOutcome, 1)
	go func() {
		res, err := c.Run(ctx, sc, spec, scenario.RunOptions{})
		out <- jobOutcome{res, err}
	}()
	return out
}

// TestDistributedMatchesSingleProcess is the headline contract: a spec
// executed by real workers over the real HTTP protocol produces the
// byte-identical Result of the single-process engine run.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	sc, spec := testSpec(t)
	want, err := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c, srv := startCoordinator(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", w),
				Parallelism: 1 + w, // different widths must not matter
				Poll:        5 * time.Millisecond,
			})
		}(w)
	}
	defer wg.Wait()
	defer cancel()

	var progress []int
	var mu sync.Mutex
	got, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{
		OnProgress: func(completed, total int) {
			mu.Lock()
			progress = append(progress, completed)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := want.MarshalIndent()
	gotJSON, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("distributed result differs from single-process:\nwant: %s\ngot:  %s", wantJSON, gotJSON)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(progress) != spec.ExpandedRuns() {
		t.Fatalf("OnProgress fired %d times, want %d", len(progress), spec.ExpandedRuns())
	}
	for i, p := range progress {
		if p != i+1 {
			t.Fatalf("OnProgress not monotonic: %v", progress)
		}
	}
}

// TestLeaseExpiryRequeues: a worker that takes a shard and goes silent
// has it requeued after the lease TTL, and another worker finishes the
// job.
func TestLeaseExpiryRequeues(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{
		LeaseTTL:    30 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Telemetry:   reg,
	})

	// The vanishing worker: leases one shard and never reports.
	var lr LeaseResponse
	leaseOne(t, srv.URL, "vanisher", 1, &lr)
	if len(lr.Leases) != 0 {
		t.Fatal("lease granted before any job was dispatched")
	}
	done := dispatchAsync(context.Background(), c, sc, spec)
	for deadline := time.Now().Add(time.Second); ; {
		leaseOne(t, srv.URL, "vanisher", 1, &lr)
		if len(lr.Leases) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted")
		}
		time.Sleep(time.Millisecond)
	}

	// An honest worker drains the queue — including the abandoned
	// shard once its lease expires.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "honest", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()

	out := <-done
	if out.err != nil {
		t.Fatalf("dispatch failed: %v", out.err)
	}
	cancel()
	<-workerDone

	if n := counterValue(t, reg, "midas_shard_requeues_total", `reason="expired"`); n < 1 {
		t.Errorf("expired-lease requeues = %v, want >= 1", n)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)
}

// TestWorkerCrashMidShard: a worker whose process dies mid-shard (its
// Run never returns, its connection just stops) does not lose the
// shard — the lease expires, the shard requeues, a healthy worker
// completes the job with correct bytes.
func TestWorkerCrashMidShard(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{
		LeaseTTL:    30 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Telemetry:   reg,
	})
	done := dispatchAsync(context.Background(), c, sc, spec)

	// The crasher: takes one lease and "dies" inside the engine run —
	// Run never returns, nothing is ever published, exactly like a
	// kill -9'd process's work vanishing. (The blocked goroutine leaks
	// until the test binary exits; that is the point.)
	crashed := make(chan struct{})
	go func() {
		_ = RunWorker(context.Background(), WorkerConfig{
			Coordinator: srv.URL, ID: "crasher", Poll: time.Millisecond, MaxBatch: 1,
			Run: func(context.Context, scenario.Spec) (scenario.Result, error) {
				close(crashed)
				select {} // the crash: worker gone, shard still leased
			},
		})
	}()
	<-crashed

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "survivor", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()

	out := <-done
	if out.err != nil {
		t.Fatalf("dispatch failed after worker crash: %v", out.err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)
	if n := counterValue(t, reg, "midas_shard_requeues_total", `reason="expired"`); n < 1 {
		t.Errorf("crash produced no expired requeue (got %v)", n)
	}
}

// TestDuplicateCompletionAfterRequeue: a slow worker completing a
// lease that already expired and was re-executed elsewhere is answered
// "stale" (or "duplicate" if under the completed lease id) and its
// payload discarded — exactly one accepted completion per shard.
func TestDuplicateCompletionAfterRequeue(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{
		LeaseTTL:    20 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Telemetry:   reg,
	})
	done := dispatchAsync(context.Background(), c, sc, spec)

	// Take one lease and sit on it past expiry.
	var lr LeaseResponse
	waitLease(t, srv.URL, "slowpoke", &lr)
	slow := lr.Leases[0]

	// Let an honest fleet finish everything (including slowpoke's
	// shard, re-leased after expiry).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "honest", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}

	// Now the slowpoke wakes up and reports its ancient lease.
	res, err := runShardForTest(t, slow.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	postForTest(t, srv.URL+"/v1/shards/"+slow.ID+"/complete",
		CompleteRequest{Worker: "slowpoke", Result: &res}, &cr)
	if cr.Status != "stale" && cr.Status != "duplicate" {
		t.Fatalf("late completion status = %q, want stale or duplicate", cr.Status)
	}
	// Re-report the same id again: still classified, still discarded.
	postForTest(t, srv.URL+"/v1/shards/"+slow.ID+"/complete",
		CompleteRequest{Worker: "slowpoke", Result: &res}, &cr)
	if cr.Status != "stale" && cr.Status != "duplicate" {
		t.Fatalf("repeat completion status = %q", cr.Status)
	}

	if n := counterValue(t, reg, "midas_shards_completed_total", `status="accepted"`); n != float64(spec.ExpandedRuns()) {
		t.Errorf("accepted completions = %v, want exactly %d", n, spec.ExpandedRuns())
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)
}

// TestCoordinatorRestartStalePublish: completions addressed to a
// previous coordinator incarnation (its lease ids die with it) are
// classified stale by the new one, never crash it, and the respawned
// job runs cleanly.
func TestCoordinatorRestartStalePublish(t *testing.T) {
	sc, spec := testSpec(t)

	// First incarnation: grant a lease, then die.
	c1, srv1 := startCoordinator(t, Config{})
	done1 := dispatchAsync(context.Background(), c1, sc, spec)
	var lr LeaseResponse
	waitLease(t, srv1.URL, "w1", &lr)
	old := lr.Leases[0]
	srv1.Close()
	c1.Close()
	if out := <-done1; out.err == nil {
		t.Fatal("job survived its coordinator's death")
	}

	// Second incarnation on a fresh listener (same logical service).
	c2, srv2 := startCoordinator(t, Config{})
	done2 := dispatchAsync(context.Background(), c2, sc, spec)

	// The worker that outlived the restart publishes its result under
	// the dead incarnation's lease id.
	res, err := runShardForTest(t, old.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	postForTest(t, srv2.URL+"/v1/shards/"+old.ID+"/complete",
		CompleteRequest{Worker: "w1", Result: &res}, &cr)
	if cr.Status != "stale" {
		t.Fatalf("cross-incarnation completion status = %q, want stale", cr.Status)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv2.URL, ID: "w2", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()
	out := <-done2
	if out.err != nil {
		t.Fatal(out.err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)
}

// TestRetryBudgetExhaustionFailsJob: a shard that fails on every
// attempt fails its whole job with the budget in the error, instead of
// requeueing forever.
func TestRetryBudgetExhaustionFailsJob(t *testing.T) {
	sc, spec := testSpec(t)
	c, srv := startCoordinator(t, Config{
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
	})
	var attempts atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "doomed", Poll: time.Millisecond,
			Run: func(_ context.Context, _ scenario.Spec) (scenario.Result, error) {
				attempts.Add(1)
				return scenario.Result{}, fmt.Errorf("synthetic shard failure")
			},
		})
	}()
	_, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{})
	if err == nil {
		t.Fatal("job succeeded despite every shard failing")
	}
	if !strings.Contains(err.Error(), "synthetic shard failure") || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget-exhaustion error lacks cause/budget: %v", err)
	}
}

// TestRunContextCancel: cancelling the dispatching caller's context
// fails the job promptly and discards the pending shards.
func TestRunContextCancel(t *testing.T) {
	sc, spec := testSpec(t)
	c, _ := startCoordinator(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := dispatchAsync(ctx, c, sc, spec)
	cancel() // no workers exist; the job would otherwise wait forever
	out := <-done
	if out.err == nil {
		t.Fatal("cancelled dispatch returned a result")
	}
	st := c.StatusSnapshot()
	if st.Jobs != 0 {
		t.Errorf("cancelled job still in table: %+v", st)
	}
}

// TestCloseFailsInflightJobs: Close is a clean shutdown — every
// in-flight Run returns ErrClosed, and later Runs are rejected.
func TestCloseFailsInflightJobs(t *testing.T) {
	sc, spec := testSpec(t)
	c := New(Config{SweepInterval: 5 * time.Millisecond})
	done := dispatchAsync(context.Background(), c, sc, spec)
	c.Close()
	if out := <-done; out.err == nil {
		t.Fatal("Run survived Close")
	}
	if _, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{}); err == nil {
		t.Fatal("Run accepted after Close")
	}
	c.Close() // idempotent
}

// TestWorkerLivenessTTL: workers appear in the live count while
// polling and age out after the worker TTL.
func TestWorkerLivenessTTL(t *testing.T) {
	c, srv := startCoordinator(t, Config{WorkerTTL: 40 * time.Millisecond})
	if n := c.LiveWorkers(); n != 0 {
		t.Fatalf("live workers before any poll = %d", n)
	}
	var lr LeaseResponse
	leaseOne(t, srv.URL, "transient", 1, &lr)
	if n := c.LiveWorkers(); n != 1 {
		t.Fatalf("live workers after poll = %d, want 1", n)
	}
	deadline := time.Now().Add(time.Second)
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never aged out of the live set")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleRunSpecDispatches: even a spec that expands to one shard
// round-trips the protocol correctly (midas-serve routes those
// in-process, but the coordinator must not depend on it).
func TestSingleRunSpecDispatches(t *testing.T) {
	sc, err := scenario.Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Resolve(sc, scenario.Spec{Topologies: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	c, srv := startCoordinator(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "solo", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()
	got, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, got)
}

// ---------------------------------------------------------------------
// helpers

func leaseOne(t *testing.T, base, worker string, max int, out *LeaseResponse) {
	t.Helper()
	*out = LeaseResponse{}
	postForTest(t, base+"/v1/shards/lease", LeaseRequest{Worker: worker, Max: max}, out)
}

// waitLease polls until one lease is granted.
func waitLease(t *testing.T, base, worker string, out *LeaseResponse) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaseOne(t, base, worker, 1, out)
		if len(out.Leases) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

func postForTest(t *testing.T, url string, body, out any) {
	t.Helper()
	if err := postJSON(context.Background(), http.DefaultClient, url, body, out); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
}

func runShardForTest(t *testing.T, spec scenario.Spec) (scenario.Result, error) {
	t.Helper()
	spec.Parallelism = 1
	return runShard(context.Background(), spec)
}

func assertSameResult(t *testing.T, want, got scenario.Result) {
	t.Helper()
	wantJSON, err := want.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("results differ:\nwant: %s\ngot:  %s", wantJSON, gotJSON)
	}
}

// counterValue scrapes reg's exposition output for one sample line.
func counterValue(t *testing.T, reg *telemetry.Registry, name, label string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	prefix := name
	if label != "" {
		prefix = name + "{" + label + "}"
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix+" "), "%g", &v); err != nil {
				t.Fatalf("parsing sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", prefix, sb.String())
	return 0
}
