package dispatch

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// openStoreAndJournal stands up the durable pair the way midas-serve
// wires them: the journal lives under the store dir, where the store's
// warm scan ignores it.
func openStoreAndJournal(t *testing.T, dir string) (*store.Store, *journal.Journal) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	jn, err := journal.Open(filepath.Join(dir, "journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, jn
}

// collectLeases polls until n leases have been granted to worker.
func collectLeases(t *testing.T, base, worker string, n int) []ShardLease {
	t.Helper()
	var got []ShardLease
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n {
		var lr LeaseResponse
		leaseOne(t, base, worker, n-len(got), &lr)
		got = append(got, lr.Leases...)
		if time.Now().After(deadline) {
			t.Fatalf("collected %d/%d leases", len(got), n)
		}
		if len(got) < n {
			time.Sleep(time.Millisecond)
		}
	}
	return got
}

// completeLease runs a lease's shard for real and reports it.
func completeLease(t *testing.T, base, worker string, l ShardLease) string {
	t.Helper()
	res, err := runShardForTest(t, l.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	postForTest(t, base+"/v1/shards/"+l.ID+"/complete",
		CompleteRequest{Worker: worker, Result: &res}, &cr)
	return cr.Status
}

// TestJournalResumeAfterRestart is the tentpole contract: a
// coordinator that dies mid-sweep (here: Close, which like kill -9
// leaves the journal entry and the published shard results behind)
// hands the half-finished job to its successor, which re-executes only
// the shards whose results never reached the store and assembles a
// result byte-identical to the single-process run.
func TestJournalResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	sc, spec := testSpec(t) // 4 shards

	// First incarnation: dispatch, let exactly 2 shards complete.
	st1, jn1 := openStoreAndJournal(t, dir)
	c1, srv1 := startCoordinator(t, Config{Store: st1, Journal: jn1})
	done1 := dispatchAsync(context.Background(), c1, sc, spec)
	for _, l := range collectLeases(t, srv1.URL, "early", 2) {
		if got := completeLease(t, srv1.URL, "early", l); got != "accepted" {
			t.Fatalf("pre-crash completion status %q", got)
		}
	}
	srv1.Close()
	c1.Close()
	if out := <-done1; out.err == nil {
		t.Fatal("job survived its coordinator's death")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if jn1.Len() != 1 {
		t.Fatalf("journal holds %d entries after unclean shutdown, want 1", jn1.Len())
	}

	// Second incarnation over the same dir.
	st2, jn2 := openStoreAndJournal(t, dir)
	t.Cleanup(func() { st2.Close() })
	reg := telemetry.NewRegistry()
	c2, srv2 := startCoordinator(t, Config{Store: st2, Journal: jn2, Telemetry: reg})

	rec := c2.Recovered()
	if len(rec) != 1 {
		t.Fatalf("Recovered() = %d entries, want 1", len(rec))
	}
	e := rec[0]
	if e.SpecHash != spec.CanonicalHash() || e.Scenario != sc.Name() {
		t.Fatalf("recovered entry %s/%s, want %s/%s", e.SpecHash, e.Scenario, spec.CanonicalHash(), sc.Name())
	}
	if len(e.Shards) != 4 || e.DoneCount() != 2 {
		t.Fatalf("recovered entry has %d shards, %d done; want 4 and 2", len(e.Shards), e.DoneCount())
	}

	// Re-dispatch from the journal entry, exactly as midas-serve does.
	sc2, err := scenario.Find(e.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	done2 := dispatchAsync(context.Background(), c2, sc2, e.Spec)

	var runs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv2.URL, ID: "late", Poll: 2 * time.Millisecond,
			Run: func(rctx context.Context, s scenario.Spec) (scenario.Result, error) {
				runs.Add(1)
				s.Parallelism = 1
				return runShard(rctx, s)
			},
		})
	}()
	out := <-done2
	cancel()
	<-workerDone
	if out.err != nil {
		t.Fatalf("resumed dispatch failed: %v", out.err)
	}

	// Zero re-execution of journaled-complete shards: only the 2
	// missing shards ran, the other 2 came from the store.
	if n := runs.Load(); n != 2 {
		t.Errorf("resumed job executed %d shards, want exactly 2", n)
	}
	if n := counterValue(t, reg, "midas_shards_recovered_total", ""); n != 2 {
		t.Errorf("midas_shards_recovered_total = %v, want 2", n)
	}
	if n := counterValue(t, reg, "midas_jobs_resumed_total", ""); n != 1 {
		t.Errorf("midas_jobs_resumed_total = %v, want 1", n)
	}

	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)

	// The finished job leaves no journal entry to resurrect.
	if jn2.Len() != 0 {
		t.Errorf("journal still holds %d entries after the resumed job finished", jn2.Len())
	}
	if jn3, err := journal.Open(filepath.Join(dir, "journal"), nil); err != nil || jn3.Len() != 0 {
		t.Errorf("journal dir not empty on disk (err %v, %d entries)", err, jn3.Len())
	}
}

// TestSharedSweepPointsRecoveredFromStore: shard-level caching across
// jobs — a second sweep sharing a sweep point with an earlier one
// skips the shared shards via store hits, without any restart.
func TestSharedSweepPointsRecoveredFromStore(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	sc, specA := testSpec(t) // sweep seeds {101, 102} × 2 replicates
	specB, err := scenario.Resolve(sc, scenario.Spec{
		Topologies: 2, Seed: 17, Replicates: 2,
		Sweep: map[string][]float64{"seed": {102, 103}},
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{Store: st, Telemetry: reg})
	var runs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "w", Poll: 2 * time.Millisecond,
			Run: func(rctx context.Context, s scenario.Spec) (scenario.Result, error) {
				runs.Add(1)
				s.Parallelism = 1
				return runShard(rctx, s)
			},
		})
	}()

	if _, err := c.Run(context.Background(), sc, specA, scenario.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 4 {
		t.Fatalf("job A executed %d shards, want 4", n)
	}
	gotB, err := c.Run(context.Background(), sc, specB, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// B's seed-102 point (2 replicate shards) came from A's publishes.
	if n := runs.Load(); n != 6 {
		t.Errorf("jobs A+B executed %d shards, want 6 (2 shared shards skipped)", n)
	}
	if n := counterValue(t, reg, "midas_shards_recovered_total", ""); n != 2 {
		t.Errorf("midas_shards_recovered_total = %v, want 2", n)
	}
	wantB, _ := scenario.RunResolved(context.Background(), sc, specB, scenario.RunOptions{})
	assertSameResult(t, wantB, gotB)
}

// TestUndecodableShardEntryRecomputed: a store entry that verifies at
// the byte level but does not decode as a result is quarantined and
// the shard re-executed — never assembled.
func TestUndecodableShardEntryRecomputed(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	sc, spec := testSpec(t)
	poisoned := spec.ShardHashes()[0]
	if err := st.Put(poisoned, []byte("not a result")); err != nil {
		t.Fatal(err)
	}

	c, srv := startCoordinator(t, Config{Store: st})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "w", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()
	got, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, got)
	if q := st.Stats().Quarantined; q < 1 {
		t.Errorf("poisoned entry not quarantined (%d quarantines)", q)
	}
	// The re-executed shard republished a decodable entry.
	payload, ok := st.Get(poisoned)
	if !ok {
		t.Fatal("shard entry missing after recompute")
	}
	if _, err := decodeShardResult(payload); err != nil {
		t.Errorf("republished shard entry still undecodable: %v", err)
	}
}

// TestStaleDispatchJournalEntryRemoved: a Run rejected because the
// coordinator closed between journaling and enqueueing must not leave
// a journal entry for work that never started.
func TestStaleDispatchJournalEntryRemoved(t *testing.T) {
	dir := t.TempDir()
	st, jn := openStoreAndJournal(t, dir)
	t.Cleanup(func() { st.Close() })
	sc, spec := testSpec(t)
	c := New(Config{Store: st, Journal: jn, SweepInterval: 5 * time.Millisecond})
	c.Close()
	if _, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{}); err == nil {
		t.Fatal("Run accepted after Close")
	}
	if jn.Len() != 0 {
		t.Fatalf("rejected Run left %d journal entries", jn.Len())
	}
}

// TestCompletionClassificationAfterExpiry pins the tombstone taxonomy
// exactly: a shard leased, expired and re-leased answers a completion
// under the NEW lease "accepted", a re-report of that same new id
// "duplicate", and a late publish under the OLD (expired) id "stale" —
// and midas_shards_completed_total counts exactly one event per
// verdict.
func TestCompletionClassificationAfterExpiry(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{
		LeaseTTL:    20 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Telemetry:   reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := dispatchAsync(ctx, c, sc, spec)
	t.Cleanup(func() { cancel(); <-done })

	// Lease every shard and report nothing. Run one shard's engine work
	// now — the result only depends on the spec, and computing it here
	// lets the TTL clock run — then wait for the sweeper to expire and
	// re-grant the whole set.
	early := collectLeases(t, srv.URL, "early", spec.ExpandedRuns())
	old := early[0]
	res, err := runShardForTest(t, old.Spec)
	if err != nil {
		t.Fatal(err)
	}
	late := collectLeases(t, srv.URL, "late", spec.ExpandedRuns())

	// Pair the shard's expired and fresh incarnations.
	var fresh ShardLease
	found := false
	for _, l := range late {
		if l.Job == old.Job && l.Shard == old.Shard {
			fresh, found = l, true
		}
	}
	if !found {
		t.Fatalf("no fresh lease for shard %d among %+v", old.Shard, late)
	}
	if old.ID == fresh.ID {
		t.Fatal("re-lease after expiry reused the lease id")
	}
	report := func(leaseID string) string {
		var cr CompleteResponse
		postForTest(t, srv.URL+"/v1/shards/"+leaseID+"/complete",
			CompleteRequest{Worker: "late", Result: &res}, &cr)
		return cr.Status
	}
	if got := report(fresh.ID); got != "accepted" {
		t.Fatalf("completion under live lease = %q, want accepted", got)
	}
	if got := report(fresh.ID); got != "duplicate" {
		t.Errorf("re-report under completed lease = %q, want duplicate", got)
	}
	if got := report(old.ID); got != "stale" {
		t.Errorf("late publish under expired lease = %q, want stale", got)
	}

	for status, want := range map[string]float64{
		"accepted": 1, "duplicate": 1, "stale": 1, "requeued": 0,
	} {
		if n := counterValue(t, reg, "midas_shards_completed_total", `status="`+status+`"`); n != want {
			t.Errorf("completions{status=%q} = %v, want %v", status, n, want)
		}
	}
}
