package dispatch

import "repro/internal/telemetry"

// Instruments for the dispatch layer, registered on the same registry
// midas-serve renders at /metrics (naming per the service conventions:
// midas_ prefix, seconds, _total counters). The completions counter is
// the cluster-e2e ground truth for "no duplicate side effects": its
// accepted series must equal the spec's shard count no matter how many
// times shards were leased, killed, or double-completed.
type instruments struct {
	leased      *telemetry.Counter    // midas_shards_leased_total
	requeues    *telemetry.CounterVec // midas_shard_requeues_total{reason}
	completions *telemetry.CounterVec // midas_shards_completed_total{status}
	// recovered counts shards answered from the durable store without
	// leasing — journal resume after a restart or sweep-point reuse
	// across jobs; cluster-e2e's restart phase asserts recovered +
	// accepted = shard count, the "zero re-execution" proof.
	recovered *telemetry.Counter // midas_shards_recovered_total
	resumed   *telemetry.Counter // midas_jobs_resumed_total
	// direct counts worker direct-publish acknowledgements by outcome:
	// "verified" (the coordinator found and verified the blob in the
	// shared store) or "resend" (it could not, and asked the worker to
	// re-send the result inline).
	direct *telemetry.CounterVec // midas_shards_direct_total{outcome}
	// leaseLatency observes grant -> accepted completion: the remote
	// run + both HTTP hops, the distribution that sizes LeaseTTL.
	leaseLatency *telemetry.Histogram
}

// 0.5ms … ~65s, the service's runBuckets shape: a lease spans one
// engine shard plus network, same dynamic range as a local run.
var leaseBuckets = telemetry.ExponentialBuckets(0.0005, 2, 18)

func newInstruments(reg *telemetry.Registry, c *Coordinator) *instruments {
	in := &instruments{
		leased: reg.NewCounter("midas_shards_leased_total",
			"Shard leases granted to workers (re-leases after requeue included)."),
		requeues: reg.NewCounterVec("midas_shard_requeues_total",
			"Shards returned to the queue, by reason (expired, failed).", "reason"),
		completions: reg.NewCounterVec("midas_shards_completed_total",
			"Shard completion reports, by status (accepted, requeued, duplicate, stale).", "status"),
		recovered: reg.NewCounter("midas_shards_recovered_total",
			"Shards answered from the durable store without leasing (journal resume or cross-job sweep-point reuse)."),
		resumed: reg.NewCounter("midas_jobs_resumed_total",
			"Journaled half-finished jobs re-dispatched after a coordinator restart."),
		direct: reg.NewCounterVec("midas_shards_direct_total",
			"Worker direct-publish acknowledgements, by outcome (verified, resend).", "outcome"),
		leaseLatency: reg.NewHistogram("midas_shard_lease_seconds",
			"Time from lease grant to accepted completion.", leaseBuckets),
	}
	// Pre-create the series the e2e greps for, so /metrics exposes an
	// explicit 0 before the first event of each kind.
	for _, r := range []string{"expired", "failed"} {
		in.requeues.With(r)
	}
	for _, s := range []string{"accepted", "requeued", "duplicate", "stale", "resend"} {
		in.completions.With(s)
	}
	for _, o := range []string{"verified", "resend"} {
		in.direct.With(o)
	}
	reg.NewGaugeFunc("midas_workers_live",
		"Workers that polled for a lease within the worker TTL.",
		nil, func() []telemetry.GaugeSample {
			return []telemetry.GaugeSample{{Value: float64(c.LiveWorkers())}}
		})
	reg.NewGaugeFunc("midas_shards_pending",
		"Shards queued (or backing off) awaiting a lease.",
		nil, func() []telemetry.GaugeSample {
			return []telemetry.GaugeSample{{Value: float64(c.StatusSnapshot().PendingShards)}}
		})
	return in
}
