package dispatch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/scenario"
)

// ProtoVersion is the dispatch wire protocol this coordinator speaks.
// Version 1 added the "proto" field itself plus worker direct-publish
// (ShardLease.Hash, CompleteRequest.StoredHash/Digest). Requests that
// omit "proto" (version 0, the pre-versioning wire format) are
// accepted for one release; requests claiming a HIGHER version than
// the coordinator speaks are rejected with code "proto_unsupported" —
// a newer worker must not silently degrade against an older
// coordinator.
const ProtoVersion = 1

// Wire types of the lease protocol. Specs and results ride as their
// canonical JSON forms — the same encoding the serving API and the
// durable store use — so a worker's completion is exactly the payload
// a single-process run would have produced.

// LeaseRequest asks the coordinator for up to Max shard leases.
// Polling is also the worker's liveness heartbeat: an empty grant
// still refreshes its TTL in the live set.
type LeaseRequest struct {
	Proto  int    `json:"proto,omitempty"`
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// ShardLease is one granted shard: run Spec, report under ID before
// Deadline or the shard is requeued to someone else.
type ShardLease struct {
	ID       string        `json:"id"`
	Job      string        `json:"job"`
	Shard    int           `json:"shard"`
	Attempt  int           `json:"attempt"`
	Deadline time.Time     `json:"deadline"`
	Spec     scenario.Spec `json:"spec"`
	// Hash is the shard spec's content address — the durable-store key
	// the result will live under. A worker sharing the coordinator's
	// store publishes its result there directly and completes with a
	// hash-plus-digest acknowledgement instead of inline bytes. Empty
	// when the coordinator runs without a store.
	Hash string `json:"hash,omitempty"`
}

// LeaseResponse carries the granted batch, possibly empty. An empty
// grant carries no poll hint: the worker re-polls on its own idle
// interval, and that polling doubles as its liveness heartbeat.
type LeaseResponse struct {
	Proto  int          `json:"proto"`
	Leases []ShardLease `json:"leases"`
}

// CompleteRequest reports one lease's outcome — exactly one of:
//
//   - Result: the shard result inline (the storeless path).
//   - StoredHash (+ Digest): the worker direct-published the result to
//     the shared store under the lease's Hash; Digest is the sha256 of
//     the stored envelope payload, which the coordinator checks after
//     reading the blob back. The shard payload never transits this
//     request.
//   - Error: the shard itself failed on the worker.
type CompleteRequest struct {
	Proto  int              `json:"proto,omitempty"`
	Worker string           `json:"worker"`
	Result *scenario.Result `json:"result,omitempty"`
	// StoredHash acknowledges a direct publish: the content address the
	// worker wrote the result envelope under (must equal the lease's
	// Hash).
	StoredHash string `json:"stored_hash,omitempty"`
	// Digest is the sha256 (hex) of the envelope payload the worker
	// stored — the coordinator verifies the blob it reads back against
	// it, so a half-landed or foreign blob can never be accepted on the
	// worker's say-so.
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CompleteResponse tells the worker how the report landed. "accepted",
// "requeued", "duplicate" and "stale" are terminal for the lease —
// duplicate/stale mean the work was already accounted elsewhere and
// the payload was discarded, which the deterministic engine makes
// harmless. "resend" is NOT terminal: the coordinator could not verify
// a direct-publish acknowledgement against the store (blob missing,
// digest mismatch, undecodable) and the worker should re-POST the same
// lease with the result inline.
type CompleteResponse struct {
	Proto  int    `json:"proto"`
	Status string `json:"status"` // accepted | requeued | duplicate | stale | resend
}

// Handler serves the lease protocol plus a status endpoint:
//
//	POST /v1/shards/lease          LeaseRequest  -> LeaseResponse
//	POST /v1/shards/{id}/complete  CompleteRequest -> CompleteResponse
//	GET  /v1/dispatch/status       -> Status
//
// midas-serve mounts this on its -dispatch-listen address (kept off
// the public API listener so workers can live on a private network).
// Errors are the unified api.Error envelope.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/lease", c.handleLease)
	mux.HandleFunc("POST /v1/shards/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/dispatch/status", c.handleStatus)
	return mux
}

// checkProto rejects requests from a future protocol major. Version 0
// (the field omitted — a pre-versioning peer) is accepted for one
// release.
func checkProto(w http.ResponseWriter, proto int) bool {
	if proto > ProtoVersion {
		api.Write(w, http.StatusBadRequest, "proto_unsupported",
			fmt.Sprintf("dispatch: protocol version %d not supported (max %d)", proto, ProtoVersion))
		return false
	}
	return true
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if !checkProto(w, req.Proto) {
		return
	}
	if req.Worker == "" {
		api.Write(w, http.StatusBadRequest, "bad_request", "lease request needs a worker id")
		return
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		api.Write(w, http.StatusServiceUnavailable, "closed", "coordinator closed")
		return
	}
	c.workers[req.Worker] = now
	granted := c.grantLocked(req.Worker, req.Max, now)
	// Snapshot every wire and log field while the lock is held: the
	// moment it drops, the sweeper may expire a lease, requeue its
	// shard and re-grant it, mutating sh.attempts (and the rest of the
	// lease bookkeeping) under a concurrent reader.
	resp := LeaseResponse{Proto: ProtoVersion, Leases: make([]ShardLease, 0, len(granted))}
	for _, l := range granted {
		resp.Leases = append(resp.Leases, ShardLease{
			ID:       l.id,
			Job:      l.sh.job.id,
			Shard:    l.sh.index,
			Attempt:  l.sh.attempts,
			Deadline: l.deadline,
			Spec:     l.sh.spec,
			Hash:     l.sh.hash,
		})
	}
	c.mu.Unlock()

	for _, sl := range resp.Leases {
		c.log.Info("dispatch shard leased",
			"lease", sl.ID, "worker", req.Worker,
			"dispatch_job", sl.Job, "shard", sl.Shard, "attempt", sl.Attempt)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("id")
	var req CompleteRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if !checkProto(w, req.Proto) {
		return
	}
	now := time.Now()

	var status string
	var after func()
	if req.StoredHash != "" && req.Error == "" && req.Result == nil {
		status, after = c.completeDirect(leaseID, req, now)
	} else {
		c.mu.Lock()
		if req.Worker != "" {
			c.workers[req.Worker] = now
		}
		status, after = c.completeLocked(leaseID, req.Worker, req.Result, req.Error, false, now)
		c.mu.Unlock()
	}
	if after != nil {
		after()
	}
	c.log.Info("dispatch shard completion",
		"lease", leaseID, "worker", req.Worker, "status", status)
	writeJSON(w, http.StatusOK, CompleteResponse{Proto: ProtoVersion, Status: status})
}

// completeDirect verifies a direct-publish acknowledgement: the worker
// claims the result envelope is in the shared store under StoredHash.
// The coordinator trusts nothing it cannot read back — the blob must
// exist, match the worker's digest, decode as an envelope and hash to
// the lease's own expected address. Verification does the store read
// outside c.mu; on any failure the lease stays live and the worker is
// told "resend" (it re-POSTs the result inline — one extra round trip,
// never a lost shard).
func (c *Coordinator) completeDirect(leaseID string, req CompleteRequest, now time.Time) (string, func()) {
	c.mu.Lock()
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	l, ok := c.leases[leaseID]
	if !ok {
		// Dead lease: classify exactly like an inline completion would.
		status, after := c.completeLocked(leaseID, req.Worker, nil, "", false, now)
		c.mu.Unlock()
		return status, after
	}
	expected := l.sh.hash
	c.mu.Unlock()

	resend := func(why string) (string, func()) {
		c.tel.direct.With("resend").Inc()
		c.tel.completions.With("resend").Inc()
		c.log.Warn("dispatch direct publish unverified, asking for inline resend",
			"lease", leaseID, "worker", req.Worker, "stored_hash", req.StoredHash, "reason", why)
		return "resend", nil
	}

	// A journal-only coordinator hashes its shards without having a
	// store to verify against, so check both.
	if expected == "" || c.cfg.Store == nil {
		return resend("coordinator has no store")
	}
	if req.StoredHash != expected {
		return resend("acknowledged hash does not match the lease")
	}
	payload, found := c.cfg.Store.Get(expected)
	if !found {
		return resend("blob not found in store")
	}
	if req.Digest != "" {
		sum := sha256.Sum256(payload)
		if hex.EncodeToString(sum[:]) != req.Digest {
			return resend("stored payload does not match worker digest")
		}
	}
	res, derr := decodeShardResultFor(expected, payload)
	if derr != nil {
		c.cfg.Store.Quarantine(expected)
		return resend("stored payload undecodable: " + derr.Error())
	}

	// The lease may have expired (and the shard been recovered or
	// re-granted) while we were reading the store; completeLocked
	// classifies that as duplicate/stale, same as any late completion.
	c.mu.Lock()
	status, after := c.completeLocked(leaseID, req.Worker, &res, "", true, now)
	c.mu.Unlock()
	if status == "accepted" {
		c.tel.direct.With("verified").Inc()
	}
	return status, after
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatusSnapshot())
}

// maxBodyBytes caps dispatch POST bodies, mirroring the public API's
// 1MiB spec cap: a shard result is a bounded summary (series, metrics,
// quantile sketches — never raw samples), so anything larger is a bug
// or abuse, not data.
const maxBodyBytes = 1 << 20

// decodeBody decodes a capped JSON request body into v, writing the
// error response (413 for an oversized body, 400 otherwise) itself;
// a non-nil return means the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	err := json.NewDecoder(body).Decode(v)
	if err == nil {
		return nil
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		api.Write(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return err
	}
	api.Write(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
