package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// Wire types of the lease protocol. Specs and results ride as their
// canonical JSON forms — the same encoding the serving API and the
// durable store use — so a worker's completion is exactly the payload
// a single-process run would have produced.

// LeaseRequest asks the coordinator for up to Max shard leases.
// Polling is also the worker's liveness heartbeat: an empty grant
// still refreshes its TTL in the live set.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// ShardLease is one granted shard: run Spec, report under ID before
// Deadline or the shard is requeued to someone else.
type ShardLease struct {
	ID       string        `json:"id"`
	Job      string        `json:"job"`
	Shard    int           `json:"shard"`
	Attempt  int           `json:"attempt"`
	Deadline time.Time     `json:"deadline"`
	Spec     scenario.Spec `json:"spec"`
}

// LeaseResponse carries the granted batch, possibly empty. An empty
// grant carries no poll hint: the worker re-polls on its own idle
// interval, and that polling doubles as its liveness heartbeat.
type LeaseResponse struct {
	Leases []ShardLease `json:"leases"`
}

// CompleteRequest reports one lease's outcome: a result, or an error
// string when the shard itself failed on the worker.
type CompleteRequest struct {
	Worker string           `json:"worker"`
	Result *scenario.Result `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// CompleteResponse tells the worker how the report landed. Every
// status is terminal for the lease — "duplicate" and "stale" mean the
// work was already accounted elsewhere and the payload was discarded,
// which the deterministic engine makes harmless.
type CompleteResponse struct {
	Status string `json:"status"` // accepted | requeued | duplicate | stale
}

// Handler serves the lease protocol plus a status endpoint:
//
//	POST /v1/shards/lease          LeaseRequest  -> LeaseResponse
//	POST /v1/shards/{id}/complete  CompleteRequest -> CompleteResponse
//	GET  /v1/dispatch/status       -> Status
//
// midas-serve mounts this on its -dispatch-listen address (kept off
// the public API listener so workers can live on a private network).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/lease", c.handleLease)
	mux.HandleFunc("POST /v1/shards/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/dispatch/status", c.handleStatus)
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request needs a worker id")
		return
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "coordinator closed")
		return
	}
	c.workers[req.Worker] = now
	granted := c.grantLocked(req.Worker, req.Max, now)
	// Snapshot every wire and log field while the lock is held: the
	// moment it drops, the sweeper may expire a lease, requeue its
	// shard and re-grant it, mutating sh.attempts (and the rest of the
	// lease bookkeeping) under a concurrent reader.
	resp := LeaseResponse{Leases: make([]ShardLease, 0, len(granted))}
	for _, l := range granted {
		resp.Leases = append(resp.Leases, ShardLease{
			ID:       l.id,
			Job:      l.sh.job.id,
			Shard:    l.sh.index,
			Attempt:  l.sh.attempts,
			Deadline: l.deadline,
			Spec:     l.sh.spec,
		})
	}
	c.mu.Unlock()

	for _, sl := range resp.Leases {
		c.log.Info("dispatch shard leased",
			"lease", sl.ID, "worker", req.Worker,
			"dispatch_job", sl.Job, "shard", sl.Shard, "attempt", sl.Attempt)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("id")
	var req CompleteRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	now := time.Now()
	c.mu.Lock()
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	status, after := c.completeLocked(leaseID, req.Worker, req.Result, req.Error, now)
	c.mu.Unlock()
	if after != nil {
		after()
	}
	c.log.Info("dispatch shard completion",
		"lease", leaseID, "worker", req.Worker, "status", status)
	writeJSON(w, http.StatusOK, CompleteResponse{Status: status})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatusSnapshot())
}

// maxBodyBytes caps dispatch POST bodies, mirroring the public API's
// 1MiB spec cap: a shard result is a bounded summary (series, metrics,
// quantile sketches — never raw samples), so anything larger is a bug
// or abuse, not data.
const maxBodyBytes = 1 << 20

// decodeBody decodes a capped JSON request body into v, writing the
// error response (413 for an oversized body, 400 otherwise) itself;
// a non-nil return means the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	err := json.NewDecoder(body).Decode(v)
	if err == nil {
		return nil
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return err
	}
	httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
