// Package dispatch distributes sweep execution across worker
// processes: a coordinator expands a resolved spec into shards — the
// exact task decomposition the in-process engine uses
// (scenario.Spec.Shards) — leases them to workers over HTTP with
// per-lease deadlines, requeues expired or failed leases with
// exponential backoff under a bounded per-shard attempt budget, and
// reassembles the ordered shard results into the result a
// single-process run would produce (scenario.Assemble — byte-identical,
// pinned by TestDistributedMatchesSingleProcess and
// scripts/cluster-e2e.sh).
//
// The protocol is a pull-based work queue in the reconcile-loop /
// requeue-with-backoff style of the Kubernetes controllers: workers
// poll
//
//	POST /v1/shards/lease             {"worker": id, "max": n}
//
// for shard batches and report each one with
//
//	POST /v1/shards/{lease}/complete  {"worker": id, "result": {...}}
//
// A lease that misses its deadline is requeued — its worker may have
// died mid-shard — and any late completion under the dead lease id is
// answered "stale" and discarded. Because a shard's result is
// deterministic in its spec (content-addressed, like everything the
// serving layer caches), double *execution* after a requeue race is
// harmless: exactly one completion per shard is accepted into the
// assembly, every other one is a counted no-op. Workers register
// implicitly by polling; a worker that stops polling ages out of the
// live set, which is how midas-serve's -min-workers fallback decides
// between dispatching and running in-process.
package dispatch

import (
	"container/heap"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/telemetry"

	"context"
)

// Config sizes a Coordinator.
type Config struct {
	// LeaseTTL is how long a worker holds a shard before the
	// coordinator assumes it died and requeues; <= 0 selects 30s. Set
	// it comfortably above the slowest expected shard: a lease that
	// expires under a live worker only wastes the duplicate execution,
	// but wasted work is still wasted.
	LeaseTTL time.Duration
	// MaxAttempts bounds how often one shard may be leased before its
	// whole job fails (the retry budget); <= 0 selects 5.
	MaxAttempts int
	// BackoffBase is the requeue delay after a shard's first failure,
	// doubling per subsequent attempt up to BackoffMax; <= 0 selects
	// 250ms (base) and 15s (max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// WorkerTTL is how long after its last poll a worker still counts
	// as live; <= 0 selects 15s.
	WorkerTTL time.Duration
	// MaxBatch caps the shards granted to one lease request regardless
	// of what the worker asks for; <= 0 selects 4.
	MaxBatch int
	// SweepInterval is the lease-expiry scan cadence; <= 0 derives
	// LeaseTTL/4 clamped to [25ms, 1s].
	SweepInterval time.Duration
	// Telemetry is the registry the coordinator registers its
	// instruments on (midas-serve passes the one /metrics renders); nil
	// creates a private one.
	Telemetry *telemetry.Registry
	// Log receives lease/requeue lifecycle lines; nil discards them.
	Log *slog.Logger
	// Store, when non-nil, is the durable content-addressed store every
	// accepted shard result is published to, keyed by the shard spec's
	// CanonicalHash, and consulted before enqueueing: a shard whose
	// result already verifies on disk is recovered instead of leased
	// (midas_shards_recovered_total), so sweep points shared across
	// jobs, tenants and coordinator restarts execute exactly once.
	Store *store.Store
	// Journal, when non-nil, records every dispatched job's resolved
	// spec plus per-shard completion pointers under the store's
	// crash-safe write discipline; New loads its surviving entries and
	// exposes them via Recovered so midas-serve can re-admit
	// half-finished sweeps after a restart (midas_jobs_resumed_total).
	// Pair it with Store — the journal names shard results, the store
	// holds them.
	Journal *journal.Journal
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 30 * time.Second
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 250 * time.Millisecond
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 15 * time.Second
}

func (c Config) workerTTL() time.Duration {
	if c.WorkerTTL > 0 {
		return c.WorkerTTL
	}
	return 15 * time.Second
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 4
}

func (c Config) sweepInterval() time.Duration {
	if c.SweepInterval > 0 {
		return c.SweepInterval
	}
	iv := c.leaseTTL() / 4
	if iv < 25*time.Millisecond {
		iv = 25 * time.Millisecond
	}
	if iv > time.Second {
		iv = time.Second
	}
	return iv
}

// ErrClosed rejects Run calls after Close.
var ErrClosed = errors.New("dispatch: coordinator closed")

// shard states.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shard is one expanded run of a dispatched job.
type shard struct {
	job   *dJob
	index int
	spec  scenario.Spec
	// hash is the shard spec's content address — the store key its
	// result is published under ("" when the coordinator has no store).
	hash    string
	state   shardState
	readyAt time.Time // earliest next lease (requeue backoff)
	// attempts counts lease grants; at cfg.maxAttempts() the next
	// failure fails the whole job instead of requeueing.
	attempts int
	lastErr  string // last worker-reported failure, for the give-up message
	heapIdx  int    // index in the pending heap (-1 = not pending)
}

// lease is one outstanding grant of a shard to a worker.
type lease struct {
	id       string
	sh       *shard
	worker   string
	granted  time.Time
	deadline time.Time
}

// dJob is one dispatched sweep: a resolved spec in flight across the
// worker fleet.
type dJob struct {
	id       string
	scName   string
	spec     scenario.Spec
	specHash string // CanonicalHash of spec; "" when neither store nor journal is configured
	shards   []*shard
	results  []scenario.Result
	opts     scenario.RunOptions
	total    int
	finished int // accepted shard completions
	err      error
	done     chan struct{} // closed once err is set or all shards accepted
}

func (j *dJob) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// pendingHeap orders pending shards by readyAt (earliest first), so a
// lease grant always hands out the longest-waiting work.
type pendingHeap []*shard

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].readyAt.Before(h[j].readyAt) }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *pendingHeap) Push(x any)        { sh := x.(*shard); sh.heapIdx = len(*h); *h = append(*h, sh) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	sh := old[n-1]
	old[n-1] = nil
	sh.heapIdx = -1
	*h = old[:n-1]
	return sh
}

// Coordinator owns the shard queue, the outstanding leases and the
// worker liveness table. Create with New, serve its Handler to the
// workers, stop with Close.
type Coordinator struct {
	cfg   Config
	tel   *instruments
	log   *slog.Logger
	nonce string // distinguishes this coordinator's lease ids across restarts
	// recovered snapshots the journal entries that survived the previous
	// incarnation, loaded once at New and immutable after (Recovered).
	recovered []journal.Entry

	mu   sync.Mutex
	jobs map[string]*dJob
	// resumable tracks which recovered spec hashes have not yet been
	// re-dispatched; the first Run of each counts midas_jobs_resumed_total.
	resumable map[string]bool
	pending   pendingHeap
	leases    map[string]*lease
	retired   map[string]string // recently dead lease ids -> why (completion classification)
	retiredQ  []string          // FIFO bounding retired
	workers   map[string]time.Time
	nextJob   int
	nextLease int
	closed    bool
	stop      chan struct{}
	stopped   sync.WaitGroup
}

// retiredKeep bounds the dead-lease tombstone table that classifies
// late completions (duplicate vs stale); beyond it the oldest are
// forgotten and a very late completion degrades to "stale".
const retiredKeep = 1024

// New builds a Coordinator and starts its lease-expiry sweeper.
func New(cfg Config) *Coordinator {
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		cfg:       cfg,
		log:       log,
		nonce:     fmt.Sprintf("%x", time.Now().UnixNano()),
		jobs:      make(map[string]*dJob),
		resumable: make(map[string]bool),
		leases:    make(map[string]*lease),
		retired:   make(map[string]string),
		workers:   make(map[string]time.Time),
		stop:      make(chan struct{}),
	}
	if cfg.Journal != nil {
		c.recovered = cfg.Journal.Entries()
		for _, e := range c.recovered {
			c.resumable[e.SpecHash] = true
			log.Info("dispatch journal entry recovered",
				"spec_hash", e.SpecHash, "scenario", e.Scenario,
				"shards", len(e.Shards), "journaled_done", e.DoneCount())
		}
	}
	c.tel = newInstruments(reg, c)
	c.stopped.Add(1)
	go c.sweeper()
	return c
}

// Recovered returns the journal entries that survived the previous
// coordinator incarnation — half-finished sweeps awaiting
// re-dispatch. midas-serve re-admits each at startup; the snapshot is
// taken once at New and never changes.
func (c *Coordinator) Recovered() []journal.Entry {
	out := make([]journal.Entry, len(c.recovered))
	copy(out, c.recovered)
	return out
}

// Close stops the sweeper and fails every in-flight job. Idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, j := range c.jobs {
		c.failJobLocked(j, ErrClosed)
	}
	c.mu.Unlock()
	c.stopped.Wait()
}

// Run dispatches one resolved spec across the worker fleet and blocks
// until the reassembled result is ready, the retry budget of some
// shard is exhausted, ctx is cancelled, or the coordinator closes. It
// has the service.RunFunc signature, so midas-serve can swap it in for
// scenario.RunResolved; the output for a given spec is byte-identical
// between the two. sc is only consulted for its name — every shard
// spec is self-contained and workers resolve the scenario themselves.
func (c *Coordinator) Run(ctx context.Context, sc scenario.Scenario, spec scenario.Spec, opts scenario.RunOptions) (scenario.Result, error) {
	// Mirror RunResolved: the invocation-level parallelism override
	// lands in the spec copy before shards derive from it. It only
	// shapes the shard's default inner budget — results are
	// parallelism-independent and workers override it anyway.
	if opts.Parallelism > 0 {
		spec.Parallelism = opts.Parallelism
	}
	shardSpecs := spec.Shards()

	// The store/journal prefill does disk I/O, so it runs before the
	// coordinator lock; a cheap closed pre-check keeps a shutting-down
	// coordinator from journaling jobs it will never run.
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return scenario.Result{}, ErrClosed
	}

	// Content-address every shard and consult the store: a shard whose
	// result already verifies on disk — published by a previous job, a
	// previous coordinator incarnation, or another tenant of the same
	// store — is born done instead of leased.
	var specHash string
	var hashes []string
	var prefilled []*scenario.Result
	nRecovered := 0
	if c.cfg.Store != nil || c.cfg.Journal != nil {
		specHash = spec.CanonicalHash()
		hashes = make([]string, len(shardSpecs))
		for i, ts := range shardSpecs {
			hashes[i] = ts.CanonicalHash()
		}
	}
	if c.cfg.Store != nil {
		prefilled = make([]*scenario.Result, len(shardSpecs))
		for i, h := range hashes {
			payload, ok := c.cfg.Store.Get(h)
			if !ok {
				continue
			}
			res, derr := decodeShardResultFor(h, payload)
			if derr != nil {
				// Verified bytes that don't decode as a result were
				// persisted by a buggy or future version: quarantine and
				// recompute, never assemble them.
				c.log.Warn("stored shard result undecodable, quarantined",
					"shard_hash", h, "error", derr.Error())
				c.cfg.Store.Quarantine(h)
				continue
			}
			prefilled[i] = &res
			nRecovered++
		}
	}
	if c.cfg.Journal != nil {
		done := make([]bool, len(shardSpecs))
		for i := range done {
			done[i] = prefilled != nil && prefilled[i] != nil
		}
		if jerr := c.cfg.Journal.Record(journal.Entry{
			SpecHash: specHash,
			Scenario: sc.Name(),
			Spec:     spec,
			Shards:   hashes,
			Done:     done,
		}); jerr != nil {
			// The journal is a resume hint, not a correctness dependency:
			// losing it costs recomputation after a crash, nothing else.
			c.log.Warn("dispatch journal write failed", "spec_hash", specHash, "error", jerr.Error())
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if c.cfg.Journal != nil {
			// The job was journaled but never enqueued; don't leave a
			// stray entry that a future restart would resurrect.
			_ = c.cfg.Journal.Remove(specHash)
		}
		return scenario.Result{}, ErrClosed
	}
	c.nextJob++
	j := &dJob{
		id:       fmt.Sprintf("d%06d", c.nextJob),
		scName:   sc.Name(),
		spec:     spec,
		specHash: specHash,
		results:  make([]scenario.Result, len(shardSpecs)),
		opts:     opts,
		total:    len(shardSpecs),
		done:     make(chan struct{}),
	}
	resumed := c.resumable[specHash]
	if resumed {
		delete(c.resumable, specHash)
	}
	now := time.Now()
	j.shards = make([]*shard, len(shardSpecs))
	for i, ts := range shardSpecs {
		sh := &shard{job: j, index: i, spec: ts, readyAt: now, heapIdx: -1}
		if hashes != nil {
			sh.hash = hashes[i]
		}
		j.shards[i] = sh
		if prefilled != nil && prefilled[i] != nil {
			sh.state = shardDone
			j.results[i] = *prefilled[i]
			j.finished++
			c.tel.recovered.Inc()
			continue
		}
		heap.Push(&c.pending, sh)
	}
	if resumed {
		c.tel.resumed.Inc()
	}
	if j.finished == j.total {
		// Every shard answered from the store: the job is born done.
		close(j.done)
	}
	c.jobs[j.id] = j
	c.mu.Unlock()
	c.log.Info("dispatch job enqueued",
		"dispatch_job", j.id, "scenario", j.scName, "shards", j.total,
		"recovered_shards", nRecovered, "resumed", resumed)
	if nRecovered > 0 && opts.OnProgress != nil {
		opts.OnProgress(nRecovered, len(shardSpecs))
	}

	select {
	case <-j.done:
	case <-ctx.Done():
		c.mu.Lock()
		c.failJobLocked(j, ctx.Err())
		c.mu.Unlock()
	}

	c.mu.Lock()
	err := j.err
	delete(c.jobs, j.id)
	c.mu.Unlock()
	if c.cfg.Journal != nil && !errors.Is(err, ErrClosed) {
		// Terminal for good — done, failed, or cancelled — so nothing
		// remains to resume. A coordinator-close failure is the one
		// exception: that is the restart case the journal exists for, so
		// its entry stays for the next incarnation.
		if jerr := c.cfg.Journal.Remove(j.specHash); jerr != nil {
			c.log.Warn("dispatch journal remove failed", "spec_hash", j.specHash, "error", jerr.Error())
		}
	}
	if err != nil {
		return scenario.Result{}, err
	}
	// All shards accepted; results are no longer written, safe to read.
	return scenario.Assemble(j.scName, spec, j.results)
}

// encodeShardResult/decodeShardResult are the store payload codec for
// shard results — scenario.ResultEnvelope, the same self-contained
// spec+result encoding the serving layer persists job-level results
// with, so a single-run spec's shard entry and its job entry are
// byte-identical under one address, and any process (a sibling
// coordinator, the /v1/results/{hash} endpoint) can render the entry
// without the original submission.
func encodeShardResult(spec scenario.Spec, res scenario.Result) ([]byte, error) {
	return scenario.EncodeResultEnvelope(spec, res)
}

func decodeShardResult(payload []byte) (scenario.Result, error) {
	env, err := scenario.DecodeResultEnvelope(payload)
	if err != nil {
		return scenario.Result{}, err
	}
	return env.Result, nil
}

// decodeShardResultFor additionally pins the envelope to its content
// address: the embedded spec must hash to the address the payload was
// stored under, so a blob misfiled (or maliciously republished) under
// the wrong hash can never be assembled into another spec's result.
func decodeShardResultFor(hash string, payload []byte) (scenario.Result, error) {
	env, err := scenario.DecodeResultEnvelope(payload)
	if err != nil {
		return scenario.Result{}, err
	}
	if got := env.Spec.CanonicalHash(); got != hash {
		return scenario.Result{}, fmt.Errorf("dispatch: envelope spec hashes to %s, stored under %s", got, hash)
	}
	return env.Result, nil
}

// LiveWorkers counts workers whose last poll is within the worker TTL
// — the signal midas-serve's -min-workers fallback reads.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	ttl := c.cfg.workerTTL()
	n := 0
	for id, seen := range c.workers {
		if now.Sub(seen) <= ttl {
			n++
		} else {
			delete(c.workers, id)
		}
	}
	return n
}

// grantLocked pops up to max ready shards and turns each into a lease
// for worker. Called with c.mu held.
func (c *Coordinator) grantLocked(worker string, max int, now time.Time) []*lease {
	if b := c.cfg.maxBatch(); max <= 0 || max > b {
		max = b
	}
	var out []*lease
	for len(out) < max && len(c.pending) > 0 {
		sh := c.pending[0]
		if sh.job.terminal() {
			// Lazily discard shards of failed/cancelled jobs.
			heap.Pop(&c.pending)
			continue
		}
		if sh.readyAt.After(now) {
			break // earliest shard still backing off; so is everything behind it
		}
		heap.Pop(&c.pending)
		sh.state = shardLeased
		sh.attempts++
		c.nextLease++
		l := &lease{
			id:       fmt.Sprintf("%s-%06d", c.nonce, c.nextLease),
			sh:       sh,
			worker:   worker,
			granted:  now,
			deadline: now.Add(c.cfg.leaseTTL()),
		}
		c.leases[l.id] = l
		out = append(out, l)
		c.tel.leased.Inc()
	}
	return out
}

// completeLocked applies one completion report to the lease table,
// returning the protocol status ("accepted", "requeued", "duplicate"
// or "stale") and, when a job just finished or progressed, the
// callbacks to invoke after the lock is released. direct marks a
// result that already reached the durable store via a worker's direct
// publish (and was verified there by the handler): the coordinator
// then skips its own redundant store publish — the shard payload never
// transits the dispatch HTTP body on that path. Called with c.mu held.
func (c *Coordinator) completeLocked(leaseID, worker string, res *scenario.Result, workerErr string, direct bool, now time.Time) (status string, after func()) {
	l, ok := c.leases[leaseID]
	if !ok {
		// The lease is gone: it expired and was requeued (the classic
		// slow-worker race), its shard already completed under a newer
		// lease, or it belongs to a previous coordinator incarnation.
		// All of these are expected protocol weather, not errors — the
		// work is deterministic, so discarding the report loses nothing.
		if why, ok := c.retired[leaseID]; ok && why == "done" {
			c.tel.completions.With("duplicate").Inc()
			return "duplicate", nil
		}
		c.tel.completions.With("stale").Inc()
		return "stale", nil
	}
	sh := l.sh
	c.retireLeaseLocked(l, "")
	if sh.job.terminal() || sh.state == shardDone {
		// A terminal job keeps no leases and a done shard retires its
		// lease, so a live lease should never point at either; classify
		// defensively rather than panic on a protocol bug.
		c.tel.completions.With("stale").Inc()
		return "stale", nil
	}
	if workerErr != "" || res == nil {
		if workerErr == "" {
			workerErr = "completion carried no result"
		}
		sh.lastErr = workerErr
		c.requeueLocked(sh, "failed", now)
		c.tel.completions.With("requeued").Inc()
		return "requeued", nil
	}

	sh.state = shardDone
	c.retired[leaseID] = "done"
	j := sh.job
	j.results[sh.index] = *res
	j.finished++
	latency := now.Sub(l.granted)
	c.tel.leaseLatency.Observe(latency.Seconds())
	c.tel.completions.With("accepted").Inc()

	finished := j.finished
	total := j.total
	jobDone := finished == total
	if jobDone {
		close(j.done)
	}
	opts := j.opts
	index := sh.index
	shardHash := sh.hash
	shardSpec := sh.spec
	specHash := j.specHash
	// The store publish, journal mark and progress callbacks all run
	// outside c.mu (the first two do fsync I/O, the callbacks take the
	// caller's locks — midas-serve's job table) but still serialized
	// and monotonic: completions are applied one at a time under c.mu
	// and the returned closure is invoked before the handler returns.
	after = func() {
		if c.cfg.Store != nil && shardHash != "" && !direct {
			// Idempotent by content address: a duplicate publish after a
			// requeue race rewrites the identical bytes. A direct publish
			// skips this — the worker already wrote the blob and the
			// handler verified it (read-through indexed it in passing).
			if payload, perr := encodeShardResult(shardSpec, *res); perr != nil {
				c.log.Warn("shard result encode failed", "shard_hash", shardHash, "error", perr.Error())
			} else if perr := c.cfg.Store.Put(shardHash, payload); perr != nil {
				c.log.Warn("shard result publish failed", "shard_hash", shardHash, "error", perr.Error())
			}
		}
		if c.cfg.Journal != nil && specHash != "" {
			if jerr := c.cfg.Journal.MarkDone(specHash, index); jerr != nil {
				c.log.Warn("dispatch journal mark failed", "spec_hash", specHash, "shard", index, "error", jerr.Error())
			}
		}
		if opts.OnProgress != nil {
			opts.OnProgress(finished, total)
		}
		if opts.OnRunDone != nil {
			opts.OnRunDone(runner.Progress{Index: index, Completed: finished, Total: total, Elapsed: latency})
		}
	}
	return "accepted", after
}

// retireLeaseLocked removes a lease from the live table and tombstones
// its id so a late duplicate completion can be classified. why "" means
// the caller will set a more specific tombstone itself.
func (c *Coordinator) retireLeaseLocked(l *lease, why string) {
	delete(c.leases, l.id)
	if why != "" {
		c.retired[l.id] = why
	} else if _, ok := c.retired[l.id]; !ok {
		c.retired[l.id] = "retired"
	}
	c.retiredQ = append(c.retiredQ, l.id)
	for len(c.retiredQ) > retiredKeep {
		delete(c.retired, c.retiredQ[0])
		c.retiredQ = c.retiredQ[1:]
	}
}

// requeueLocked returns a shard to the pending queue with exponential
// backoff, or fails its job once the attempt budget is spent. reason is
// the requeue-metric label: "expired" (lease deadline passed) or
// "failed" (worker reported an error). Called with c.mu held.
func (c *Coordinator) requeueLocked(sh *shard, reason string, now time.Time) {
	c.tel.requeues.With(reason).Inc()
	j := sh.job
	if sh.attempts >= c.cfg.maxAttempts() {
		err := fmt.Errorf("dispatch: shard %d of %s failed %d times (budget %d), last: %s",
			sh.index, j.id, sh.attempts, c.cfg.maxAttempts(), lastErrOr(sh, reason))
		c.failJobLocked(j, err)
		return
	}
	// Exponential: base after the first failure, doubling per attempt,
	// capped — the rate-limited-requeue discipline of controller work
	// queues, so one bad shard cannot hot-loop the fleet.
	backoff := c.cfg.backoffBase() << (sh.attempts - 1)
	if max := c.cfg.backoffMax(); backoff > max || backoff <= 0 {
		backoff = max
	}
	sh.state = shardPending
	sh.readyAt = now.Add(backoff)
	heap.Push(&c.pending, sh)
	c.log.Info("dispatch shard requeued",
		"dispatch_job", j.id, "shard", sh.index, "reason", reason,
		"attempt", sh.attempts, "backoff", backoff.String())
}

func lastErrOr(sh *shard, reason string) string {
	if sh.lastErr != "" {
		return sh.lastErr
	}
	return "lease " + reason
}

// failJobLocked terminates a job: records the error, wakes Run, and
// retires the job's outstanding leases (their late completions become
// stale). Pending shards are discarded lazily by grantLocked. No-op on
// an already-terminal job. Called with c.mu held.
func (c *Coordinator) failJobLocked(j *dJob, err error) {
	if j.terminal() {
		return
	}
	j.err = err
	close(j.done)
	for id, l := range c.leases {
		if l.sh.job == j {
			_ = id
			c.retireLeaseLocked(l, "cancelled")
		}
	}
	c.log.Warn("dispatch job failed", "dispatch_job", j.id, "scenario", j.scName, "error", err.Error())
}

// sweeper periodically requeues leases whose deadline has passed — the
// only way a dead worker's shards get back into circulation.
func (c *Coordinator) sweeper() {
	defer c.stopped.Done()
	tick := time.NewTicker(c.cfg.sweepInterval())
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.expire(now)
		}
	}
}

// expire requeues every lease whose deadline has passed, then checks
// the durable store for each requeued shard: a worker that direct-
// published its result and died before the completion POST (kill -9 in
// the acknowledgement window) left the result safely in the store —
// recover it instead of re-executing the shard.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	var orphaned []*shard
	for _, l := range c.leases {
		if now.After(l.deadline) {
			c.retireLeaseLocked(l, "expired")
			if !l.sh.job.terminal() && l.sh.state == shardLeased {
				c.log.Warn("dispatch lease expired",
					"lease", l.id, "worker", l.worker,
					"dispatch_job", l.sh.job.id, "shard", l.sh.index)
				c.requeueLocked(l.sh, "expired", now)
				if c.cfg.Store != nil && l.sh.hash != "" && l.sh.state == shardPending {
					orphaned = append(orphaned, l.sh)
				}
			}
		}
	}
	c.mu.Unlock()
	for _, sh := range orphaned {
		c.recoverFromStore(sh)
	}
}

// recoverFromStore completes a requeued shard from the durable store
// if its result landed there — the orphaned-direct-publish case. The
// store read (disk or shared-mount I/O) happens outside c.mu; the
// shard may be leased again or its job may turn terminal in that
// window, in which case the recovery quietly stands down (the work is
// deterministic; whoever wins writes the same result).
func (c *Coordinator) recoverFromStore(sh *shard) {
	payload, ok := c.cfg.Store.Get(sh.hash)
	if !ok {
		return
	}
	res, derr := decodeShardResultFor(sh.hash, payload)
	if derr != nil {
		c.log.Warn("stored shard result undecodable, quarantined",
			"shard_hash", sh.hash, "error", derr.Error())
		c.cfg.Store.Quarantine(sh.hash)
		return
	}

	c.mu.Lock()
	j := sh.job
	if j.terminal() || sh.state != shardPending {
		c.mu.Unlock()
		return
	}
	if sh.heapIdx >= 0 {
		heap.Remove(&c.pending, sh.heapIdx)
	}
	sh.state = shardDone
	j.results[sh.index] = res
	j.finished++
	c.tel.recovered.Inc()
	finished, total, index := j.finished, j.total, sh.index
	opts := j.opts
	specHash := j.specHash
	if finished == total {
		close(j.done)
	}
	c.mu.Unlock()

	c.log.Info("dispatch shard recovered from store after lease expiry",
		"dispatch_job", j.id, "shard", index, "shard_hash", sh.hash)
	if c.cfg.Journal != nil && specHash != "" {
		if jerr := c.cfg.Journal.MarkDone(specHash, index); jerr != nil {
			c.log.Warn("dispatch journal mark failed", "spec_hash", specHash, "shard", index, "error", jerr.Error())
		}
	}
	if opts.OnProgress != nil {
		opts.OnProgress(finished, total)
	}
}

// Status is the coordinator's debug/e2e snapshot (GET
// /v1/dispatch/status).
type Status struct {
	Jobs          int `json:"jobs"`
	PendingShards int `json:"pending_shards"`
	LeasedShards  int `json:"leased_shards"`
	LiveWorkers   int `json:"live_workers"`
}

// StatusSnapshot snapshots the queue for the status endpoint.
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	pending := 0
	for _, sh := range c.pending {
		if !sh.job.terminal() {
			pending++
		}
	}
	return Status{
		Jobs:          len(c.jobs),
		PendingShards: pending,
		LeasedShards:  len(c.leases),
		LiveWorkers:   c.liveWorkersLocked(time.Now()),
	}
}
