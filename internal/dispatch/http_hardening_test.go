package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// TestBodyCapReturns413: dispatch POST bodies over 1MiB are rejected
// with 413 on both endpoints, and regular-size requests still land.
func TestBodyCapReturns413(t *testing.T) {
	_, srv := startCoordinator(t, Config{})
	huge := []byte(`{"worker":"` + strings.Repeat("a", 2<<20) + `"}`)
	for _, path := range []string{"/v1/shards/lease", "/v1/shards/xyz/complete"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body -> %d, want 413", path, resp.StatusCode)
		}
	}
	var lr LeaseResponse
	leaseOne(t, srv.URL, "w", 1, &lr) // normal body still decodes
}

// TestLeaseGrantExpiryRace provokes the handleLease/sweeper race under
// -race: tiny TTLs keep the sweeper expiring and re-granting leases
// while concurrent lease handlers serialize their wire snapshots. The
// old code read sh.attempts after dropping c.mu; this test fails under
// -race against that version.
func TestLeaseGrantExpiryRace(t *testing.T) {
	sc, spec := testSpec(t)
	c, srv := startCoordinator(t, Config{
		LeaseTTL:      2 * time.Millisecond,
		SweepInterval: time.Millisecond,
		BackoffBase:   time.Nanosecond,
		BackoffMax:    2 * time.Millisecond,
		MaxAttempts:   1 << 30,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := dispatchAsync(ctx, c, sc, spec)

	stop := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				// postJSON directly: errors are expected weather here and
				// t.Fatalf is not goroutine-safe.
				var lr LeaseResponse
				_ = postJSON(context.Background(), http.DefaultClient,
					srv.URL+"/v1/shards/lease",
					LeaseRequest{Worker: fmt.Sprintf("g%d", g), Max: 4}, &lr)
			}
		}(g)
	}
	wg.Wait()
	cancel()
	if out := <-done; out.err == nil {
		t.Fatal("abandoned job completed without any accepted shard")
	}
}

// TestWorkerShutdownAbandonsBatch: a worker whose context fires
// mid-batch publishes the shard already in flight (exactly one
// accepted completion) and abandons the rest instead of computing a
// whole batch nobody is waiting for.
func TestWorkerShutdownAbandonsBatch(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	c, srv := startCoordinator(t, Config{Telemetry: reg})
	jctx, jcancel := context.WithCancel(context.Background())
	done := dispatchAsync(jctx, c, sc, spec)
	t.Cleanup(func() { jcancel(); <-done })

	// Let the job enqueue fully so the first poll grants the whole
	// 4-shard batch.
	for deadline := time.Now().Add(2 * time.Second); c.StatusSnapshot().PendingShards != spec.ExpandedRuns(); {
		if time.Now().After(deadline) {
			t.Fatal("job never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int64
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "quitter", Poll: time.Millisecond, MaxBatch: 4,
			Run: func(_ context.Context, s scenario.Spec) (scenario.Result, error) {
				if runs.Add(1) == 1 {
					cancel() // shutdown arrives with the first shard in flight
				}
				s.Parallelism = 1
				return runShard(context.Background(), s)
			},
		})
	}()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after ctx cancel")
	}

	if n := runs.Load(); n != 1 {
		t.Errorf("worker executed %d shards after shutdown fired, want 1", n)
	}
	if n := counterValue(t, reg, "midas_shards_completed_total", `status="accepted"`); n != 1 {
		t.Errorf("accepted completions = %v, want 1 (in-flight shard still published)", n)
	}
}

// TestCompletePublishDeadlineBoundsShutdown: the final publish runs
// detached from the worker context (an in-flight result must still be
// reported) but under its own deadline, so a hung coordinator cannot
// stretch shutdown to the HTTP client's 30s timeout.
func TestCompletePublishDeadlineBoundsShutdown(t *testing.T) {
	oldTimeout := completePublishTimeout
	completePublishTimeout = 50 * time.Millisecond
	t.Cleanup(func() { completePublishTimeout = oldTimeout })

	var granted atomic.Bool
	unhang := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/lease", func(w http.ResponseWriter, r *http.Request) {
		if granted.CompareAndSwap(false, true) {
			writeJSON(w, http.StatusOK, LeaseResponse{Leases: []ShardLease{
				{ID: "L1", Job: "d1", Shard: 0, Deadline: time.Now().Add(time.Hour)},
			}})
			return
		}
		writeJSON(w, http.StatusOK, LeaseResponse{})
	})
	mux.HandleFunc("POST /v1/shards/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		<-unhang // the hang: never answer while the worker is shutting down
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { close(unhang) }) // LIFO: release handlers before srv.Close waits on them

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelAt time.Time
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "w", Poll: time.Millisecond,
			Run: func(_ context.Context, _ scenario.Spec) (scenario.Result, error) {
				cancelAt = time.Now()
				cancel()
				return scenario.Result{}, nil
			},
		})
	}()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung on the unanswerable publish")
	}
	// 3 publish attempts x 50ms deadline + 300ms of retry backoff,
	// with slack: far under the 30s an undeadlined publish would take.
	if elapsed := time.Since(cancelAt); elapsed > 3*time.Second {
		t.Errorf("shutdown took %v after ctx cancel, want bounded by the publish deadline", elapsed)
	}
}
