package dispatch

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/store"
)

// WorkerConfig configures one RunWorker loop.
type WorkerConfig struct {
	// Coordinator is the base URL of the coordinator's dispatch
	// listener (e.g. http://127.0.0.1:9091). Required.
	Coordinator string
	// ID names this worker in leases, logs and the live-worker gauge.
	// Required (the cluster scripts use host-pid style names).
	ID string
	// Parallelism overrides each shard's inner budget with this
	// worker's own core allowance; <= 0 keeps what the lease carried.
	// Results never depend on it.
	Parallelism int
	// MaxBatch is how many shards to request per poll; <= 0 lets the
	// coordinator pick (its MaxBatch cap applies either way).
	MaxBatch int
	// MaxShards, when > 0, exits the loop after completing that many
	// shards — the cluster-e2e script uses it to stage a worker that
	// does a fixed amount of work and stops.
	MaxShards int
	// Poll is the idle re-poll interval when a lease request returns no
	// work; <= 0 selects 200ms.
	Poll time.Duration
	// Client issues the HTTP calls; nil uses a client with a 30s
	// timeout.
	Client *http.Client
	// Log receives per-shard lifecycle lines; nil discards them.
	Log *slog.Logger
	// Run executes one shard spec — the seam the crash/failure tests
	// inject into. Nil selects the real engine path: resolve the
	// scenario by spec.Scenario and run it with the spec's derived
	// seed, exactly like one task inside scenario.RunResolved.
	Run func(ctx context.Context, spec scenario.Spec) (scenario.Result, error)
	// Store, when non-nil, makes this worker a first-class store
	// citizen: each completed shard's result envelope is published to
	// the store under the lease's Hash, and the completion POST carries
	// a hash-plus-digest acknowledgement instead of the result bytes.
	// The store must be the same one the coordinator reads (a shared
	// mount — see store.OpenSharedDir). A publish failure, or a
	// coordinator "resend" verdict, falls back to the inline path.
	Store *store.Store
	// HoldAfterPublish, when non-nil, runs between a successful store
	// publish and the completion POST — the acknowledgement window. The
	// crash tests (and cluster-e2e's kill -9 phase) park the worker
	// here to prove the coordinator recovers the published result from
	// the store with zero re-execution.
	HoldAfterPublish func()
}

func (cfg WorkerConfig) poll() time.Duration {
	if cfg.Poll > 0 {
		return cfg.Poll
	}
	return 200 * time.Millisecond
}

// runShard is the default WorkerConfig.Run: the same sc.Run call
// RunResolved's pool makes for this task, which is what keeps a
// distributed run byte-identical to a local one.
func runShard(_ context.Context, spec scenario.Spec) (scenario.Result, error) {
	sc, err := scenario.Find(spec.Scenario)
	if err != nil {
		return scenario.Result{}, err
	}
	return sc.Run(spec, rng.New(spec.Seed))
}

// RunWorker polls the coordinator for shard leases, executes each
// shard, and reports completions until ctx is cancelled or MaxShards
// is reached. A shard in flight when ctx fires is finished and
// reported anyway (the final publish uses its own context): orderly
// shutdown wastes no lease TTL. Returns nil on clean exit; transport
// errors are retried with backoff, never fatal — a worker outliving a
// coordinator restart just keeps polling until the new incarnation
// answers.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return errors.New("dispatch: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		return errors.New("dispatch: worker needs an id")
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	run := cfg.Run
	if run == nil {
		run = runShard
	}

	completed := 0
	protoLogged := false
	// Transport-failure backoff, reset by any successful exchange.
	const idleBackoffMax = 5 * time.Second
	backoff := cfg.poll()
	for {
		if ctx.Err() != nil {
			return nil
		}
		var resp LeaseResponse
		err := postJSON(ctx, client, cfg.Coordinator+"/v1/shards/lease",
			LeaseRequest{Proto: ProtoVersion, Worker: cfg.ID, Max: cfg.MaxBatch}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			log.Warn("worker lease poll failed", "worker", cfg.ID, "error", err.Error())
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			if backoff *= 2; backoff > idleBackoffMax {
				backoff = idleBackoffMax
			}
			continue
		}
		if !protoLogged {
			// Negotiated = min(ours, theirs); a proto-0 response is a
			// pre-versioning coordinator (field absent).
			negotiated := resp.Proto
			if negotiated > ProtoVersion {
				negotiated = ProtoVersion
			}
			log.Info("worker negotiated dispatch protocol",
				"worker", cfg.ID, "proto", negotiated,
				"coordinator_proto", resp.Proto, "direct_publish", cfg.Store != nil)
			protoLogged = true
		}
		backoff = cfg.poll()
		if len(resp.Leases) == 0 {
			if !sleepCtx(ctx, cfg.poll()) {
				return nil
			}
			continue
		}
		for li, l := range resp.Leases {
			if ctx.Err() != nil {
				// Shutdown mid-batch: abandon the remaining leases — their
				// TTLs expire and the shards requeue to live workers —
				// instead of computing a whole batch nobody is waiting for.
				log.Info("worker abandoning remaining leases on shutdown",
					"worker", cfg.ID, "abandoned", len(resp.Leases)-li)
				return nil
			}
			spec := l.Spec
			if cfg.Parallelism > 0 {
				spec.Parallelism = cfg.Parallelism
			}
			log.Info("worker running shard",
				"worker", cfg.ID, "lease", l.ID, "dispatch_job", l.Job,
				"shard", l.Shard, "attempt", l.Attempt, "scenario", spec.Scenario)
			start := time.Now()
			res, runErr := run(ctx, spec)
			// Publish detached from ctx: an in-flight result at shutdown is
			// worth the one extra round-trip, and completion is idempotent
			// if the lease already moved on. The detached context carries
			// its own short deadline so shutdown latency stays bounded even
			// against a hung coordinator.
			status, pubErr := reportShard(client, cfg, log, l, res, runErr)
			if pubErr != nil {
				log.Warn("worker completion failed",
					"worker", cfg.ID, "lease", l.ID, "error", pubErr.Error())
			} else {
				log.Info("worker shard complete",
					"worker", cfg.ID, "lease", l.ID, "dispatch_job", l.Job,
					"shard", l.Shard, "status", status,
					"elapsed", time.Since(start).String())
			}
			if runErr == nil && pubErr == nil {
				completed++
				if cfg.MaxShards > 0 && completed >= cfg.MaxShards {
					log.Info("worker reached shard budget", "worker", cfg.ID, "shards", completed)
					return nil
				}
			}
		}
	}
}

// reportShard reports one lease's outcome, choosing the wire shape:
//
//   - Failure, or no store, or a lease with no Hash: the classic
//     inline CompleteRequest (result or error in the body).
//   - Store + lease Hash: direct publish. The worker encodes the
//     result envelope FROM THE LEASE'S ORIGINAL SPEC (the canonical
//     bytes every publisher of this address produces), writes it to
//     the store under the lease Hash, then completes with the hash
//     and the payload's sha256 digest — the result bytes never
//     transit the dispatch HTTP body. A store failure falls back to
//     inline; a coordinator "resend" verdict (it could not verify the
//     blob on its side of the mount) re-POSTs inline once.
func reportShard(client *http.Client, cfg WorkerConfig, log *slog.Logger, l ShardLease, res scenario.Result, runErr error) (string, error) {
	inline := func() (string, error) {
		req := CompleteRequest{Proto: ProtoVersion, Worker: cfg.ID}
		if runErr != nil {
			req.Error = runErr.Error()
		} else {
			req.Result = &res
		}
		return completeWithRetry(client, cfg.Coordinator, l.ID, req)
	}
	if runErr != nil || cfg.Store == nil || l.Hash == "" {
		return inline()
	}
	payload, err := scenario.EncodeResultEnvelope(l.Spec, res)
	if err != nil {
		log.Warn("worker envelope encode failed, sending inline",
			"worker", cfg.ID, "lease", l.ID, "error", err.Error())
		return inline()
	}
	if err := cfg.Store.Put(l.Hash, payload); err != nil {
		log.Warn("worker direct publish failed, sending inline",
			"worker", cfg.ID, "lease", l.ID, "shard_hash", l.Hash, "error", err.Error())
		return inline()
	}
	log.Info("worker direct-published shard result",
		"worker", cfg.ID, "lease", l.ID, "shard_hash", l.Hash, "bytes", len(payload))
	if cfg.HoldAfterPublish != nil {
		cfg.HoldAfterPublish()
	}
	sum := sha256.Sum256(payload)
	status, err := completeWithRetry(client, cfg.Coordinator, l.ID, CompleteRequest{
		Proto:      ProtoVersion,
		Worker:     cfg.ID,
		StoredHash: l.Hash,
		Digest:     hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return status, err
	}
	if status == "resend" {
		log.Warn("coordinator could not verify direct publish, resending inline",
			"worker", cfg.ID, "lease", l.ID, "shard_hash", l.Hash)
		return inline()
	}
	return status, nil
}

// completePublishTimeout bounds each attempt of the final completion
// publish. The publish deliberately ignores the worker's run context
// (an in-flight result at shutdown must still be reported), so this
// deadline is the only thing standing between a hung coordinator and
// an unbounded shutdown. A var so the shutdown-latency test can
// tighten it.
var completePublishTimeout = 5 * time.Second

// completeWithRetry publishes one completion with a short retry on
// transport failure, each attempt under its own detached
// completePublishTimeout deadline. Safe to repeat: a re-delivered
// completion lands as "duplicate" or "stale" and is discarded.
func completeWithRetry(client *http.Client, base, leaseID string, req CompleteRequest) (string, error) {
	var resp CompleteResponse
	var err error
	for attempt, wait := 0, 100*time.Millisecond; attempt < 3; attempt, wait = attempt+1, wait*2 {
		if attempt > 0 {
			time.Sleep(wait)
		}
		pctx, cancel := context.WithTimeout(context.Background(), completePublishTimeout)
		err = postJSON(pctx, client, base+"/v1/shards/"+leaseID+"/complete", req, &resp)
		cancel()
		if err == nil {
			return resp.Status, nil
		}
	}
	return "", err
}

// postJSON is the worker's one HTTP verb: POST a JSON body, decode a
// JSON reply, surface non-2xx as an error with the server's message.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// Parse the unified error envelope rather than sniffing status
		// text; a plain-text body from a pre-envelope coordinator still
		// surfaces via api.Parse's fallback.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %w", url, resp.Status, api.Parse(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
