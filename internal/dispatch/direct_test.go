package dispatch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Worker direct-publish: a worker sharing the coordinator's store
// writes each shard result straight into it and completes with a
// hash-plus-digest acknowledgement; the coordinator verifies the blob
// against the store before accepting. These tests run the whole flow
// over the real HTTP protocol (several under -race via make
// test-race), plus every unverifiable-acknowledgement path and the
// lease-expiry store recovery that makes a kill -9 in the
// acknowledgement window lossless.

// openSharedStore opens an independent Store over the shared-dir
// backend at dir — one per simulated process (coordinator or worker).
func openSharedStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	be, err := store.OpenSharedDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Config{Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestLeaseCarriesHash: a store-backed coordinator advertises each
// shard's content address on the lease — the store key a
// direct-publishing worker must write under.
func TestLeaseCarriesHash(t *testing.T) {
	sc, spec := testSpec(t)
	st := openSharedStore(t, t.TempDir())
	c, srv := startCoordinator(t, Config{Store: st})
	ctx, cancel := context.WithCancel(context.Background())
	done := dispatchAsync(ctx, c, sc, spec)
	var lr LeaseResponse
	waitLease(t, srv.URL, "inspector", &lr)
	l := lr.Leases[0]
	if l.Hash == "" {
		t.Fatal("store-backed coordinator granted a lease with no hash")
	}
	if got := l.Spec.CanonicalHash(); got != l.Hash {
		t.Errorf("lease hash %s is not the shard spec's canonical hash %s", l.Hash, got)
	}
	if lr.Proto != ProtoVersion {
		t.Errorf("lease response proto = %d, want %d", lr.Proto, ProtoVersion)
	}
	cancel()
	<-done
}

// TestDirectPublishVerified is the happy path end to end: workers with
// their own Store handles over the coordinator's shared directory
// publish every shard directly, every acknowledgement verifies, the
// result is byte-identical to a single-process run, and no shard was
// ever resent inline.
func TestDirectPublishVerified(t *testing.T) {
	sc, spec := testSpec(t)
	want, err := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	cst := openSharedStore(t, dir)
	c, srv := startCoordinator(t, Config{Store: cst, Telemetry: reg})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wst := openSharedStore(t, dir) // each worker "process" opens its own handle
		wg.Add(1)
		go func(w int, wst *store.Store) {
			defer wg.Done()
			_ = RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("direct%d", w),
				Parallelism: 1 + w,
				Poll:        5 * time.Millisecond,
				Store:       wst,
			})
		}(w, wst)
	}
	defer wg.Wait()
	defer cancel()

	got, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)

	shards := spec.ExpandedRuns()
	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="verified"`); n != float64(shards) {
		t.Errorf("verified direct publishes = %v, want %d", n, shards)
	}
	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="resend"`); n != 0 {
		t.Errorf("resend verdicts = %v, want 0", n)
	}
	if n := counterValue(t, reg, "midas_shards_completed_total", `status="accepted"`); n != float64(shards) {
		t.Errorf("accepted completions = %v, want %d", n, shards)
	}
}

// TestDirectPublishDisjointStoreFallsBackInline: a worker whose store
// the coordinator cannot see (a misconfigured mount: two different
// directories) gets "resend" for every acknowledgement and falls back
// to inline — the job still completes with correct bytes, just one
// extra round trip per shard.
func TestDirectPublishDisjointStoreFallsBackInline(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	cst := openSharedStore(t, t.TempDir())
	wst := openSharedStore(t, t.TempDir()) // NOT the coordinator's directory
	c, srv := startCoordinator(t, Config{Store: cst, Telemetry: reg})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "stray", Poll: 2 * time.Millisecond,
			Parallelism: 1, Store: wst,
		})
	}()

	got, err := c.Run(context.Background(), sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, got)

	shards := float64(spec.ExpandedRuns())
	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="resend"`); n != shards {
		t.Errorf("resend verdicts = %v, want %v", n, shards)
	}
	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="verified"`); n != 0 {
		t.Errorf("verified direct publishes = %v, want 0", n)
	}
	if n := counterValue(t, reg, "midas_shards_completed_total", `status="accepted"`); n != shards {
		t.Errorf("accepted completions = %v, want %v", n, shards)
	}
}

// TestDirectPublishUnverifiableAsksResend walks every way an
// acknowledgement can fail verification — wrong hash, missing blob,
// undecodable blob (quarantined), digest mismatch — and confirms each
// gets "resend" with the lease still live, then that a good
// acknowledgement on the same lease is accepted.
func TestDirectPublishUnverifiableAsksResend(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	st := openSharedStore(t, t.TempDir())
	c, srv := startCoordinator(t, Config{Store: st, Telemetry: reg})
	done := dispatchAsync(context.Background(), c, sc, spec)

	var lr LeaseResponse
	waitLease(t, srv.URL, "fumbler", &lr)
	l := lr.Leases[0]
	res, err := runShardForTest(t, l.Spec)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := scenario.EncodeResultEnvelope(l.Spec, res)
	if err != nil {
		t.Fatal(err)
	}
	digest := func(p []byte) string {
		sum := sha256.Sum256(p)
		return hex.EncodeToString(sum[:])
	}
	ack := func(storedHash, dig string) string {
		t.Helper()
		var cr CompleteResponse
		postForTest(t, srv.URL+"/v1/shards/"+l.ID+"/complete",
			CompleteRequest{Proto: ProtoVersion, Worker: "fumbler", StoredHash: storedHash, Digest: dig}, &cr)
		return cr.Status
	}

	// 1. Acknowledged hash is not the lease's address.
	other := strings.Repeat("ab", 32)
	if s := ack(other, digest(payload)); s != "resend" {
		t.Fatalf("foreign-hash ack status = %q, want resend", s)
	}
	// 2. Right hash, but nothing was ever stored there.
	if s := ack(l.Hash, digest(payload)); s != "resend" {
		t.Fatalf("missing-blob ack status = %q, want resend", s)
	}
	// 3. The stored blob does not decode as a result envelope: resend,
	// and the poisoned entry is quarantined out of the store.
	garbage := []byte("not a result envelope\n")
	if err := st.Put(l.Hash, garbage); err != nil {
		t.Fatal(err)
	}
	if s := ack(l.Hash, digest(garbage)); s != "resend" {
		t.Fatalf("undecodable-blob ack status = %q, want resend", s)
	}
	if _, found := st.Get(l.Hash); found {
		t.Fatal("undecodable blob survived verification un-quarantined")
	}
	// 4. Good blob, but the worker's digest does not match it.
	if err := st.Put(l.Hash, payload); err != nil {
		t.Fatal(err)
	}
	if s := ack(l.Hash, digest(garbage)); s != "resend" {
		t.Fatalf("digest-mismatch ack status = %q, want resend", s)
	}
	// 5. The lease survived all four rebuffs: a good acknowledgement on
	// the very same lease id is verified and accepted.
	if s := ack(l.Hash, digest(payload)); s != "accepted" {
		t.Fatalf("good ack status = %q, want accepted", s)
	}

	// An honest inline fleet finishes the remaining shards.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "honest", Poll: 2 * time.Millisecond, Parallelism: 1,
		})
	}()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)

	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="resend"`); n != 4 {
		t.Errorf("resend verdicts = %v, want 4", n)
	}
	if n := counterValue(t, reg, "midas_shards_direct_total", `outcome="verified"`); n != 1 {
		t.Errorf("verified direct publishes = %v, want 1", n)
	}
}

// TestExpiredLeaseRecoveredFromStore is the acknowledgement-window
// crash: a worker publishes every shard result to the shared store and
// then dies before any completion POST (kill -9 between publish and
// acknowledgement). The leases expire — and instead of re-running, the
// coordinator finds each published result in the store and finishes
// the job with zero re-execution and zero accepted completions.
func TestExpiredLeaseRecoveredFromStore(t *testing.T) {
	sc, spec := testSpec(t)
	reg := telemetry.NewRegistry()
	st := openSharedStore(t, t.TempDir())
	c, srv := startCoordinator(t, Config{
		Store:       st,
		Telemetry:   reg,
		LeaseTTL:    30 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	done := dispatchAsync(context.Background(), c, sc, spec)

	// The doomed worker: lease every shard, publish every result to the
	// store, and vanish without a single completion POST.
	shards := spec.ExpandedRuns()
	leased := make(map[string]ShardLease)
	deadline := time.Now().Add(2 * time.Second)
	for len(leased) < shards {
		if time.Now().After(deadline) {
			t.Fatalf("leased %d of %d shards within deadline", len(leased), shards)
		}
		var lr LeaseResponse
		leaseOne(t, srv.URL, "doomed", shards, &lr)
		for _, l := range lr.Leases {
			leased[l.ID] = l
		}
	}
	for _, l := range leased {
		res, err := runShardForTest(t, l.Spec)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := scenario.EncodeResultEnvelope(l.Spec, res)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(l.Hash, payload); err != nil {
			t.Fatal(err)
		}
	}
	// ... kill -9: no completion ever arrives. The job must still
	// finish, answered entirely from the store at lease expiry.
	out := <-done
	if out.err != nil {
		t.Fatalf("job failed despite every result being in the store: %v", out.err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)

	if n := counterValue(t, reg, "midas_shards_recovered_total", ""); n != float64(shards) {
		t.Errorf("store recoveries = %v, want %d", n, shards)
	}
	if n := counterValue(t, reg, "midas_shards_completed_total", `status="accepted"`); n != 0 {
		t.Errorf("accepted completions = %v, want 0 (nothing was ever POSTed)", n)
	}
	if n := counterValue(t, reg, "midas_shard_requeues_total", `reason="expired"`); n != float64(shards) {
		t.Errorf("expired requeues = %v, want %d", n, shards)
	}
}

// TestWorkerHoldAfterPublishWindow: the HoldAfterPublish hook runs
// after the store publish and before the completion POST — the window
// cluster-e2e's kill -9 phase widens. A worker parked there has
// already made its result durable.
func TestWorkerHoldAfterPublishWindow(t *testing.T) {
	sc, spec := testSpec(t)
	dir := t.TempDir()
	cst := openSharedStore(t, dir)
	c, srv := startCoordinator(t, Config{Store: cst, LeaseTTL: 10 * time.Second})
	done := dispatchAsync(context.Background(), c, sc, spec)

	wst := openSharedStore(t, dir)
	held := make(chan struct{}, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "holder", Poll: 2 * time.Millisecond,
			Parallelism: 1, Store: wst,
			HoldAfterPublish: func() { held <- struct{}{} },
		})
	}()

	// At the moment the hook fires, the blob must already be readable
	// from an independent handle on the shared directory (here: the
	// coordinator's own store) — that is what makes a kill -9 inside
	// the hold recoverable.
	select {
	case <-held:
	case <-time.After(5 * time.Second):
		t.Fatal("HoldAfterPublish never fired")
	}
	probe := openSharedStore(t, dir)
	if probe.Stats().Entries == 0 {
		t.Error("no blob visible in the shared store during the acknowledgement window")
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	want, _ := scenario.RunResolved(context.Background(), sc, spec, scenario.RunOptions{})
	assertSameResult(t, want, out.res)
}

// TestProtoUnsupportedRejected: both dispatch endpoints reject a
// request claiming a protocol newer than the coordinator speaks, with
// the unified error envelope and code "proto_unsupported"; version 0
// (the field omitted — a pre-versioning worker) is still served.
func TestProtoUnsupportedRejected(t *testing.T) {
	_, srv := startCoordinator(t, Config{})
	futures := []struct {
		url  string
		body string
	}{
		{srv.URL + "/v1/shards/lease", `{"proto": 99, "worker": "timetraveler"}`},
		{srv.URL + "/v1/shards/nosuch/complete", `{"proto": 99, "worker": "timetraveler", "error": "x"}`},
	}
	for _, f := range futures {
		resp, err := http.Post(f.url, "application/json", strings.NewReader(f.body))
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		if derr := json.NewDecoder(resp.Body).Decode(&e); derr != nil {
			t.Fatalf("POST %s: non-envelope error body: %v", f.url, derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with proto 99: status %d, want 400", f.url, resp.StatusCode)
		}
		if e.Code != "proto_unsupported" {
			t.Errorf("POST %s with proto 99: code %q, want proto_unsupported", f.url, e.Code)
		}
	}

	// Version 0: no proto field at all still gets a lease response.
	resp, err := http.Post(srv.URL+"/v1/shards/lease", "application/json",
		strings.NewReader(`{"worker": "elder"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proto-0 lease request: status %d, want 200", resp.StatusCode)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.Proto != ProtoVersion {
		t.Errorf("proto-0 response advertises proto %d, want %d", lr.Proto, ProtoVersion)
	}
}
