package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// testEntry builds a valid entry around a real resolved spec, so the
// round trip exercises the same JSON the coordinator journals.
func testEntry(t *testing.T, seed int64) Entry {
	t.Helper()
	sc, err := scenario.Find("fig12-spatial-reuse")
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	spec, err := scenario.Resolve(sc, scenario.Spec{
		Scenario:   "fig12-spatial-reuse",
		Topologies: 2,
		Seed:       seed,
		Replicates: 2,
		Sweep:      map[string][]float64{"seed": {float64(seed + 1), float64(seed + 2)}},
	})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	shards := spec.ShardHashes()
	return Entry{
		SpecHash: spec.CanonicalHash(),
		Scenario: spec.Scenario,
		Spec:     spec,
		Shards:   shards,
		Done:     make([]bool, len(shards)),
	}
}

func TestRecordSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d entries", j.Len())
	}
	a := testEntry(t, 100)
	b := testEntry(t, 200)
	for _, e := range []Entry{a, b} {
		if err := j.Record(e); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}

	j2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := j2.Entries()
	if len(got) != 2 {
		t.Fatalf("reopened journal has %d entries, want 2", len(got))
	}
	want := map[string]Entry{a.SpecHash: a, b.SpecHash: b}
	for _, e := range got {
		w, ok := want[e.SpecHash]
		if !ok {
			t.Fatalf("unexpected entry %s", e.SpecHash)
		}
		if e.Scenario != w.Scenario || len(e.Shards) != len(w.Shards) || len(e.Done) != len(w.Done) {
			t.Fatalf("entry %s round-tripped as %+v, want %+v", e.SpecHash, e, w)
		}
		for i := range e.Shards {
			if e.Shards[i] != w.Shards[i] {
				t.Fatalf("entry %s shard %d hash %s, want %s", e.SpecHash, i, e.Shards[i], w.Shards[i])
			}
		}
		if e.Spec.CanonicalHash() != e.SpecHash {
			t.Fatalf("round-tripped spec hashes to %s, not %s", e.Spec.CanonicalHash(), e.SpecHash)
		}
	}
}

func TestMarkDonePersists(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := testEntry(t, 300)
	if err := j.Record(e); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := j.MarkDone(e.SpecHash, 1); err != nil {
		t.Fatalf("MarkDone: %v", err)
	}
	if err := j.MarkDone(e.SpecHash, 1); err != nil {
		t.Fatalf("MarkDone again: %v", err)
	}
	// A late publish against a job that already finished and was removed
	// must be a silent no-op, not an error.
	if err := j.MarkDone(strings.Repeat("ab", 32), 0); err != nil {
		t.Fatalf("MarkDone on absent entry: %v", err)
	}
	if err := j.MarkDone(e.SpecHash, len(e.Shards)); err == nil {
		t.Fatal("MarkDone out of range did not error")
	}

	j2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := j2.Entries()
	if len(got) != 1 {
		t.Fatalf("%d entries after reopen, want 1", len(got))
	}
	if got[0].DoneCount() != 1 || !got[0].Done[1] {
		t.Fatalf("done flags %v did not survive reopen", got[0].Done)
	}
}

func TestRemoveDeletesEntry(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := testEntry(t, 400)
	if err := j.Record(e); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := j.Remove(e.SpecHash); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := j.Remove(e.SpecHash); err != nil {
		t.Fatalf("Remove again: %v", err)
	}
	if j.Len() != 0 {
		t.Fatalf("%d entries after Remove, want 0", j.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, e.SpecHash+".json")); !os.IsNotExist(err) {
		t.Fatalf("entry file still on disk after Remove (stat err %v)", err)
	}
	j2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if j2.Len() != 0 {
		t.Fatalf("removed entry resurrected at reopen")
	}
}

func TestOpenDiscardsMalformedEntries(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	good := testEntry(t, 500)
	if err := j.Record(good); err != nil {
		t.Fatalf("Record: %v", err)
	}
	otherHash := strings.Repeat("cd", 32)
	bad := map[string]string{
		"not-a-hash.json":                  `{"spec_hash": "x"}`,
		strings.Repeat("ef", 32) + ".json": "{torn",
		otherHash + ".json":                `{"spec_hash": "` + good.SpecHash + `", "scenario": "fig12-spatial-reuse"}`,
	}
	for name, content := range bad {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}
	// An interrupted write in tmp/ must be swept too.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "leftover.json"), []byte("{"), 0o644); err != nil {
		t.Fatalf("plant tmp leftover: %v", err)
	}

	j2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen over damage: %v", err)
	}
	got := j2.Entries()
	if len(got) != 1 || got[0].SpecHash != good.SpecHash {
		t.Fatalf("reopen kept %+v, want only %s", got, good.SpecHash)
	}
	for name := range bad {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("malformed entry %s not discarded (stat err %v)", name, err)
		}
	}
	des, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatalf("read tmp: %v", err)
	}
	if len(des) != 0 {
		t.Fatalf("tmp/ not swept: %v", des)
	}
}

func TestRecordValidation(t *testing.T) {
	j, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := testEntry(t, 600)

	bad := e
	bad.SpecHash = "nope"
	if err := j.Record(bad); err == nil {
		t.Fatal("Record accepted a non-hash spec hash")
	}
	bad = e
	bad.Scenario = ""
	if err := j.Record(bad); err == nil {
		t.Fatal("Record accepted an entry with no scenario")
	}
	bad = e
	bad.Done = bad.Done[:1]
	if err := j.Record(bad); err == nil {
		t.Fatal("Record accepted mismatched done flags")
	}
	if j.Len() != 0 {
		t.Fatalf("invalid records left %d entries behind", j.Len())
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open("", nil); err == nil {
		t.Fatal("Open(\"\") did not error")
	}
}
