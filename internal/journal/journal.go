// Package journal persists the dispatch coordinator's in-flight job
// state so a restarted coordinator can resume half-finished sweeps
// instead of discarding them. One entry per dispatched job, keyed by
// the resolved spec's content address (scenario.Spec.CanonicalHash):
// the resolved spec itself, the content address of every shard, and a
// per-shard completed flag. The entry is written when the job is
// dispatched, rewritten as shard results reach the durable store, and
// removed when the job ends for good (done, failed, or cancelled) —
// but kept when the coordinator shuts down with the job still open,
// which is exactly the state a restart wants to see.
//
// The journal stores its entries through the same Backend seam as the
// result store (store.Backend), rooted at its own directory —
// midas-serve puts it inside the store dir, where the store's warm
// scan ignores it:
//
//	<dir>/<spec-hash>.json   one entry per open dispatched job
//	<dir>/tmp/               in-flight writes (swept by the backend)
//
// Backend.Write carries the write-temp→fsync→rename discipline, so a
// crash at any instant leaves either the previous entry or the new one
// — never a torn file reachable under its final name.
//
// The Done flags are advisory: recovery consults the durable store
// itself for each shard address (a publish that landed after the last
// journal write is still honored), so a stale journal can only cost
// recomputation, never correctness. The same property is what makes a
// SHARED journal backend safe: two coordinators on one shared store
// dir may clobber each other's entry for a spec they both dispatched,
// or remove it when either finishes — the loser of such a race loses a
// resume hint, never a result.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"sort"
	"strings"
	"sync"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Entry is one journaled dispatched job.
type Entry struct {
	// SpecHash is the resolved spec's content address — the entry's
	// identity and its file name.
	SpecHash string `json:"spec_hash"`
	// Scenario is the registered scenario name, for re-admission.
	Scenario string `json:"scenario"`
	// Spec is the resolved spec, verbatim, so a restarted process can
	// re-dispatch the job without the original submission.
	Spec scenario.Spec `json:"spec"`
	// Shards lists each shard spec's content address — the durable-store
	// key its result is published under — in shard order. Empty when the
	// coordinator ran without a store (nothing to recover from).
	Shards []string `json:"shards,omitempty"`
	// Done[i] records that shard i's result had reached the store when
	// the journal was last rewritten (advisory; see the package comment).
	Done []bool `json:"done,omitempty"`
}

func (e Entry) clone() Entry {
	cp := e
	cp.Shards = append([]string(nil), e.Shards...)
	cp.Done = append([]bool(nil), e.Done...)
	return cp
}

// DoneCount counts the shards recorded complete.
func (e Entry) DoneCount() int {
	n := 0
	for _, d := range e.Done {
		if d {
			n++
		}
	}
	return n
}

// Journal is a crash-safe journal of open dispatched jobs. All methods
// are safe for concurrent use.
type Journal struct {
	be  store.Backend
	log *slog.Logger

	mu      sync.Mutex
	entries map[string]*Entry
}

// Open opens a journal over a single-process directory backend rooted
// at dir (created if absent) — the common case. See OpenBackend.
func Open(dir string, log *slog.Logger) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("journal: dir is required")
	}
	be, err := store.OpenDir(dir, nil)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return OpenBackend(be, log)
}

// OpenBackend opens a journal over an existing backend (the backend's
// own open already swept interrupted writes) and loads every readable
// entry. A blob that does not parse as a consistent entry is discarded
// with a warning — the shard results it pointed at are still in the
// store, only the resume hint is lost.
func OpenBackend(be store.Backend, log *slog.Logger) (*Journal, error) {
	if be == nil {
		return nil, errors.New("journal: backend is required")
	}
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	j := &Journal{be: be, log: log, entries: make(map[string]*Entry)}
	infos, err := be.List()
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	for _, in := range infos {
		name := in.Name
		if strings.Contains(name, "/") || !strings.HasSuffix(name, ".json") {
			continue
		}
		hash := strings.TrimSuffix(name, ".json")
		if !store.ValidHash(hash) {
			j.discard(name, "file name is not a content address")
			continue
		}
		data, rerr := be.Read(name)
		if rerr != nil {
			j.discard(name, rerr.Error())
			continue
		}
		var e Entry
		if derr := json.Unmarshal(data, &e); derr != nil {
			j.discard(name, derr.Error())
			continue
		}
		if verr := e.validate(); verr != nil {
			j.discard(name, verr.Error())
			continue
		}
		if e.SpecHash != hash {
			j.discard(name, "entry hash does not match its file name")
			continue
		}
		j.entries[hash] = &e
	}
	return j, nil
}

func (e Entry) validate() error {
	if !store.ValidHash(e.SpecHash) {
		return fmt.Errorf("journal: entry spec hash %q is not a content address", e.SpecHash)
	}
	if e.Scenario == "" {
		return errors.New("journal: entry names no scenario")
	}
	if len(e.Done) != len(e.Shards) {
		return fmt.Errorf("journal: entry has %d done flags for %d shards", len(e.Done), len(e.Shards))
	}
	return nil
}

func blobName(hash string) string { return hash + ".json" }

func (j *Journal) discard(name, why string) {
	j.log.Warn("journal entry discarded", "name", name, "reason", why)
	_ = j.be.Remove(name)
}

// Record writes (or overwrites) the entry for e.SpecHash. Called when
// a job is dispatched; re-recording an already-journaled spec replaces
// its entry with the fresh shard/done view.
func (j *Journal) Record(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	cp := e.clone()
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeLocked(&cp); err != nil {
		return err
	}
	j.entries[cp.SpecHash] = &cp
	return nil
}

// MarkDone records that shard's result reached the store. A missing
// entry is a no-op, not an error: the job may have already finished
// and been removed by the time a late publish lands.
func (j *Journal) MarkDone(specHash string, shard int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[specHash]
	if !ok {
		return nil
	}
	if shard < 0 || shard >= len(e.Done) {
		return fmt.Errorf("journal: shard %d out of range for %s (%d shards)", shard, specHash, len(e.Done))
	}
	if e.Done[shard] {
		return nil
	}
	e.Done[shard] = true
	return j.writeLocked(e)
}

// Remove deletes the entry for specHash — the job is terminal for good
// and nothing remains to resume. Removing an absent entry is a no-op.
func (j *Journal) Remove(specHash string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[specHash]; !ok {
		return nil
	}
	delete(j.entries, specHash)
	if err := j.be.Remove(blobName(specHash)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Entries snapshots the open entries, sorted by spec hash.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SpecHash < out[b].SpecHash })
	return out
}

// Len reports how many jobs are journaled open.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// writeLocked persists e through the backend's atomic durable write.
func (j *Journal) writeLocked(e *Entry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.be.Write(blobName(e.SpecHash), append(data, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
