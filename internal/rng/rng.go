// Package rng provides the deterministic random sources used by the MIDAS
// simulator: seeded uniform/Gaussian draws, circularly-symmetric complex
// Gaussians for Rayleigh fading, log-normal shadowing, and cheap splittable
// sub-streams so that independent subsystems (topology, fading, MAC jitter)
// consume independent randomness from one experiment seed.
//
// Every experiment in this repository takes an explicit seed; two runs with
// the same seed produce byte-identical results.
package rng

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distributions the wireless models need.
//
// Concurrency: a Source's draw methods (Float64, Norm, Perm, …) mutate
// the underlying stream and are NOT safe for concurrent use — each
// goroutine must own the Sources it draws from. Split and SplitN,
// however, read only the immutable seed recorded at construction, so
// any number of goroutines may derive children from one shared parent
// concurrently, and sibling children may be consumed from different
// goroutines. This is the discipline the internal/runner worker pool
// relies on: one root Source per experiment, one Split child per task.
type Source struct {
	r *rand.Rand
	// seed is immutable after New; Split derives children from it
	// without touching r, which is what makes concurrent splitting safe.
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream from this source's seed and a
// label. The same (seed, label) pair always yields the same child, while
// different labels yield decorrelated streams. Splitting never advances the
// parent stream, so adding a new Split call site does not perturb existing
// consumers. Split is safe to call from multiple goroutines on the same
// parent (it only reads the immutable seed); the returned child is an
// ordinary unsynchronized Source owned by the caller.
func (s *Source) Split(label string) *Source {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(label); i++ {
		mix(label[i])
	}
	u := uint64(s.seed)
	for i := 0; i < 8; i++ {
		mix(byte(u >> (8 * i)))
	}
	// Final avalanche (splitmix64 finalizer) so nearby seeds diverge.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return New(int64(h))
}

// SplitN derives the i-th child of a labelled family, e.g. one stream per
// topology index.
func (s *Source) SplitN(label string, i int) *Source {
	return s.Split(label + "#" + itoa(i))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Intn returns an integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a standard normal draw.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// Gauss returns a normal draw with the given mean and standard deviation.
func (s *Source) Gauss(mean, std float64) float64 {
	return mean + std*s.r.NormFloat64()
}

// LogNormalDB returns a linear-scale multiplicative factor whose dB value
// is N(0, sigmaDB) — the standard model for shadow fading.
func (s *Source) LogNormalDB(sigmaDB float64) float64 {
	return math.Pow(10, s.Gauss(0, sigmaDB)/10)
}

// ComplexCircular returns a circularly-symmetric complex Gaussian
// CN(0, variance): real and imaginary parts are independent
// N(0, variance/2), so E[|z|²] == variance.
func (s *Source) ComplexCircular(variance float64) complex128 {
	std := math.Sqrt(variance / 2)
	return complex(s.Gauss(0, std), s.Gauss(0, std))
}

// UnitPhasor returns e^{jθ} with θ uniform in [0, 2π).
func (s *Source) UnitPhasor() complex128 {
	theta := s.Uniform(0, 2*math.Pi)
	return cmplx.Exp(complex(0, theta))
}

// Rayleigh returns the magnitude of a CN(0, 2σ²) draw — a Rayleigh random
// variable with scale sigma.
func (s *Source) Rayleigh(sigma float64) float64 {
	return cmplx.Abs(s.ComplexCircular(2 * sigma * sigma))
}

// Exp returns an exponential draw with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// PointInDisc returns a uniform point in the disc of the given radius
// centred at the origin.
func (s *Source) PointInDisc(radius float64) (x, y float64) {
	r := radius * math.Sqrt(s.Float64())
	theta := s.Uniform(0, 2*math.Pi)
	return r * math.Cos(theta), r * math.Sin(theta)
}

// PointInAnnulus returns a uniform point in the annulus rInner <= r < rOuter
// centred at the origin. It panics unless 0 <= rInner < rOuter.
func (s *Source) PointInAnnulus(rInner, rOuter float64) (x, y float64) {
	if rInner < 0 || rInner >= rOuter {
		panic("rng: invalid annulus radii")
	}
	// Uniform over area: r² uniform in [rInner², rOuter²).
	r2 := s.Uniform(rInner*rInner, rOuter*rOuter)
	r := math.Sqrt(r2)
	theta := s.Uniform(0, 2*math.Pi)
	return r * math.Cos(theta), r * math.Sin(theta)
}
