package rng

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams from different seeds nearly identical (%d matches)", same)
	}
}

func TestSplitIndependentOfParentUse(t *testing.T) {
	p1 := New(7)
	c1 := p1.Split("fading")
	p2 := New(7)
	p2.Float64() // advance parent
	c2 := p2.Split("fading")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split must not depend on parent stream position")
		}
	}
}

func TestSplitLabelsDecorrelated(t *testing.T) {
	p := New(7)
	a := p.Split("a")
	b := p.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("labelled splits should differ; %d matches", same)
	}
}

func TestSplitN(t *testing.T) {
	p := New(9)
	if p.SplitN("t", 3).Seed() == p.SplitN("t", 4).Seed() {
		t.Error("SplitN children should have distinct seeds")
	}
	if p.SplitN("t", 3).Seed() != p.SplitN("t", 3).Seed() {
		t.Error("SplitN should be deterministic")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 42: "42", -17: "-17", 1000: "1000"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestGaussMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Gauss(3, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("var = %v, want ~4", variance)
	}
}

func TestComplexCircularMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var power, re, im float64
	for i := 0; i < n; i++ {
		z := s.ComplexCircular(2.5)
		power += real(z)*real(z) + imag(z)*imag(z)
		re += real(z)
		im += imag(z)
	}
	if got := power / n; math.Abs(got-2.5) > 0.05 {
		t.Errorf("E|z|^2 = %v, want ~2.5", got)
	}
	if math.Abs(re/n) > 0.02 || math.Abs(im/n) > 0.02 {
		t.Errorf("mean not ~0: %v %v", re/n, im/n)
	}
}

func TestUnitPhasor(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		z := s.UnitPhasor()
		if math.Abs(cmplx.Abs(z)-1) > 1e-12 {
			t.Fatalf("|phasor| = %v", cmplx.Abs(z))
		}
	}
}

func TestRayleighMean(t *testing.T) {
	// E[Rayleigh(sigma)] = sigma*sqrt(pi/2).
	s := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Rayleigh(2)
	}
	want := 2 * math.Sqrt(math.Pi/2)
	if got := sum / n; math.Abs(got-want) > 0.03 {
		t.Errorf("Rayleigh mean = %v, want ~%v", got, want)
	}
}

func TestLogNormalDBMedian(t *testing.T) {
	// Median of a 0-mean log-normal (in dB) is 1 in linear scale.
	s := New(23)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormalDB(8)
	}
	// count below 1
	below := 0
	for _, x := range xs {
		if x < 1 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(X<1) = %v, want ~0.5", frac)
	}
}

func TestExpMean(t *testing.T) {
	s := New(29)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(4)
	}
	if got := sum / n; math.Abs(got-4) > 0.1 {
		t.Errorf("Exp mean = %v, want ~4", got)
	}
}

func TestPointInDisc(t *testing.T) {
	s := New(31)
	inside := 0
	const n = 20000
	for i := 0; i < n; i++ {
		x, y := s.PointInDisc(3)
		r := math.Hypot(x, y)
		if r > 3 {
			t.Fatalf("point outside disc: r=%v", r)
		}
		if r < 3/math.Sqrt2 { // inner disc of half the area
			inside++
		}
	}
	frac := float64(inside) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("area uniformity: inner-half fraction = %v, want ~0.5", frac)
	}
}

func TestPointInAnnulus(t *testing.T) {
	s := New(37)
	for i := 0; i < 5000; i++ {
		x, y := s.PointInAnnulus(2, 5)
		r := math.Hypot(x, y)
		if r < 2-1e-9 || r >= 5+1e-9 {
			t.Fatalf("point outside annulus: r=%v", r)
		}
	}
}

func TestPointInAnnulusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad radii")
		}
	}()
	New(1).PointInAnnulus(5, 2)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%20) + 1
		p := New(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split determinism — (seed, label) fully determines the child.
func TestSplitDeterministicProperty(t *testing.T) {
	f := func(seed int64, label string) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		return a.Seed() == b.Seed() && a.Float64() == b.Float64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConcurrentSplit pins the concurrency contract the internal/runner
// worker pool depends on: many goroutines may Split/SplitN from one
// shared parent at once, and each sibling child, consumed on its own
// goroutine, yields exactly the stream a sequential derivation gives.
// Run with -race to verify the absence of data races, not just the
// equality of results.
func TestConcurrentSplit(t *testing.T) {
	const n = 64
	parent := New(2014)

	// Sequential reference: child i's first ten draws.
	want := make([][10]float64, n)
	for i := range want {
		c := New(2014).SplitN("worker", i)
		for j := range want[i] {
			want[i][j] = c.Float64()
		}
	}

	got := make([][10]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			c := parent.SplitN("worker", i) // concurrent Split on shared parent
			for j := range got[i] {
				got[i][j] = c.Float64() // sibling consumed on its own goroutine
			}
		}()
	}
	wg.Wait()

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("child %d drew %v concurrently, want %v", i, got[i], want[i])
		}
	}
}

// TestConcurrentSplitDoesNotPerturbParent verifies concurrent splitting
// leaves the parent's own stream untouched.
func TestConcurrentSplitDoesNotPerturbParent(t *testing.T) {
	ref := New(99)
	parent := New(99)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parent.SplitN("noise", i)
		}()
	}
	wg.Wait()
	for i := 0; i < 50; i++ {
		if parent.Float64() != ref.Float64() {
			t.Fatal("concurrent Split perturbed the parent stream")
		}
	}
}
